"""Device bank correctness: stamps verified against finite differences.

For every device type we build a tiny circuit, evaluate the analytic
Jacobians (G = dI/dx, C = dQ/dx) from the banks, and compare against
central finite differences of the residual/charge vectors. This is the
strongest possible stamp test: any sign or chain-rule error fails it.
"""

import numpy as np
import pytest

from repro.circuit.circuit import Circuit
from repro.circuit.components import BjtModel, DiodeModel, MosfetModel
from repro.circuit.sources import Dc, Sin
from repro.devices.base import safe_exp
from repro.devices.diode import depletion_charge, pnjlim
from repro.mna.compiler import compile_circuit
from repro.mna.system import MnaSystem


def fd_check(circuit, x, t=0.0, rtol=1e-5, atol=1e-7):
    """Compare analytic G and C Jacobians against central differences."""
    system = MnaSystem(compile_circuit(circuit))
    n = system.n
    x = np.asarray(x, dtype=float)
    assert x.size == n

    out = system.make_buffers()

    def parts(xv):
        system.eval(xv, t, out)
        return out.f[:n].copy(), out.q[:n].copy()

    system.eval(x, t, out)
    g_analytic = system.pattern.assemble(
        out.g_vals, np.zeros_like(out.c_vals), 0.0
    ).toarray()
    c_analytic = system.pattern.assemble(
        np.zeros_like(out.g_vals), out.c_vals, 1.0
    ).toarray()

    g_fd = np.zeros((n, n))
    c_fd = np.zeros((n, n))
    eps = 1e-7
    for j in range(n):
        dx = np.zeros(n)
        dx[j] = eps
        f_plus, q_plus = parts(x + dx)
        f_minus, q_minus = parts(x - dx)
        g_fd[:, j] = (f_plus - f_minus) / (2 * eps)
        c_fd[:, j] = (q_plus - q_minus) / (2 * eps)

    scale = max(np.abs(g_fd).max(), 1.0)
    np.testing.assert_allclose(g_analytic, g_fd, rtol=rtol, atol=atol * scale)
    cscale = max(np.abs(c_fd).max(), 1e-15)
    np.testing.assert_allclose(c_analytic, c_fd, rtol=rtol, atol=atol * cscale)
    return system


class TestLinearBanks:
    def test_resistor_jacobian(self):
        c = Circuit("t")
        c.add_vsource("V1", "a", "0", Dc(1.0))
        c.add_resistor("R1", "a", "b", 1e3)
        c.add_resistor("R2", "b", "0", 2e3)
        fd_check(c, np.array([1.0, 0.6, -1e-3]))

    def test_capacitor_jacobian(self):
        c = Circuit("t")
        c.add_vsource("V1", "a", "0", Dc(1.0))
        c.add_resistor("R1", "a", "b", 1e3)
        c.add_capacitor("C1", "b", "0", 1e-9)
        c.add_capacitor("C2", "a", "b", 2e-9)
        fd_check(c, np.array([1.0, 0.3, 0.0]))

    def test_inductor_jacobian_and_charge(self):
        c = Circuit("t")
        c.add_vsource("V1", "a", "0", Dc(1.0))
        c.add_inductor("L1", "a", "b", 1e-6)
        c.add_resistor("R1", "b", "0", 10.0)
        system = fd_check(c, np.array([1.0, 0.5, 0.05, 0.05]))
        # the inductor flux enters q as -L*i on its branch row
        out = system.make_buffers()
        x = np.array([1.0, 0.5, 0.05, 0.02])
        system.eval(x, 0.0, out)
        l_branch = system.compiled.branch_current_index("L1")
        assert out.q[l_branch] == pytest.approx(-1e-6 * x[l_branch])


class TestSourceBanks:
    def test_vsource_branch_rows(self):
        c = Circuit("t")
        c.add_vsource("V1", "a", "0", Dc(2.5))
        c.add_resistor("R1", "a", "0", 1e3)
        system = fd_check(c, np.array([2.0, 1e-3]))
        out = system.make_buffers()
        x = np.array([2.0, 1e-3])
        system.eval(x, 0.0, out)
        j = system.compiled.branch_current_index("V1")
        # branch residual f + s = v(a) - V
        assert out.f[j] + out.s[j] == pytest.approx(2.0 - 2.5)

    def test_vsource_time_dependence(self):
        c = Circuit("t")
        c.add_vsource("V1", "a", "0", Sin(0.0, 1.0, 1e6))
        c.add_resistor("R1", "a", "0", 1.0)
        system = MnaSystem(compile_circuit(c))
        out = system.make_buffers()
        j = system.compiled.branch_current_index("V1")
        system.eval(np.zeros(2), 0.25e-6, out)
        assert out.s[j] == pytest.approx(-1.0)

    def test_isource_injection_sign(self):
        # SPICE convention: positive I flows plus -> minus through the
        # source, so it *extracts* from the plus node's KCL.
        c = Circuit("t")
        c.add_isource("I1", "a", "0", Dc(1e-3))
        c.add_resistor("R1", "a", "0", 1e3)
        system = MnaSystem(compile_circuit(c))
        out = system.make_buffers()
        system.eval(np.zeros(1), 0.0, out)
        assert out.s[0] == pytest.approx(1e-3)

    def test_vcvs_jacobian(self):
        c = Circuit("t")
        c.add_vsource("V1", "cp", "0", Dc(1.0))
        c.add_resistor("RC", "cp", "0", 1e3)
        c.add_vcvs("E1", "p", "0", "cp", "0", 10.0)
        c.add_resistor("RL", "p", "0", 1e3)
        fd_check(c, np.array([0.5, 5.0, 1e-3, -5e-3]))

    def test_vccs_jacobian(self):
        c = Circuit("t")
        c.add_vsource("V1", "cp", "0", Dc(1.0))
        c.add_resistor("RC", "cp", "0", 1e3)
        c.add_vccs("G1", "p", "0", "cp", "0", 1e-3)
        c.add_resistor("RL", "p", "0", 1e3)
        fd_check(c, np.array([0.5, -0.5, 1e-3]))

    def test_cccs_jacobian(self):
        c = Circuit("t")
        c.add_vsource("V1", "a", "0", Dc(1.0))
        c.add_resistor("R1", "a", "0", 1e3)
        c.add_cccs("F1", "p", "0", "V1", 5.0)
        c.add_resistor("RL", "p", "0", 1e3)
        fd_check(c, np.array([1.0, 0.2, 1e-3]))

    def test_ccvs_jacobian(self):
        c = Circuit("t")
        c.add_vsource("V1", "a", "0", Dc(1.0))
        c.add_resistor("R1", "a", "0", 1e3)
        c.add_ccvs("H1", "p", "0", "V1", 100.0)
        c.add_resistor("RL", "p", "0", 1e3)
        fd_check(c, np.array([1.0, 0.1, 1e-3, 2e-3]))


class TestDiodeBank:
    def make(self, **model_kw):
        c = Circuit("t")
        c.add_vsource("V1", "in", "0", Dc(1.0))
        c.add_resistor("R1", "in", "a", 1e3)
        c.add_diode("D1", "a", "0", DiodeModel(**model_kw))
        return c

    @pytest.mark.parametrize("va", [0.3, 0.55, 0.65, -0.4, -2.0])
    def test_jacobian_across_bias(self, va):
        fd_check(self.make(), np.array([1.0, va, -1e-3]), rtol=1e-4)

    def test_jacobian_with_charge(self):
        c = self.make(cj0=1e-12, tt=1e-9, vj=0.8, m=0.4)
        fd_check(c, np.array([1.0, 0.45, -1e-3]), rtol=1e-4)

    def test_current_follows_shockley(self):
        system = MnaSystem(compile_circuit(self.make()))
        out = system.make_buffers()
        vd = 0.6
        system.eval(np.array([1.0, vd, 0.0]), 0.0, out)
        # KCL at the anode = resistor current + diode current; isolate the diode.
        resistor_part = (vd - 1.0) / 1e3
        diode_current = out.f[1] - resistor_part
        from repro.devices.base import VT

        expected = 1e-14 * (np.exp(vd / VT) - 1.0)
        assert diode_current == pytest.approx(expected, rel=1e-3)

    def test_series_resistance_expands_internal_node(self):
        c = Circuit("t")
        c.add_vsource("V1", "in", "0", Dc(1.0))
        c.add_diode("D1", "in", "0", DiodeModel(rs=10.0))
        compiled = compile_circuit(c)
        assert "D1#rs" in compiled.node_index
        assert any("D1#rser" == comp.name for comp in compiled._components)


class TestDepletionCharge:
    def test_zero_bias(self):
        q, cap = depletion_charge(np.array([0.0]), np.array([1e-12]), np.array([0.8]), np.array([0.5]))
        assert q[0] == pytest.approx(0.0, abs=1e-18)
        assert cap[0] == pytest.approx(1e-12)

    def test_continuity_at_knee(self):
        cj0, vj, m = np.array([1e-12]), np.array([0.8]), np.array([0.5])
        knee = 0.5 * 0.8
        eps = 1e-9
        q_lo, c_lo = depletion_charge(np.array([knee - eps]), cj0, vj, m)
        q_hi, c_hi = depletion_charge(np.array([knee + eps]), cj0, vj, m)
        assert q_lo[0] == pytest.approx(q_hi[0], rel=1e-6)
        assert c_lo[0] == pytest.approx(c_hi[0], rel=1e-6)

    def test_capacitance_is_charge_derivative(self):
        cj0, vj, m = np.array([2e-12]), np.array([0.7]), np.array([0.33])
        for v in (-1.0, 0.1, 0.3, 0.5, 0.9):
            eps = 1e-7
            q_p, _ = depletion_charge(np.array([v + eps]), cj0, vj, m)
            q_m, _ = depletion_charge(np.array([v - eps]), cj0, vj, m)
            _, cap = depletion_charge(np.array([v]), cj0, vj, m)
            assert (q_p[0] - q_m[0]) / (2 * eps) == pytest.approx(cap[0], rel=1e-5)


class TestPnjlim:
    def test_small_steps_untouched(self):
        vnew, changed = pnjlim(
            np.array([0.61]), np.array([0.60]), np.array([0.026]), np.array([0.7])
        )
        assert not changed.any()
        assert vnew[0] == 0.61

    def test_large_forward_step_limited(self):
        vnew, changed = pnjlim(
            np.array([5.0]), np.array([0.7]), np.array([0.026]), np.array([0.65])
        )
        assert changed[0]
        assert vnew[0] < 5.0
        assert vnew[0] > 0.7  # still moves forward, logarithmically


class TestSafeExp:
    def test_matches_exp_in_range(self):
        u = np.array([-5.0, 0.0, 10.0, 50.0])
        val, der = safe_exp(u)
        np.testing.assert_allclose(val, np.exp(u))
        np.testing.assert_allclose(der, np.exp(u))

    def test_linear_continuation_is_finite_and_continuous(self):
        val_lo, _ = safe_exp(np.array([100.0]))
        val_hi, _ = safe_exp(np.array([100.0 + 1e-9]))
        assert np.isfinite(safe_exp(np.array([1e6]))[0]).all()
        assert val_hi[0] == pytest.approx(val_lo[0], rel=1e-6)


class TestMosfetBank:
    def make(self, polarity="nmos", gamma=0.0):
        c = Circuit("t")
        c.add_vsource("VD", "d", "0", Dc(1.0))
        c.add_vsource("VG", "g", "0", Dc(1.0))
        c.add_vsource("VS", "s", "0", Dc(0.0))
        c.add_vsource("VB", "b", "0", Dc(0.0))
        model = MosfetModel("m", polarity, vto=0.7, kp=100e-6, lambda_=0.05, gamma=gamma)
        c.add_mosfet("M1", "d", "g", "s", "b", model, w=2e-6, l=1e-6)
        return c

    def bias(self, vd, vg, vs=0.0, vb=0.0):
        return np.array([vd, vg, vs, vb, 0.0, 0.0, 0.0, 0.0])

    @pytest.mark.parametrize(
        "vd,vg",
        [
            (2.0, 2.0),   # saturation
            (0.2, 2.0),   # linear
            (2.0, 0.3),   # cutoff
            (-1.0, 2.0),  # reversed drain/source
            (1.0, 1.0),   # near linear/sat boundary... slightly off
        ],
    )
    def test_nmos_jacobian(self, vd, vg):
        fd_check(self.make(), self.bias(vd, vg), rtol=1e-4, atol=1e-6)

    @pytest.mark.parametrize("vd,vg", [(-2.0, -2.0), (-0.2, -2.0), (2.0, 0.0)])
    def test_pmos_jacobian(self, vd, vg):
        fd_check(self.make("pmos"), self.bias(vd, vg), rtol=1e-4, atol=1e-6)

    def test_body_effect_jacobian(self):
        fd_check(self.make(gamma=0.5), self.bias(2.0, 2.0, 0.0, -0.5), rtol=1e-4)

    def test_square_law_saturation_current(self):
        system = MnaSystem(compile_circuit(self.make()))
        out = system.make_buffers()
        system.eval(np.pad(self.bias(2.0, 1.7), (0, 0)), 0.0, out)
        beta = 100e-6 * 2.0
        vov = 1.7 - 0.7
        expected = 0.5 * beta * vov**2 * (1 + 0.05 * 2.0)
        assert out.f[0] == pytest.approx(expected, rel=1e-3)

    def test_drain_source_symmetry(self):
        """Swapping drain and source voltages flips the current."""
        system = MnaSystem(compile_circuit(self.make()))
        out = system.make_buffers()
        system.eval(self.bias(1.0, 2.0, 0.0), 0.0, out)
        i_forward = out.f[0]
        system.eval(self.bias(0.0, 2.0, 1.0), 0.0, out)
        i_reverse = out.f[0]
        assert i_forward == pytest.approx(-i_reverse, rel=1e-6)

    def test_cutoff_leaves_only_gmin(self):
        system = MnaSystem(compile_circuit(self.make()))
        out = system.make_buffers()
        system.eval(self.bias(2.0, 0.0), 0.0, out)
        assert abs(out.f[0]) <= 1e-12 * 2.0 + 1e-18

    def test_operating_regions_labels(self):
        system = MnaSystem(compile_circuit(self.make()))
        bank = next(b for b in system.compiled.banks if type(b).__name__ == "MosfetBank")
        full = np.zeros(system.n + 1)
        full[:4] = [2.0, 2.0, 0.0, 0.0]
        assert bank.operating_regions(full) == ["saturation"]
        full[:4] = [0.1, 2.0, 0.0, 0.0]
        assert bank.operating_regions(full) == ["linear"]
        full[:4] = [2.0, 0.2, 0.0, 0.0]
        assert bank.operating_regions(full) == ["off"]


class TestBjtBank:
    def make(self, polarity="npn", **kw):
        c = Circuit("t")
        c.add_vsource("VC", "c", "0", Dc(1.0))
        c.add_vsource("VB", "b", "0", Dc(1.0))
        c.add_vsource("VE", "e", "0", Dc(0.0))
        model = BjtModel("q", polarity, **kw)
        c.add_bjt("Q1", "c", "b", "e", model)
        return c

    def bias(self, vc, vb, ve=0.0):
        return np.array([vc, vb, ve, 0.0, 0.0, 0.0])

    @pytest.mark.parametrize(
        "vc,vb",
        [
            (2.0, 0.65),   # forward active
            (0.2, 0.65),   # saturation
            (2.0, -0.5),   # cutoff
            (-0.5, 0.3),   # reverse-ish
        ],
    )
    def test_npn_jacobian(self, vc, vb):
        fd_check(self.make(), self.bias(vc, vb), rtol=1e-4, atol=1e-6)

    def test_pnp_jacobian(self):
        fd_check(self.make("pnp"), self.bias(-2.0, -0.65), rtol=1e-4, atol=1e-6)

    def test_jacobian_with_charge_storage(self):
        c = self.make(cje=1e-12, cjc=0.5e-12, tf=10e-12)
        fd_check(c, self.bias(2.0, 0.6), rtol=1e-4, atol=1e-6)

    def test_early_effect_jacobian(self):
        fd_check(self.make(vaf=50.0), self.bias(3.0, 0.65), rtol=1e-4)

    def test_beta_relation_forward_active(self):
        system = MnaSystem(compile_circuit(self.make(bf=100.0)))
        out = system.make_buffers()
        system.eval(self.bias(2.0, 0.65), 0.0, out)
        ic, ib = out.f[0], out.f[1]
        assert ic / ib == pytest.approx(100.0, rel=1e-2)

    def test_kcl_current_conservation(self):
        system = MnaSystem(compile_circuit(self.make()))
        out = system.make_buffers()
        system.eval(self.bias(2.0, 0.7), 0.0, out)
        # collector + base + emitter terminal currents must sum to zero
        assert out.f[0] + out.f[1] + out.f[2] == pytest.approx(0.0, abs=1e-15)
