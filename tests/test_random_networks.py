"""Property-based cross-validation on random networks.

The strongest correctness evidence the engine can get: random resistive /
RC meshes are solved twice — once by the full simulator (MNA assembly,
Newton, LTE-controlled transient) and once by independently hand-built
dense linear algebra (nodal matrix + numpy solve; matrix exponential for
the transient). Agreement across random topologies rules out whole
classes of assembly, indexing and integration bugs at once.

The network builders live in :mod:`repro.verify.generators` (their one
canonical home, shared with the fuzzing oracle); this module consumes
them and adds the independent dense references. Nonlinear (diode /
MOSFET) topologies have no closed-form reference, so those trials lean on
the differential oracle instead: every configuration of the engine must
agree with the sequential baseline.
"""

import numpy as np
import pytest
import scipy.linalg
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.circuit.circuit import Circuit
from repro.circuit.sources import Dc
from repro.engine.transient import run_transient
from repro.mna.compiler import compile_circuit
from repro.mna.system import MnaSystem
from repro.solver.dcop import solve_operating_point
from repro.utils.options import SimOptions
from repro.verify.generators import (
    draw_circuit,
    random_rc_network,
    random_resistive_network,
)
from repro.verify.oracle import verify_circuit


class TestRandomResistiveNetworks:
    @pytest.mark.parametrize("seed", range(12))
    def test_operating_point_matches_dense_solve(self, seed):
        rng = np.random.default_rng(seed)
        n_nodes = int(rng.integers(3, 12))
        circuit, g_matrix, rhs = random_resistive_network(rng, n_nodes)

        compiled = compile_circuit(circuit)
        system = MnaSystem(compiled)
        op = solve_operating_point(system)

        v_reference = np.linalg.solve(g_matrix, rhs)
        v_engine = np.array(
            [op.x[compiled.node_voltage_index(f"n{i}")] for i in range(n_nodes)]
        )
        np.testing.assert_allclose(v_engine, v_reference, rtol=1e-6, atol=1e-9)

    @pytest.mark.parametrize("seed", [100, 101, 102, 103])
    def test_superposition_property(self, seed):
        """Linear network: solution with two sources = sum of single-source
        solutions (a physics invariant the engine must inherit)."""
        rng = np.random.default_rng(seed)
        n_nodes = 6
        base, _, _ = random_resistive_network(rng, n_nodes)

        def solve_with(scale_a, scale_b):
            circuit = Circuit("superpose")
            for comp in base.components:
                if comp.name.startswith("I"):
                    continue
                circuit.add(comp)
            circuit.add_isource("IA", "n0", "0", Dc(1e-3 * scale_a))
            circuit.add_isource("IB", f"n{n_nodes-1}", "0", Dc(2e-3 * scale_b))
            compiled = compile_circuit(circuit)
            op = solve_operating_point(MnaSystem(compiled))
            return np.array(
                [op.x[compiled.node_voltage_index(f"n{i}")] for i in range(n_nodes)]
            )

        both = solve_with(1.0, 1.0)
        only_a = solve_with(1.0, 1e-12)
        only_b = solve_with(1e-12, 1.0)
        np.testing.assert_allclose(both, only_a + only_b, rtol=1e-6, atol=1e-9)


class TestRandomRcTransients:
    @pytest.mark.parametrize("seed", range(8))
    def test_transient_matches_matrix_exponential(self, seed):
        """v(t) = v_inf + expm(-C^-1 G t) (v0 - v_inf), v0 = 0."""
        rng = np.random.default_rng(seed)
        n_nodes = int(rng.integers(3, 8))
        circuit, g_matrix, c_matrix, rhs = random_rc_network(rng, n_nodes)

        v_inf = np.linalg.solve(g_matrix, rhs)
        a_matrix = -np.linalg.solve(c_matrix, g_matrix)
        # simulate over a few dominant time constants
        tau = 1.0 / np.abs(np.linalg.eigvals(a_matrix)).min()
        tstop = min(3.0 * tau, 1.0)

        compiled = compile_circuit(circuit)
        result = run_transient(compiled, tstop, options=SimOptions(reltol=1e-4))

        check_times = np.linspace(0.1 * tstop, tstop, 7)
        for t in check_times:
            v_exact = v_inf + scipy.linalg.expm(a_matrix * t) @ (-v_inf)
            v_engine = np.array(
                [result.waveforms.voltage(f"n{i}").at(t) for i in range(n_nodes)]
            )
            scale = max(np.abs(v_exact).max(), 1e-6)
            np.testing.assert_allclose(
                v_engine, v_exact, atol=5e-3 * scale,
                err_msg=f"seed={seed} t={t:.3e}",
            )


class TestRandomizedWavePipe:
    @settings(max_examples=8, deadline=None)
    @given(st.integers(min_value=0, max_value=10_000))
    def test_wavepipe_matches_sequential_on_random_rc(self, seed):
        """Property: on ANY random RC network, every WavePipe scheme's
        waveforms stay within LTE-tolerance scale of sequential."""
        from repro.core.wavepipe import compare_with_sequential

        rng = np.random.default_rng(seed)
        circuit, g_matrix, c_matrix, _ = random_rc_network(rng, 5)
        a_matrix = -np.linalg.solve(c_matrix, g_matrix)
        tau = 1.0 / np.abs(np.linalg.eigvals(a_matrix)).min()
        compiled = compile_circuit(circuit)
        report = compare_with_sequential(
            compiled, min(3.0 * tau, 1.0), scheme="combined", threads=3
        )
        assert report.worst_deviation.max_relative < 0.02
        assert report.speedup > 0.9


class TestRandomNonlinearNetworks:
    """Nonlinear topologies verified through the differential oracle:
    no closed-form reference exists, but every scheme/executor/reuse
    configuration must agree with the sequential baseline."""

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_diode_mesh_equivalence(self, seed):
        generated = draw_circuit(seed, families=["diode-mesh"])
        report = verify_circuit(generated, chaos=False, schemes=["combined"])
        assert report.passed, report.summary()

    @pytest.mark.parametrize("seed", [0, 1])
    def test_mosfet_chain_equivalence(self, seed):
        generated = draw_circuit(seed, families=["mosfet-chain"])
        report = verify_circuit(generated, chaos=False, schemes=["combined"])
        assert report.passed, report.summary()

    @pytest.mark.parametrize("seed", [3, 4])
    def test_diode_clipper_clamps_output(self, seed):
        """Physics property: a clipper's output never exceeds the diode
        forward drop by more than a junction's worth of margin."""
        generated = draw_circuit(seed, families=["diode-clipper"])
        compiled = compile_circuit(generated.circuit)
        result = run_transient(compiled, generated.tstop)
        out = result.waveforms.voltage("out")
        assert out.values.max() < 1.0  # clamped well below the source swing
