"""Order-of-accuracy verification for the integration methods.

The classic numerical test: force (nearly) constant steps via ``max_step``
with tolerances loose enough that LTE never binds, halve the step, and
check the global error against the analytic solution contracts at the
method's theoretical rate — O(h) globally for backward Euler, O(h^2) for
trapezoidal and Gear-2. This pins down the integration formulas
themselves, independent of step control.
"""

import numpy as np
import pytest

from repro.circuit.circuit import Circuit
from repro.circuit.sources import Dc
from repro.engine.transient import run_transient
from repro.utils.options import SimOptions


def rc_decay_circuit():
    """Source-free discharge: v(t) = exp(-t/tau), tau = 1 us, via UIC."""
    c = Circuit("decay")
    c.add_vsource("V1", "in", "0", Dc(0.0))
    c.add_resistor("R1", "in", "out", 1e3)
    c.add_capacitor("C1", "out", "0", 1e-9, ic=1.0)
    return c


def global_error(method: str, h: float) -> float:
    options = SimOptions(
        method=method,
        max_step=h,
        # keep LTE from interfering: the step is pinned by max_step
        lte_reltol=10.0,
        lte_abstol=10.0,
        first_step_fraction=1.0,
    )
    tstop = 3e-6
    result = run_transient(rc_decay_circuit(), tstop, tstep=h, options=options, uic=True)
    out = result.waveforms.voltage("out")
    t = np.linspace(0.5e-6, tstop, 40)
    return float(np.abs(out.at(t) - np.exp(-t / 1e-6)).max())


class TestConvergenceOrder:
    @pytest.mark.parametrize(
        "method,expected_order", [("be", 1), ("trap", 2), ("gear2", 2)]
    )
    def test_error_contracts_at_theoretical_rate(self, method, expected_order):
        h_coarse, h_fine = 50e-9, 25e-9
        err_coarse = global_error(method, h_coarse)
        err_fine = global_error(method, h_fine)
        observed = np.log2(err_coarse / err_fine)
        assert observed == pytest.approx(expected_order, abs=0.4), (
            f"{method}: error {err_coarse:.3e} -> {err_fine:.3e}, "
            f"observed order {observed:.2f}"
        )

    def test_second_order_beats_first_order(self):
        h = 50e-9
        assert global_error("trap", h) < 0.2 * global_error("be", h)

    def test_be_error_sign_is_systematic(self):
        """BE integrates a pure decay with a one-sided error: its per-step
        gain 1/(1+h/tau) exceeds exp(-h/tau), so the computed waveform
        stays at or above the exact decay."""
        options = SimOptions(
            method="be", max_step=100e-9, lte_reltol=10.0, lte_abstol=10.0,
            first_step_fraction=1.0,
        )
        result = run_transient(
            rc_decay_circuit(), 3e-6, tstep=100e-9, options=options, uic=True
        )
        out = result.waveforms.voltage("out")
        t = np.linspace(0.5e-6, 2.5e-6, 20)
        assert np.all(out.at(t) >= np.exp(-t / 1e-6) - 1e-12)
