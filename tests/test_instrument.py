"""Instrumentation stack: recorder, exporters, metrics, engine wiring."""

import io
import json

import pytest

from repro.circuit.circuit import Circuit
from repro.circuit.sources import Pulse
from repro.core.wavepipe import compare_with_sequential, run_wavepipe
from repro.engine.transient import run_transient
from repro.instrument import (
    NULL_RECORDER,
    Histogram,
    NullRecorder,
    Recorder,
    RunMetrics,
    chrome_trace_dict,
    get_recorder,
    read_jsonl,
    resolve_recorder,
    set_recorder,
    use_recorder,
    write_chrome_trace,
    write_jsonl,
    write_trace,
)
from repro.utils.options import SimOptions


def make_rc():
    c = Circuit("rc")
    c.add_vsource(
        "V1", "in", "0", Pulse(0.0, 1.0, delay=1e-9, rise=1e-12, width=1e-3)
    )
    c.add_resistor("R1", "in", "out", 1e3)
    c.add_capacitor("C1", "out", "0", 1e-9)
    return c


class TestHistogram:
    def test_streaming_summary(self):
        h = Histogram()
        for v in (1.0, 2.0, 4.0, 4.0):
            h.add(v)
        assert h.count == 4
        assert h.mean == pytest.approx(2.75)
        assert h.minimum == 1.0
        assert h.maximum == 4.0
        assert h.buckets == {0: 1, 1: 1, 2: 2}

    def test_nonpositive_values_bucketed(self):
        h = Histogram()
        h.add(0.0)
        h.add(-3.0)
        assert h.count == 2
        assert len(h.buckets) == 1  # both in the degenerate bucket

    def test_empty_to_dict(self):
        d = Histogram().to_dict()
        assert d["count"] == 0
        assert d["min"] is None and d["max"] is None


class TestRecorder:
    def test_counters_and_histograms(self):
        rec = Recorder()
        rec.count("solves")
        rec.count("solves", 2)
        rec.observe("h", 1e-9)
        assert rec.counter("solves") == 3
        assert rec.counter("absent", -1) == -1
        snap = rec.snapshot()
        assert snap["counters"]["solves"] == 3
        assert snap["histograms"]["h"]["count"] == 1

    def test_events_and_lanes(self):
        rec = Recorder()
        rec.event("a", ts=0.0, lane=0)
        rec.event("b", ts=0.1, dur=0.05, lane=2, t_sim=1e-6, extra=7)
        assert rec.lanes == [0, 2]
        assert rec.events[1].attrs == {"extra": 7}

    def test_event_cap_drops_and_counts(self):
        rec = Recorder(max_events=2)
        for k in range(5):
            rec.event("e", ts=float(k))
        assert len(rec.events) == 2
        assert rec.dropped_events == 3

    def test_capture_events_off_skips_log(self):
        rec = Recorder(capture_events=False)
        rec.event("e")
        rec.count("c")
        assert rec.events == []
        assert rec.counter("c") == 1  # counters still live

    def test_span_records_duration(self):
        rec = Recorder()
        with rec.span("work", lane=1, tag="x"):
            pass
        (ev,) = rec.events
        assert ev.name == "work"
        assert ev.dur is not None and ev.dur >= 0
        assert ev.lane == 1 and ev.attrs == {"tag": "x"}


class TestNullRecorder:
    def test_everything_is_inert(self):
        rec = NullRecorder()
        assert rec.enabled is False
        rec.count("x")
        rec.observe("x", 1.0)
        rec.event("x")
        with rec.span("x"):
            pass
        assert rec.counter("x") == 0
        assert rec.snapshot()["events"] == 0
        assert rec.lanes == []


class TestGlobalDefault:
    def test_default_is_null(self):
        assert get_recorder() is NULL_RECORDER

    def test_use_recorder_scopes_the_swap(self):
        rec = Recorder()
        with use_recorder(rec) as active:
            assert active is rec
            assert get_recorder() is rec
        assert get_recorder() is NULL_RECORDER

    def test_set_recorder_none_restores_null(self):
        previous = set_recorder(Recorder())
        assert previous is NULL_RECORDER
        set_recorder(None)
        assert get_recorder() is NULL_RECORDER

    def test_use_recorder_is_thread_local(self):
        # Concurrent scopes must not bleed into each other: two threads
        # each bind their own recorder and hammer the ambient counter;
        # every count must land in the binding thread's recorder (the
        # farm-node telemetry undercount regression).
        import threading

        recorders = [Recorder(), Recorder()]
        barrier = threading.Barrier(2)

        def work(rec):
            with use_recorder(rec):
                barrier.wait()
                for _ in range(2000):
                    get_recorder().count("ambient.hits")

        threads = [threading.Thread(target=work, args=(r,)) for r in recorders]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert [r.counter("ambient.hits") for r in recorders] == [2000, 2000]

    def test_threads_spawned_inside_scope_fall_back_to_process_default(self):
        import threading

        seen = []
        with use_recorder(Recorder()):
            t = threading.Thread(target=lambda: seen.append(get_recorder()))
            t.start()
            t.join()
        assert seen == [NULL_RECORDER]

    def test_resolve_recorder(self):
        rec = Recorder()
        assert resolve_recorder(rec) is rec
        assert resolve_recorder(None) is get_recorder()
        fresh = resolve_recorder(True)
        assert isinstance(fresh, Recorder) and fresh is not rec


class TestExporters:
    def record_sample(self):
        rec = Recorder()
        rec.count("newton.solves", 4)
        rec.observe("step.h_accepted", 1e-9)
        rec.event("step_accept", ts=0.0, lane=0, t_sim=1e-9, h=1e-9)
        rec.event("stage_task", ts=0.1, dur=0.02, lane=1, iterations=3)
        return rec

    def test_jsonl_round_trip(self):
        rec = self.record_sample()
        buffer = io.StringIO()
        write_jsonl(rec, buffer)
        lines = [json.loads(line) for line in buffer.getvalue().splitlines()]
        assert lines[0]["record"] == "header"
        assert lines[-1]["record"] == "summary"
        buffer.seek(0)
        events, summary = read_jsonl(buffer)
        assert [e.name for e in events] == ["step_accept", "stage_task"]
        assert events[1].dur == pytest.approx(0.02)
        assert summary["counters"]["newton.solves"] == 4

    def test_chrome_trace_structure(self):
        rec = self.record_sample()
        doc = chrome_trace_dict(rec)
        events = doc["traceEvents"]
        meta = [e for e in events if e["ph"] == "M"]
        # one thread_name + one thread_sort_index per lane
        assert {m["tid"] for m in meta} == {0, 1}
        names = {
            m["tid"]: m["args"]["name"]
            for m in meta
            if m["name"] == "thread_name"
        }
        assert names == {0: "scheduler", 1: "worker-1"}
        complete = [e for e in events if e["ph"] == "X"]
        instants = [e for e in events if e["ph"] == "i"]
        assert len(complete) == 1 and complete[0]["dur"] == pytest.approx(0.02e6)
        assert len(instants) == 1 and instants[0]["args"]["t_sim"] == 1e-9
        assert doc["otherData"]["counters"]["newton.solves"] == 4

    def test_chrome_trace_file_is_valid_json(self, tmp_path):
        path = tmp_path / "trace.json"
        write_chrome_trace(self.record_sample(), str(path))
        doc = json.loads(path.read_text())
        assert "traceEvents" in doc

    def test_write_trace_dispatches_on_extension(self, tmp_path):
        rec = self.record_sample()
        assert write_trace(rec, str(tmp_path / "t.jsonl")) == "jsonl"
        assert write_trace(rec, str(tmp_path / "t.json")) == "chrome"
        events, _ = read_jsonl(str(tmp_path / "t.jsonl"))
        assert len(events) == 2


class TestRunMetrics:
    def test_sequential_run_populates_metrics(self):
        rec = Recorder()
        result = run_transient(make_rc(), 10e-6, instrument=rec)
        m = result.metrics
        assert m is not None and m.scheme == "sequential"
        assert m.accepted_points == result.stats.accepted_points
        assert m.newton_iterations == result.stats.newton_iterations
        assert m.iterations_per_point == pytest.approx(
            result.stats.newton_iterations / result.stats.accepted_points
        )
        assert not m.is_pipelined
        assert m.stage_utilization == 1.0
        # counter snapshot reconciles with the stats
        assert m.counters["points.accepted"] == result.stats.accepted_points

    def test_wall_seconds_split(self):
        result = run_transient(make_rc(), 10e-6)
        stats = result.stats
        assert stats.dcop_seconds > 0
        assert stats.tran_seconds > 0
        assert stats.wall_seconds == pytest.approx(
            stats.dcop_seconds + stats.tran_seconds
        )
        with pytest.raises(AttributeError):
            stats.wall_seconds = 1.0  # derived, no longer assignable

    def test_pipelined_run_populates_metrics(self):
        rec = Recorder()
        result = run_wavepipe(
            make_rc(), 10e-6, scheme="combined", threads=3, instrument=rec
        )
        m = result.metrics
        assert m.is_pipelined and m.scheme == "combined" and m.threads == 3
        assert m.stages == result.stats.clock.stages
        assert m.virtual_work == pytest.approx(result.stats.clock.virtual_work)
        assert 0.0 < m.stage_utilization <= 1.0
        assert m.accepted_points == result.stats.accepted_points

    def test_metrics_without_recorder(self):
        result = run_transient(make_rc(), 10e-6)
        assert result.metrics is not None
        assert result.metrics.counters == {}

    def test_summary_text(self):
        m = RunMetrics(
            scheme="combined",
            threads=4,
            accepted_points=100,
            rejected_points=10,
            newton_iterations=250,
            stages=40,
            virtual_work=50.0,
            serial_work=120.0,
        )
        text = m.summary()
        assert "combined x4" in text
        assert "2.50 per accepted point" in text
        assert "9.1% reject rate" in text
        assert "stage utilization" in text

    def test_to_dict_json_safe(self):
        rec = Recorder()
        result = run_wavepipe(
            make_rc(), 10e-6, scheme="backward", threads=2, instrument=rec
        )
        dumped = json.dumps(result.metrics.to_dict())
        loaded = json.loads(dumped)
        assert loaded["scheme"] == "backward"
        assert "stage_utilization" in loaded


class TestEngineWiring:
    def test_compare_with_sequential_metric_deltas(self):
        rec = Recorder()
        report = compare_with_sequential(
            make_rc(), 10e-6, scheme="combined", threads=3, instrument=rec
        )
        delta = report.metrics_delta()
        seq_pts, pipe_pts = delta["accepted_points"]
        assert seq_pts == report.sequential.stats.accepted_points
        assert pipe_pts == report.pipelined.stats.accepted_points
        assert "iters/pt" in report.summary()

    def test_trace_covers_both_schedulers_and_workers(self):
        rec = Recorder()
        run_wavepipe(make_rc(), 10e-6, scheme="combined", threads=3, instrument=rec)
        names = {ev.name for ev in rec.events}
        assert "stage_run" in names
        assert "stage_task" in names
        assert "step_accept" in names
        assert 0 in rec.lanes  # scheduler lane
        assert any(lane >= 1 for lane in rec.lanes)  # worker lanes

    def test_global_recorder_backs_unthreaded_calls(self):
        rec = Recorder(capture_events=False)
        with use_recorder(rec):
            run_transient(make_rc(), 10e-6)
        assert rec.counter("points.accepted") > 0
        assert rec.counter("newton.solves") > 0

    def test_instrument_roundtrips_through_options(self):
        rec = Recorder()
        opts = SimOptions(reltol=1e-4)
        result = run_transient(make_rc(), 10e-6, options=opts, instrument=rec)
        assert result.stats.accepted_points > 0
        assert rec.counter("points.accepted") == result.stats.accepted_points

    def test_null_recorder_leaves_no_trace(self):
        result = run_transient(make_rc(), 10e-6)
        assert get_recorder() is NULL_RECORDER
        assert result.metrics.counters == {}


class TestCli:
    def run_cli(self, tmp_path, capsys, extra):
        deck = tmp_path / "rc.cir"
        deck.write_text(
            "rc deck\n"
            "V1 in 0 PULSE(0 1 1n 1p 1p 1m 2m)\n"
            "R1 in out 1k\n"
            "C1 out 0 1n\n"
            ".tran 0.1u 10u\n"
            ".end\n"
        )
        from repro.cli import main

        code = main([str(deck), "--samples", "3", *extra])
        assert code == 0
        return capsys.readouterr().out

    def test_metrics_flag_prints_summary(self, tmp_path, capsys):
        out = self.run_cli(tmp_path, capsys, ["--metrics"])
        assert "run metrics (sequential)" in out

    def test_trace_flag_writes_chrome_json(self, tmp_path, capsys):
        trace = tmp_path / "trace.json"
        out = self.run_cli(
            tmp_path,
            capsys,
            ["--wavepipe", "combined", "--threads", "3", "--trace", str(trace)],
        )
        assert "chrome trace written" in out
        doc = json.loads(trace.read_text())
        tids = {e["tid"] for e in doc["traceEvents"]}
        assert 0 in tids and len(tids) >= 2
