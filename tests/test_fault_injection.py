"""Failure-path coverage: the engine must fail loudly and usefully.

Production simulators spend much of their code on *diagnosing* bad input:
singular matrices must name the suspect unknown, unsolvable time steps
must say so instead of spinning, and concurrent pipelines must propagate
failures rather than deadlock or silently drop points.
"""

import numpy as np
import pytest

from repro.circuit.circuit import Circuit
from repro.circuit.sources import Dc, Pulse, Sin
from repro.core.wavepipe import run_wavepipe
from repro.engine.transient import run_transient
from repro.errors import (
    CircuitError,
    ConvergenceError,
    SimulationError,
    TimestepError,
)
from repro.mna.compiler import compile_circuit
from repro.mna.system import MnaSystem
from repro.solver.dcop import solve_operating_point
from repro.utils.options import SimOptions


class TestStructuralFaults:
    def test_floating_island_reported(self):
        c = Circuit("island")
        c.add_vsource("V1", "a", "0", Dc(1.0))
        c.add_resistor("R1", "a", "0", 1e3)
        c.add_resistor("R2", "x", "y", 1e3)  # disconnected pair
        with pytest.raises(CircuitError, match="no DC path"):
            compile_circuit(c)

    def test_inductor_vsource_loop_reported(self):
        # At DC an inductor shorts: V1 || L1 is a voltage-source loop in
        # disguise, but structurally it IS solvable (branch currents soak
        # it up) — verify the engine handles it without dying.
        c = Circuit("l-loop")
        c.add_vsource("V1", "a", "0", Dc(1.0))
        c.add_inductor("L1", "a", "0", 1e-6)
        compiled = compile_circuit(c)
        op = solve_operating_point(MnaSystem(compiled))
        assert np.all(np.isfinite(op.x))

    def test_two_vsources_on_same_nodes_rejected(self):
        c = Circuit("v-loop")
        c.add_vsource("V1", "a", "0", Dc(1.0))
        c.add_vsource("V2", "a", "0", Dc(2.0))
        with pytest.raises(CircuitError, match="loop"):
            compile_circuit(c)


class TestNumericalFaults:
    def test_impossible_tolerance_raises_timestep_error(self):
        c = Circuit("t")
        c.add_vsource("V1", "a", "0", Sin(0.0, 1.0, 1e6))
        c.add_resistor("R1", "a", "b", 1e3)
        c.add_capacitor("C1", "b", "0", 1e-9)
        options = SimOptions(
            lte_reltol=1e-16, lte_abstol=1e-19, trtol=1.0, min_step_fraction=1e-6
        )
        with pytest.raises(TimestepError, match="underflow"):
            run_transient(c, 1e-5, options=options)

    def test_dc_failure_raises_convergence_error(self):
        c = Circuit("hard")
        c.add_vsource("V1", "in", "0", Dc(100.0))
        c.add_resistor("R1", "in", "a", 1e-3)
        c.add_diode("D1", "a", "0")
        options = SimOptions(max_newton_iters=2, gmin_steps=2, source_steps=2)
        with pytest.raises(ConvergenceError) as info:
            run_transient(c, 1e-9, options=options)
        assert info.value.iterations is not None

    def test_wavepipe_propagates_timestep_error(self):
        c = Circuit("t")
        c.add_vsource("V1", "a", "0", Sin(0.0, 1.0, 1e6))
        c.add_resistor("R1", "a", "b", 1e3)
        c.add_capacitor("C1", "b", "0", 1e-9)
        options = SimOptions(
            lte_reltol=1e-16, lte_abstol=1e-19, trtol=1.0, min_step_fraction=1e-6
        )
        for scheme in ("backward", "forward", "combined"):
            with pytest.raises(TimestepError):
                run_wavepipe(c, 1e-5, scheme=scheme, threads=3, options=options)

    def test_thread_executor_propagates_errors_too(self):
        c = Circuit("t")
        c.add_vsource("V1", "a", "0", Sin(0.0, 1.0, 1e6))
        c.add_resistor("R1", "a", "b", 1e3)
        c.add_capacitor("C1", "b", "0", 1e-9)
        options = SimOptions(
            lte_reltol=1e-16, lte_abstol=1e-19, trtol=1.0, min_step_fraction=1e-6
        )
        with pytest.raises(TimestepError):
            run_wavepipe(
                c, 1e-5, scheme="backward", threads=3,
                options=options, executor="thread",
            )


class TestRobustRecovery:
    def test_stiff_diode_switching_completes(self):
        """Severe stiffness: microsecond RC against nanosecond diode
        switching; the controller must shrink through the corners and
        recover, not die."""
        c = Circuit("stiff")
        c.add_vsource(
            "V1", "in", "0",
            Pulse(-5.0, 5.0, delay=1e-7, rise=1e-10, fall=1e-10, width=2e-7, period=5e-7),
        )
        c.add_resistor("R1", "in", "a", 10.0)
        c.add_diode("D1", "a", "out")
        c.add_capacitor("C1", "out", "0", 1e-6)
        c.add_resistor("RL", "out", "0", 1e5)
        result = run_transient(c, 2e-6)
        assert result.final_time == pytest.approx(2e-6, rel=1e-9)
        out = result.waveforms.voltage("out")
        assert out.values.max() < 5.1  # clamped by physics

    def test_huge_supply_converges_with_damping(self):
        c = Circuit("hv")
        c.add_vsource("V1", "in", "0", Dc(1000.0))
        c.add_resistor("R1", "in", "a", 1e5)
        c.add_diode("D1", "a", "0")
        compiled = compile_circuit(c)
        op = solve_operating_point(MnaSystem(compiled))
        a = op.x[compiled.node_voltage_index("a")]
        assert 0.6 < a < 1.1  # ~10 mA through the junction

    def test_zero_interval_rejected(self, rc_circuit):
        with pytest.raises((TimestepError, SimulationError)):
            run_transient(rc_circuit, 0.0)

    def test_wavepipe_stats_consistent_after_heavy_rejection(self):
        """A rejection-storm workload must keep the books balanced."""
        from repro.circuits.digital import ring_oscillator

        pipe = run_wavepipe(ring_oscillator(3), 10e-9, scheme="combined", threads=4)
        stats = pipe.stats
        assert stats.virtual_total <= stats.serial_total + 1e-9
        assert stats.wasted_solves >= 0
        assert stats.accepted_points == len(pipe.times) - 1
        assert np.all(np.diff(pipe.times) > 0)
