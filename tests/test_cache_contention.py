"""ResultCache under multi-node contention (satellite 3).

Two real processes race to publish the same spec's result while readers
poll concurrently: the content-addressed atomic-rename protocol must
leave exactly one canonical entry and never expose a partial read.  The
corrupt-entry eviction path is exercised end to end through a FarmNode.
"""

import json
import subprocess
import sys
import textwrap
import threading
from pathlib import Path

from repro.jobs.cache import ResultCache
from repro.jobs.spec import CircuitRef, JobSpec
from repro.jobs.workers import execute_job
from repro.service.node import RESULTS_DIR, FarmNode
from repro.service.queue import JobQueue

DECK = """rc lowpass
V1 in 0 SIN(0 1 1k)
R1 in out 1k
C1 out 0 1u
.tran 10u 1m
.end
"""


def rc_spec(label="rc") -> JobSpec:
    return JobSpec(circuit=CircuitRef(kind="netlist", netlist=DECK), label=label)


WRITER_SCRIPT = textwrap.dedent(
    """
    import json, sys
    from repro.jobs.cache import ResultCache
    from repro.jobs.spec import JobSpec
    from repro.jobs.workers import execute_job

    cache_dir, spec_json, rounds = sys.argv[1], sys.argv[2], int(sys.argv[3])
    spec = JobSpec.from_dict(json.loads(spec_json))
    result = execute_job(spec)          # deterministic: same bytes everywhere
    cache = ResultCache(cache_dir)
    for _ in range(rounds):
        cache.put(result)
    print(cache.path(spec.content_hash()).read_bytes().hex()[:16])
    """
)


def spawn_writer(cache_dir, spec, rounds=40) -> subprocess.Popen:
    return subprocess.Popen(
        [sys.executable, "-c", WRITER_SCRIPT, str(cache_dir),
         json.dumps(spec.to_dict()), str(rounds)],
        env={"PYTHONPATH": "src", "PATH": "/usr/bin:/bin"},
        cwd=Path(__file__).resolve().parent.parent,
        stdout=subprocess.PIPE,
        text=True,
    )


class TestPublishRace:
    def test_two_nodes_racing_leave_one_canonical_entry(self, tmp_path):
        spec = rc_spec()
        cache_dir = tmp_path / "results"
        expected = execute_job(spec)
        cache = ResultCache(cache_dir)

        torn = []
        stop = threading.Event()

        def reader() -> None:
            # a concurrent reader must only ever see nothing or a full,
            # valid entry — never a torn intermediate state
            while not stop.is_set():
                result = cache.get(spec.content_hash())
                if result is None:
                    continue
                if result.to_dict() != expected.to_dict():
                    torn.append(result)

        threads = [threading.Thread(target=reader) for _ in range(2)]
        for thread in threads:
            thread.start()
        writers = [spawn_writer(cache_dir, spec) for _ in range(2)]
        outputs = [w.communicate(timeout=120)[0].strip() for w in writers]
        stop.set()
        for thread in threads:
            thread.join(timeout=10)

        assert all(w.returncode == 0 for w in writers)
        assert not torn, f"reader saw {len(torn)} torn/partial entries"
        # exactly one canonical entry; both writers observed the same bytes
        entries = sorted(cache_dir.glob("*"))
        assert [e.name for e in entries] == [f"{spec.content_hash()}.json"]
        assert outputs[0] == outputs[1]
        stored = cache.get(spec.content_hash())
        assert stored.to_dict() == expected.to_dict()

    def test_put_is_byte_stable_across_processes(self, tmp_path):
        spec = rc_spec()
        local = ResultCache(tmp_path / "local")
        local.put(execute_job(spec))
        remote_dir = tmp_path / "remote"
        writer = spawn_writer(remote_dir, spec, rounds=1)
        writer.communicate(timeout=120)
        assert writer.returncode == 0
        local_bytes = local.path(spec.content_hash()).read_bytes()
        remote_bytes = (remote_dir / f"{spec.content_hash()}.json").read_bytes()
        assert local_bytes == remote_bytes


class TestCorruptEntryEviction:
    def test_torn_entry_is_evicted_and_rerun_by_farm_node(self, tmp_path):
        root = tmp_path / "farm"
        spec = rc_spec()
        queue = JobQueue(root)
        queue.submit(spec)
        FarmNode(root, node_id="alpha").run(drain=True)
        path = root / RESULTS_DIR / f"{spec.content_hash()}.json"
        clean = path.read_bytes()

        # simulate a torn write from a hard kill predating the rename
        path.write_bytes(clean[: len(clean) // 2])

        # resubmitting a done job dedups, so start a fresh queue over the
        # same (corrupted) cache; the node evicts the torn entry, reruns,
        # and republishes identical bytes
        (root / "queue.json").unlink()
        JobQueue(root).submit(spec)
        FarmNode(root, node_id="beta").run(drain=True)
        assert path.read_bytes() == clean

    def test_get_evicts_unparseable_entry(self, tmp_path):
        cache = ResultCache(tmp_path)
        spec = rc_spec()
        path = cache.path(spec.content_hash())
        path.write_text("{not json", encoding="utf-8")
        assert cache.get(spec.content_hash()) is None
        assert not path.exists()
