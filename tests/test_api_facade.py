"""The unified ``simulate()`` facade: dispatch, validation, shims.

``repro.simulate`` fronts all five analyses behind one signature; the
historical entry points survive as :class:`DeprecationWarning` shims.
These tests exercise every dispatch arm on tiny circuits, the
construction-time validation of :class:`AnalysisRequest`, and the
delegation surface of :class:`AnalysisResult`.
"""

import numpy as np
import pytest

import repro
from repro import AnalysisRequest, AnalysisResult, simulate
from repro.api import ANALYSES, run_request
from repro.circuit.circuit import Circuit
from repro.circuit.sources import Pulse
from repro.errors import SimulationError


def _rc(r=1e3):
    circuit = Circuit("facade-rc")
    circuit.add_vsource(
        "V1", "in", "0", Pulse(0.0, 1.0, delay=1e-6, rise=1e-12, width=1.0)
    )
    circuit.add_resistor("R1", "in", "out", r)
    circuit.add_capacitor("C1", "out", "0", 1e-9)
    return circuit


class TestSimulateDispatch:
    def test_transient(self):
        res = simulate(_rc(), analysis="transient", tstop=8e-6)
        assert isinstance(res, AnalysisResult)
        assert res.analysis == "transient"
        assert res.waveforms.voltage("out").final_value() == pytest.approx(1.0, abs=1e-3)
        assert res.stats.accepted_points > 0
        # analysis-specific attributes pass through to the raw result
        assert len(res.times) == res.stats.accepted_points + 1

    def test_transient_is_default_analysis(self):
        res = simulate(_rc(), tstop=8e-6)
        assert res.analysis == "transient"

    def test_wavepipe(self):
        res = simulate(
            _rc(), analysis="wavepipe", tstop=8e-6, scheme="backward", threads=2
        )
        assert res.analysis == "wavepipe"
        assert res.waveforms.voltage("out").final_value() == pytest.approx(1.0, abs=1e-3)
        assert res.metrics is not None and res.metrics.threads == 2

    def test_dc(self, divider_circuit):
        res = simulate(
            divider_circuit, analysis="dc", source="V1", values=np.linspace(0, 10, 11)
        )
        # DC sweeps expose their curves through the shared waveforms view
        assert res.waveforms is res.curves
        assert res.curves.voltage("mid").values[-1] == pytest.approx(7.5)

    def test_ac(self):
        res = simulate(
            _rc(), analysis="ac", source="V1", freqs=np.logspace(3, 7, 30)
        )
        fc = res.corner_frequency("v(out)")
        assert fc == pytest.approx(1 / (2 * np.pi * 1e3 * 1e-9), rel=0.15)

    def test_sweep(self):
        res = simulate(
            analysis="sweep",
            parameter="R",
            values=[500.0, 1e3],
            metrics={"v_final": lambda r: r.waveforms.voltage("out").final_value()},
            tstop=20e-6,
            circuit_factory=_rc,
        )
        np.testing.assert_allclose(res.column("v_final"), 1.0, atol=1e-3)

    def test_run_request_equivalent(self):
        request = AnalysisRequest(analysis="transient", circuit=_rc(), tstop=8e-6)
        res = run_request(request)
        assert res.request is request
        assert res.stats.accepted_points > 0


class TestRequestValidation:
    def test_unknown_analysis(self):
        with pytest.raises(SimulationError, match="unknown analysis"):
            simulate(_rc(), analysis="noise", tstop=1e-6)

    def test_unknown_extra_keyword(self):
        with pytest.raises(SimulationError, match="unexpected keyword"):
            simulate(_rc(), analysis="transient", tstop=1e-6, freqs=[1.0])

    def test_missing_tstop(self):
        for analysis in ("transient", "wavepipe"):
            with pytest.raises(SimulationError, match="tstop"):
                simulate(_rc(), analysis=analysis)

    def test_missing_circuit(self):
        with pytest.raises(SimulationError, match="circuit"):
            simulate(analysis="transient", tstop=1e-6)

    def test_dc_needs_source_and_values(self):
        with pytest.raises(SimulationError, match="source"):
            simulate(_rc(), analysis="dc", values=[1.0])
        with pytest.raises(SimulationError, match="values"):
            simulate(_rc(), analysis="dc", source="V1")

    def test_ac_needs_freqs(self):
        with pytest.raises(SimulationError, match="freqs"):
            simulate(_rc(), analysis="ac", source="V1")

    def test_sweep_needs_its_keywords(self):
        with pytest.raises(SimulationError, match="circuit"):
            simulate(analysis="sweep", tstop=1e-6, parameter="R",
                     values=[1.0], metrics={"m": lambda r: 0.0})
        with pytest.raises(SimulationError, match="parameter"):
            simulate(analysis="sweep", tstop=1e-6, circuit_factory=_rc,
                     values=[1.0], metrics={"m": lambda r: 0.0})

    def test_bad_threads(self):
        with pytest.raises(SimulationError, match="threads"):
            simulate(_rc(), analysis="wavepipe", tstop=1e-6, threads=0)

    def test_analyses_tuple_is_complete(self):
        assert ANALYSES == (
            "transient", "wavepipe", "dc", "ac", "sweep", "ensemble", "wtm"
        )


class TestDeprecatedShims:
    """Old entry points still work, flagged with DeprecationWarning."""

    def test_run_transient_shim(self):
        with pytest.deprecated_call(match="run_transient.*deprecated"):
            result = repro.run_transient(_rc(), 8e-6)
        assert result.waveforms.voltage("out").final_value() == pytest.approx(1.0, abs=1e-3)

    def test_run_wavepipe_shim(self):
        with pytest.deprecated_call(match="run_wavepipe.*deprecated"):
            result = repro.run_wavepipe(_rc(), 8e-6, scheme="backward", threads=2)
        assert result.stats.accepted_points > 0

    def test_dc_sweep_shim(self, divider_circuit):
        with pytest.deprecated_call(match="dc_sweep.*deprecated"):
            result = repro.dc_sweep(divider_circuit, "V1", [0.0, 10.0])
        assert result.curves.voltage("mid").values[-1] == pytest.approx(7.5)

    def test_ac_analysis_shim(self):
        with pytest.deprecated_call(match="ac_analysis.*deprecated"):
            result = repro.ac_analysis(_rc(), "V1", np.logspace(3, 6, 10))
        assert "v(out)" in result.transfer

    def test_sweep_shim(self):
        with pytest.deprecated_call(match="sweep.*deprecated"):
            result = repro.sweep(
                "R", [1e3],
                metrics={"v": lambda r: r.waveforms.voltage("out").final_value()},
                tstop=8e-6, circuit_factory=_rc,
            )
        assert result.column("v")[0] == pytest.approx(1.0, abs=1e-3)

    def test_simulate_emits_no_warning(self):
        import warnings

        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            simulate(_rc(), analysis="transient", tstop=2e-6)


def _single_deprecation(func, *args, **kwargs):
    """Call *func*, asserting it emits exactly one DeprecationWarning."""
    import warnings

    with warnings.catch_warnings(record=True) as caught:
        warnings.simplefilter("always")
        result = func(*args, **kwargs)
    deprecations = [w for w in caught if issubclass(w.category, DeprecationWarning)]
    assert len(deprecations) == 1, (
        f"{func.__name__} emitted {len(deprecations)} DeprecationWarnings, expected 1"
    )
    return result


def _assert_same_waveforms(a, b):
    np.testing.assert_array_equal(a.times, b.times)
    assert a.names == b.names
    for name in a.names:
        np.testing.assert_array_equal(a[name].values, b[name].values)


class TestShimFacadeParity:
    """Each legacy entry point warns exactly once and returns a result
    identical to the simulate() facade (same engines, same numbers)."""

    def test_run_transient(self):
        shim = _single_deprecation(repro.run_transient, _rc(), 8e-6)
        facade = simulate(_rc(), analysis="transient", tstop=8e-6)
        _assert_same_waveforms(shim.waveforms, facade.waveforms)
        assert shim.stats.accepted_points == facade.stats.accepted_points

    def test_run_wavepipe(self):
        shim = _single_deprecation(
            repro.run_wavepipe, _rc(), 8e-6, scheme="combined", threads=3
        )
        facade = simulate(
            _rc(), analysis="wavepipe", tstop=8e-6, scheme="combined", threads=3
        )
        _assert_same_waveforms(shim.waveforms, facade.waveforms)
        assert shim.stats.accepted_points == facade.stats.accepted_points

    def test_dc_sweep(self, divider_circuit):
        values = np.linspace(0.0, 10.0, 11)
        shim = _single_deprecation(repro.dc_sweep, divider_circuit, "V1", values)
        facade = simulate(divider_circuit, analysis="dc", source="V1", values=values)
        for name in shim.curves.names:
            np.testing.assert_array_equal(
                shim.curves[name].values, facade.curves[name].values
            )

    def test_ac_analysis(self):
        freqs = np.logspace(3, 6, 7)
        shim = _single_deprecation(repro.ac_analysis, _rc(), "V1", freqs)
        facade = simulate(_rc(), analysis="ac", source="V1", freqs=freqs)
        assert set(shim.transfer) == set(facade.transfer)
        for name in shim.transfer:
            np.testing.assert_array_equal(shim.transfer[name], facade.transfer[name])

    def test_sweep(self):
        metrics = {"v": lambda r: r.waveforms.voltage("out").final_value()}
        shim = _single_deprecation(
            repro.sweep, "R", [0.5e3, 2e3], metrics,
            tstop=8e-6, circuit_factory=_rc,
        )
        facade = simulate(
            analysis="sweep", parameter="R", values=[0.5e3, 2e3],
            metrics=metrics, tstop=8e-6, circuit_factory=_rc,
        )
        np.testing.assert_array_equal(shim.column("v"), facade.column("v"))


class TestAnalysisResultSurface:
    def test_getattr_delegates_and_fails_cleanly(self):
        res = simulate(_rc(), analysis="transient", tstop=2e-6)
        assert res.step_sizes is res.raw.step_sizes
        with pytest.raises(AttributeError):
            res.nonexistent_attribute
        with pytest.raises(AttributeError):
            res._private

    def test_stats_none_when_raw_has_none(self):
        res = simulate(
            _rc(), analysis="ac", source="V1", freqs=np.logspace(3, 6, 5)
        )
        assert res.stats is None
