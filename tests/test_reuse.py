"""Factorisation-reuse fast path: equivalence, boundaries, invalidation.

The fast path (``SimOptions.jacobian_reuse``) bundles three levers —
static linear-device stamps, in-place Jacobian assembly and the
modified-Newton factor bypass. These tests pin down its contract:

* reuse-off is the reference; reuse-on must reproduce it bit-for-bit on
  linear circuits and within solver tolerance on nonlinear ones,
* the dense/sparse split at ``DENSE_CUTOFF`` keeps its counter semantics
  (dense never "refactors"; sparse same-pattern factorisations do),
* cached factors never leak across Jacobian patterns,
* the ``lu.*`` counters surface through the instrumentation layer.
"""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.circuits.registry import get_benchmark
from repro.engine.transient import run_transient
from repro.errors import SingularMatrixError
from repro.instrument import Recorder
from repro.linalg.solve import DENSE_CUTOFF, LinearSolver
from repro.mna.compiler import compile_circuit
from repro.mna.system import MnaSystem
from repro.utils.options import SimOptions
from repro.waveform.waveform import compare, worst_deviation

#: Same ceiling as the Table R9 benchmark: generous vs the measured
#: worst case (~7e-3 on lcosc), far below a wrong waveform.
DEV_TOL = 2e-2

LINEAR = ["rcladder20", "powergrid6x6", "rlcline8"]
NONLINEAR = ["ring5", "rectifier", "lcosc"]


def _run_pair(name):
    """Run one registry circuit with the fast path off, then on."""
    bench = get_benchmark(name)
    compiled = compile_circuit(bench.build(), bench.options)
    off = run_transient(
        compiled, bench.tstop, tstep=bench.tstep,
        options=bench.options.replace(jacobian_reuse=False),
    )
    on = run_transient(
        compiled, bench.tstop, tstep=bench.tstep,
        options=bench.options.replace(jacobian_reuse=True),
    )
    return bench, off, on


class TestWaveformEquivalence:
    @pytest.mark.parametrize("name", LINEAR)
    def test_linear_circuits_bit_identical(self, name):
        # Linear circuits converge in one exact Newton step, so a reused
        # factorisation yields the *same* solve — time grid and every
        # accepted sample must match exactly, not just within tolerance.
        bench, off, on = self._pair = _run_pair(name)
        assert on.stats.lu_reuse_hits > 0
        assert np.array_equal(off.times, on.times)
        for signal in off.waveforms.names:
            assert np.array_equal(
                off.waveforms[signal].values, on.waveforms[signal].values
            ), f"{name}: {signal} diverged under factor reuse"

    @pytest.mark.parametrize("name", NONLINEAR)
    def test_nonlinear_circuits_within_tolerance(self, name):
        # Stale factors change the Newton *iterates* (and hence the step
        # controller's path), so equality is not expected — but accepted
        # waveforms must stay within solver tolerance of the reference.
        bench, off, on = _run_pair(name)
        assert on.stats.lu_reuse_hits > 0
        worst = worst_deviation(
            compare(off.waveforms, on.waveforms, names=list(bench.signals))
        )
        assert worst is not None
        assert worst.max_relative <= DEV_TOL, (
            f"{name}: {worst.name} deviates {worst.max_relative:.2e} "
            f"with jacobian_reuse on"
        )

    def test_reuse_off_performs_no_bypass(self):
        bench, off, on = _run_pair("rcladder20")
        assert off.stats.lu_reuse_hits == 0
        assert off.stats.bypass_fallbacks == 0
        # Reuse strictly reduces factorisation work on a linear circuit.
        assert on.stats.lu_factors + on.stats.lu_refactors < off.stats.lu_factors


def _random_system(n, seed=0):
    """Well-conditioned random test matrix (diagonally dominant) + rhs."""
    rng = np.random.default_rng(seed)
    dense = rng.standard_normal((n, n))
    dense += n * np.eye(n)
    return sp.csc_matrix(dense), rng.standard_normal(n)


class TestDenseCutoffBoundary:
    @pytest.mark.parametrize("n", [DENSE_CUTOFF - 1, DENSE_CUTOFF])
    def test_dense_path_never_refactors(self, n):
        matrix, rhs = _random_system(n)
        solver = LinearSolver()
        x1 = solver.solve(matrix, rhs)
        x2 = solver.solve(matrix, rhs)
        assert solver.factor_count == 2
        assert solver.refactor_count == 0
        assert np.allclose(x1, np.linalg.solve(matrix.toarray(), rhs))
        assert np.array_equal(x1, x2)

    def test_sparse_path_refactors_same_pattern(self):
        n = DENSE_CUTOFF + 1
        matrix, rhs = _random_system(n)
        solver = LinearSolver()
        x1 = solver.solve(matrix, rhs)
        assert (solver.factor_count, solver.refactor_count) == (1, 0)
        # Same CSC indices object -> symbolic ordering is reused and the
        # second factorisation books as numeric-only.
        matrix.data *= 2.0
        x2 = solver.solve(matrix, rhs)
        assert (solver.factor_count, solver.refactor_count) == (1, 1)
        assert np.allclose(x1, np.linalg.solve(matrix.toarray() / 2.0, rhs))
        assert np.allclose(x2, np.linalg.solve(matrix.toarray(), rhs))

    def test_sparse_fresh_pattern_is_full_factorisation(self):
        n = DENSE_CUTOFF + 1
        matrix, rhs = _random_system(n)
        solver = LinearSolver()
        solver.solve(matrix, rhs)
        other, _ = _random_system(n, seed=1)
        solver.solve(other, rhs)
        assert (solver.factor_count, solver.refactor_count) == (2, 0)


class TestKeyedReuse:
    def test_matches_and_reuse_counters(self):
        matrix, rhs = _random_system(8)
        solver = LinearSolver()
        key = ("pattern", 1e9, 1e-12)
        solver.factor(matrix, key=key)
        assert solver.matches(key)
        assert not solver.matches(("pattern", 2e9, 1e-12))
        assert not solver.matches(None)

        direct = solver.resolve(rhs)
        reused = solver.solve_reused(rhs)
        assert np.array_equal(direct, reused)
        assert solver.solve_count == 2
        assert solver.reuse_hits == 1

    def test_invalidate_drops_factors(self):
        matrix, rhs = _random_system(8)
        solver = LinearSolver()
        solver.factor(matrix, key="k")
        solver.invalidate()
        assert not solver.matches("k")
        with pytest.raises(SingularMatrixError):
            solver.solve_reused(rhs)

    def test_pattern_identity_invalidates_across_systems(self, rc_circuit,
                                                         divider_circuit):
        # Two different circuits produce distinct JacobianPattern objects;
        # factors keyed under one must never satisfy a lookup for the other,
        # even at identical alpha0/gshunt.
        sys_a = MnaSystem(compile_circuit(rc_circuit, SimOptions()))
        sys_b = MnaSystem(compile_circuit(divider_circuit, SimOptions()))
        out = sys_a.make_buffers(fast_path=True)
        x = np.zeros(sys_a.n)
        sys_a.eval(x, 0.0, out)
        jac = sys_a.jacobian(out, alpha0=1e6)

        solver = LinearSolver(sys_a.unknown_names)
        alpha0, gshunt = 1e6, sys_a.gshunt
        solver.factor(jac, key=(sys_a.pattern, alpha0, gshunt))
        assert solver.matches((sys_a.pattern, alpha0, gshunt))
        assert not solver.matches((sys_b.pattern, alpha0, gshunt))
        assert not solver.matches((sys_a.pattern, 2e6, gshunt))


class TestInstrumentation:
    def test_lu_counters_reach_recorder(self):
        bench = get_benchmark("rcladder20")
        rec = Recorder()
        result = run_transient(
            bench.build(), bench.tstop, tstep=bench.tstep,
            options=bench.options.replace(jacobian_reuse=True),
            instrument=rec,
        )
        assert result.stats.lu_reuse_hits > 0
        assert rec.counter("lu.factor") > 0
        assert rec.counter("lu.solve") > 0
        assert rec.counter("lu.reuse_hit") == result.stats.lu_reuse_hits
        assert rec.counter("lu.solve") >= rec.counter("lu.reuse_hit")

    def test_metrics_report_hit_rate(self):
        from repro.instrument.metrics import RunMetrics

        bench = get_benchmark("rcladder20")
        result = run_transient(
            bench.build(), bench.tstop, tstep=bench.tstep,
            options=bench.options.replace(jacobian_reuse=True),
        )
        metrics = RunMetrics.from_stats(result.stats)
        assert metrics.lu_reuse_hits == result.stats.lu_reuse_hits
        assert 0.0 < metrics.reuse_hit_rate <= 1.0
        payload = metrics.to_dict()
        assert payload["lu_reuse_hits"] == result.stats.lu_reuse_hits
        assert payload["reuse_hit_rate"] == metrics.reuse_hit_rate
        assert "lu:" in metrics.summary()
