"""Perf trending: baseline canonicalization and regression diffs."""

import json

import pytest

from repro.cli import main
from repro.instrument.perf import (
    BENEFIT_CHANNELS,
    build_baseline,
    channel_of,
    diff_against_baseline,
    load_baseline,
    write_baseline,
)


R9_HIST = {
    "step.h_accepted": {
        "count": 200,
        "total": 2e-4,
        "mean": 1e-6,
        "min": 5e-7,
        "max": 2e-6,
        "buckets": {"-21": 120, "-20": 80},
    }
}


def dump_metrics(directory, exp_id, counters, histograms=None, title=None):
    payload = {
        "exp_id": exp_id,
        "title": title or exp_id,
        "counters": dict(counters),
        "histograms": histograms or {},
    }
    path = directory / f"BENCH_METRICS_{exp_id}.json"
    path.write_text(json.dumps(payload, indent=2, sort_keys=True), encoding="utf-8")
    return path


@pytest.fixture
def metrics_dir(tmp_path):
    directory = tmp_path / "bench"
    directory.mkdir()
    dump_metrics(
        directory,
        "table_r9_smoke",
        {"newton.iterations": 1000, "lu.reuse_hit": 400, "points.accepted": 200},
        histograms=R9_HIST,
    )
    dump_metrics(directory, "table_r10_smoke", {"jobs.completed": 4})
    return directory


class TestBaseline:
    def test_build_write_load_roundtrip(self, metrics_dir, tmp_path):
        baseline = build_baseline(metrics_dir)
        assert set(baseline["experiments"]) == {"table_r9_smoke", "table_r10_smoke"}
        exp = baseline["experiments"]["table_r9_smoke"]
        assert exp["counters"]["newton.iterations"] == 1000.0
        assert exp["histograms"]["step.h_accepted"] == {"count": 200, "mean": 1e-6}
        path = write_baseline(baseline, tmp_path / "BENCH_BASELINE.json")
        assert load_baseline(path) == baseline

    def test_baseline_bytes_are_deterministic(self, metrics_dir, tmp_path):
        a = write_baseline(build_baseline(metrics_dir), tmp_path / "a.json")
        b = write_baseline(build_baseline(metrics_dir), tmp_path / "b.json")
        assert a.read_bytes() == b.read_bytes()

    def test_wrong_version_rejected(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text('{"version": 99, "experiments": {}}', encoding="utf-8")
        with pytest.raises(ValueError, match="version"):
            load_baseline(path)


class TestDiff:
    def test_identical_metrics_pass(self, metrics_dir):
        baseline = build_baseline(metrics_dir)
        diff = diff_against_baseline(baseline, metrics_dir)
        assert diff.passed
        assert diff.entries == []
        assert sorted(diff.compared) == ["table_r10_smoke", "table_r9_smoke"]
        assert "PASS" in diff.summary()

    def test_cost_metric_increase_regresses(self, metrics_dir):
        baseline = build_baseline(metrics_dir)
        dump_metrics(
            metrics_dir,
            "table_r10_smoke",
            {"jobs.completed": 4, "newton.iterations": 50},  # new work appears
        )
        dump_metrics(
            metrics_dir,
            "table_r9_smoke",
            {"newton.iterations": 1600, "lu.reuse_hit": 400, "points.accepted": 200},
            histograms=R9_HIST,
        )
        diff = diff_against_baseline(baseline, metrics_dir)
        assert not diff.passed
        regressed = {(e.exp_id, e.metric) for e in diff.regressions}
        assert ("table_r9_smoke", "counters.newton.iterations") in regressed
        assert "FAIL" in diff.summary()

    def test_benefit_metric_decrease_regresses(self, metrics_dir):
        baseline = build_baseline(metrics_dir)
        dump_metrics(
            metrics_dir,
            "table_r9_smoke",
            {"newton.iterations": 1000, "lu.reuse_hit": 100, "points.accepted": 200},
            histograms=R9_HIST,
        )
        diff = diff_against_baseline(baseline, metrics_dir)
        assert [e.metric for e in diff.regressions] == ["counters.lu.reuse_hit"]

    def test_benefit_metric_increase_is_improvement(self, metrics_dir):
        baseline = build_baseline(metrics_dir)
        dump_metrics(
            metrics_dir,
            "table_r9_smoke",
            {"newton.iterations": 1000, "lu.reuse_hit": 900, "points.accepted": 200},
            histograms=R9_HIST,
        )
        diff = diff_against_baseline(baseline, metrics_dir)
        assert diff.passed
        assert [e.metric for e in diff.improvements] == ["counters.lu.reuse_hit"]

    def test_within_tolerance_movement_ignored(self, metrics_dir):
        baseline = build_baseline(metrics_dir)
        dump_metrics(
            metrics_dir,
            "table_r9_smoke",
            {"newton.iterations": 1100, "lu.reuse_hit": 400, "points.accepted": 200},
            histograms=R9_HIST,
        )
        assert diff_against_baseline(baseline, metrics_dir, tolerance=0.25).passed
        assert not diff_against_baseline(baseline, metrics_dir, tolerance=0.05).passed

    def test_per_metric_tolerance_overrides(self, metrics_dir):
        baseline = build_baseline(metrics_dir)
        dump_metrics(
            metrics_dir,
            "table_r9_smoke",
            {"newton.iterations": 1500, "lu.reuse_hit": 400, "points.accepted": 200},
            histograms=R9_HIST,
        )
        loose = diff_against_baseline(
            baseline, metrics_dir, metric_tolerances={"newton.iterations": 0.6}
        )
        assert loose.passed
        exact_key = diff_against_baseline(
            baseline,
            metrics_dir,
            metric_tolerances={"counters.newton.iterations": 0.6},
        )
        assert exact_key.passed

    def test_missing_fresh_experiment_skipped(self, metrics_dir):
        baseline = build_baseline(metrics_dir)
        (metrics_dir / "BENCH_METRICS_table_r10_smoke.json").unlink()
        diff = diff_against_baseline(baseline, metrics_dir)
        assert diff.compared == ["table_r9_smoke"]
        assert diff.skipped == ["table_r10_smoke"]
        assert diff.passed

    def test_histogram_mean_shrink_regresses(self, metrics_dir):
        # step.h_accepted is a benefit channel: smaller mean accepted step
        # means more steps for the same window.
        baseline = build_baseline(metrics_dir)
        dump_metrics(
            metrics_dir,
            "table_r9_smoke",
            {"newton.iterations": 1000, "lu.reuse_hit": 400, "points.accepted": 200},
            histograms={"step.h_accepted": {"count": 200, "mean": 4e-7}},
        )
        diff = diff_against_baseline(baseline, metrics_dir)
        assert "histograms.step.h_accepted.mean" in [e.metric for e in diff.regressions]

    def test_channel_extraction(self):
        assert channel_of("counters.newton.iterations") == "newton.iterations"
        assert channel_of("histograms.step.h_accepted.mean") == "step.h_accepted"
        assert "lu.reuse_hit" in BENEFIT_CHANNELS


class TestPerfCli:
    def test_baseline_then_diff_passes(self, metrics_dir, tmp_path, capsys):
        out = tmp_path / "BENCH_BASELINE.json"
        assert main(
            ["perf", "baseline", "--metrics-dir", str(metrics_dir), "--out", str(out)]
        ) == 0
        assert out.exists()
        assert main(
            ["perf", "diff", "--metrics-dir", str(metrics_dir), "--baseline", str(out)]
        ) == 0
        assert "PASS" in capsys.readouterr().out

    def test_diff_fails_on_synthetic_regression(self, metrics_dir, tmp_path, capsys):
        out = tmp_path / "BENCH_BASELINE.json"
        main(["perf", "baseline", "--metrics-dir", str(metrics_dir), "--out", str(out)])
        dump_metrics(
            metrics_dir,
            "table_r9_smoke",
            {"newton.iterations": 9000, "lu.reuse_hit": 400, "points.accepted": 200},
            histograms=R9_HIST,
        )
        report = tmp_path / "diff.json"
        code = main(
            [
                "perf", "diff",
                "--metrics-dir", str(metrics_dir),
                "--baseline", str(out),
                "--json", str(report),
            ]
        )
        assert code == 1
        assert "FAIL" in capsys.readouterr().out
        data = json.loads(report.read_text())
        assert data["passed"] is False
        assert any(
            e["metric"] == "counters.newton.iterations" for e in data["regressions"]
        )

    def test_diff_tolerance_flags(self, metrics_dir, tmp_path):
        out = tmp_path / "BENCH_BASELINE.json"
        main(["perf", "baseline", "--metrics-dir", str(metrics_dir), "--out", str(out)])
        dump_metrics(
            metrics_dir,
            "table_r9_smoke",
            {"newton.iterations": 1500, "lu.reuse_hit": 400, "points.accepted": 200},
            histograms=R9_HIST,
        )
        argv = ["perf", "diff", "--metrics-dir", str(metrics_dir), "--baseline", str(out)]
        assert main(argv) == 1
        assert main(argv + ["--tolerance", "0.6"]) == 0
        assert main(argv + ["--metric-tolerance", "newton.iterations=0.6"]) == 0
        assert main(argv + ["--metric-tolerance", "bogus"]) == 2

    def test_diff_usage_errors(self, tmp_path, capsys):
        empty = tmp_path / "empty"
        empty.mkdir()
        assert main(["perf", "baseline", "--metrics-dir", str(empty)]) == 2
        assert (
            main(
                [
                    "perf", "diff",
                    "--metrics-dir", str(empty),
                    "--baseline", str(tmp_path / "missing.json"),
                ]
            )
            == 2
        )
        capsys.readouterr()

    def test_diff_with_no_overlap_is_an_error(self, metrics_dir, tmp_path, capsys):
        out = tmp_path / "BENCH_BASELINE.json"
        main(["perf", "baseline", "--metrics-dir", str(metrics_dir), "--out", str(out)])
        other = tmp_path / "other"
        other.mkdir()
        dump_metrics(other, "unrelated_exp", {"x": 1})
        assert main(
            ["perf", "diff", "--metrics-dir", str(other), "--baseline", str(out)]
        ) == 2
        capsys.readouterr()
