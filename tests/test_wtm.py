"""WTM coordinator: outer iterations, cost accounting, failure modes.

The reference implementation to beat — and to agree with — is the naive
:class:`repro.baselines.relaxation.WaveformRelaxation`: on the same cut
and the same exchange grid, both methods iterate to the same boundary
fixed point, so their converged waveforms must match to well below the
oracle's loose rung. The coordinator's additions (virtual-clock costing,
per-partition WavePipe pipelining, windowing, under-relaxation, chaos
compatibility) must not move the answer.
"""

import numpy as np
import pytest

from repro.baselines.relaxation import WaveformRelaxation
from repro.circuit.circuit import Circuit
from repro.circuit.sources import Pulse
from repro.circuits.multiblock import bridged_rc_blocks, mixed_rate_blocks
from repro.errors import ConvergenceError, SimulationError
from repro.partition import manifest_from_node_sets, partition_circuit, run_wtm
from repro.utils.options import SimOptions
from repro.verify.chaos import ChaosExecutor
from repro.waveform.waveform import compare, worst_deviation

TSTOP = 40e-9


def rc_bridge() -> Circuit:
    """Two pulsed RC blocks joined by a weak bridge (the canonical cut)."""
    c = Circuit("wtm-rc-bridge")
    c.add_vsource("V1", "a0", "0", Pulse(0.0, 1.0, delay=1e-9, rise=1e-9,
                                         fall=1e-9, width=8e-9, period=20e-9))
    c.add_resistor("R1", "a0", "a1", 1e3)
    c.add_capacitor("C1", "a1", "0", 1e-12)
    c.add_resistor("RBR", "a1", "b0", 2e5)
    c.add_resistor("R2", "b0", "b1", 1e3)
    c.add_capacitor("C2", "b1", "0", 1e-12)
    c.add_vsource("V2", "b2", "0", Pulse(0.0, 1.0, delay=11e-9, rise=1e-9,
                                         fall=1e-9, width=8e-9, period=20e-9))
    c.add_resistor("R3", "b2", "b1", 1e3)
    return c


NODE_SETS = [{"a0", "a1"}, {"b0", "b1", "b2"}]


class TestBaselineEquivalence:
    """WTM and the naive relaxation baseline share a fixed point."""

    def test_seidel_matches_relaxation_at_tight_tolerance(self):
        circuit = rc_bridge()
        grid_points = 400
        # Verification-grade block tolerances: at the default reltol the
        # two methods' step controllers place accepted points differently
        # around the pulse edges, and that legal LTE-scale divergence
        # (~1e-3) would swamp the fixed-point agreement under test.
        options = SimOptions(reltol=1e-5)
        manifest = manifest_from_node_sets(circuit, NODE_SETS)
        # wtm_tol one decade below the default: the residual floor set
        # by step-placement jitter sits just under 1e-4 at this reltol.
        wtm = run_wtm(
            circuit, TSTOP, manifest=manifest, mode="seidel",
            grid_points=grid_points, wtm_tol=1e-4, options=options,
        )
        wr = WaveformRelaxation(
            circuit, TSTOP, partition=NODE_SETS, mode="seidel",
            grid_points=grid_points, options=options,
        ).run(wr_vtol=1e-4)
        assert wtm.converged and wr.converged
        # Compare solved values at the baseline's own sample times (a
        # subset of the WTM grid, which additionally splices in Pulse
        # corners): evaluating anywhere else measures each grid's
        # piecewise-linear chord at the corners, not the solvers.
        times = wr.waveforms.times
        for node in ("a1", "b0", "b1"):
            a = wr.waveforms.voltage(node).values
            b = wtm.waveforms.voltage(node).at(times)
            scale = max(float(np.abs(a).max()), 1e-9)
            # Same engine, same cut, same fixed point: the gap sits
            # well below the loose classification rung.
            assert float(np.abs(a - b).max()) / scale < 5e-4, node

    def test_wtm_needs_no_more_sweeps_than_baseline(self):
        circuit = rc_bridge()
        manifest = manifest_from_node_sets(circuit, NODE_SETS)
        wtm = run_wtm(circuit, TSTOP, manifest=manifest, mode="seidel")
        wr = WaveformRelaxation(circuit, TSTOP, partition=NODE_SETS).run()
        assert wtm.converged and wr.converged
        assert wtm.outer_iterations <= wr.sweeps


class TestCostAccounting:
    def test_jacobi_virtual_below_serial(self):
        res = run_wtm(rc_bridge(), TSTOP, 2, mode="jacobi")
        assert res.converged
        assert res.stats.virtual_total < res.stats.serial_total

    def test_seidel_virtual_equals_serial(self):
        res = run_wtm(rc_bridge(), TSTOP, 2, mode="seidel")
        assert res.stats.virtual_total == pytest.approx(res.stats.serial_total)

    def test_pipelined_partitions_cut_virtual_cost(self):
        circuit = bridged_rc_blocks(blocks=3, rungs=3)
        plain = run_wtm(circuit, TSTOP, 3, mode="seidel")
        piped = run_wtm(circuit, TSTOP, 3, mode="seidel",
                        scheme="combined", threads=2)
        assert piped.converged
        # Pipelining is the only difference; it may only help the clock.
        # (Under the boundary-grid step cap the speculative schemes often
        # break even, so equality is a legitimate outcome.)
        assert piped.stats.virtual_total <= plain.stats.virtual_total

    def test_multirate_beats_capped_blocks_on_rate_disparity(self):
        circuit = mixed_rate_blocks(blocks=4, rungs=2)
        capped = run_wtm(circuit, TSTOP, 4, mode="jacobi")
        free = run_wtm(circuit, TSTOP, 4, mode="jacobi", multirate=True)
        assert capped.converged and free.converged
        assert free.stats.serial_total < capped.stats.serial_total


class TestConvergenceHandling:
    def strong_cut(self):
        """A manifest that severs a strong intra-ladder coupling."""
        circuit = rc_bridge()
        return circuit, manifest_from_node_sets(
            circuit, [{"a0", "a1", "b0"}, {"b1", "b2"}]
        )

    def test_strict_raises_convergence_error(self):
        circuit, manifest = self.strong_cut()
        with pytest.raises(ConvergenceError, match="WTM"):
            run_wtm(circuit, TSTOP, manifest=manifest, max_outer=2)

    def test_non_strict_reports_instead(self):
        circuit, manifest = self.strong_cut()
        res = run_wtm(circuit, TSTOP, manifest=manifest, max_outer=2,
                      strict=False)
        assert not res.converged
        assert res.residuals and res.residuals[-1] > 5e-4
        assert res.window_iterations == [2]

    def test_residuals_contract_on_weak_cut(self):
        res = run_wtm(rc_bridge(), TSTOP, 2, mode="seidel")
        assert res.converged
        assert res.residuals[-1] <= 5e-4
        assert res.residuals[-1] < res.residuals[0]


class TestWindowingAndRelaxation:
    def test_windowed_run_matches_single_window(self):
        circuit = rc_bridge()
        # Tight block tolerances: windowed solves lose the Pulse
        # breakpoint metadata (sources are re-expressed as sampled
        # waveforms in window-local time), so at the default reltol the
        # step controller's corner placement alone costs a few 1e-3.
        options = SimOptions(reltol=1e-5)
        one = run_wtm(circuit, TSTOP, 2, mode="seidel", options=options,
                      wtm_tol=1e-4)
        four = run_wtm(circuit, TSTOP, 2, mode="seidel", windows=4,
                       options=options, wtm_tol=1e-4)
        assert four.converged
        assert len(four.window_iterations) == 4
        # Solution nodes only: windowed solves re-express sources as
        # sampled waveforms, so raw drive nodes pick up corner-sampling
        # detail that the RC filtering never lets into the solution.
        deviations = compare(one.waveforms, four.waveforms,
                             names=["v(a1)", "v(b0)", "v(b1)"])
        worst = worst_deviation(deviations)
        # Each window restarts the integrator from node_ics, which
        # carries a startup transient of a few 1e-3 decaying within one
        # time constant of the restart; the rms bound pins it as a
        # localised blip, not a drifting iterate.
        assert worst.max_relative < 5e-3
        assert all(d.rms < 5e-4 for d in deviations)

    def test_under_relaxation_converges(self):
        res = run_wtm(rc_bridge(), TSTOP, 2, relax=0.7)
        assert res.converged
        assert res.relax == 0.7

    def test_windows_refused_with_inductors(self):
        c = rc_bridge()
        c.add_inductor("L1", "b1", "0", 1e-9)
        with pytest.raises(SimulationError, match="inductive branch"):
            run_wtm(c, TSTOP, 2, windows=2)


class TestChaosCompatibility:
    def test_jacobi_result_immune_to_adversarial_scheduling(self):
        circuit = bridged_rc_blocks(blocks=3, rungs=2)
        plain = run_wtm(circuit, TSTOP, 3, mode="jacobi")
        chaotic = run_wtm(circuit, TSTOP, 3, mode="jacobi",
                          executor=ChaosExecutor(seed=1234))
        assert chaotic.converged
        np.testing.assert_array_equal(plain.times, chaotic.times)
        for name in plain.waveforms.names:
            np.testing.assert_array_equal(
                plain.waveforms[name].values, chaotic.waveforms[name].values
            )


class TestValidation:
    def test_rejects_unknown_mode(self):
        with pytest.raises(SimulationError, match="mode"):
            run_wtm(rc_bridge(), TSTOP, 2, mode="sor")

    def test_rejects_bad_relax(self):
        for relax in (0.0, 1.5):
            with pytest.raises(SimulationError, match="relax"):
                run_wtm(rc_bridge(), TSTOP, 2, relax=relax)

    def test_rejects_bad_counts(self):
        with pytest.raises(SimulationError, match="max_outer"):
            run_wtm(rc_bridge(), TSTOP, 2, max_outer=0)
        with pytest.raises(SimulationError, match="grid_points"):
            run_wtm(rc_bridge(), TSTOP, 2, grid_points=1)
        with pytest.raises(SimulationError, match="windows"):
            run_wtm(rc_bridge(), TSTOP, 2, windows=0)

    def test_rejects_compiled_circuit(self):
        from repro.mna.compiler import compile_circuit

        with pytest.raises(SimulationError, match="raw Circuit"):
            run_wtm(compile_circuit(rc_bridge()), TSTOP, 2)


class TestFacadeIntegration:
    def test_partitions_keyword_promotes_transient_to_wtm(self):
        from repro import simulate

        res = simulate(rc_bridge(), tstop=TSTOP, partitions=2)
        assert res.analysis == "wtm"
        assert res.raw.converged
        assert res.raw.partitions == 2

    def test_explicit_wtm_analysis(self):
        from repro import simulate

        res = simulate(rc_bridge(), analysis="wtm", tstop=TSTOP,
                       partitions=2, mode="jacobi", scheme="combined",
                       threads=2)
        assert res.raw.mode == "jacobi"
        assert res.raw.stats.virtual_total < res.raw.stats.serial_total

    def test_result_matches_direct_call(self):
        from repro import simulate

        direct = run_wtm(rc_bridge(), TSTOP, 2)
        facade = simulate(rc_bridge(), tstop=TSTOP, partitions=2)
        for name in direct.waveforms.names:
            np.testing.assert_array_equal(
                direct.waveforms[name].values,
                facade.waveforms[name].values,
            )


class TestAutoPartitioning:
    def test_default_manifest_comes_from_partitioner(self):
        res = run_wtm(rc_bridge(), TSTOP, 2)
        assert res.manifest is not None
        assert res.manifest.requested == 2
        expected = partition_circuit(rc_bridge(), 2)
        assert res.manifest.to_json() == expected.to_json()
