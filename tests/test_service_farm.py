"""Farm-level behaviour: multi-node work stealing and fault injection.

Satellite 1 of the service PR: a node is SIGKILLed mid-claim, its lease
expires, a second node reclaims the job, and the final campaign artifact
directory is byte-identical to an uninterrupted run.  The two-node demo
also checks the acceptance criterion that merged per-node counters
reconcile to 100% of submitted jobs.
"""

import os
import signal
import subprocess
import sys
import textwrap
import threading
import time
from pathlib import Path

import pytest

from repro.instrument.recorder import Recorder
from repro.jobs.campaign import monte_carlo
from repro.jobs.spec import CircuitRef, JobSpec
from repro.service.node import RESULTS_DIR, FarmNode
from repro.service.queue import JobQueue

posix_only = pytest.mark.skipif(
    sys.platform == "win32", reason="needs POSIX signals"
)

DECK = """rc lowpass
V1 in 0 SIN(0 1 1k)
R1 in out 1k
C1 out 0 1u
.tran 10u 1m
.end
"""


def rc_spec(label="rc") -> JobSpec:
    return JobSpec(circuit=CircuitRef(kind="netlist", netlist=DECK), label=label)


def submit_campaign(root, n=4, seed=7) -> tuple[str, list[str]]:
    queue = JobQueue(root)
    plan = monte_carlo(rc_spec(), n=n, seed=seed, jitter=0.03)
    cid, receipts = queue.submit_campaign(
        "farm-demo", plan.jobs, generator=plan.generator
    )
    return cid, [r.spec_hash for r in receipts]


def result_bytes(root) -> dict[str, bytes]:
    results = Path(root) / RESULTS_DIR
    return {p.name: p.read_bytes() for p in sorted(results.glob("*.json"))}


class TestTwoNodeFarm:
    def test_second_node_steals_work_and_counters_reconcile(self, tmp_path):
        root = tmp_path / "farm"
        cid, hashes = submit_campaign(root, n=6)
        unique = len(set(hashes))

        rec_a = Recorder(capture_events=False)
        rec_b = Recorder(capture_events=False)
        # node A drains slowly (one job per claim); node B joins mid-campaign
        node_a = FarmNode(root, node_id="alpha", batch=1, instrument=rec_a)
        node_b = FarmNode(root, node_id="beta", batch=1, instrument=rec_b)

        thread = threading.Thread(target=node_a.run, kwargs={"drain": True})
        thread.start()
        node_b.run(drain=True)
        thread.join(timeout=60)
        assert not thread.is_alive()

        queue = JobQueue(root)
        assert queue.counts() == {"done": unique}
        rollup = queue.campaign_status(cid)
        assert rollup["done"] is True
        assert rollup["counts"] == {"done": unique}

        merged = Recorder(capture_events=False)
        merged.merge(rec_a.snapshot())
        merged.merge(rec_b.snapshot())
        counters = merged.snapshot()["counters"]
        # every submitted job settled exactly once across the farm, and is
        # served from the shared cache: completions + cache entries both
        # reconcile to 100% of the submitted (unique) jobs
        assert counters["service.node.completed"] == unique
        assert counters.get("service.node.failed", 0) == 0
        assert len(result_bytes(root)) == unique

    def test_fresh_queue_is_served_from_shared_cache(self, tmp_path):
        root = tmp_path / "farm"
        cid, hashes = submit_campaign(root, n=3)
        FarmNode(root, node_id="alpha").run(drain=True)

        # a brand-new queue over the same cache directory: the second node
        # claims every job but settles them all straight from the shared
        # result cache instead of resimulating
        (root / "queue.json").unlink()
        cid2, _ = submit_campaign(root, n=3)
        assert cid2 == cid
        rec = Recorder(capture_events=False)
        FarmNode(root, node_id="beta", instrument=rec).run(drain=True)
        counters = rec.snapshot()["counters"]
        assert counters["service.node.completed"] == len(set(hashes))
        assert counters["service.node.dedup_served"] == len(set(hashes))


VICTIM_SCRIPT = textwrap.dedent(
    """
    import sys, time
    import repro.jobs.workers as workers
    from repro.service.node import FarmNode

    root, marker = sys.argv[1], sys.argv[2]

    def hang(spec):
        with open(marker, "w") as fh:
            fh.write(spec.content_hash())
        time.sleep(600)

    workers.FAULT_HOOK = hang
    FarmNode(root, node_id="victim", lease_seconds=1.0).run(drain=True)
    """
)


@posix_only
class TestFaultInjection:
    def test_sigkill_mid_claim_is_reclaimed_byte_identically(self, tmp_path):
        # reference: an uninterrupted run of the same campaign
        clean_root = tmp_path / "clean"
        submit_campaign(clean_root, n=4)
        FarmNode(clean_root, node_id="solo").run(drain=True)
        expected = result_bytes(clean_root)
        assert len(expected) == 4

        # interrupted: the victim node claims a job, hangs inside the
        # worker (FAULT_HOOK), and is SIGKILLed while holding the lease
        root = tmp_path / "farm"
        cid, hashes = submit_campaign(root, n=4)
        marker = tmp_path / "claimed.marker"
        victim = subprocess.Popen(
            [sys.executable, "-c", VICTIM_SCRIPT, str(root), str(marker)],
            env={**os.environ, "PYTHONPATH": "src"},
            cwd=Path(__file__).resolve().parent.parent,
        )
        try:
            deadline = time.monotonic() + 30
            while not marker.exists():
                assert time.monotonic() < deadline, "victim never claimed"
                assert victim.poll() is None, "victim exited prematurely"
                time.sleep(0.02)
        finally:
            victim.kill()
        victim.wait(timeout=10)

        victim_hash = marker.read_text()
        queue = JobQueue(root)
        status = queue.status(victim_hash)
        assert status["status"] == "leased"
        assert status["lease"]["node"] == "victim"

        # rescue node waits out the 1s lease, reclaims, and finishes
        rescue = FarmNode(root, node_id="rescue", poll_interval=0.05)
        rescue.run(drain=True)

        status = queue.status(victim_hash)
        assert status["status"] == "done"
        assert status["attempts"] == 2  # burned lease + successful rerun
        assert queue.campaign_status(cid)["done"] is True
        # the hard kill left no torn state: the final artifact directory is
        # byte-identical to the uninterrupted run
        assert result_bytes(root) == expected

    def test_sigkill_mid_lease_keeps_the_trace_id(self, tmp_path):
        """Observability satellite: a job re-leased after SIGKILL settles
        under the *same* trace id — its stitched spans re-parent beneath
        the originating request — and the result artifacts stay
        byte-identical to an uninterrupted run."""
        from repro.instrument.spans import build_span_tree
        from repro.instrument.tracectx import TraceContext
        from repro.service.trace import TraceStore, build_campaign_trace

        plan = monte_carlo(rc_spec(), n=4, seed=7, jitter=0.03)

        clean_root = tmp_path / "clean"
        JobQueue(clean_root).submit_campaign(
            "farm-demo", plan.jobs, generator=plan.generator
        )
        FarmNode(clean_root, node_id="solo").run(drain=True)
        expected = result_bytes(clean_root)

        root = tmp_path / "farm"
        queue = JobQueue(root)
        ctx = TraceContext.mint(
            tenant="acme", origin="client", entropy="sigkill-trace"
        )
        cid, _ = queue.submit_campaign(
            "farm-demo", plan.jobs, generator=plan.generator,
            tenant="acme", trace=ctx,
        )
        marker = tmp_path / "claimed.marker"
        victim = subprocess.Popen(
            [sys.executable, "-c", VICTIM_SCRIPT, str(root), str(marker)],
            env={**os.environ, "PYTHONPATH": "src"},
            cwd=Path(__file__).resolve().parent.parent,
        )
        try:
            deadline = time.monotonic() + 30
            while not marker.exists():
                assert time.monotonic() < deadline, "victim never claimed"
                assert victim.poll() is None, "victim exited prematurely"
                time.sleep(0.02)
        finally:
            victim.kill()
        victim.wait(timeout=10)
        victim_hash = marker.read_text()

        FarmNode(root, node_id="rescue", poll_interval=0.05).run(drain=True)
        assert queue.status(victim_hash)["attempts"] == 2

        # the rescue node's record carries the original submission's ids
        store = TraceStore(root)
        record = store.get(victim_hash)
        assert record["node"] == "rescue"
        assert record["attempts"] == 2
        assert record["trace"]["trace_id"] == ctx.trace_id

        # stitched trace: one request root under the original trace id,
        # the re-leased job's spans nested beneath it, nothing malformed
        trace_rec = build_campaign_trace(queue, store, cid)
        tree = build_span_tree(list(trace_rec.events))
        assert tree.malformed == 0
        roots = [n for n in tree.roots if n.name == "service_request"]
        assert [n.attrs["trace_id"] for n in roots] == [ctx.trace_id]
        jobs = {c.attrs["hash"]: c for c in roots[0].children
                if c.name == "service_job"}
        relased = jobs[victim_hash[:12]]
        assert relased.attrs["node"] == "rescue"
        assert relased.attrs["attempts"] == 2
        assert relased.attrs["trace_id"] == ctx.trace_id

        # and the crash never leaked into the physics: artifacts match
        # the uninterrupted run byte for byte
        assert result_bytes(root) == expected
