"""repro.verify.generators: determinism, family coverage, sanity.

The generators are the substrate every fuzz trial stands on, so the
properties checked here are load-bearing: seeds must replay exactly
(fuzz failures are reported as one-line seed entries), every family
must build simulatable circuits, and suggested tstop values must be
positive and finite so the oracle always exercises real dynamics.
"""

import numpy as np
import pytest

from repro.circuit.sources import Exp, Pulse, Pwl, Sin
from repro.mna.compiler import compile_circuit
from repro.netlist.writer import write_netlist
from repro.verify.generators import (
    FAMILIES,
    GeneratedCircuit,
    draw_circuit,
    random_rc_network,
    random_resistive_network,
    random_stimulus,
)


class TestDrawCircuitDeterminism:
    @pytest.mark.parametrize("seed", [0, 1, 17, 9999, 2**30])
    def test_same_seed_same_circuit(self, seed):
        """The replayability contract: a seed fully determines the trial,
        down to the exact netlist text."""
        a = draw_circuit(seed)
        b = draw_circuit(seed)
        assert a.family == b.family
        assert a.tstop == b.tstop
        assert a.linear == b.linear
        assert write_netlist(a.circuit) == write_netlist(b.circuit)

    def test_family_restriction_is_part_of_the_seed(self):
        """Restricting families changes what a seed maps to, but stays
        deterministic for the same restriction."""
        full = draw_circuit(5)
        restricted = draw_circuit(5, families=["rc-ladder"])
        assert restricted.family == "rc-ladder"
        again = draw_circuit(5, families=["rc-ladder"])
        assert write_netlist(restricted.circuit) == write_netlist(again.circuit)
        # the unrestricted draw is its own deterministic object
        assert full.family in FAMILIES

    def test_restriction_order_is_irrelevant(self):
        a = draw_circuit(3, families=["rc-mesh", "diode-clipper"])
        b = draw_circuit(3, families=["diode-clipper", "rc-mesh"])
        assert a.family == b.family
        assert write_netlist(a.circuit) == write_netlist(b.circuit)

    def test_unknown_family_raises(self):
        with pytest.raises(KeyError):
            draw_circuit(0, families=["not-a-family"])

    def test_seed_recorded_on_result(self):
        generated = draw_circuit(42)
        assert generated.seed == 42
        assert generated.name == f"{generated.family}[seed=42]"


class TestFamilyProperties:
    @pytest.mark.parametrize("family", sorted(FAMILIES))
    def test_every_family_builds_and_compiles(self, family):
        for seed in range(3):
            generated = draw_circuit(seed, families=[family])
            assert isinstance(generated, GeneratedCircuit)
            assert generated.family == family
            assert np.isfinite(generated.tstop) and generated.tstop > 0
            compiled = compile_circuit(generated.circuit)
            assert compiled.n > 0

    def test_linear_flag_matches_device_content(self):
        """linear=True families must contain no nonlinear devices, and
        vice versa — the oracle trusts this flag."""
        nonlinear_prefixes = ("D", "M", "Q")
        for family in sorted(FAMILIES):
            generated = draw_circuit(1, families=[family])
            has_nonlinear = any(
                comp.name.upper().startswith(nonlinear_prefixes)
                for comp in generated.circuit.components
            )
            assert generated.linear == (not has_nonlinear), family

    def test_linear_references_are_consistent(self):
        """Families that ship dense reference matrices must ship ones
        matching the circuit's node count."""
        generated = draw_circuit(2, families=["rc-mesh"])
        g = generated.reference["g"]
        c = generated.reference["c"]
        n = g.shape[0]
        assert g.shape == c.shape == (n, n)
        node_names = {f"n{i}" for i in range(n)}
        assert node_names <= set(generated.circuit.nodes())


class TestLowLevelBuilders:
    def test_resistive_network_matrix_is_symmetric_spd(self):
        rng = np.random.default_rng(11)
        _, g_matrix, _ = random_resistive_network(rng, 7)
        np.testing.assert_allclose(g_matrix, g_matrix.T)
        eigvals = np.linalg.eigvalsh(g_matrix)
        assert eigvals.min() > 0  # grounded chain makes G positive definite

    def test_rc_network_caps_on_every_node(self):
        rng = np.random.default_rng(4)
        circuit, _, c_matrix, _ = random_rc_network(rng, 5)
        assert np.all(np.diag(c_matrix) > 0)
        cap_names = {c.name for c in circuit.components if c.name.startswith("C")}
        assert cap_names == {f"C{i}" for i in range(5)}


class TestRandomStimulus:
    def test_draws_all_four_waveform_kinds(self):
        rng = np.random.default_rng(0)
        kinds = {type(random_stimulus(rng, 0.0, 1.0, 1e-6)) for _ in range(64)}
        assert kinds == {Pulse, Sin, Exp, Pwl}

    def test_stimulus_is_deterministic(self):
        a = random_stimulus(np.random.default_rng(9), -1.0, 1.0, 1e-3)
        b = random_stimulus(np.random.default_rng(9), -1.0, 1.0, 1e-3)
        assert type(a) is type(b)
        times = np.linspace(0.0, 1e-3, 17)
        np.testing.assert_array_equal(
            [a.value(t) for t in times], [b.value(t) for t in times]
        )
