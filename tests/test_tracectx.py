"""Trace context: minting, W3C header round-trips, ambient binding."""

import dataclasses

import pytest

from repro.instrument.tracectx import (
    ORIGIN_HEADER,
    TRACEPARENT_HEADER,
    TraceContext,
    current_trace,
    use_trace,
)


class TestMint:
    def test_mint_shapes(self):
        ctx = TraceContext.mint(tenant="acme", origin="client")
        assert len(ctx.trace_id) == 32
        assert len(ctx.span_id) == 16
        int(ctx.trace_id, 16)  # valid hex
        int(ctx.span_id, 16)
        assert ctx.tenant == "acme"
        assert ctx.origin == "client"

    def test_mint_is_unique(self):
        ids = {TraceContext.mint(tenant="t", origin="o").trace_id
               for _ in range(64)}
        assert len(ids) == 64

    def test_entropy_pins_the_ids(self):
        a = TraceContext.mint(tenant="t", origin="o", entropy="seed-1")
        b = TraceContext.mint(tenant="t", origin="o", entropy="seed-1")
        c = TraceContext.mint(tenant="t", origin="o", entropy="seed-2")
        assert (a.trace_id, a.span_id) == (b.trace_id, b.span_id)
        assert a.trace_id != c.trace_id

    def test_entropy_mixes_tenant_and_origin(self):
        a = TraceContext.mint(tenant="t1", origin="o", entropy="seed")
        b = TraceContext.mint(tenant="t2", origin="o", entropy="seed")
        assert a.trace_id != b.trace_id

    def test_frozen(self):
        ctx = TraceContext.mint(tenant="t", origin="o")
        with pytest.raises(dataclasses.FrozenInstanceError):
            ctx.tenant = "other"

    def test_bound_rebinds_without_changing_ids(self):
        ctx = TraceContext.mint(tenant="t", origin="o")
        child = ctx.bound(tenant="acme")
        assert child.tenant == "acme"
        assert child.trace_id == ctx.trace_id
        assert child.span_id == ctx.span_id
        assert ctx.tenant == "t"  # original untouched


class TestTraceparent:
    def test_roundtrip(self):
        ctx = TraceContext.mint(tenant="acme", origin="client")
        header = ctx.to_traceparent()
        assert header == f"00-{ctx.trace_id}-{ctx.span_id}-01"
        back = TraceContext.from_traceparent(
            header, tenant="acme", origin="server"
        )
        assert back.trace_id == ctx.trace_id
        assert back.span_id == ctx.span_id
        assert back.origin == "server"

    @pytest.mark.parametrize(
        "header",
        [
            "",
            "garbage",
            "00-zz-11-01",
            "00-" + "0" * 32 + "-" + "1" * 16 + "-01",  # all-zero trace id
            "00-" + "1" * 32 + "-" + "0" * 16 + "-01",  # all-zero span id
            "00-" + "1" * 31 + "-" + "2" * 16 + "-01",  # short trace id
        ],
    )
    def test_invalid_headers_rejected(self, header):
        assert TraceContext.from_traceparent(header) is None

    def test_header_dict_roundtrip(self):
        ctx = TraceContext.mint(tenant="acme", origin="client")
        headers = ctx.to_headers()
        assert headers[TRACEPARENT_HEADER] == ctx.to_traceparent()
        assert headers[ORIGIN_HEADER] == "client"
        back = TraceContext.from_headers(headers, tenant="acme")
        assert back == ctx

    def test_from_headers_without_traceparent(self):
        assert TraceContext.from_headers({}, tenant="t") is None


class TestDictForm:
    def test_roundtrip(self):
        ctx = TraceContext.mint(tenant="acme", origin="client")
        assert TraceContext.from_dict(ctx.to_dict()) == ctx

    @pytest.mark.parametrize(
        "data",
        [None, {}, {"trace_id": "nothex!", "span_id": "1" * 16},
         {"trace_id": "1" * 32}, 42],
    )
    def test_invalid_dicts_give_none(self, data):
        assert TraceContext.from_dict(data) is None


class TestAmbient:
    def test_default_is_none(self):
        assert current_trace() is None

    def test_use_trace_binds_and_restores(self):
        ctx = TraceContext.mint(tenant="t", origin="o")
        with use_trace(ctx):
            assert current_trace() is ctx
            inner = TraceContext.mint(tenant="t2", origin="o")
            with use_trace(inner):
                assert current_trace() is inner
            assert current_trace() is ctx
        assert current_trace() is None

    def test_use_trace_none_is_a_noop_scope(self):
        with use_trace(None):
            assert current_trace() is None
