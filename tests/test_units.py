"""Unit parsing and SI formatting."""

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import UnitError
from repro.utils.units import format_si, parse_value


class TestParseValue:
    @pytest.mark.parametrize(
        "text,expected",
        [
            ("1", 1.0),
            ("-3.5", -3.5),
            ("1e3", 1000.0),
            ("1E-9", 1e-9),
            (".5", 0.5),
            ("+2.", 2.0),
        ],
    )
    def test_plain_numbers(self, text, expected):
        assert parse_value(text) == pytest.approx(expected)

    @pytest.mark.parametrize(
        "text,expected",
        [
            ("1k", 1e3),
            ("1K", 1e3),
            ("2.2u", 2.2e-6),
            ("3n", 3e-9),
            ("4p", 4e-12),
            ("5f", 5e-15),
            ("6m", 6e-3),
            ("1meg", 1e6),
            ("1MEG", 1e6),
            ("7g", 7e9),
            ("8t", 8e12),
            ("9a", 9e-18),
            ("10mil", 10 * 25.4e-6),
            ("2x", 2e6),
        ],
    )
    def test_suffixes(self, text, expected):
        assert parse_value(text) == pytest.approx(expected)

    @pytest.mark.parametrize(
        "text,expected",
        [
            ("10kOhm", 1e4),
            ("5pF", 5e-12),
            ("3nH", 3e-9),
            ("2.5V", 2.5),
            ("1megohm", 1e6),
        ],
    )
    def test_unit_garnish_ignored(self, text, expected):
        assert parse_value(text) == pytest.approx(expected)

    def test_numbers_pass_through(self):
        assert parse_value(42) == 42.0
        assert parse_value(4.7) == 4.7

    @pytest.mark.parametrize("bad", ["", "abc", "1..2", "--3", "k1", "{x}"])
    def test_rejects_garbage(self, bad):
        with pytest.raises(UnitError):
            parse_value(bad)

    def test_rejects_nan(self):
        with pytest.raises(UnitError):
            parse_value(float("nan"))

    def test_meg_beats_m(self):
        # "m" alone is milli; "meg" must win the longest-match race.
        assert parse_value("1m") == pytest.approx(1e-3)
        assert parse_value("1meg") == pytest.approx(1e6)

    def test_mil_beats_m(self):
        assert parse_value("1mil") == pytest.approx(25.4e-6)

    @given(st.floats(min_value=-1e15, max_value=1e15, allow_nan=False))
    def test_repr_roundtrip(self, value):
        assert parse_value(repr(value)) == pytest.approx(value, rel=1e-12)

    @given(
        st.floats(min_value=1e-3, max_value=1e3, allow_nan=False),
        st.sampled_from(["k", "u", "n", "p", "f", "meg", "g"]),
    )
    def test_suffix_scaling_property(self, base, suffix):
        scale = {"k": 1e3, "u": 1e-6, "n": 1e-9, "p": 1e-12, "f": 1e-15, "meg": 1e6, "g": 1e9}
        assert parse_value(f"{base}{suffix}") == pytest.approx(base * scale[suffix], rel=1e-12)


class TestFormatSi:
    @pytest.mark.parametrize(
        "value,unit,expected",
        [
            (0.0, "V", "0V"),
            (1000.0, "", "1k"),
            (2.2e-6, "F", "2.2uF"),
            (1e9, "Hz", "1GHz"),
            (-1500.0, "V", "-1.5kV"),
        ],
    )
    def test_formats(self, value, unit, expected):
        assert format_si(value, unit) == expected

    def test_tiny_values_fall_back_to_scientific(self):
        text = format_si(1e-20, "A")
        assert "e-" in text

    @given(st.floats(min_value=1e-14, max_value=1e11, allow_nan=False))
    def test_round_trip_with_parse(self, value):
        # format_si output must be parseable back to ~the same value.
        text = format_si(value, "")
        parsed = parse_value(text)
        assert math.isclose(parsed, value, rel_tol=1e-3)
