"""Integration scheme coefficients (BE / trapezoidal / variable-step Gear-2)."""

import numpy as np
import pytest

from repro.errors import SimulationError
from repro.integration.history import Timepoint, TimepointHistory
from repro.integration.methods import METHOD_ORDER, scheme_coefficients


def history_from(samples):
    """samples: list of (t, q_value); x mirrors q, qdot left 0 unless set."""
    h = TimepointHistory()
    for entry in samples:
        t, q = entry[:2]
        qdot = entry[2] if len(entry) > 2 else 0.0
        arr = np.array([float(q)])
        h.append(Timepoint(float(t), arr.copy(), arr.copy(), np.array([float(qdot)])))
    return h


class TestBackwardEuler:
    def test_coefficients(self):
        h = history_from([(0.0, 2.0)])
        scheme = scheme_coefficients("be", h, 0.5)
        assert scheme.method_used == "be"
        assert scheme.order == 1
        assert scheme.alpha0 == pytest.approx(2.0)
        assert scheme.beta[0] == pytest.approx(-4.0)

    def test_exact_for_linear_charge(self):
        # q(t) = 3t: BE derivative must be exactly 3.
        h = history_from([(1.0, 3.0)])
        scheme = scheme_coefficients("be", h, 2.0)
        qdot = scheme.qdot(np.array([6.0]))
        assert qdot[0] == pytest.approx(3.0)


class TestTrapezoidal:
    def test_coefficients_use_qdot_history(self):
        h = history_from([(0.0, 1.0, 0.5)])
        scheme = scheme_coefficients("trap", h, 1.0)
        assert scheme.alpha0 == pytest.approx(2.0)
        assert scheme.beta[0] == pytest.approx(-2.0 * 1.0 - 0.5)

    def test_exact_for_quadratic_charge(self):
        # q(t) = t^2, qdot = 2t. Trap: qdot_{n+1} = 2/h (q1 - q0) - qdot_0.
        h = history_from([(1.0, 1.0, 2.0)])
        scheme = scheme_coefficients("trap", h, 2.0)
        qdot = scheme.qdot(np.array([4.0]))
        assert qdot[0] == pytest.approx(4.0)


class TestGear2:
    def test_equal_step_coefficients(self):
        h = history_from([(0.0, 0.0), (1.0, 0.0)])
        scheme = scheme_coefficients("gear2", h, 2.0)
        assert scheme.alpha0 == pytest.approx(1.5)  # 3/(2h), h=1

    def test_exact_for_quadratic_charge_variable_steps(self):
        # q(t) = t^2 with unequal steps: BDF2 differentiates quadratics exactly.
        h = history_from([(0.0, 0.0), (0.4, 0.16)])
        t_new = 1.1
        scheme = scheme_coefficients("gear2", h, t_new)
        qdot = scheme.qdot(np.array([t_new**2]))
        assert qdot[0] == pytest.approx(2 * t_new, rel=1e-10)

    def test_falls_back_to_be_with_short_history(self):
        h = history_from([(0.0, 1.0)])
        scheme = scheme_coefficients("gear2", h, 1.0)
        assert scheme.method_used == "be"

    def test_falls_back_to_be_across_era(self):
        h = history_from([(0.0, 0.0), (1.0, 1.0)])
        h.mark_era()
        scheme = scheme_coefficients("gear2", h, 2.0)
        assert scheme.method_used == "be"


class TestCommon:
    def test_force_be_overrides(self):
        h = history_from([(0.0, 1.0, 0.5), (1.0, 2.0, 0.5)])
        scheme = scheme_coefficients("trap", h, 2.0, force_be=True)
        assert scheme.method_used == "be"
        assert scheme.order == 1

    def test_non_positive_step_rejected(self):
        h = history_from([(1.0, 0.0)])
        with pytest.raises(SimulationError):
            scheme_coefficients("be", h, 1.0)
        with pytest.raises(SimulationError):
            scheme_coefficients("be", h, 0.5)

    def test_unknown_method_rejected(self):
        h = history_from([(0.0, 0.0)])
        with pytest.raises(SimulationError):
            scheme_coefficients("rk45", h, 1.0)

    def test_method_orders(self):
        assert METHOD_ORDER == {"be": 1, "trap": 2, "gear2": 2}

    def test_h_recorded(self):
        h = history_from([(2.0, 0.0)])
        scheme = scheme_coefficients("be", h, 2.75)
        assert scheme.h == pytest.approx(0.75)
