"""Span tracing: recorder API, tree reconstruction, transport invariants.

Covers the hierarchical span layer end to end: the Recorder's
begin/end/emit/tag API and its path bookkeeping, reconstruction +
validation in :func:`build_span_tree`, the Chrome B/E export nesting,
the worker->parent merge re-iding, and the property the whole layer
must hold: a pipelined run's span forest stays well-formed no matter
how adversarially the executor permutes stage tasks.
"""

import json

import pytest

from repro.circuit.circuit import Circuit
from repro.circuit.components import DiodeModel
from repro.circuit.sources import Sin
from repro.core.wavepipe import run_wavepipe
from repro.engine.transient import run_transient
from repro.instrument import (
    NullRecorder,
    Recorder,
    aggregate_by_path,
    build_span_tree,
    chrome_trace_dict,
    outcome_counts,
    span_events,
)
from repro.verify.chaos import ChaosExecutor


def stiff_circuit() -> Circuit:
    """Half-wave rectifier: nonlinear + stiff enough to reject and speculate."""
    c = Circuit("spans-rectifier")
    c.add_vsource("V1", "in", "0", Sin(0.0, 5.0, 1e5))
    c.add_resistor("R1", "in", "a", 100.0)
    c.add_diode("D1", "a", "out", DiodeModel(is_=1e-14, n=1.5))
    c.add_capacitor("C1", "out", "0", 1e-7)
    c.add_resistor("R2", "out", "0", 1e4)
    return c


TSTOP = 2e-5


class TestRecorderSpanApi:
    def test_begin_end_builds_paths_and_totals(self):
        rec = Recorder()
        outer = rec.begin_span("run")
        inner = rec.begin_span("timestep")
        rec.end_span(inner, cost=2.0)
        rec.end_span(outer, cost=1.0)
        assert rec.span_totals == {
            "run": {"count": 1, "cost": 1.0},
            "run/timestep": {"count": 1, "cost": 2.0},
        }
        tree = build_span_tree(rec.events)
        assert tree.malformed == 0
        (root,) = tree.roots
        assert root.name == "run"
        assert [c.name for c in root.children] == ["timestep"]
        assert root.children[0].path == "run/timestep"

    def test_lane_inherited_from_parent(self):
        rec = Recorder()
        outer = rec.begin_span("stage_task", lane=3)
        inner = rec.begin_span("newton_solve")  # lane=None -> parent's
        rec.end_span(inner)
        rec.end_span(outer)
        tree = build_span_tree(rec.events)
        assert all(node.lane == 3 for node in tree.walk())

    def test_emit_span_nests_under_open_span(self):
        rec = Recorder()
        outer = rec.begin_span("newton_solve", lane=2)
        rec.emit_span("device_eval", ts=0.0, dur=0.5, cost=4.0)
        rec.end_span(outer)
        (phase,) = [ev for ev in rec.events if ev.name == "device_eval"]
        assert phase.attrs["parent"] == outer
        assert phase.lane == 2
        assert rec.span_totals["newton_solve/device_eval"]["cost"] == 4.0

    def test_end_span_pops_stack_suffix(self):
        rec = Recorder()
        a = rec.begin_span("a")
        rec.begin_span("b")  # never explicitly ended
        rec.end_span(a)
        # a's close must clear the whole suffix: new spans are roots again
        c = rec.begin_span("c")
        rec.end_span(c)
        (ev,) = [e for e in rec.events if e.name == "c"]
        assert "parent" not in ev.attrs

    def test_tag_span_overwrite_semantics(self):
        rec = Recorder()
        sid = rec.begin_span("stage_task")
        rec.end_span(sid)
        rec.tag_span(sid, outcome="newton_fail")
        rec.tag_span(sid, outcome="speculative_waste", overwrite=False)
        (ev,) = span_events(rec.events)
        assert ev.attrs["outcome"] == "newton_fail"
        rec.tag_span(sid, outcome="accepted")  # default overwrites
        assert ev.attrs["outcome"] == "accepted"
        rec.tag_span(None, outcome="ignored")  # no-op, no raise
        rec.tag_span(10**9, outcome="ignored")  # unknown id, no-op

    def test_tree_span_contextmanager(self):
        rec = Recorder()
        with rec.tree_span("campaign_run") as sid:
            assert sid > 0
            with rec.tree_span("job_run"):
                pass
        tree = build_span_tree(rec.events)
        assert tree.malformed == 0
        assert tree.roots[0].children[0].name == "job_run"

    def test_capture_off_keeps_totals_but_no_events(self):
        rec = Recorder(capture_events=False)
        sid = rec.begin_span("run")
        rec.end_span(sid, cost=5.0)
        assert rec.span_totals["run"] == {"count": 1, "cost": 5.0}
        assert rec.events == []
        rec.tag_span(sid, outcome="accepted")  # nothing indexed: no-op

    def test_null_recorder_is_inert_and_snapshot_unchanged(self):
        rec = NullRecorder()
        assert rec.begin_span("run") == 0
        rec.end_span(0, outcome="accepted")
        assert rec.emit_span("x", ts=0.0, dur=1.0) == 0
        rec.tag_span(0, outcome="accepted")
        with rec.tree_span("run") as sid:
            assert not sid
        assert rec.snapshot() == {
            "counters": {},
            "histograms": {},
            "events": 0,
            "dropped_events": 0,
        }


class TestSpanTreeValidation:
    def test_duplicate_id_flagged(self):
        rec = Recorder()
        rec.event("stage_task", span=7)
        rec.event("stage_task", span=7)
        for ev in rec.events:
            ev.dur = 1.0
        tree = build_span_tree(rec.events)
        assert any("duplicate" in p for p in tree.problems)

    def test_missing_duration_flagged(self):
        rec = Recorder()
        rec.event("stage_task", span=1)
        tree = build_span_tree(rec.events)
        assert any("no duration" in p for p in tree.problems)

    def test_child_escaping_parent_flagged(self):
        rec = Recorder()
        rec.event("stage_run", span=1)
        rec.event("stage_task", span=2, parent=1)
        rec.events[0].ts, rec.events[0].dur = 0.0, 1.0
        rec.events[1].ts, rec.events[1].dur = 0.5, 2.0  # ends after parent
        tree = build_span_tree(rec.events)
        assert any("escapes parent" in p for p in tree.problems)

    def test_orphan_parent_promotes_to_root(self):
        rec = Recorder()
        rec.event("stage_task", span=2, parent=999)
        rec.events[0].dur = 1.0
        tree = build_span_tree(rec.events)
        assert tree.malformed == 0
        assert [n.id for n in tree.roots] == [2]

    def test_self_parent_flagged(self):
        rec = Recorder()
        rec.event("stage_task", span=3, parent=3)
        rec.events[0].dur = 1.0
        tree = build_span_tree(rec.events)
        assert any("own parent" in p for p in tree.problems)

    def test_aggregate_and_outcomes(self):
        rec = Recorder()
        with rec.tree_span("run"):
            for outcome in ("accepted", "accepted", "lte_reject"):
                sid = rec.begin_span("timestep")
                rec.end_span(sid, outcome=outcome, cost=1.0)
        tree = build_span_tree(rec.events)
        totals = aggregate_by_path(tree)
        assert totals["run/timestep"] == {"count": 3, "cost": 3.0}
        assert outcome_counts(tree, names=["timestep"]) == {
            "accepted": 2,
            "lte_reject": 1,
        }


class TestEngineSpanTrees:
    @pytest.fixture(scope="class")
    def pipelined(self):
        rec = Recorder()
        run_wavepipe(
            stiff_circuit(), TSTOP, scheme="combined", threads=3, instrument=rec
        )
        return rec

    def test_pipelined_tree_well_formed(self, pipelined):
        tree = build_span_tree(pipelined.events)
        assert len(tree.nodes) > 50
        assert tree.malformed == 0, tree.problems[:5]

    def test_sequential_tree_well_formed(self):
        rec = Recorder()
        run_transient(stiff_circuit(), TSTOP, instrument=rec)
        tree = build_span_tree(rec.events)
        assert tree.malformed == 0, tree.problems[:5]
        names = {n.name for n in tree.walk()}
        assert {"run", "timestep", "newton_solve", "device_eval"} <= names

    def test_every_candidate_outcome_in_vocabulary(self, pipelined):
        tree = build_span_tree(pipelined.events)
        outcomes = outcome_counts(tree, names=["timestep", "stage_task"])
        allowed = {
            "accepted",
            "lte_reject",
            "newton_fail",
            "speculative_hit",
            "speculative_waste",
            "untagged",  # unused insurance guards never learn a fate
        }
        assert set(outcomes) <= allowed

    def test_phase_costs_sum_to_solve_cost(self, pipelined):
        tree = build_span_tree(pipelined.events)
        solves = [n for n in tree.walk() if n.name == "newton_solve" and n.children]
        assert solves
        for solve in solves:
            assert sum(c.cost for c in solve.children) == pytest.approx(solve.cost)

    @pytest.mark.parametrize("seed", [0, 1, 7, 23, 101])
    def test_tree_well_formed_under_chaos_permutation(self, seed):
        # Property: adversarial stage-task scheduling may reorder span
        # emission arbitrarily, but the reconstructed forest must stay
        # perfectly formed and the waveforms bit-identical to serial.
        rec = Recorder()
        chaos = ChaosExecutor(seed=seed)
        try:
            result = run_wavepipe(
                stiff_circuit(),
                TSTOP,
                scheme="combined",
                threads=3,
                executor=chaos,
                instrument=rec,
            )
        finally:
            chaos.close()
        tree = build_span_tree(rec.events)
        assert tree.malformed == 0, tree.problems[:5]
        assert result.stats.accepted_points > 0


class TestChromeExport:
    def test_b_e_pairs_nest_per_lane(self):
        rec = Recorder()
        run_wavepipe(
            stiff_circuit(), TSTOP, scheme="forward", threads=3, instrument=rec
        )
        doc = chrome_trace_dict(rec)
        stacks: dict[int, list] = {}
        b_count = e_count = 0
        for entry in doc["traceEvents"]:
            if entry["ph"] == "B":
                stacks.setdefault(entry["tid"], []).append(entry["name"])
                b_count += 1
            elif entry["ph"] == "E":
                stack = stacks.setdefault(entry["tid"], [])
                assert stack, f"E without open B on lane {entry['tid']}"
                stack.pop()
                e_count += 1
        assert b_count == e_count > 0
        assert all(not stack for stack in stacks.values())
        json.dumps(doc)  # must stay JSON-serializable


class TestWorkerMerge:
    def _worker_snapshot(self):
        worker = Recorder()
        with worker.tree_span("job_run", label="w"):
            sid = worker.begin_span("stage_task", lane=1)
            worker.end_span(sid, outcome="accepted", cost=3.0)
        worker.count("newton.iterations", 12)
        return worker.snapshot(events_tail=16)

    def test_merge_remaps_span_ids(self):
        parent = Recorder()
        blocker = parent.begin_span("campaign_run")  # occupies low ids
        parent.end_span(blocker)
        parent.merge(self._worker_snapshot())
        tree = build_span_tree(parent.events)
        assert tree.malformed == 0
        ids = [n.id for n in tree.walk()]
        assert len(ids) == len(set(ids))
        merged = [n for n in tree.walk() if n.name == "job_run"]
        assert merged and merged[0].children[0].name == "stage_task"

    def test_merge_orphans_become_roots(self):
        snap = self._worker_snapshot()
        # Drop the job_run row: its child's parent id now dangles, as
        # happens when the parent record fell out of the worker's ring.
        snap["events_tail"] = [
            row for row in snap["events_tail"] if row["name"] != "job_run"
        ]
        parent = Recorder()
        parent.merge(snap)
        tree = build_span_tree(parent.events)
        assert tree.malformed == 0
        assert all(node.parent is None for node in tree.roots)

    def test_merge_deterministic_across_kill_resume(self):
        # A killed worker ships a partial snapshot; the retry ships the
        # full one. Two campaign recorders absorbing the same sequence
        # must agree byte-for-byte on everything deterministic: span
        # totals, counters, and the re-idded span/parent linkage.
        partial = self._worker_snapshot()
        partial["events_tail"] = partial["events_tail"][:1]
        full = self._worker_snapshot()

        def absorb():
            campaign = Recorder()
            campaign.merge(partial)
            campaign.merge(full)
            snap = campaign.snapshot()
            linkage = [
                (ev.name, ev.attrs.get("span"), ev.attrs.get("parent"))
                for ev in campaign.events
            ]
            return json.dumps(
                {"counters": snap["counters"], "span_totals": snap["span_totals"]},
                sort_keys=True,
            ), linkage

        assert absorb() == absorb()
