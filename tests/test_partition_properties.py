"""Property tests for the partition subsystem (hypothesis).

Two contracts worth pinning beyond examples: the partitioner is a pure
function of the circuit (byte-identical manifest JSON for structurally
identical circuits, across fresh builds and arbitrary parameter draws),
and the boundary-waveform exchange is exact under grid refinement —
piecewise-linear functions are closed under knot insertion, so sampling
a neighbour's iterate onto a finer grid and back loses nothing.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.circuits.multiblock import bridged_rc_blocks, mixed_rate_blocks
from repro.partition import BoundaryWaveform, partition_circuit
from repro.partition.boundary import BoundarySource


def _bridged_params():
    return st.fixed_dictionaries(
        {
            "blocks": st.integers(2, 4),
            "rungs": st.integers(1, 4),
            "section_r": st.floats(100.0, 1e4),
            "section_c": st.floats(0.1e-12, 5e-12),
            "bridge_r": st.floats(1e5, 1e7),
            "bridge_c": st.floats(0.0, 5e-14),
        }
    )


class TestPartitionerDeterminism:
    @given(params=_bridged_params())
    @settings(max_examples=25, deadline=None)
    def test_manifest_json_pure_function_of_circuit(self, params):
        first = partition_circuit(
            bridged_rc_blocks(**params), params["blocks"]
        )
        second = partition_circuit(
            bridged_rc_blocks(**params), params["blocks"]
        )
        assert first.to_json() == second.to_json()

    @given(params=_bridged_params(), requested=st.integers(2, 3))
    @settings(max_examples=25, deadline=None)
    def test_partition_is_an_exact_node_cover(self, params, requested):
        circuit = bridged_rc_blocks(**params)
        requested = min(requested, params["blocks"])
        manifest = partition_circuit(circuit, requested)
        covered = [n for spec in manifest.partitions for n in spec.nodes]
        assert sorted(covered) == sorted(circuit.nodes())
        assert len(covered) == len(set(covered))
        for spec in manifest.boundary:
            assert spec.owner not in spec.consumers

    @given(blocks=st.integers(2, 5), rungs=st.integers(1, 3))
    @settings(max_examples=15, deadline=None)
    def test_mixed_rate_split_matches_block_structure(self, blocks, rungs):
        manifest = partition_circuit(
            mixed_rate_blocks(blocks=blocks, rungs=rungs), blocks
        )
        sizes = sorted(len(spec.nodes) for spec in manifest.partitions)
        assert sizes == [rungs + 1] * blocks


def _waveforms():
    """Strategy: a valid BoundaryWaveform on a strictly increasing grid."""

    @st.composite
    def build(draw):
        n = draw(st.integers(2, 24))
        # Gap ratio capped at 1000:1 so chord slopes stay well inside
        # float precision; the exactness claims below are about linear
        # interpolation, not about surviving catastrophic cancellation.
        gaps = draw(
            st.lists(st.floats(1e-3, 1.0), min_size=n - 1, max_size=n - 1)
        )
        times = np.concatenate(([0.0], np.cumsum(gaps)))
        values = np.array(
            draw(st.lists(st.floats(-10.0, 10.0), min_size=n, max_size=n))
        )
        return BoundaryWaveform(times=times, values=values)

    return build()


class TestBoundaryWaveformRoundTrip:
    @given(wave=_waveforms(), splits=st.integers(1, 4))
    @settings(max_examples=50, deadline=None)
    def test_refine_then_restrict_is_identity(self, wave, splits):
        # Refined grid: original knots plus `splits` interior points per
        # interval. Knot insertion leaves a piecewise-linear function
        # unchanged, so sampling back at the original knots is exact.
        pieces = [wave.times]
        for k in range(1, splits + 1):
            frac = k / (splits + 1)
            pieces.append(wave.times[:-1] + frac * np.diff(wave.times))
        refined_grid = np.unique(np.concatenate(pieces))
        refined = wave.resample(refined_grid)
        back = refined.resample(wave.times)
        np.testing.assert_array_equal(back.times, wave.times)
        np.testing.assert_allclose(back.values, wave.values, rtol=0, atol=1e-12)

    @given(wave=_waveforms())
    @settings(max_examples=25, deadline=None)
    def test_interpolation_agrees_between_grids(self, wave):
        # Time-grid mismatch: what a consumer samples off the refined
        # rendition equals what it samples off the original, everywhere.
        midpoints = wave.times[:-1] + 0.5 * np.diff(wave.times)
        refined = wave.resample(np.union1d(wave.times, midpoints))
        probes = np.linspace(wave.times[0], wave.times[-1], 37)
        np.testing.assert_allclose(
            refined.at(probes), wave.at(probes), rtol=0, atol=1e-9
        )

    @given(wave=_waveforms(), t0=st.floats(-5.0, 5.0))
    @settings(max_examples=25, deadline=None)
    def test_shift_round_trip(self, wave, t0):
        shifted = wave.shifted(t0)
        back = shifted.shifted(-t0)
        np.testing.assert_allclose(back.times, wave.times, rtol=0, atol=1e-9)
        np.testing.assert_array_equal(back.values, wave.values)

    @given(wave=_waveforms())
    @settings(max_examples=25, deadline=None)
    def test_source_replays_the_samples(self, wave):
        source = wave.as_source()
        assert isinstance(source, BoundarySource)
        np.testing.assert_allclose(
            source.values(wave.times), wave.values, rtol=0, atol=1e-12
        )
        for t in source.breakpoints(float(wave.times[-1])):
            assert wave.times[0] < t < wave.times[-1]
