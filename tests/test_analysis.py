"""DC sweep and small-signal AC analyses."""

import numpy as np
import pytest

from repro.analysis.ac import ac_analysis
from repro.analysis.dc import dc_sweep
from repro.circuit.circuit import Circuit
from repro.circuit.components import MosfetModel
from repro.circuit.sources import Dc
from repro.errors import SimulationError
from repro.mna.compiler import compile_circuit


class TestDcSweep:
    def test_divider_transfer_is_linear(self, divider_circuit):
        result = dc_sweep(divider_circuit, "V1", np.linspace(0, 10, 11))
        mid = result.curves.voltage("mid")
        np.testing.assert_allclose(mid.values, 0.75 * result.values, atol=1e-6)

    def test_diode_exponential_turn_on(self, diode_circuit):
        result = dc_sweep(diode_circuit, "V1", np.linspace(0.0, 5.0, 21))
        va = result.curves.voltage("a").values
        # junction voltage saturates logarithmically
        assert va[-1] - va[10] < 0.2
        assert np.all(np.diff(va) >= -1e-9)

    def test_inverter_vtc(self):
        nmos = MosfetModel("n", "nmos", vto=0.7, kp=200e-6)
        pmos = MosfetModel("p", "pmos", vto=0.7, kp=200e-6)
        c = Circuit("vtc")
        c.add_vsource("VDD", "vdd", "0", Dc(3.0))
        c.add_vsource("VIN", "in", "0", Dc(0.0))
        c.add_mosfet("MP", "out", "in", "vdd", "vdd", pmos, w=1e-6, l=1e-6)
        c.add_mosfet("MN", "out", "in", "0", "0", nmos, w=1e-6, l=1e-6)
        result = dc_sweep(c, "VIN", np.linspace(0, 3, 31))
        out = result.curves.voltage("out").values
        assert out[0] == pytest.approx(3.0, abs=0.05)   # input low -> high
        assert out[-1] == pytest.approx(0.0, abs=0.05)  # input high -> low
        # symmetric sizing and thresholds: switch near vdd/2
        mid_crossings = result.curves.voltage("out").crossings(1.5)
        assert mid_crossings[0] == pytest.approx(1.5, abs=0.15)

    def test_current_source_sweepable(self):
        c = Circuit("t")
        c.add_isource("I1", "a", "0", Dc(0.0))
        c.add_resistor("R1", "a", "0", 1e3)
        result = dc_sweep(c, "I1", np.linspace(1e-3, 5e-3, 5))
        va = result.curves.voltage("a").values
        np.testing.assert_allclose(va, -1e3 * result.values, rtol=1e-6)

    def test_original_waveform_restored(self, divider_circuit):
        compiled = compile_circuit(divider_circuit)
        dc_sweep(compiled, "V1", [1.0, 2.0, 3.0])
        wf = compiled.vsource_bank.waveforms[0]
        assert wf.value(0.0) == pytest.approx(10.0)

    def test_unknown_source_rejected(self, divider_circuit):
        with pytest.raises(SimulationError, match="independent source"):
            dc_sweep(divider_circuit, "R1", [0.0, 1.0])

    def test_non_monotonic_values_rejected(self, divider_circuit):
        with pytest.raises(SimulationError, match="strictly increasing"):
            dc_sweep(divider_circuit, "V1", [1.0, 0.5])

    def test_empty_values_rejected(self, divider_circuit):
        with pytest.raises(SimulationError):
            dc_sweep(divider_circuit, "V1", [])


class TestAc:
    def rc(self):
        c = Circuit("rc")
        c.add_vsource("V1", "in", "0", Dc(0.0))
        c.add_resistor("R1", "in", "out", 1e3)
        c.add_capacitor("C1", "out", "0", 1e-9)
        return c

    def test_rc_lowpass_pole(self):
        result = ac_analysis(self.rc(), "V1", np.logspace(3, 8, 60))
        fc = result.corner_frequency("v(out)")
        assert fc == pytest.approx(1.0 / (2 * np.pi * 1e3 * 1e-9), rel=0.05)

    def test_rc_magnitude_formula(self):
        freqs = np.array([1e4, 1.59155e5, 1e7])
        result = ac_analysis(self.rc(), "V1", freqs)
        mag = result.magnitude("v(out)")
        expected = 1.0 / np.sqrt(1.0 + (freqs / 1.59155e5) ** 2)
        np.testing.assert_allclose(mag, expected, rtol=1e-3)

    def test_rc_phase(self):
        result = ac_analysis(self.rc(), "V1", [1.59155e5])
        assert result.phase_deg("v(out)")[0] == pytest.approx(-45.0, abs=0.5)

    def test_divider_flat_response(self, divider_circuit):
        result = ac_analysis(divider_circuit, "V1", np.logspace(3, 9, 10))
        np.testing.assert_allclose(result.magnitude("v(mid)"), 0.75, rtol=1e-9)

    def test_rlc_resonance_peak(self, rlc_circuit):
        f0 = 1.0 / (2 * np.pi * np.sqrt(1e-6 * 1e-9))
        freqs = np.logspace(np.log10(f0) - 1, np.log10(f0) + 1, 101)
        result = ac_analysis(rlc_circuit, "V1", freqs)
        mag = result.magnitude("v(out)")
        peak_freq = freqs[np.argmax(mag)]
        assert peak_freq == pytest.approx(f0, rel=0.05)
        # Q = (1/R) sqrt(L/C) ~ 3.16: clear peaking above unity
        assert mag.max() > 2.0

    def test_linearised_around_op(self, diode_circuit):
        # small-signal conductance of the diode shows up as attenuation
        result = ac_analysis(diode_circuit, "V1", [1e3])
        mag = result.magnitude("v(a)")[0]
        assert 0.0 < mag < 0.1  # diode small-signal resistance ~6 ohm vs 1k

    def test_current_source_excitation(self):
        c = Circuit("t")
        c.add_isource("I1", "a", "0", Dc(1e-3))
        c.add_resistor("R1", "a", "0", 1e3)
        result = ac_analysis(c, "I1", [1e6])
        # 1 A into 1 kOhm: -1000 V (sign: injection extracts from plus)
        assert abs(result.transfer["v(a)"][0]) == pytest.approx(1000.0, rel=1e-9)

    def test_bad_frequencies_rejected(self, divider_circuit):
        with pytest.raises(SimulationError):
            ac_analysis(divider_circuit, "V1", [])
        with pytest.raises(SimulationError):
            ac_analysis(divider_circuit, "V1", [0.0])

    def test_unknown_trace_message(self, divider_circuit):
        result = ac_analysis(divider_circuit, "V1", [1e3])
        with pytest.raises(SimulationError, match="available"):
            result.magnitude("v(nothere)")

    def test_corner_frequency_none_when_flat(self, divider_circuit):
        result = ac_analysis(divider_circuit, "V1", np.logspace(3, 6, 10))
        assert result.corner_frequency("v(mid)") is None
