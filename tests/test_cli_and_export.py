"""Command-line interface and waveform CSV round trip."""

import io

import numpy as np
import pytest

from repro.cli import main
from repro.errors import SimulationError
from repro.waveform.export import read_csv, to_csv_text, write_csv
from repro.waveform.waveform import WaveformSet

DECK = """RC lowpass
V1 in 0 PULSE(0 1 1u 1n 1n 1m)
R1 in out 1k
C1 out 0 1n
.tran 10n 5u
.end
"""

OP_DECK = """divider
V1 top 0 10
R1 top mid 1k
R2 mid 0 3k
.op
.end
"""

DC_DECK = """divider sweep
V1 top 0 0
R1 top mid 1k
R2 mid 0 3k
.dc V1 0 4 1
.end
"""


@pytest.fixture
def deck_file(tmp_path):
    path = tmp_path / "deck.cir"
    path.write_text(DECK)
    return str(path)


class TestCli:
    def test_transient_run(self, deck_file, capsys):
        assert main([deck_file, "--samples", "5"]) == 0
        out = capsys.readouterr().out
        assert "RC lowpass" in out
        assert "v(out)" in out
        assert "transient:" in out

    def test_op_analysis(self, tmp_path, capsys):
        path = tmp_path / "op.cir"
        path.write_text(OP_DECK)
        assert main([str(path)]) == 0
        out = capsys.readouterr().out
        assert "Operating point" in out
        assert "7.5V" in out

    def test_default_op_when_no_analysis(self, tmp_path, capsys):
        path = tmp_path / "noa.cir"
        path.write_text("bare\nV1 a 0 1\nR1 a 0 1k\n.end\n")
        assert main([str(path)]) == 0
        assert "Operating point" in capsys.readouterr().out

    def test_dc_sweep(self, tmp_path, capsys):
        path = tmp_path / "dc.cir"
        path.write_text(DC_DECK)
        assert main([str(path)]) == 0
        out = capsys.readouterr().out
        assert "DC sweep of V1" in out

    def test_wavepipe_mode(self, deck_file, capsys):
        assert main([deck_file, "--wavepipe", "combined", "--threads", "3"]) == 0
        out = capsys.readouterr().out
        assert "wavepipe combined x3" in out
        assert "speedup" in out

    def test_csv_export(self, deck_file, tmp_path, capsys):
        target = tmp_path / "waves.csv"
        assert main([deck_file, "--csv", str(target)]) == 0
        ws = read_csv(str(target))
        assert "v(out)" in ws
        assert ws.voltage("out").final_value() == pytest.approx(1.0 - np.exp(-4.0), abs=0.01)

    def test_signal_selection(self, deck_file, capsys):
        assert main([deck_file, "--signals", "v(out)"]) == 0
        out = capsys.readouterr().out
        assert "v(out)" in out

    def test_missing_deck_is_usage_error(self, capsys):
        assert main([]) == 2

    def test_missing_file_reports_error(self, capsys):
        assert main(["/nonexistent/deck.cir"]) == 1
        assert "error" in capsys.readouterr().err

    def test_bad_deck_reports_error(self, tmp_path, capsys):
        path = tmp_path / "bad.cir"
        path.write_text("title\nZ1 a 0 1k\n")
        assert main([str(path)]) == 1
        assert "unknown element" in capsys.readouterr().err

    def test_unknown_experiment_rejected(self, capsys):
        assert main(["--experiment", "table_zz"]) == 2

    def test_experiment_runs(self, capsys):
        assert main(["--experiment", "table_r1"]) == 0
        assert "Table R1" in capsys.readouterr().out


class TestCsvRoundTrip:
    def make_set(self):
        t = np.linspace(0, 1e-6, 57)
        return WaveformSet(
            t, {"v(a)": np.sin(1e7 * t), "i(V1)": np.cos(1e7 * t) * 1e-3}
        )

    def test_round_trip_lossless(self):
        original = self.make_set()
        text = to_csv_text(original)
        restored = read_csv(io.StringIO(text))
        np.testing.assert_array_equal(restored.times, original.times)
        for name in original.names:
            np.testing.assert_array_equal(
                restored[name].values, original[name].values
            )

    def test_signal_subset(self):
        text = to_csv_text(self.make_set(), signals=["v(a)"])
        restored = read_csv(io.StringIO(text))
        assert restored.names == ["v(a)"]

    def test_unknown_signal_rejected(self):
        with pytest.raises(SimulationError):
            to_csv_text(self.make_set(), signals=["v(zz)"])

    def test_file_path_target(self, tmp_path):
        path = tmp_path / "w.csv"
        write_csv(self.make_set(), str(path))
        restored = read_csv(str(path))
        assert set(restored.names) == {"v(a)", "i(V1)"}

    def test_empty_csv_rejected(self):
        with pytest.raises(SimulationError, match="empty"):
            read_csv(io.StringIO(""))

    def test_missing_time_column_rejected(self):
        with pytest.raises(SimulationError, match="time"):
            read_csv(io.StringIO("a,b\n1,2\n"))

    def test_no_rows_rejected(self):
        with pytest.raises(SimulationError, match="no data"):
            read_csv(io.StringIO("time,v(a)\n"))

    def test_ragged_rows_rejected(self):
        with pytest.raises(SimulationError):
            read_csv(io.StringIO("time,v(a)\n0.0,1.0,2.0\n"))
