"""Engine behaviour under option variations (the knobs users turn)."""

import numpy as np
import pytest

from repro.circuit.circuit import Circuit
from repro.circuit.sources import Pulse, Sin
from repro.core.wavepipe import run_wavepipe
from repro.engine.transient import run_transient
from repro.utils.options import SimOptions


class TestMaxStep:
    def test_max_step_honoured(self, rc_circuit):
        result = run_transient(rc_circuit, 8e-6, options=SimOptions(max_step=0.2e-6))
        assert result.step_sizes.max() <= 0.2e-6 * (1 + 1e-9)

    def test_max_step_honoured_by_wavepipe(self, rc_circuit):
        result = run_wavepipe(
            rc_circuit, 8e-6, scheme="backward", threads=3,
            options=SimOptions(max_step=0.2e-6),
        )
        # chain extensions must respect the absolute ceiling per gap;
        # the recorded per-commit gaps are what max_step constrains
        assert np.all(np.diff(result.times) <= 3 * 0.2e-6 + 1e-12)

    def test_smaller_max_step_more_points(self, rc_circuit):
        loose = run_transient(rc_circuit, 8e-6)
        capped = run_transient(rc_circuit, 8e-6, options=SimOptions(max_step=0.05e-6))
        assert capped.stats.accepted_points > loose.stats.accepted_points


class TestMethodChoice:
    @pytest.mark.parametrize("method", ["be", "trap", "gear2"])
    def test_all_methods_run_wavepipe(self, method, rc_circuit):
        options = SimOptions(method=method)
        result = run_wavepipe(
            rc_circuit, 6e-6, scheme="combined", threads=3, options=options
        )
        expected = 1.0 - np.exp(-(5e-6 - 1e-6) / 1e-6)
        assert result.waveforms.voltage("out").at(5e-6) == pytest.approx(
            expected, abs=0.03
        )

    def test_gear2_on_oscillatory(self, rlc_circuit):
        # BDF2 elongates oscillation periods at coarse steps (a classic
        # property); frequencies must converge together as reltol tightens.
        trap = run_transient(rlc_circuit, 1.5e-6, options=SimOptions(method="trap", reltol=1e-5))
        gear = run_transient(rlc_circuit, 1.5e-6, options=SimOptions(method="gear2", reltol=1e-5))
        f_trap = trap.waveforms.voltage("out").slice(0.1e-6, 1.5e-6).frequency(1.0)
        f_gear = gear.waveforms.voltage("out").slice(0.1e-6, 1.5e-6).frequency(1.0)
        assert f_gear == pytest.approx(f_trap, rel=0.02)
        # and the coarse-step bias has the known sign: gear2 runs slow
        coarse = run_transient(rlc_circuit, 1.5e-6, options=SimOptions(method="gear2", reltol=1e-3))
        f_coarse = coarse.waveforms.voltage("out").slice(0.1e-6, 1.5e-6).frequency(1.0)
        assert f_coarse < f_trap * 1.005


class TestSyncOverhead:
    def test_sync_overhead_reduces_speedup_monotonically(self):
        from repro.circuits.digital import inverter_chain
        from repro.core.wavepipe import compare_with_sequential
        from repro.mna.compiler import compile_circuit

        speedups = []
        for sync in (0.0, 50.0, 500.0):
            options = SimOptions(sync_overhead=sync)
            compiled = compile_circuit(inverter_chain(stages=4), options)
            report = compare_with_sequential(
                compiled, 20e-9, scheme="backward", threads=2, options=options
            )
            speedups.append(report.speedup)
        assert speedups[0] >= speedups[1] >= speedups[2]


class TestTrtol:
    def test_trtol_trades_points_for_error(self, sine_rc_circuit):
        trusting = run_transient(sine_rc_circuit, 40e-6, options=SimOptions(trtol=7.0))
        skeptical = run_transient(sine_rc_circuit, 40e-6, options=SimOptions(trtol=1.0))
        assert skeptical.stats.accepted_points > trusting.stats.accepted_points


class TestPredictorOrder:
    def test_first_order_predictor_runs(self, rc_circuit):
        options = SimOptions(predictor_order=1, newton_guess="predictor")
        result = run_transient(rc_circuit, 6e-6, options=options)
        expected = 1.0 - np.exp(-4.0)
        assert result.waveforms.voltage("out").at(5e-6) == pytest.approx(
            expected, abs=0.02
        )


class TestGuardKnobs:
    def test_guard_disabled_means_no_salvage(self):
        from repro.circuits.digital import ring_oscillator

        options = SimOptions(backward_guard_fraction=0.0)
        result = run_wavepipe(
            ring_oscillator(3), 8e-9, scheme="backward", threads=2, options=options
        )
        assert result.stats.extra.get("guard_salvages", 0) == 0

    def test_spec_gate_disabled_forces_speculation(self, rc_circuit):
        # spec_min_iters=0 lets even 1-iteration linear solves speculate
        options = SimOptions(spec_min_iters=0.0)
        result = run_wavepipe(
            rc_circuit, 8e-6, scheme="forward", threads=2, options=options
        )
        assert result.stats.speculative_solves > 0
