"""The trace store and the cross-node campaign trace stitcher.

Covers the observability tentpole end-to-end at the unit level: trace
contexts persisted through the queue, per-job records written by nodes,
and ``build_campaign_trace`` synthesizing one well-formed span tree per
campaign — request roots per trace id, queue/solve/upload tiers, worker
snapshots re-parented under the solve span, dedup links as zero-cost
children — deterministically enough that two builds export byte-identical
JSONL.
"""

import io

import pytest

from repro.diagnose import explain_trace
from repro.instrument.events import (
    QUEUE_WAIT,
    RESULT_UPLOAD,
    SERVICE_DEDUP,
    SERVICE_JOB,
    SERVICE_REQUEST,
    SERVICE_SOLVE,
)
from repro.instrument.exporters import write_jsonl
from repro.instrument.recorder import Recorder
from repro.instrument.spans import build_span_tree
from repro.instrument.tracectx import TraceContext
from repro.jobs.campaign import monte_carlo
from repro.jobs.spec import CircuitRef, JobSpec
from repro.service.node import FarmNode
from repro.service.queue import JobQueue
from repro.service.trace import TraceStore, build_campaign_trace

DECK = """rc lowpass
V1 in 0 SIN(0 1 1k)
R1 in out 1k
C1 out 0 1u
.tran 10u 1m
.end
"""


def rc_spec(label="rc") -> JobSpec:
    return JobSpec(circuit=CircuitRef(kind="netlist", netlist=DECK), label=label)


def export_bytes(recorder) -> str:
    buf = io.StringIO()
    write_jsonl(recorder, buf)
    return buf.getvalue()


class TestTraceStore:
    def test_roundtrip(self, tmp_path):
        store = TraceStore(tmp_path)
        record = {"hash": "abc", "node": "alpha", "elapsed": 0.25}
        store.put("abc", record)
        assert store.get("abc") == record

    def test_missing_and_torn_records_give_none(self, tmp_path):
        store = TraceStore(tmp_path)
        assert store.get("missing") is None
        store.path("torn").write_text("{not json", encoding="utf-8")
        assert store.get("torn") is None

    def test_latest_settle_wins(self, tmp_path):
        store = TraceStore(tmp_path)
        store.put("h", {"node": "victim", "attempts": 1})
        store.put("h", {"node": "rescue", "attempts": 2})
        assert store.get("h")["node"] == "rescue"


class TestQueueTraceCarriage:
    def test_enqueue_timestamps_and_queue_age(self, tmp_path):
        queue = JobQueue(tmp_path / "q")
        receipt = queue.submit(rc_spec(), tenant="acme")
        entry = queue.entries([receipt.spec_hash])[receipt.spec_hash]
        assert entry["enqueued"] is not None
        [job] = queue.claim("node-a")
        assert job.enqueued == entry["enqueued"]
        assert job.queue_age >= 0.0

    def test_trace_adopted_by_first_submission_then_linked(self, tmp_path):
        queue = JobQueue(tmp_path / "q")
        first = TraceContext.mint(tenant="acme", origin="client", entropy="a")
        second = TraceContext.mint(tenant="bulk", origin="client", entropy="b")
        receipt = queue.submit(rc_spec(), tenant="acme", trace=first)
        queue.submit(rc_spec(), tenant="bulk", trace=second)
        entry = queue.entries([receipt.spec_hash])[receipt.spec_hash]
        assert entry["trace"]["trace_id"] == first.trace_id
        assert [link["trace_id"] for link in entry["trace_links"]] == [
            second.trace_id
        ]

    def test_claim_carries_trace_and_tenants(self, tmp_path):
        queue = JobQueue(tmp_path / "q")
        ctx = TraceContext.mint(tenant="acme", origin="client", entropy="a")
        queue.submit(rc_spec(), tenant="acme", trace=ctx)
        [job] = queue.claim("node-a")
        assert job.trace["trace_id"] == ctx.trace_id
        assert "acme" in job.tenants


@pytest.fixture(scope="module")
def drained_farm(tmp_path_factory):
    """One drained single-node farm: a traced campaign from tenant acme
    plus a duplicate partial submission from tenant bulk (dedup links)
    and one untraced direct submission."""
    root = tmp_path_factory.mktemp("farm") / "queue"
    queue = JobQueue(root)
    plan = monte_carlo(rc_spec(), n=3, seed=7, jitter=0.03)
    ctx = TraceContext.mint(tenant="acme", origin="client", entropy="req-a")
    dup = TraceContext.mint(tenant="bulk", origin="client", entropy="req-b")
    cid, receipts = queue.submit_campaign(
        "traced", plan.jobs, generator=plan.generator, tenant="acme", trace=ctx
    )
    queue.submit(plan.jobs[0], tenant="bulk", trace=dup)
    untraced = queue.submit(rc_spec("solo"), tenant="free")
    # the untraced job rides in the same campaign trace via a second
    # campaign record so the stitcher sees a mixed-group campaign
    cid2, _ = queue.submit_campaign(
        "mixed", [plan.jobs[0], rc_spec("solo")], tenant="free"
    )
    FarmNode(root, node_id="alpha", instrument=Recorder(capture_events=False)).run(
        drain=True
    )
    return {
        "root": root,
        "queue": queue,
        "store": TraceStore(root),
        "cid": cid,
        "cid2": cid2,
        "ctx": ctx,
        "dup": dup,
        "hashes": [r.spec_hash for r in receipts],
        "untraced_hash": untraced.spec_hash,
    }


class TestStitcher:
    def test_unknown_campaign_is_none(self, drained_farm):
        assert build_campaign_trace(
            drained_farm["queue"], drained_farm["store"], "feedface"
        ) is None

    def test_span_tree_is_well_formed(self, drained_farm):
        rec = build_campaign_trace(
            drained_farm["queue"], drained_farm["store"], drained_farm["cid"]
        )
        tree = build_span_tree(list(rec.events))
        assert tree.malformed == 0
        assert tree.problems == []

    def test_one_request_root_with_job_tiers(self, drained_farm):
        rec = build_campaign_trace(
            drained_farm["queue"], drained_farm["store"], drained_farm["cid"]
        )
        tree = build_span_tree(list(rec.events))
        roots = [n for n in tree.roots if n.name == SERVICE_REQUEST]
        assert len(roots) == 1
        root = roots[0]
        assert root.attrs["trace_id"] == drained_farm["ctx"].trace_id
        assert root.attrs["tenant"] == "acme"
        jobs = [c for c in root.children if c.name == SERVICE_JOB]
        assert len(jobs) == 3
        for job in jobs:
            names = [c.name for c in job.children]
            assert names.count(QUEUE_WAIT) == 1
            assert names.count(SERVICE_SOLVE) == 1
            assert names.count(RESULT_UPLOAD) == 1
            assert job.attrs["node"] == "alpha"

    def test_worker_spans_reparent_under_solve(self, drained_farm):
        rec = build_campaign_trace(
            drained_farm["queue"], drained_farm["store"], drained_farm["cid"]
        )
        tree = build_span_tree(list(rec.events))
        solves = [n for n in tree.walk() if n.name == SERVICE_SOLVE]
        # at least one solve span carries the worker's re-parented
        # engine spans (the ring-buffer tail of the actual solve)
        assert any(solve.children for solve in solves)

    def test_dedup_links_are_zero_cost_children(self, drained_farm):
        rec = build_campaign_trace(
            drained_farm["queue"], drained_farm["store"], drained_farm["cid"]
        )
        tree = build_span_tree(list(rec.events))
        dedups = [n for n in tree.walk() if n.name == SERVICE_DEDUP]
        assert len(dedups) >= 1
        by_trace = {n.attrs["trace_id"]: n for n in dedups}
        link = by_trace[drained_farm["dup"].trace_id]
        assert link.cost == 0.0
        assert link.attrs["tenant"] == "bulk"

    def test_untraced_jobs_group_under_their_own_root(self, drained_farm):
        rec = build_campaign_trace(
            drained_farm["queue"], drained_farm["store"], drained_farm["cid2"]
        )
        tree = build_span_tree(list(rec.events))
        roots = {n.attrs["trace_id"]: n for n in tree.roots
                 if n.name == SERVICE_REQUEST}
        # the deduped member keeps its paying (acme) trace id; the solo
        # job never carried one and lands under the untraced root
        assert drained_farm["ctx"].trace_id in roots
        assert "untraced" in roots

    def test_builds_are_byte_deterministic(self, drained_farm):
        queue, store = drained_farm["queue"], drained_farm["store"]
        first = export_bytes(build_campaign_trace(queue, store, drained_farm["cid"]))
        second = export_bytes(build_campaign_trace(queue, store, drained_farm["cid"]))
        assert first == second


class TestExplainServiceTier:
    def _report(self, drained_farm):
        rec = build_campaign_trace(
            drained_farm["queue"], drained_farm["store"], drained_farm["cid"]
        )
        return explain_trace(list(rec.events), rec.snapshot(), source="test")

    def test_service_tier_recognised_before_campaign(self, drained_farm):
        report = self._report(drained_farm)
        cp = report.critical_path
        assert cp["kind"] == "service"
        assert cp["requests"] == 1
        assert cp["jobs"] == 3
        assert cp["dedup_served"] >= 1
        assert cp["critical_tier"] in ("queue_wait", "service_solve",
                                       "result_upload")
        assert cp["critical_job"]
        assert cp["slowest_jobs"]
        assert cp["tenants"]["acme"]["jobs"] == 3
        shares = [cp["tiers"][name]["share"]
                  for name in ("queue_wait", "service_solve", "result_upload")]
        assert abs(sum(shares) - 1.0) < 1e-6

    def test_check_criteria_hold(self, drained_farm):
        report = self._report(drained_farm)
        assert report.spans["count"] > 0
        assert report.spans["malformed"] == 0
        assert report.rejections["classified_fraction"] == 1.0

    def test_report_json_is_byte_deterministic(self, drained_farm):
        assert (self._report(drained_farm).to_json()
                == self._report(drained_farm).to_json())
