"""Linear solver wrapper: dense/sparse paths and singularity diagnostics."""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.errors import SingularMatrixError
from repro.linalg.solve import DENSE_CUTOFF, LinearSolver, condition_estimate


def random_spd(n, seed=0):
    rng = np.random.default_rng(seed)
    a = rng.standard_normal((n, n))
    return sp.csc_matrix(a @ a.T + n * np.eye(n))


class TestSolve:
    @pytest.mark.parametrize("n", [2, 5, DENSE_CUTOFF - 1])
    def test_dense_path(self, n):
        mat = random_spd(n)
        x_true = np.arange(1, n + 1, dtype=float)
        solver = LinearSolver()
        x = solver.solve(mat, mat @ x_true)
        np.testing.assert_allclose(x, x_true, rtol=1e-9)

    def test_sparse_path(self):
        n = DENSE_CUTOFF + 20
        mat = random_spd(n, seed=3)
        x_true = np.linspace(-1, 1, n)
        solver = LinearSolver()
        x = solver.solve(mat, mat @ x_true)
        np.testing.assert_allclose(x, x_true, rtol=1e-8)

    def test_counters(self):
        solver = LinearSolver()
        mat = random_spd(3)
        solver.solve(mat, np.ones(3))
        solver.solve(mat, np.ones(3))
        assert solver.factor_count == 2
        assert solver.solve_count == 2


class TestSingularity:
    def test_dense_singular_raises_with_suspect(self):
        mat = sp.csc_matrix(np.array([[1.0, 0.0], [0.0, 0.0]]))
        solver = LinearSolver(unknown_names=["v(a)", "v(b)"])
        with pytest.raises(SingularMatrixError) as info:
            solver.solve(mat, np.ones(2))
        assert "v(b)" in str(info.value)

    def test_sparse_singular_raises(self):
        n = DENSE_CUTOFF + 5
        dense = np.eye(n)
        dense[n - 1, n - 1] = 0.0
        solver = LinearSolver(unknown_names=[f"v(n{i})" for i in range(n)])
        with pytest.raises(SingularMatrixError):
            solver.solve(sp.csc_matrix(dense), np.ones(n))

    def test_condition_estimate(self):
        assert condition_estimate(sp.csc_matrix(np.eye(3))) == pytest.approx(1.0)
        singular = sp.csc_matrix(np.array([[1.0, 1.0], [1.0, 1.0]]))
        assert condition_estimate(singular) > 1e12
