"""Ensemble facade: request validation, JSON round-trips, promotion.

Mirrors ``test_api_serialization.py`` for the ensemble request type:
``EnsembleRequest.from_dict(to_dict(x), circuit=c) == x`` for any valid
request (both the explicit-``variants`` and the ``ensemble=K`` jitter
spellings), validation reruns on rebuild, and the ``simulate()`` facade
promotes ``variants=``/``ensemble=`` keywords onto the ensemble path.
"""

import json

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.api import AnalysisResult, EnsembleRequest, EnsembleResult, simulate
from repro.circuit.circuit import Circuit
from repro.circuit.sources import Pulse
from repro.errors import SimulationError
from repro.jobs.spec import jitterable_params
from repro.mna.compiler import compile_circuit
from repro.utils.options import SimOptions

from tests.test_api_serialization import options_kwargs

positive = st.floats(
    min_value=1e-12, max_value=1e6, allow_nan=False, allow_infinity=False
)

#: Per-variant override dicts over this module's rc_circuit components.
variants_lists = st.lists(
    st.dictionaries(st.sampled_from(["R1", "C1"]), positive, max_size=2),
    min_size=1,
    max_size=5,
)


def rc_circuit() -> Circuit:
    c = Circuit("rc")
    c.add_vsource("V1", "in", "0", Pulse(0.0, 1.0, delay=1e-8, rise=1e-9, width=1e-6))
    c.add_resistor("R1", "in", "out", 1e3)
    c.add_capacitor("C1", "out", "0", 1e-9)
    return c


class TestEnsembleRequestRoundTrip:
    @settings(max_examples=50, deadline=None)
    @given(kwargs=options_kwargs, variants=variants_lists)
    def test_explicit_variants_roundtrip_is_exact(self, kwargs, variants):
        circuit = rc_circuit()
        request = EnsembleRequest(
            circuit=circuit,
            tstop=1e-6,
            options=SimOptions(**kwargs),
            variants=variants,
        )
        dumped = json.loads(json.dumps(request.to_dict()))
        assert EnsembleRequest.from_dict(dumped, circuit=circuit) == request

    @settings(max_examples=50, deadline=None)
    @given(
        k=st.integers(min_value=1, max_value=64),
        jitter=st.floats(min_value=0.0, max_value=0.5),
        seed=st.integers(min_value=0, max_value=2**31),
    )
    def test_jitter_spec_roundtrip_is_exact(self, k, jitter, seed):
        circuit = rc_circuit()
        request = EnsembleRequest(
            circuit=circuit, tstop=2e-6, ensemble=k, jitter=jitter, seed=seed
        )
        dumped = json.loads(json.dumps(request.to_dict()))
        rebuilt = EnsembleRequest.from_dict(dumped, circuit=circuit)
        assert rebuilt == request
        assert rebuilt.resolve_variants() == request.resolve_variants()

    def test_extras_roundtrip(self):
        circuit = rc_circuit()
        request = EnsembleRequest(
            circuit=circuit,
            tstop=1e-6,
            ensemble=2,
            extras={"uic": True, "node_ics": {"out": 0.5}},
        )
        rebuilt = EnsembleRequest.from_dict(request.to_dict(), circuit=circuit)
        assert rebuilt.extras == {"uic": True, "node_ics": {"out": 0.5}}

    def test_validation_reruns_on_rebuild(self):
        dump = EnsembleRequest(
            circuit=rc_circuit(), tstop=1e-6, ensemble=4
        ).to_dict()
        with pytest.raises(SimulationError, match="requires a circuit"):
            EnsembleRequest.from_dict(dump)  # circuit not reattached


class TestEnsembleRequestValidation:
    def test_circuit_required(self):
        with pytest.raises(SimulationError, match="requires a circuit"):
            EnsembleRequest(tstop=1e-6, ensemble=2)

    def test_compiled_circuit_rejected(self):
        compiled = compile_circuit(rc_circuit())
        with pytest.raises(SimulationError, match="raw Circuit"):
            EnsembleRequest(circuit=compiled, tstop=1e-6, ensemble=2)

    def test_tstop_required(self):
        with pytest.raises(SimulationError, match="tstop"):
            EnsembleRequest(circuit=rc_circuit(), ensemble=2)

    def test_exactly_one_spelling(self):
        with pytest.raises(SimulationError, match="exactly one"):
            EnsembleRequest(circuit=rc_circuit(), tstop=1e-6)
        with pytest.raises(SimulationError, match="exactly one"):
            EnsembleRequest(
                circuit=rc_circuit(), tstop=1e-6, ensemble=2, variants=[{}]
            )

    def test_variants_must_be_nonempty_dicts(self):
        with pytest.raises(SimulationError, match="at least one"):
            EnsembleRequest(circuit=rc_circuit(), tstop=1e-6, variants=[])
        with pytest.raises(SimulationError, match="must be a dict"):
            EnsembleRequest(
                circuit=rc_circuit(), tstop=1e-6, variants=[["R1", 1e3]]
            )

    def test_ensemble_count_and_jitter_bounds(self):
        with pytest.raises(SimulationError, match=">= 1"):
            EnsembleRequest(circuit=rc_circuit(), tstop=1e-6, ensemble=0)
        with pytest.raises(SimulationError, match="jitter"):
            EnsembleRequest(
                circuit=rc_circuit(), tstop=1e-6, ensemble=2, jitter=-0.1
            )

    def test_unknown_extras_rejected(self):
        with pytest.raises(SimulationError, match="unexpected keyword"):
            EnsembleRequest(
                circuit=rc_circuit(), tstop=1e-6, ensemble=2, extras={"bogus": 1}
            )


class TestResolveVariants:
    def test_matches_monte_carlo_draw_order(self):
        circuit = rc_circuit()
        request = EnsembleRequest(
            circuit=circuit, tstop=1e-6, ensemble=3, jitter=0.1, seed=99
        )
        nominal = jitterable_params(circuit)
        rng = np.random.default_rng(99)
        names = sorted(nominal)
        expected = []
        for _ in range(3):
            factors = rng.lognormal(mean=0.0, sigma=0.1, size=len(names))
            expected.append(
                {n: float(nominal[n] * f) for n, f in zip(names, factors)}
            )
        assert request.resolve_variants() == expected

    def test_explicit_variants_copied(self):
        overrides = [{"R1": 2e3}]
        request = EnsembleRequest(
            circuit=rc_circuit(), tstop=1e-6, variants=overrides
        )
        resolved = request.resolve_variants()
        assert resolved == [{"R1": 2e3}]
        resolved[0]["R1"] = 0.0
        assert request.resolve_variants() == [{"R1": 2e3}]

    def test_jitter_needs_perturbable_params(self):
        c = Circuit("bare")
        c.add_vsource("V1", "a", "0", Pulse(0.0, 1.0, delay=1e-8, rise=1e-9, width=1e-6))
        request = EnsembleRequest(circuit=c, tstop=1e-6, ensemble=2)
        with pytest.raises(SimulationError, match="no perturbable"):
            request.resolve_variants()


class TestSimulateFacade:
    def test_ensemble_keyword_promotes(self):
        result = simulate(rc_circuit(), tstop=1e-6, ensemble=3, jitter=0.02, seed=5)
        assert isinstance(result, EnsembleResult)
        assert result.sims == 3
        assert len(result) == 3
        assert isinstance(result[0], AnalysisResult)
        assert result.metrics.scheme == "ensemble"
        assert len(result.params) == 3

    def test_variants_keyword_promotes(self):
        result = simulate(
            rc_circuit(),
            analysis="transient",
            tstop=1e-6,
            variants=[{"R1": 1e3}, {"R1": 2e3}],
        )
        assert isinstance(result, EnsembleResult)
        assert result.params == [{"R1": 1e3}, {"R1": 2e3}]

    def test_identity_variant_matches_sequential(self):
        """A single no-override variant is the legacy path, bit for bit."""
        circuit = rc_circuit()
        seq = simulate(circuit, analysis="transient", tstop=1e-6)
        ens = simulate(circuit, tstop=1e-6, variants=[{}])
        assert np.array_equal(ens.times, seq.times)
        for name in seq.waveforms.names:
            assert np.array_equal(
                ens[0].waveforms[name].values, seq.waveforms[name].values
            )

    def test_ensemble_analysis_validates_spelling(self):
        with pytest.raises(SimulationError, match="exactly one"):
            simulate(rc_circuit(), analysis="ensemble", tstop=1e-6)
