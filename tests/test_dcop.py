"""DC operating point with homotopy fallbacks."""

import numpy as np
import pytest

from repro.circuit.circuit import Circuit
from repro.circuit.components import DiodeModel, MosfetModel
from repro.circuit.sources import Dc, Pulse
from repro.errors import ConvergenceError
from repro.mna.compiler import compile_circuit
from repro.mna.system import MnaSystem
from repro.solver.dcop import solve_operating_point
from repro.utils.options import SimOptions


def op(circuit, options=None, x0=None):
    system = MnaSystem(compile_circuit(circuit, options))
    return system, solve_operating_point(system, options, x0=x0)


class TestBasics:
    def test_divider(self, divider_circuit):
        system, result = op(divider_circuit)
        mid = system.compiled.node_voltage_index("mid")
        assert result.x[mid] == pytest.approx(7.5, rel=1e-6)
        assert result.strategy == "newton"

    def test_capacitors_open_at_dc(self, rc_circuit):
        system, result = op(rc_circuit)
        out = system.compiled.node_voltage_index("out")
        # source is still 0 at t=0 (delayed pulse); out follows in exactly
        assert result.x[out] == pytest.approx(0.0, abs=1e-9)

    def test_inductors_short_at_dc(self):
        c = Circuit("t")
        c.add_vsource("V1", "a", "0", Dc(1.0))
        c.add_inductor("L1", "a", "b", 1e-6)
        c.add_resistor("R1", "b", "0", 100.0)
        system, result = op(c)
        b = system.compiled.node_voltage_index("b")
        j = system.compiled.branch_current_index("L1")
        assert result.x[b] == pytest.approx(1.0, rel=1e-6)
        assert result.x[j] == pytest.approx(0.01, rel=1e-6)

    def test_op_charge_vector_returned(self, rc_circuit):
        system, result = op(rc_circuit)
        assert result.q.shape == (system.n,)

    def test_pulse_sources_use_t0_value(self):
        c = Circuit("t")
        c.add_vsource("V1", "a", "0", Pulse(2.0, 5.0, delay=1e-9))
        c.add_resistor("R1", "a", "0", 1e3)
        system, result = op(c)
        a = system.compiled.node_voltage_index("a")
        assert result.x[a] == pytest.approx(2.0)

    def test_warm_start_used(self, divider_circuit):
        system = MnaSystem(compile_circuit(divider_circuit))
        warm = np.array([10.0, 7.5, -2.5e-3])
        result = solve_operating_point(system, x0=warm)
        assert result.iterations <= 2


class TestNonlinear:
    def test_diode_bias(self, diode_circuit):
        system, result = op(diode_circuit)
        a = system.compiled.node_voltage_index("a")
        # i = (5 - vd)/1k must equal the diode current; vd ~ 0.65 V
        assert 0.55 < result.x[a] < 0.75

    def test_cmos_inverter_static_points(self, inverter_circuit):
        system, result = op(inverter_circuit)
        out = system.compiled.node_voltage_index("out")
        # input pulse is 0 at t=0 -> output high
        assert result.x[out] == pytest.approx(3.0, abs=0.05)

    def test_bridge_rectifier_op(self):
        from repro.circuits.analog import rectifier

        system, result = op(rectifier())
        assert np.all(np.isfinite(result.x))

    def test_mos_cross_coupled_needs_homotopy_or_converges(self):
        # Bistable latch: hard for plain Newton from zeros; any strategy
        # is acceptable as long as a valid solution is produced.
        nmos = MosfetModel("n", "nmos", vto=0.7, kp=200e-6)
        pmos = MosfetModel("p", "pmos", vto=0.7, kp=100e-6)
        c = Circuit("latch")
        c.add_vsource("VDD", "vdd", "0", Dc(3.0))
        for a, b, tag in (("q", "qb", "1"), ("qb", "q", "2")):
            c.add_mosfet(f"MP{tag}", b, a, "vdd", "vdd", pmos, w=2e-6, l=1e-6)
            c.add_mosfet(f"MN{tag}", b, a, "0", "0", nmos, w=1e-6, l=1e-6)
        system, result = op(c)
        out = system.make_buffers()
        system.eval(result.x, 0.0, out)
        residual = system.resistive_residual(out, result.x)
        assert np.abs(residual).max() < 1e-6


class TestFailure:
    def test_unconvergeable_reports_error(self):
        # Two exponentials fighting: a diode reverse-driven by enormous
        # current with a tiny iteration budget on every strategy.
        c = Circuit("t")
        c.add_vsource("V1", "in", "0", Dc(100.0))
        c.add_resistor("R1", "in", "a", 1e-3)
        c.add_diode("D1", "a", "0", DiodeModel())
        options = SimOptions(max_newton_iters=2, gmin_steps=2, source_steps=2)
        system = MnaSystem(compile_circuit(c, options))
        with pytest.raises(ConvergenceError):
            solve_operating_point(system, options)

    def test_gshunt_restored_after_gmin_stepping(self, diode_circuit):
        system = MnaSystem(compile_circuit(diode_circuit))
        original = system.gshunt
        solve_operating_point(system)
        assert system.gshunt == original
