"""Timepoint history: divided differences, prediction, eras."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import SimulationError
from repro.integration.history import (
    Timepoint,
    TimepointHistory,
    divided_difference,
    neville_extrapolate,
)


def tp(t, value):
    x = np.atleast_1d(np.asarray(value, dtype=float))
    return Timepoint(t, x, x.copy(), np.zeros_like(x))


class TestDividedDifference:
    def test_first_difference_is_slope(self):
        dd = divided_difference([(1.0, np.array([3.0])), (0.0, np.array([1.0]))])
        assert dd[0] == pytest.approx(2.0)

    def test_matches_derivative_over_factorial(self):
        # For x(t) = t^3, the 3rd divided difference equals x'''/3! = 1.
        pts = [(t, np.array([t**3])) for t in (0.3, 0.1, 0.0, -0.2)]
        dd = divided_difference(pts)
        assert dd[0] == pytest.approx(1.0, rel=1e-9)

    def test_order_invariance(self):
        pts = [(t, np.array([np.sin(t)])) for t in (0.0, 0.1, 0.25)]
        dd1 = divided_difference(pts)
        dd2 = divided_difference(list(reversed(pts)))
        assert dd1[0] == pytest.approx(dd2[0], rel=1e-12)

    def test_vector_valued(self):
        pts = [(t, np.array([t, 2 * t])) for t in (0.0, 1.0)]
        dd = divided_difference(pts)
        np.testing.assert_allclose(dd, [1.0, 2.0])

    def test_too_few_points_rejected(self):
        with pytest.raises(SimulationError):
            divided_difference([(0.0, np.array([1.0]))])

    def test_coincident_times_rejected(self):
        with pytest.raises(SimulationError):
            divided_difference([(0.0, np.array([1.0])), (0.0, np.array([2.0]))])

    @settings(max_examples=30, deadline=None)
    @given(
        st.lists(
            st.floats(min_value=-5, max_value=5, allow_nan=False),
            min_size=3,
            max_size=3,
            unique=True,
        ).filter(lambda ts: min(abs(x - y) for i, x in enumerate(ts) for y in ts[i + 1 :]) > 1e-2),
        st.floats(min_value=-3, max_value=3, allow_nan=False),
        st.floats(min_value=-3, max_value=3, allow_nan=False),
        st.floats(min_value=-3, max_value=3, allow_nan=False),
    )
    def test_quadratic_exactness(self, times, a, b, c):
        # 2nd divided difference of a*t^2+b*t+c is exactly a (times are
        # kept well separated: nearly coincident points cancel in floats).
        pts = [(t, np.array([a * t * t + b * t + c])) for t in times]
        dd = divided_difference(pts)
        assert dd[0] == pytest.approx(a, rel=1e-6, abs=1e-6)


class TestNeville:
    def test_linear_exact(self):
        pts = [(0.0, np.array([1.0])), (1.0, np.array([3.0]))]
        assert neville_extrapolate(pts, 2.0)[0] == pytest.approx(5.0)

    def test_interpolates_through_points(self):
        pts = [(t, np.array([t**2 - t])) for t in (0.0, 0.5, 1.5)]
        for t, v in pts:
            assert neville_extrapolate(pts, t)[0] == pytest.approx(v[0], abs=1e-12)

    def test_quadratic_exact_extrapolation(self):
        pts = [(t, np.array([2 * t**2 + 1])) for t in (0.0, 0.3, 0.7)]
        assert neville_extrapolate(pts, 2.0)[0] == pytest.approx(9.0, rel=1e-10)

    def test_single_point_constant(self):
        assert neville_extrapolate([(1.0, np.array([4.0]))], 9.0)[0] == 4.0

    def test_empty_rejected(self):
        with pytest.raises(SimulationError):
            neville_extrapolate([], 0.0)


class TestHistoryContainer:
    def test_append_and_access(self):
        h = TimepointHistory()
        h.append(tp(0.0, 1.0))
        h.append(tp(1.0, 2.0))
        assert len(h) == 2
        assert h.last.t == 1.0
        assert h.last_step == 1.0
        assert h.times == [0.0, 1.0]

    def test_non_monotonic_rejected(self):
        h = TimepointHistory()
        h.append(tp(1.0, 0.0))
        with pytest.raises(SimulationError):
            h.append(tp(0.5, 0.0))
        with pytest.raises(SimulationError):
            h.append(tp(1.0, 0.0))

    def test_bounded_length(self):
        h = TimepointHistory(maxlen=3)
        for i in range(6):
            h.append(tp(float(i), i))
        assert len(h) == 3
        assert h.times == [3.0, 4.0, 5.0]

    def test_empty_last_rejected(self):
        with pytest.raises(SimulationError):
            TimepointHistory().last

    def test_last_step_none_with_one_point(self):
        h = TimepointHistory()
        h.append(tp(0.0, 0.0))
        assert h.last_step is None

    def test_clone_is_independent(self):
        h = TimepointHistory()
        h.append(tp(0.0, 0.0))
        snapshot = h.clone()
        h.append(tp(1.0, 1.0))
        assert len(snapshot) == 1
        assert len(h) == 2

    def test_newest_order(self):
        h = TimepointHistory()
        for i in range(4):
            h.append(tp(float(i), i))
        newest = h.newest(2)
        assert [p.t for p in newest] == [3.0, 2.0]


class TestEras:
    def filled(self):
        h = TimepointHistory()
        for i in range(5):
            h.append(tp(float(i), i * i))
        return h

    def test_mark_era_keeps_corner_point(self):
        h = self.filled()
        h.mark_era()
        assert h.era_length == 1
        h.append(tp(5.0, 25.0))
        assert h.era_length == 2

    def test_newest_respects_era(self):
        h = self.filled()
        h.mark_era()
        h.append(tp(5.0, 25.0))
        assert len(h.newest(4)) == 2
        assert len(h.newest(4, same_era=False)) == 4

    def test_era_survives_clone(self):
        h = self.filled()
        h.mark_era()
        assert h.clone().era_length == 1

    def test_era_index_tracks_eviction(self):
        h = TimepointHistory(maxlen=3)
        for i in range(3):
            h.append(tp(float(i), i))
        h.mark_era()
        h.append(tp(3.0, 3.0))
        h.append(tp(4.0, 4.0))  # evicts point 0 then 1
        assert h.era_length == 3  # corner (t=2) + two new points

    def test_predict_limited_to_era(self):
        h = self.filled()  # x = t^2: quadratic predictor would be exact
        h.mark_era()
        # only 1 era point -> constant prediction
        assert h.predict(10.0, order=2)[0] == pytest.approx(16.0)

    def test_predict_quadratic_when_era_allows(self):
        h = self.filled()
        assert h.predict(6.0, order=2)[0] == pytest.approx(36.0, rel=1e-9)


class TestSolutionDividedDifference:
    def test_none_when_insufficient(self):
        h = TimepointHistory()
        h.append(tp(0.0, 0.0))
        assert h.solution_divided_difference(2) is None

    def test_with_candidate(self):
        h = TimepointHistory()
        h.append(tp(0.0, 0.0))
        h.append(tp(1.0, 1.0))
        dd = h.solution_divided_difference(2, candidate=(2.0, np.array([4.0])))
        # x = t^2 over (2, 1, 0): dd2 = 1
        assert dd[0] == pytest.approx(1.0)
