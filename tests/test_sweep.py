"""Parameter sweep utility."""

import numpy as np
import pytest

from repro.analysis.sweep import sweep
from repro.circuit.circuit import Circuit
from repro.circuit.sources import Pulse
from repro.errors import SimulationError, TimestepError
from repro.waveform.measure import rise_time


def rc_factory(resistance):
    c = Circuit(f"rc-{resistance}")
    c.add_vsource("V1", "in", "0", Pulse(0, 1, delay=1e-7, rise=1e-12, width=1.0))
    c.add_resistor("R1", "in", "out", resistance)
    c.add_capacitor("C1", "out", "0", 1e-9)
    return c


def out_rise_time(result):
    return rise_time(result.waveforms.voltage("out"), low=0.0, high=1.0)


def final_out(result):
    return result.waveforms.voltage("out").final_value()


class TestCircuitSweep:
    def test_rise_time_scales_with_r(self):
        result = sweep(
            "R", [500.0, 1e3, 2e3],
            metrics={"t_rise": out_rise_time, "v_final": final_out},
            tstop=20e-6,
            circuit_factory=rc_factory,
        )
        t = result.column("t_rise")
        # tau doubles with R: 10-90% rise = tau ln 9
        assert t[1] / t[0] == pytest.approx(2.0, rel=0.05)
        assert t[2] / t[1] == pytest.approx(2.0, rel=0.05)
        np.testing.assert_allclose(result.column("v_final"), 1.0, atol=1e-3)

    def test_table_renders(self):
        result = sweep(
            "R", [1e3], metrics={"t_rise": out_rise_time}, tstop=10e-6,
            circuit_factory=rc_factory,
        )
        text = result.table()
        assert "R" in text and "t_rise" in text

    def test_wavepipe_backend(self):
        result = sweep(
            "R", [1e3], metrics={"v_final": final_out}, tstop=10e-6,
            circuit_factory=rc_factory, scheme="backward", threads=2,
        )
        assert result.column("v_final")[0] == pytest.approx(1.0, abs=1e-3)


class TestOptionSweep:
    def test_reltol_sweep_on_fixed_circuit(self):
        circuit = rc_factory(1e3)
        result = sweep(
            "reltol", [1e-2, 1e-4],
            metrics={"points": lambda r: r.stats.accepted_points},
            tstop=10e-6,
            circuit=circuit, option_field="reltol",
        )
        points = result.column("points")
        assert points[1] > points[0]  # tighter tolerance, more points


class TestValidation:
    def test_need_exactly_one_target(self):
        with pytest.raises(SimulationError, match="exactly one"):
            sweep("x", [1], metrics={"m": final_out}, tstop=1e-6)
        with pytest.raises(SimulationError, match="exactly one"):
            sweep(
                "x", [1], metrics={"m": final_out}, tstop=1e-6,
                circuit_factory=rc_factory, circuit=rc_factory(1e3),
            )

    def test_fixed_circuit_needs_option_field(self):
        with pytest.raises(SimulationError, match="option_field"):
            sweep("x", [1], metrics={"m": final_out}, tstop=1e-6, circuit=rc_factory(1e3))

    def test_needs_metrics(self):
        with pytest.raises(SimulationError, match="metric"):
            sweep("x", [1], metrics={}, tstop=1e-6, circuit_factory=rc_factory)

    def test_unknown_metric_column(self):
        result = sweep(
            "R", [1e3], metrics={"m": final_out}, tstop=1e-6,
            circuit_factory=rc_factory,
        )
        with pytest.raises(SimulationError, match="available"):
            result.column("zz")


class TestFailureHandling:
    def bad_factory(self, value):
        if value > 1:
            raise ValueError("boom")
        return rc_factory(1e3)

    def test_failures_raise_by_default(self):
        with pytest.raises(ValueError):
            sweep(
                "x", [0, 2], metrics={"m": final_out}, tstop=1e-6,
                circuit_factory=self.bad_factory,
            )

    def test_skip_failures_records_them(self):
        result = sweep(
            "x", [0, 2], metrics={"m": final_out}, tstop=1e-6,
            circuit_factory=self.bad_factory, skip_failures=True,
        )
        assert 2 in result.failures
        assert np.isnan(result.column("m")[1])
        assert np.isfinite(result.column("m")[0])

    def test_none_metric_becomes_nan(self):
        result = sweep(
            "R", [1e3], metrics={"none": lambda r: None}, tstop=1e-6,
            circuit_factory=rc_factory,
        )
        assert np.isnan(result.column("none")[0])
