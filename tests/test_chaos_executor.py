"""ChaosExecutor: adversarial scheduling that must not change results.

Covers the executor contract (task-order results, deterministic seeded
permutations, delay/fault injection, close delegation) and the property
it exists to prove: a WavePipe run driven through chaos scheduling
commits bit-identical waveforms to the deterministic serial reference.
"""

import threading

import numpy as np
import pytest

from repro.core.wavepipe import run_wavepipe
from repro.errors import SimulationError
from repro.instrument import Recorder
from repro.mna.compiler import compile_circuit
from repro.parallel.executors import SerialExecutor, ThreadExecutor
from repro.verify.chaos import ChaosExecutor, ChaosFault


def _tasks(values, log=None):
    def make(v):
        def run():
            if log is not None:
                log.append(v)
            return v

        return run

    return [make(v) for v in values]


class TestChaosExecutorContract:
    def test_results_in_task_order(self):
        ex = ChaosExecutor(seed=123)
        for _ in range(5):  # several stages, permutation varies per stage
            assert ex.run_stage(_tasks(list(range(8)))) == list(range(8))

    def test_execution_order_actually_permuted(self):
        log = []
        ChaosExecutor(seed=1).run_stage(_tasks(list(range(16)), log))
        assert sorted(log) == list(range(16))
        assert log != list(range(16))  # seed 1 scrambles a 16-task stage

    def test_same_seed_same_schedule(self):
        log_a, log_b = [], []
        ChaosExecutor(seed=7).run_stage(_tasks(list(range(10)), log_a))
        ChaosExecutor(seed=7).run_stage(_tasks(list(range(10)), log_b))
        assert log_a == log_b

    def test_different_seed_different_schedule(self):
        log_a, log_b = [], []
        ChaosExecutor(seed=7).run_stage(_tasks(list(range(12)), log_a))
        ChaosExecutor(seed=8).run_stage(_tasks(list(range(12)), log_b))
        assert log_a != log_b

    def test_empty_stage(self):
        assert ChaosExecutor(seed=0).run_stage([]) == []

    def test_delay_injection_preserves_results(self):
        ex = ChaosExecutor(ThreadExecutor(4), seed=3, max_delay=0.01)
        try:
            assert ex.run_stage(_tasks([1, 2, 3, 4])) == [1, 2, 3, 4]
        finally:
            ex.close()

    def test_fault_injection_raises_chaos_fault(self):
        ex = ChaosExecutor(seed=0, fault_rate=1.0)
        with pytest.raises(ChaosFault, match="chaos-injected"):
            ex.run_stage(_tasks([1, 2]))

    def test_fault_propagates_through_thread_pool(self):
        ex = ChaosExecutor(ThreadExecutor(2), seed=0, fault_rate=1.0)
        try:
            with pytest.raises(ChaosFault):
                ex.run_stage(_tasks([1, 2]))
        finally:
            ex.close()

    def test_close_delegates_to_inner(self):
        inner = ThreadExecutor(2)
        ex = ChaosExecutor(inner, seed=0)
        ex.close()
        with pytest.raises(SimulationError, match="closed"):
            inner.run_stage(_tasks([1]))

    def test_default_inner_is_serial(self):
        assert isinstance(ChaosExecutor().inner, SerialExecutor)

    def test_thread_inner_still_concurrent(self):
        barrier = threading.Barrier(3, timeout=5.0)

        def task():
            barrier.wait()
            return True

        ex = ChaosExecutor(ThreadExecutor(3), seed=5)
        try:
            assert ex.run_stage([task, task, task]) == [True, True, True]
        finally:
            ex.close()

    def test_recorder_counters(self):
        rec = Recorder(capture_events=True)
        ex = ChaosExecutor(seed=0)
        ex.recorder = rec
        ex.run_stage(_tasks([1, 2, 3]))
        assert rec.counter("chaos.stages") == 1
        assert rec.counter("chaos.tasks") == 3
        [event] = [e for e in rec.events if e.name == "chaos_stage"]
        assert sorted(event.attrs["permutation"]) == [0, 1, 2]


class TestChaosOrderIndependence:
    """The point of the whole exercise: scrambled scheduling commits the
    exact same pipeline results as the deterministic reference."""

    @pytest.mark.parametrize("scheme", ["backward", "forward", "combined"])
    def test_wavepipe_bit_identical_under_chaos(self, scheme, rc_circuit):
        compiled = compile_circuit(rc_circuit)
        reference = run_wavepipe(
            compiled, 8e-6, scheme=scheme, threads=3, executor="serial"
        )
        chaotic = run_wavepipe(
            compiled, 8e-6, scheme=scheme, threads=3,
            executor=ChaosExecutor(seed=1234),
        )
        np.testing.assert_array_equal(reference.times, chaotic.times)
        for name in reference.waveforms.names:
            np.testing.assert_array_equal(
                reference.waveforms[name].values,
                chaotic.waveforms[name].values,
                err_msg=f"{scheme}: {name} diverged under chaos scheduling",
            )
        assert (
            reference.stats.accepted_points == chaotic.stats.accepted_points
        )

    def test_caller_provided_executor_survives_run(self, rc_circuit):
        """run_wavepipe only closes executors it created itself, so one
        chaos executor can serve a whole verification lattice."""
        compiled = compile_circuit(rc_circuit)
        ex = ChaosExecutor(ThreadExecutor(2), seed=9)
        try:
            run_wavepipe(compiled, 4e-6, scheme="combined", threads=2, executor=ex)
            # a second run on the same executor must not hit a dead pool
            run_wavepipe(compiled, 4e-6, scheme="combined", threads=2, executor=ex)
        finally:
            ex.close()
