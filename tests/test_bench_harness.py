"""Bench harness plumbing: table/series rendering and the registry.

The heavy experiments run under ``benchmarks/``; here we cover the fast
machinery they rely on, plus Table R1 (cheap) end to end.
"""

import numpy as np
import pytest

from repro.bench.experiments import EXPERIMENTS, run_experiment, table_r1
from repro.bench.report import CLAIMS
from repro.bench.tables import render_series, render_table


class TestRenderTable:
    def test_alignment_and_separator(self):
        text = render_table(
            ["name", "value"], [["a", 1.0], ["longer", 123.456]], title="T"
        )
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "name" in lines[1] and "value" in lines[1]
        assert set(lines[2]) <= {"-", "+"}
        widths = {len(line) for line in lines[1:]}
        assert len(widths) == 1  # every row padded to the same width

    def test_float_formatting(self):
        text = render_table(["x"], [[0.123456789]])
        assert "0.123" in text

    def test_non_float_cells_pass_through(self):
        text = render_table(["a", "b"], [[12, "hello"]])
        assert "12" in text and "hello" in text

    def test_no_title(self):
        text = render_table(["h"], [["v"]])
        assert text.splitlines()[0].startswith("h")


class TestRenderSeries:
    def test_basic_plot_structure(self):
        x = np.linspace(0, 1, 20)
        text = render_series(x, {"sin": np.sin(6 * x)}, title="plot", width=40, height=8)
        lines = text.splitlines()
        assert lines[0] == "plot"
        assert lines[1].startswith("y:")
        assert sum(1 for line in lines if line.startswith("|")) == 8
        assert any("o=sin" in line for line in lines)

    def test_multiple_series_distinct_markers(self):
        x = np.linspace(0, 1, 10)
        text = render_series(x, {"a": x, "b": 1 - x})
        assert "o=a" in text and "x=b" in text

    def test_constant_series_does_not_crash(self):
        x = np.linspace(0, 1, 5)
        text = render_series(x, {"flat": np.ones(5)})
        assert "flat" in text

    def test_logx(self):
        x = np.logspace(0, 3, 10)
        text = render_series(x, {"a": x}, logx=True)
        assert "(log10)" in text


class TestRegistry:
    def test_all_experiments_have_claims(self):
        assert set(EXPERIMENTS) == set(CLAIMS)

    def test_unknown_experiment_raises(self):
        with pytest.raises(KeyError, match="available"):
            run_experiment("table_r99")

    def test_table_r1_runs(self):
        result = run_experiment("table_r1")
        assert result.exp_id == "table_r1"
        assert "ring5" in result.text
        assert result.data["mixer"]["kind"] == "analog"

    def test_table_r1_subset(self):
        result = table_r1(names=["ring5", "mixer"])
        assert set(result.data) == {"ring5", "mixer"}
