"""Waveform containers, measurements and run comparison."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import SimulationError
from repro.waveform.waveform import (
    Deviation,
    Waveform,
    WaveformSet,
    compare,
    worst_deviation,
)


def sine_wave(freq=1e6, n=400, tstop=5e-6, amp=1.0, name="sig"):
    t = np.linspace(0, tstop, n)
    return Waveform(t, amp * np.sin(2 * np.pi * freq * t), name)


class TestWaveform:
    def test_validation(self):
        with pytest.raises(SimulationError):
            Waveform(np.array([0.0, 1.0]), np.array([0.0]))
        with pytest.raises(SimulationError):
            Waveform(np.array([0.0, 0.0]), np.array([1.0, 2.0]))
        with pytest.raises(SimulationError):
            Waveform(np.array([[0.0]]), np.array([[1.0]]))

    def test_interpolation_and_clamping(self):
        w = Waveform(np.array([0.0, 1.0, 2.0]), np.array([0.0, 10.0, 0.0]))
        assert w.at(0.5) == pytest.approx(5.0)
        assert w.at(-1.0) == 0.0
        assert w.at(3.0) == 0.0
        np.testing.assert_allclose(w.at(np.array([0.5, 1.5])), [5.0, 5.0])

    def test_resample(self):
        w = sine_wave()
        grid = np.linspace(0, 4e-6, 37)
        r = w.resample(grid)
        assert len(r) == 37
        np.testing.assert_allclose(r.values, w.at(grid))

    def test_slice(self):
        w = Waveform(np.arange(10.0), np.arange(10.0))
        s = w.slice(2.0, 5.0)
        assert s.times[0] == 2.0
        assert s.times[-1] == 5.0

    def test_peak_to_peak(self):
        assert sine_wave(amp=2.0).peak_to_peak() == pytest.approx(4.0, rel=1e-3)

    def test_final_value(self):
        w = Waveform(np.array([0.0, 1.0]), np.array([3.0, 7.0]))
        assert w.final_value() == 7.0
        with pytest.raises(SimulationError):
            Waveform(np.array([]), np.array([])).final_value()


class TestCrossings:
    def test_rising_and_falling(self):
        # 2.2 us window: rising zeros at 1u and 2u, falling at 0.5u, 1.5u
        # (endpoint zeros sitting exactly on samples are not robust crossings)
        w = sine_wave(freq=1e6, tstop=2.2e-6, n=2200)
        rises = w.crossings(0.0, "rise")
        falls = w.crossings(0.0, "fall")
        assert rises.size == 2
        assert falls.size == 2
        assert falls[0] == pytest.approx(0.5e-6, rel=1e-3)

    def test_crossing_interpolates(self):
        w = Waveform(np.array([0.0, 1.0]), np.array([-1.0, 3.0]))
        assert w.crossings(0.0)[0] == pytest.approx(0.25)

    def test_unknown_direction_rejected(self):
        with pytest.raises(SimulationError):
            sine_wave().crossings(0.0, "sideways")

    def test_period_and_frequency(self):
        w = sine_wave(freq=2e6, tstop=5e-6, n=4000)
        assert w.period() == pytest.approx(0.5e-6, rel=1e-3)
        assert w.frequency() == pytest.approx(2e6, rel=1e-3)

    def test_period_none_for_flat(self):
        w = Waveform(np.linspace(0, 1, 10), np.ones(10))
        assert w.period() is None
        assert w.frequency() is None

    @settings(max_examples=20, deadline=None)
    @given(st.floats(min_value=5e5, max_value=5e6))
    def test_frequency_recovery_property(self, freq):
        w = sine_wave(freq=freq, tstop=8 / freq, n=6000)
        assert w.frequency() == pytest.approx(freq, rel=5e-3)


class TestWaveformSet:
    def make(self):
        t = np.linspace(0, 1, 11)
        return WaveformSet(t, {"v(a)": t * 2, "i(V1)": -t})

    def test_indexing(self):
        ws = self.make()
        assert ws.voltage("a").at(0.5) == pytest.approx(1.0)
        assert ws.current("V1").at(0.5) == pytest.approx(-0.5)
        assert "v(a)" in ws
        assert set(ws.names) == {"v(a)", "i(V1)"}

    def test_missing_trace_message_lists_options(self):
        with pytest.raises(SimulationError, match="available"):
            self.make()["v(zz)"]

    def test_length_mismatch_rejected(self):
        with pytest.raises(SimulationError):
            WaveformSet(np.array([0.0, 1.0]), {"v(a)": np.array([1.0])})


class TestCompare:
    def two_sets(self, shift=0.0, noise=0.0):
        t1 = np.linspace(0, 1e-6, 300)
        t2 = np.linspace(0, 1e-6, 173)  # deliberately different sampling
        sig = lambda t: np.sin(2 * np.pi * 3e6 * t)
        a = WaveformSet(t1, {"v(x)": sig(t1), "v(const)": np.full_like(t1, 3.0)})
        b = WaveformSet(
            t2,
            {
                "v(x)": sig(t2 + shift) + noise,
                "v(const)": np.full_like(t2, 3.0) + noise,
            },
        )
        return a, b

    def test_identical_runs_zero_deviation(self):
        a, b = self.two_sets()
        devs = compare(a, b)
        assert worst_deviation(devs).max_abs < 5e-3  # resampling noise only

    def test_shift_detected(self):
        a, b = self.two_sets(shift=20e-9)
        dev = next(d for d in compare(a, b) if d.name == "v(x)")
        assert dev.max_abs > 0.1
        assert dev.rms > 0.01

    def test_constant_signal_scale_not_zero(self):
        a, b = self.two_sets(noise=1e-9)
        dev = next(d for d in compare(a, b) if d.name == "v(const)")
        # nanovolts on a 3 V rail must read as a tiny relative deviation
        assert dev.max_relative < 1e-8

    def test_signal_selection(self):
        a, b = self.two_sets()
        devs = compare(a, b, names=["v(x)"])
        assert [d.name for d in devs] == ["v(x)"]

    def test_non_overlapping_rejected(self):
        t1 = np.linspace(0, 1, 10)
        t2 = np.linspace(2, 3, 10)
        a = WaveformSet(t1, {"v(a)": t1})
        b = WaveformSet(t2, {"v(a)": t2})
        with pytest.raises(SimulationError, match="overlap"):
            compare(a, b)

    def test_worst_deviation_empty(self):
        assert worst_deviation([]) is None

    def test_max_relative_infinite_scale_guard(self):
        dev = Deviation("x", max_abs=1.0, rms=0.5, reference_scale=0.0)
        assert dev.max_relative == float("inf")
        dev0 = Deviation("x", max_abs=0.0, rms=0.0, reference_scale=0.0)
        assert dev0.max_relative == 0.0
