"""repro.diagnose: automated run diagnosis and the `repro explain` CLI.

Pins the acceptance properties of the diagnosis layer: the JSON report
is byte-identical across reruns of the same deterministic run, the
critical path names the bounding lane (or job), every rejected step is
classified by cause, speculation economics and the solver-phase split
are populated, and the CLI front door round-trips trace files with the
documented exit codes.
"""

import json

import pytest

from repro.circuit.circuit import Circuit
from repro.circuit.components import DiodeModel
from repro.circuit.sources import Sin
from repro.cli import main
from repro.core.wavepipe import run_wavepipe
from repro.diagnose import (
    explain_jsonl,
    explain_recorder,
    explain_trace,
    render_html,
    render_text,
)
from repro.engine.transient import run_transient
from repro.instrument import Recorder, write_jsonl


def stiff_circuit() -> Circuit:
    c = Circuit("explain-rectifier")
    c.add_vsource("V1", "in", "0", Sin(0.0, 5.0, 1e5))
    c.add_resistor("R1", "in", "a", 100.0)
    c.add_diode("D1", "a", "out", DiodeModel(is_=1e-14, n=1.5))
    c.add_capacitor("C1", "out", "0", 1e-7)
    c.add_resistor("R2", "out", "0", 1e4)
    return c


TSTOP = 2e-5


def traced_run(scheme="combined", threads=3) -> Recorder:
    rec = Recorder()
    run_wavepipe(
        stiff_circuit(), TSTOP, scheme=scheme, threads=threads, instrument=rec
    )
    return rec


@pytest.fixture(scope="module")
def pipelined_report():
    return explain_recorder(traced_run(), source="run")


class TestReportContent:
    def test_critical_path_names_bounding_lane(self, pipelined_report):
        cp = pipelined_report.critical_path
        assert cp["kind"] == "pipeline"
        assert cp["stages"] > 0
        assert cp["critical_lane"] == cp["lanes"][0]["lane"]
        assert cp["lanes"][0]["bounding_cost"] > 0
        shares = [entry["share"] for entry in cp["lanes"]]
        assert sum(shares) == pytest.approx(1.0, abs=1e-6)

    def test_all_rejections_classified(self, pipelined_report):
        rej = pipelined_report.rejections
        assert rej["total"] > 0  # the stiff circuit must reject some steps
        assert rej["classified_fraction"] == 1.0
        assert rej["classified"] == rej["total"]
        assert sum(rej["causes"].values()) == rej["total"]
        assert rej["causes"]["lte_reject"] > 0

    def test_step_timeline_tracks_events(self, pipelined_report):
        timeline = pipelined_report.rejections["step_timeline"]
        assert timeline
        assert {entry["event"] for entry in timeline} == {"accept", "reject"}
        assert all(entry["h"] > 0 for entry in timeline)

    def test_speculation_economics(self, pipelined_report):
        spec = pipelined_report.speculation
        assert spec["resolved"] > 0
        assert spec["work_risked"] > 0
        assert 0.0 <= spec["efficiency"] <= 1.0
        curve = spec["depth_curve"]
        assert curve and curve[0]["depth"] == 1
        assert all(0.0 <= entry["hit_rate"] <= 1.0 for entry in curve)

    def test_phase_split_with_class_attribution(self, pipelined_report):
        phases = pipelined_report.phases
        assert phases["total_cost"] > 0
        for name in ("device_eval", "assembly", "factor", "backsolve"):
            assert phases[name]["cost"] > 0
        by_class = phases["device_eval"]["by_class"]
        assert "diodes" in by_class and by_class["diodes"] > 0
        shares = [
            phases[n]["share"]
            for n in ("device_eval", "assembly", "factor", "backsolve")
        ]
        assert sum(shares) == pytest.approx(1.0, abs=1e-6)

    def test_sequential_run_pins_lane_zero(self):
        rec = Recorder()
        run_transient(stiff_circuit(), TSTOP, instrument=rec)
        report = explain_recorder(rec)
        assert report.critical_path["kind"] == "sequential"
        assert report.critical_path["critical_lane"] == 0
        assert report.spans["malformed"] == 0

    def test_campaign_trace_ranks_jobs(self):
        rec = Recorder()
        with rec.tree_span("campaign_run", campaign="demo"):
            rec.emit_span("job_run", ts=0.0, dur=2.0, outcome="done",
                          cost=20.0, label="slow")
            rec.emit_span("job_run", ts=0.0, dur=1.0, outcome="done",
                          cost=5.0, label="fast")
        report = explain_recorder(rec)
        cp = report.critical_path
        assert cp["kind"] == "campaign"
        assert cp["critical_job"] == "slow"
        assert [j["label"] for j in cp["slowest_jobs"]] == ["slow", "fast"]

    def test_empty_trace_degrades_gracefully(self):
        report = explain_trace([], {})
        assert report.spans["count"] == 0
        assert report.rejections["total"] == 0
        assert report.rejections["classified_fraction"] == 1.0
        assert report.speculation["efficiency"] == 1.0
        render_text(report)  # must not raise


class TestDeterminism:
    def test_json_byte_identical_across_reruns(self):
        a = explain_recorder(traced_run(), source="x").to_json()
        b = explain_recorder(traced_run(), source="x").to_json()
        assert a == b

    def test_report_carries_no_wall_clock(self, pipelined_report):
        # ts/dur never enter the report: every float is a count, a work
        # quantity, or a simulated time. Spot-check the flattened keys.
        def keys(obj, prefix=""):
            if isinstance(obj, dict):
                for k, v in obj.items():
                    yield from keys(v, f"{prefix}.{k}")
            elif isinstance(obj, list):
                for v in obj:
                    yield from keys(v, prefix)
            else:
                yield prefix

        for key in keys(pipelined_report.to_dict()):
            assert ".ts" not in key and ".dur" not in key


class TestRenderers:
    def test_text_report_mentions_the_essentials(self, pipelined_report):
        text = render_text(pipelined_report)
        assert "critical path" in text
        assert "bounded by lane" in text
        assert "100% classified" in text
        assert "device_eval" in text

    def test_html_is_self_contained(self, pipelined_report):
        rec = traced_run(scheme="forward")
        page = render_html(rec.events, explain_recorder(rec))
        assert page.startswith("<!DOCTYPE html>")
        assert "<script src=" not in page and "href=" not in page
        assert 'class="span"' in page
        assert "Diagnosis" in page


class TestExplainCli:
    @pytest.fixture()
    def trace_file(self, tmp_path):
        path = tmp_path / "run.jsonl"
        write_jsonl(traced_run(), path)
        return path

    def test_explain_text_and_check(self, trace_file, capsys):
        assert main(["explain", str(trace_file), "--check"]) == 0
        out = capsys.readouterr().out
        assert "bounded by lane" in out

    def test_explain_json_deterministic(self, trace_file, tmp_path):
        first, second = tmp_path / "a.json", tmp_path / "b.json"
        assert main(["explain", str(trace_file), "--json", str(first)]) == 0
        assert main(["explain", str(trace_file), "--json", str(second)]) == 0
        assert first.read_bytes() == second.read_bytes()
        report = json.loads(first.read_text())
        assert report["rejections"]["classified_fraction"] == 1.0

    def test_explain_json_to_stdout(self, trace_file, capsys):
        assert main(["explain", str(trace_file), "--json", "-"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["critical_path"]["critical_lane"] is not None

    def test_explain_writes_html(self, trace_file, tmp_path):
        out = tmp_path / "run.html"
        assert main(["explain", str(trace_file), "--html", str(out)]) == 0
        assert out.read_text().startswith("<!DOCTYPE html>")

    def test_explain_missing_file_exits_2(self, tmp_path, capsys):
        assert main(["explain", str(tmp_path / "nope.jsonl")]) == 2
        assert "error" in capsys.readouterr().err

    def test_explain_rejects_non_jsonl(self, tmp_path, capsys):
        bad = tmp_path / "trace.jsonl"
        bad.write_text("not json at all\n")
        assert main(["explain", str(bad)]) == 2
        assert "not a JSONL trace" in capsys.readouterr().err

    def test_check_fails_on_empty_trace(self, tmp_path, capsys):
        empty = tmp_path / "empty.jsonl"
        write_jsonl(Recorder(), empty)
        assert main(["explain", str(empty), "--check"]) == 1
        assert "no spans" in capsys.readouterr().err

    def test_batch_trace_flag_feeds_explain(self, tmp_path, capsys):
        trace = tmp_path / "campaign.jsonl"
        rc = main(
            [
                "batch",
                "--circuit",
                "ring5",
                "--montecarlo",
                "2",
                "--seed",
                "3",
                "--trace",
                str(trace),
            ]
        )
        assert rc == 0
        assert trace.exists()
        capsys.readouterr()
        report = explain_jsonl(trace)
        assert report.critical_path["kind"] == "campaign"
        assert report.critical_path["critical_job"]
        assert report.spans["malformed"] == 0
