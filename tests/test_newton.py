"""Newton-Raphson solver behaviour."""

import numpy as np
import pytest

from repro.circuit.circuit import Circuit
from repro.circuit.components import DiodeModel
from repro.circuit.sources import Dc
from repro.mna.compiler import compile_circuit
from repro.mna.system import MnaSystem
from repro.solver.newton import iteration_work, newton_solve
from repro.utils.options import SimOptions


def make_system(circuit, options=None):
    return MnaSystem(compile_circuit(circuit, options))


class TestLinearCircuits:
    def test_divider_solves_exactly(self, divider_circuit):
        system = make_system(divider_circuit)
        result = newton_solve(system, 0.0, 0.0, 0.0, np.zeros(system.n))
        assert result.converged
        mid = system.compiled.node_voltage_index("mid")
        assert result.x[mid] == pytest.approx(7.5, rel=1e-6)

    def test_linear_converges_fast(self, divider_circuit):
        system = make_system(divider_circuit)
        result = newton_solve(system, 0.0, 0.0, 0.0, np.zeros(system.n))
        assert result.iterations <= 3

    def test_branch_current_correct(self, divider_circuit):
        system = make_system(divider_circuit)
        result = newton_solve(system, 0.0, 0.0, 0.0, np.zeros(system.n))
        j = system.compiled.branch_current_index("V1")
        # 10 V across 4k total: 2.5 mA flows out of the source's plus pin,
        # i.e. the branch current (plus -> minus through source) is -2.5mA? No:
        # KCL at 'top': current into R1 = 2.5mA = branch current x[j].
        assert result.x[j] == pytest.approx(-2.5e-3, rel=1e-6)


class TestNonlinearCircuits:
    def test_diode_resistor_converges(self, diode_circuit):
        system = make_system(diode_circuit)
        result = newton_solve(system, 0.0, 0.0, 0.0, np.zeros(system.n))
        assert result.converged
        a = system.compiled.node_voltage_index("a")
        # forward drop of a small-signal diode at ~4.3 mA
        assert 0.55 < result.x[a] < 0.75

    def test_kcl_residual_small_at_solution(self, diode_circuit):
        system = make_system(diode_circuit)
        result = newton_solve(system, 0.0, 0.0, 0.0, np.zeros(system.n))
        out = system.make_buffers()
        system.eval(result.x, 0.0, out)
        residual = system.resistive_residual(out, result.x)
        assert np.abs(residual).max() < 1e-6

    def test_series_diodes(self):
        c = Circuit("t")
        c.add_vsource("V1", "in", "0", Dc(3.0))
        c.add_resistor("R1", "in", "a", 100.0)
        c.add_diode("D1", "a", "b", DiodeModel())
        c.add_diode("D2", "b", "0", DiodeModel())
        system = make_system(c)
        result = newton_solve(system, 0.0, 0.0, 0.0, np.zeros(system.n))
        assert result.converged
        a = system.compiled.node_voltage_index("a")
        b = system.compiled.node_voltage_index("b")
        # two junction drops split evenly
        assert result.x[a] - result.x[b] == pytest.approx(result.x[b], rel=0.05)


class TestControls:
    def test_iter_cap_returns_unconverged_without_error(self, diode_circuit):
        system = make_system(diode_circuit)
        result = newton_solve(
            system, 0.0, 0.0, 0.0, np.zeros(system.n), iter_cap=1
        )
        assert not result.converged
        assert result.iterations == 1
        assert result.failure == ""

    def test_work_units_proportional_to_iterations(self, diode_circuit):
        system = make_system(diode_circuit)
        result = newton_solve(system, 0.0, 0.0, 0.0, np.zeros(system.n))
        assert result.work_units == pytest.approx(
            result.iterations * iteration_work(system)
        )

    def test_iteration_limit_reports_failure(self, diode_circuit):
        system = make_system(diode_circuit)
        options = SimOptions(max_newton_iters=2)
        result = newton_solve(system, 0.0, 0.0, 0.0, np.zeros(system.n), options)
        assert not result.converged
        assert "iteration limit" in result.failure

    def test_voltage_limit_damps_updates(self, diode_circuit):
        system = make_system(diode_circuit)
        # A huge first step would shoot the diode voltage to ~5 V without
        # damping; limiting keeps the iterate sane and still converges.
        options = SimOptions(voltage_limit=0.5)
        result = newton_solve(system, 0.0, 0.0, 0.0, np.zeros(system.n), options)
        assert result.converged

    def test_transient_alpha0_term(self, rc_circuit):
        # With alpha0 large (tiny step), the capacitor holds its voltage:
        # solving at t just after the step with q history from v(out)=0
        # must keep v(out) near 0.
        system = make_system(rc_circuit)
        out_idx = system.compiled.node_voltage_index("out")
        n = system.n
        buffers = system.make_buffers()
        x0 = np.zeros(n)
        x0[system.compiled.node_voltage_index("in")] = 1.0
        system.eval(np.zeros(n), 0.0, buffers)
        q_prev = system.charge(buffers)
        h = 1e-12  # much smaller than tau = 1 us
        alpha0 = 1.0 / h
        beta = -q_prev / h
        result = newton_solve(system, 2e-6, alpha0, beta, x0)
        assert result.converged
        assert abs(result.x[out_idx]) < 1e-4
