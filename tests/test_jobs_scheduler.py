"""Scheduler machinery: backends, cache, retries, crash/timeout isolation.

The process-pool cases use the ``FAULT_HOOK`` in :mod:`repro.jobs.workers`
to simulate worker death and hangs; under the (preferred) fork start
method a monkeypatched hook propagates into the children automatically.
The whole-process tests are skipped when fork is unavailable.
"""

import multiprocessing
import os
import pickle
import time

import pytest

import repro.jobs.workers as workers_module
from repro.errors import SimulationError
from repro.jobs.cache import ResultCache
from repro.jobs.scheduler import (
    BACKENDS,
    JobScheduler,
    ProcessPoolBackend,
    SerialBackend,
    _race_won_result,
    make_backend,
)
from repro.jobs.spec import CircuitRef, JobSpec
from repro.jobs.workers import JobResult, execute_job

needs_fork = pytest.mark.skipif(
    "fork" not in multiprocessing.get_all_start_methods(),
    reason="fault-injection via FAULT_HOOK needs the fork start method",
)

DECK = """rc lowpass
V1 in 0 SIN(0 1 1k)
R1 in out 1k
C1 out 0 1u
.tran 10u 1m
.end
"""


def rc_spec(label="rc", **kw) -> JobSpec:
    return JobSpec(circuit=CircuitRef(kind="netlist", netlist=DECK), label=label, **kw)


class TestExecuteJob:
    def test_runs_and_packages_waveforms(self):
        result = execute_job(rc_spec())
        assert result.final_time == pytest.approx(1e-3)
        assert "v(out)" in result.signals
        assert len(result.times) == len(result.signals["v(out)"])
        # the waveform grid carries t=0 plus every accepted point
        assert result.stats["accepted_points"] == len(result.times) - 1
        assert result.elapsed > 0

    def test_param_override_changes_the_physics(self):
        slow = execute_job(rc_spec(params={"C1": 1e-4}))
        fast = execute_job(rc_spec())
        # 100x the capacitance: the output barely moves in the same window
        assert max(abs(v) for v in slow.signals["v(out)"]) < 0.5 * max(
            abs(v) for v in fast.signals["v(out)"]
        )

    def test_missing_signal_rejected(self):
        with pytest.raises(SimulationError, match="no trace"):
            execute_job(rc_spec(signals=("v(nope)",)))

    def test_missing_tstop_rejected(self):
        deck_no_tran = "t\nV1 a 0 DC 1\nR1 a 0 1k\n.end\n"
        spec = JobSpec(circuit=CircuitRef(kind="netlist", netlist=deck_no_tran))
        with pytest.raises(SimulationError, match="tstop"):
            execute_job(spec)

    def test_payload_is_deterministic(self):
        a, b = execute_job(rc_spec()), execute_job(rc_spec())
        assert a.to_dict() == b.to_dict()


class TestResultCache:
    def result(self, spec):
        return JobResult(
            spec_hash=spec.content_hash(),
            label=spec.label,
            analysis="transient",
            final_time=1.0,
            times=[0.0, 1.0],
            signals={"v(out)": [0.0, 0.5]},
            stats={"accepted_points": 2},
        )

    def test_put_get_roundtrip(self, tmp_path):
        cache = ResultCache(tmp_path)
        spec = rc_spec()
        assert cache.get(spec.content_hash()) is None
        cache.put(self.result(spec))
        hit = cache.get(spec.content_hash())
        assert hit is not None and hit.cached
        assert hit.to_dict() == self.result(spec).to_dict()
        assert spec.content_hash() in cache and len(cache) == 1

    def test_corrupt_entry_evicted_not_fatal(self, tmp_path):
        cache = ResultCache(tmp_path)
        spec = rc_spec()
        cache.path(spec.content_hash()).write_text("{not json", encoding="utf-8")
        assert cache.get(spec.content_hash()) is None
        assert not cache.path(spec.content_hash()).exists()

    def test_stored_bytes_are_stable(self, tmp_path):
        cache = ResultCache(tmp_path)
        spec = rc_spec()
        cache.put(self.result(spec))
        first = cache.path(spec.content_hash()).read_bytes()
        cache.put(self.result(spec))
        assert cache.path(spec.content_hash()).read_bytes() == first


class TestBackendFactory:
    def test_names_and_instances(self):
        assert isinstance(make_backend("serial"), SerialBackend)
        backend = make_backend("process", workers=3)
        assert isinstance(backend, ProcessPoolBackend) and backend.workers == 3
        assert make_backend(backend) is backend
        assert set(BACKENDS) == {"serial", "process", "ensemble"}

    def test_unknown_backend_rejected(self):
        with pytest.raises(SimulationError, match="unknown backend"):
            make_backend("cloud")

    @pytest.mark.parametrize("workers", [0, -2])
    def test_nonpositive_workers_rejected(self, workers):
        with pytest.raises(SimulationError, match=f"got {workers}"):
            ProcessPoolBackend(workers)


class TestSerialScheduling:
    def test_outcomes_in_order_and_cached_second_run(self, tmp_path):
        cache = ResultCache(tmp_path)
        specs = [rc_spec("a"), rc_spec("b", params={"R1": 2e3})]
        with JobScheduler(cache=cache) as scheduler:
            first = scheduler.run(specs)
            assert [o.status for o in first] == ["done", "done"]
            assert [o.spec.label for o in first] == ["a", "b"]
            second = scheduler.run(specs)
        assert [o.status for o in second] == ["cached", "cached"]
        assert second[0].result.cached

    def test_failing_job_does_not_stop_the_batch(self, monkeypatch):
        def hook(spec):
            if spec.label == "boom":
                raise RuntimeError("injected")

        monkeypatch.setattr(workers_module, "FAULT_HOOK", hook)
        with JobScheduler(retries=0) as scheduler:
            outcomes = scheduler.run([rc_spec("boom"), rc_spec("fine")])
        assert [o.status for o in outcomes] == ["failed", "done"]
        assert "injected" in outcomes[0].error

    def test_retry_recovers_flaky_job(self, monkeypatch):
        calls = {"n": 0}

        def hook(spec):
            calls["n"] += 1
            if calls["n"] == 1:
                raise RuntimeError("transient failure")

        monkeypatch.setattr(workers_module, "FAULT_HOOK", hook)
        with JobScheduler(retries=1) as scheduler:
            (outcome,) = scheduler.run([rc_spec()])
        assert outcome.status == "done"
        assert outcome.attempts == 2

    def test_backoff_delays_retry(self, monkeypatch):
        monkeypatch.setattr(
            workers_module,
            "FAULT_HOOK",
            lambda spec: (_ for _ in ()).throw(RuntimeError("always")),
        )
        t0 = time.perf_counter()
        with JobScheduler(retries=2, backoff=0.05) as scheduler:
            (outcome,) = scheduler.run([rc_spec()])
        assert outcome.status == "failed" and outcome.attempts == 3
        assert time.perf_counter() - t0 >= 0.05 + 0.1  # 0.05, then 0.1

    def test_scheduler_validation(self):
        with pytest.raises(SimulationError, match="retries"):
            JobScheduler(retries=-1)
        with pytest.raises(SimulationError, match="timeout"):
            JobScheduler(timeout=0)

    def test_counters_and_events(self, tmp_path):
        from repro.instrument import JOB_RUN, Recorder

        rec = Recorder()
        cache = ResultCache(tmp_path)
        with JobScheduler(cache=cache, instrument=rec) as scheduler:
            scheduler.run([rc_spec()])
            scheduler.run([rc_spec()])
        assert rec.counter("jobs.completed") == 1
        assert rec.counter("jobs.cache_hits") == 1
        assert rec.counter("jobs.cache_misses") == 1
        assert [e.name for e in rec.events].count(JOB_RUN) == 2


class TestProcessScheduling:
    def test_pool_runs_jobs(self):
        specs = [rc_spec(f"j{i}", params={"R1": 1e3 + i}) for i in range(3)]
        with JobScheduler(backend="process", workers=2) as scheduler:
            outcomes = scheduler.run(specs)
        assert [o.status for o in outcomes] == ["done"] * 3
        assert all(o.result.signals["v(out)"] for o in outcomes)

    @needs_fork
    def test_worker_crash_fails_only_its_job(self, monkeypatch):
        def hook(spec):
            if spec.label == "die":
                os._exit(3)

        monkeypatch.setattr(workers_module, "FAULT_HOOK", hook)
        with JobScheduler(backend="process", workers=2, retries=0) as scheduler:
            outcomes = scheduler.run([rc_spec("die"), rc_spec("live")])
        assert [o.status for o in outcomes] == ["crashed", "done"]
        assert "exit code 3" in outcomes[0].error

    @needs_fork
    def test_worker_exception_reports_traceback(self, monkeypatch):
        monkeypatch.setattr(
            workers_module,
            "FAULT_HOOK",
            lambda spec: (_ for _ in ()).throw(ValueError("inside worker")),
        )
        with JobScheduler(backend="process", workers=1, retries=0) as scheduler:
            (outcome,) = scheduler.run([rc_spec()])
        assert outcome.status == "failed"
        assert "inside worker" in outcome.error

    @needs_fork
    def test_hung_worker_times_out(self, monkeypatch):
        def hook(spec):
            if spec.label == "hang":
                time.sleep(60)

        monkeypatch.setattr(workers_module, "FAULT_HOOK", hook)
        t0 = time.perf_counter()
        with JobScheduler(
            backend="process", workers=2, timeout=1.0, retries=0
        ) as scheduler:
            outcomes = scheduler.run([rc_spec("hang"), rc_spec("ok")])
        assert [o.status for o in outcomes] == ["timeout", "done"]
        assert time.perf_counter() - t0 < 30

    @needs_fork
    def test_sigterm_immune_worker_is_killed(self, monkeypatch):
        # A worker wedged in native code never runs the Python-level
        # SIGTERM handler; the supervisor must escalate to SIGKILL
        # instead of blocking forever in join().
        import signal

        def hook(spec):
            signal.signal(signal.SIGTERM, signal.SIG_IGN)
            time.sleep(60)

        monkeypatch.setattr(workers_module, "FAULT_HOOK", hook)
        t0 = time.perf_counter()
        with JobScheduler(
            backend="process", workers=1, timeout=1.0, retries=0
        ) as scheduler:
            (outcome,) = scheduler.run([rc_spec("wedged")])
        assert outcome.status == "timeout"
        assert time.perf_counter() - t0 < 30

    @needs_fork
    def test_crash_then_retry_succeeds(self, tmp_path, monkeypatch):
        # Crash on the first attempt only, keyed off an on-disk flag so
        # the signal survives the process boundary.
        flag = tmp_path / "crashed-once"

        def hook(spec):
            if not flag.exists():
                flag.write_text("x")
                os._exit(9)

        monkeypatch.setattr(workers_module, "FAULT_HOOK", hook)
        with JobScheduler(backend="process", workers=1, retries=1) as scheduler:
            (outcome,) = scheduler.run([rc_spec()])
        assert outcome.status == "done"
        assert outcome.attempts == 2


class _FakeReader:
    """Pipe read end whose recv fails the way a torn frame does."""

    def __init__(self, exc):
        self.exc = exc

    def recv(self):
        raise self.exc

    def close(self):
        pass


class _FakeProcess:
    exitcode = 1

    def is_alive(self):
        return False

    def terminate(self):
        pass

    def kill(self):
        pass

    def join(self, timeout=None):
        pass


class TestSupervisorRobustness:
    """The supervisor must survive any garbage a dying worker leaves in
    the pipe — a malformed reply fails that job, never the whole run."""

    @pytest.mark.parametrize(
        "exc",
        [
            EOFError(),
            OSError("pipe torn"),
            # a SIGTERM-interrupted send leaves a partial frame: recv
            # surfaces it as an unpickling / struct error
            pickle.UnpicklingError("truncated frame"),
            ValueError("not enough values to unpack"),
        ],
    )
    def test_any_malformed_reply_is_a_crash(self, exc):
        emitted = []
        ProcessPoolBackend._finish(
            _FakeReader(exc),
            7,
            _FakeProcess(),
            time.monotonic(),
            lambda *a: emitted.append(a),
        )
        assert len(emitted) == 1
        index, status = emitted[0][0], emitted[0][1]
        assert (index, status) == (7, "crash")

    def test_race_won_result_recovers_finished_job(self):
        result = execute_job(rc_spec())
        message = ("ok", result.to_dict(), 1.5, {"counters": {}})
        recovered = _race_won_result(message)
        assert recovered is not None
        assert recovered.spec_hash == result.spec_hash
        assert recovered.elapsed == 1.5

    @pytest.mark.parametrize(
        "message",
        [
            None,
            ("error", "traceback", 0.1, None),  # the normal SIGTERM reply
            ("ok", {"malformed": True}, 0.1, None),  # bad payload shape
            ("ok", {}, 0.1),  # too short
        ],
    )
    def test_race_won_result_rejects_non_results(self, message):
        assert _race_won_result(message) is None

    def test_worker_does_not_send_twice_after_interrupted_send(self):
        # SIGTERM landing mid conn.send must not trigger a second send
        # onto a stream that already holds a partial frame.
        import signal

        class _InterruptedConn:
            sends = 0
            closed = False

            def send(self, message):
                self.sends += 1
                raise KeyboardInterrupt  # stands in for _Terminated

            def close(self):
                self.closed = True

        conn = _InterruptedConn()
        previous = signal.getsignal(signal.SIGTERM)
        try:
            workers_module.worker_main(conn, rc_spec().to_dict(), False)
        finally:
            signal.signal(signal.SIGTERM, previous)
        assert conn.sends == 1
        assert conn.closed
