"""Component record and model-card validation."""

import pytest

from repro.circuit.components import (
    Bjt,
    BjtModel,
    Capacitor,
    Diode,
    DiodeModel,
    Inductor,
    Mosfet,
    MosfetModel,
    Resistor,
    Vcvs,
)
from repro.errors import CircuitError


class TestPassives:
    def test_resistor_nodes(self):
        r = Resistor("R1", "a", "b", 100.0)
        assert r.nodes == ("a", "b")

    @pytest.mark.parametrize("value", [0.0, -5.0])
    def test_resistor_positive(self, value):
        with pytest.raises(CircuitError):
            Resistor("R1", "a", "b", value)

    def test_capacitor_with_ic(self):
        c = Capacitor("C1", "a", "0", 1e-9, ic=2.5)
        assert c.ic == 2.5

    def test_capacitor_positive(self):
        with pytest.raises(CircuitError):
            Capacitor("C1", "a", "b", -1e-9)

    def test_inductor_positive(self):
        with pytest.raises(CircuitError):
            Inductor("L1", "a", "b", 0.0)

    def test_empty_name_rejected(self):
        with pytest.raises(CircuitError):
            Resistor("", "a", "b", 1.0)

    def test_records_are_frozen(self):
        r = Resistor("R1", "a", "b", 100.0)
        with pytest.raises(Exception):
            r.resistance = 50.0  # type: ignore[misc]


class TestControlledSources:
    def test_vcvs_nodes_include_controls(self):
        e = Vcvs("E1", "p", "m", "cp", "cm", 10.0)
        assert e.nodes == ("p", "m", "cp", "cm")


class TestDiodeModel:
    def test_defaults(self):
        m = DiodeModel()
        assert m.is_ == 1e-14
        assert m.n == 1.0

    @pytest.mark.parametrize("kw", [{"is_": 0.0}, {"n": -1.0}, {"vj": 0.0}])
    def test_positive_params(self, kw):
        with pytest.raises(CircuitError):
            DiodeModel(**kw)

    @pytest.mark.parametrize("kw", [{"rs": -1.0}, {"cj0": -1e-12}, {"tt": -1e-9}])
    def test_nonnegative_params(self, kw):
        with pytest.raises(CircuitError):
            DiodeModel(**kw)

    def test_diode_area_positive(self):
        with pytest.raises(CircuitError):
            Diode("D1", "a", "b", DiodeModel(), area=0.0)


class TestMosfetModel:
    def test_polarity_validation(self):
        with pytest.raises(CircuitError):
            MosfetModel(polarity="cmos")

    def test_kp_positive(self):
        with pytest.raises(CircuitError):
            MosfetModel(kp=0.0)

    def test_mosfet_geometry_positive(self):
        with pytest.raises(CircuitError):
            Mosfet("M1", "d", "g", "s", "b", MosfetModel(), w=0.0)
        with pytest.raises(CircuitError):
            Mosfet("M1", "d", "g", "s", "b", MosfetModel(), l=-1e-6)

    def test_mosfet_nodes_order(self):
        m = Mosfet("M1", "d", "g", "s", "b", MosfetModel())
        assert m.nodes == ("d", "g", "s", "b")


class TestBjtModel:
    def test_polarity_validation(self):
        with pytest.raises(CircuitError):
            BjtModel(polarity="fet")

    def test_betas_positive(self):
        with pytest.raises(CircuitError):
            BjtModel(bf=0.0)
        with pytest.raises(CircuitError):
            BjtModel(br=-1.0)

    def test_bjt_nodes_order(self):
        q = Bjt("Q1", "c", "b", "e", BjtModel())
        assert q.nodes == ("c", "b", "e")

    def test_infinite_vaf_allowed(self):
        assert BjtModel(vaf=float("inf")).vaf == float("inf")
