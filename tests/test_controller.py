"""Step controller state machine."""

import numpy as np
import pytest

from repro.errors import TimestepError
from repro.integration.controller import StepController
from repro.integration.lte import LteVerdict
from repro.utils.options import SimOptions


def make(h0=1e-9, tstop=1e-6, breakpoints=None, **opt_kw):
    options = SimOptions(**opt_kw)
    return StepController(options, tstop, h0, breakpoints)


def verdict(accepted=True, ratio=0.5, h_opt=2e-9, estimated=True):
    return LteVerdict(accepted, ratio, h_opt, estimated)


class TestPropose:
    def test_initial_proposal(self):
        ctrl = make(h0=1e-9)
        h, hits = ctrl.propose(0.0)
        assert h == pytest.approx(1e-9)
        assert not hits
        assert ctrl.force_be  # cold start

    def test_clips_to_breakpoint(self):
        ctrl = make(h0=1e-9, breakpoints=[5e-10, 1e-6])
        h, hits = ctrl.propose(0.0)
        assert hits
        assert h == pytest.approx(5e-10)

    def test_snaps_onto_near_breakpoint(self):
        ctrl = make(h0=0.95e-9, breakpoints=[1e-9, 1e-6])
        h, hits = ctrl.propose(0.0)
        assert hits
        assert h == pytest.approx(1e-9)

    def test_max_step_honoured(self):
        ctrl = make(h0=1e-9, max_step=2e-10)
        h, _ = ctrl.propose(0.0)
        assert h <= 2e-10

    def test_next_breakpoint_lookup(self):
        ctrl = make(breakpoints=[1e-7, 3e-7], tstop=1e-6)
        assert ctrl.next_breakpoint(0.0) == pytest.approx(1e-7)
        assert ctrl.next_breakpoint(1e-7) == pytest.approx(3e-7)
        assert ctrl.next_breakpoint(5e-7) == pytest.approx(1e-6)

    def test_validation(self):
        with pytest.raises(TimestepError):
            make(h0=0.0)
        with pytest.raises(TimestepError):
            make(tstop=-1.0)


class TestAccept:
    def test_growth_capped_by_ratio(self):
        ctrl = make(h0=1e-9, step_ratio_max=2.0)
        ctrl.on_accept(1e-9, verdict(h_opt=100e-9), False)
        assert ctrl.h_rec == pytest.approx(2e-9)
        assert ctrl.ratio_limited
        assert not ctrl.force_be

    def test_lte_limited_recommendation(self):
        ctrl = make(h0=1e-9)
        ctrl.on_accept(1e-9, verdict(h_opt=1.5e-9), False)
        assert ctrl.h_rec == pytest.approx(1.5e-9)
        assert not ctrl.ratio_limited
        assert ctrl.h_unclamped == pytest.approx(1.5e-9)

    def test_unestimated_grows_on_faith(self):
        ctrl = make(h0=1e-9)
        ctrl.on_accept(1e-9, verdict(estimated=False), False)
        assert ctrl.h_rec == pytest.approx(2e-9)
        assert ctrl.ratio_limited
        assert ctrl.h_unclamped == np.inf

    def test_ratio_streak_accumulates_and_resets(self):
        ctrl = make(h0=1e-9)
        start = ctrl.ratio_streak
        ctrl.on_accept(1e-9, verdict(h_opt=100e-9), False)
        ctrl.on_accept(2e-9, verdict(h_opt=100e-9), False)
        assert ctrl.ratio_streak == start + 2
        ctrl.on_accept(4e-9, verdict(h_opt=4.1e-9), False)  # LTE-limited
        assert ctrl.ratio_streak == 0

    def test_breakpoint_triggers_restart(self):
        ctrl = make(h0=1e-9)
        ctrl.on_accept(1e-9, verdict(), True)
        assert ctrl.force_be
        assert ctrl.ratio_limited


class TestRejectAndFailure:
    def test_reject_shrinks(self):
        ctrl = make(h0=8e-9)
        ctrl.on_reject(8e-9, verdict(accepted=False, ratio=4.0, h_opt=3e-9))
        assert ctrl.h_rec == pytest.approx(3e-9)
        assert ctrl.rejections == 1
        assert not ctrl.ratio_limited
        assert ctrl.ratio_streak == 0

    def test_reject_floor_is_shrink_fraction(self):
        ctrl = make(h0=8e-9, step_shrink=0.25)
        ctrl.on_reject(8e-9, verdict(accepted=False, ratio=1e9, h_opt=1e-15))
        assert ctrl.h_rec == pytest.approx(2e-9)

    def test_newton_failure_shrinks_hard(self):
        ctrl = make(h0=8e-9, step_shrink=0.25)
        ctrl.on_newton_failure(8e-9)
        assert ctrl.h_rec == pytest.approx(2e-9)
        assert ctrl.newton_failures == 1

    def test_underflow_raises(self):
        ctrl = make(h0=1e-9, tstop=1e-6, min_step_fraction=1e-6)
        with pytest.raises(TimestepError, match="underflow"):
            for _ in range(100):
                ctrl.on_newton_failure(ctrl.h_rec)

    def test_restart_resets_state(self):
        ctrl = make(h0=1e-9)
        ctrl.on_accept(1e-9, verdict(h_opt=1.2e-9), False)
        ctrl.restart()
        assert ctrl.force_be
        assert ctrl.ratio_limited
        assert ctrl.ratio_streak == 1
        assert ctrl.h_rec < 1.2e-9
