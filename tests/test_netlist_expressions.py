"""Netlist expression evaluator."""

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import NetlistError
from repro.netlist.expressions import evaluate


class TestArithmetic:
    @pytest.mark.parametrize(
        "text,expected",
        [
            ("1+2", 3.0),
            ("2*3+4", 10.0),
            ("2+3*4", 14.0),
            ("(2+3)*4", 20.0),
            ("10/4", 2.5),
            ("2**10", 1024.0),
            ("-3+1", -2.0),
            ("--3", 3.0),
            ("+5", 5.0),
            ("2**3**2", 512.0),  # right-associative
            ("1 - 2 - 3", -4.0),  # left-associative
        ],
    )
    def test_operators(self, text, expected):
        assert evaluate(text) == pytest.approx(expected)

    def test_engineering_suffixes_inside_expressions(self):
        assert evaluate("2*1k") == pytest.approx(2000.0)
        assert evaluate("1u + 500n") == pytest.approx(1.5e-6)

    def test_division_by_zero(self):
        with pytest.raises(NetlistError, match="division by zero"):
            evaluate("1/0")

    @pytest.mark.parametrize("bad", ["", "1+", "(1", "1 2", "*3", "1//2", "@"])
    def test_syntax_errors(self, bad):
        with pytest.raises(NetlistError):
            evaluate(bad)


class TestParamsAndFunctions:
    def test_parameters(self):
        assert evaluate("2*r + c", {"r": 10.0, "c": 5.0}) == pytest.approx(25.0)

    def test_parameters_case_insensitive(self):
        assert evaluate("VDD/2", {"vdd": 3.0}) == pytest.approx(1.5)

    def test_unknown_parameter(self):
        with pytest.raises(NetlistError, match="unknown parameter"):
            evaluate("x+1")

    def test_constants(self):
        assert evaluate("2*pi") == pytest.approx(2 * math.pi)
        assert evaluate("e") == pytest.approx(math.e)

    @pytest.mark.parametrize(
        "text,expected",
        [
            ("sqrt(16)", 4.0),
            ("abs(-3)", 3.0),
            ("min(3, 1, 2)", 1.0),
            ("max(3, 1, 2)", 3.0),
            ("exp(0)", 1.0),
            ("log(e)", 1.0),
            ("log10(1000)", 3.0),
            ("sin(0)", 0.0),
            ("cos(0)", 1.0),
            ("pow(2, 8)", 256.0),
        ],
    )
    def test_functions(self, text, expected):
        assert evaluate(text) == pytest.approx(expected)

    def test_unknown_function(self):
        with pytest.raises(NetlistError, match="unknown function"):
            evaluate("frob(1)")

    def test_domain_error_reported(self):
        with pytest.raises(NetlistError, match="sqrt"):
            evaluate("sqrt(-1)")

    def test_nested_calls(self):
        assert evaluate("max(sqrt(4), min(1, 5))") == pytest.approx(2.0)


class TestProperties:
    @given(
        st.floats(min_value=-1e6, max_value=1e6, allow_nan=False),
        st.floats(min_value=-1e6, max_value=1e6, allow_nan=False),
    )
    def test_addition_matches_python(self, a, b):
        assert evaluate(f"({a!r}) + ({b!r})") == pytest.approx(a + b, rel=1e-12, abs=1e-12)

    @given(
        st.floats(min_value=0.1, max_value=1e3, allow_nan=False),
        st.floats(min_value=0.1, max_value=1e3, allow_nan=False),
    )
    def test_product_commutes(self, a, b):
        assert evaluate(f"{a!r} * {b!r}") == pytest.approx(evaluate(f"{b!r} * {a!r}"))

    @given(st.floats(min_value=-100, max_value=100, allow_nan=False))
    def test_param_substitution(self, x):
        assert evaluate("3*x + 1", {"x": x}) == pytest.approx(3 * x + 1, rel=1e-12, abs=1e-9)
