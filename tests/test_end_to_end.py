"""End-to-end flows: netlist -> compile -> analyses -> WavePipe."""

import numpy as np
import pytest

from repro import (
    SimOptions,
    compare_with_sequential,
    parse_netlist,
    run_transient,
    run_wavepipe,
)
from repro.analysis.ac import ac_analysis

AMPLIFIER_DECK = """Common-emitter amplifier
.model qfast npn is=1e-15 bf=150 vaf=80 cje=1p cjc=0.5p tf=50p
.param vcc=9 rload={2.2k}
VCC vcc 0 {vcc}
VIN in 0 SIN(0 10m 1meg)
RS in s1 600
CIN s1 b 1u
RB1 vcc b 47k
RB2 b 0 10k
Q1 c b e qfast
RC vcc c {rload}
RE e 0 560
CE e 0 10u
.tran 10n 4u
.end
"""

SUBCKT_DECK = """Two-stage buffer via subcircuits
.model mn nmos vto=0.7 kp=200u lambda=0.05
.model mp pmos vto=0.7 kp=100u lambda=0.05
.subckt inv in out vdd
MP out in vdd vdd mp w=2u l=1u
MN out in 0 0 mn w=1u l=1u
C1 out 0 5f
.ends
VDD vdd 0 3
VIN a 0 PULSE(0 3 1n 0.1n 0.1n 4n 10n)
X1 a b vdd inv
X2 b c vdd inv
.tran 0.1n 30n
.end
"""


class TestAmplifierFlow:
    @pytest.fixture(scope="class")
    def netlist(self):
        return parse_netlist(AMPLIFIER_DECK)

    def test_parses_with_params(self, netlist):
        assert netlist.circuit["RC"].resistance == pytest.approx(2200.0)
        assert netlist.tran.tstop == pytest.approx(4e-6)

    def test_bias_point_reasonable(self, netlist):
        from repro.mna.compiler import compile_circuit
        from repro.mna.system import MnaSystem
        from repro.solver.dcop import solve_operating_point

        compiled = compile_circuit(netlist.circuit)
        op = solve_operating_point(MnaSystem(compiled))
        vc = op.x[compiled.node_voltage_index("c")]
        vb = op.x[compiled.node_voltage_index("b")]
        ve = op.x[compiled.node_voltage_index("e")]
        assert 0.55 < vb - ve < 0.75  # forward-biased junction
        assert 2.0 < vc < 8.5  # collector in the active region

    def test_amplifies(self, netlist):
        result = run_transient(netlist.circuit, netlist.tran.tstop)
        vout = result.waveforms.voltage("c").slice(1e-6, 4e-6)
        gain = vout.peak_to_peak() / 20e-3
        assert gain > 10.0  # CE stage with bypassed emitter

    def test_ac_gain_consistent_with_transient(self, netlist):
        result = run_transient(netlist.circuit, netlist.tran.tstop)
        tran_gain = result.waveforms.voltage("c").slice(1e-6, 4e-6).peak_to_peak() / 20e-3
        ac = ac_analysis(netlist.circuit, "VIN", [1e6])
        ac_gain = ac.magnitude("v(c)")[0]
        assert tran_gain == pytest.approx(ac_gain, rel=0.25)

    def test_wavepipe_matches_on_amplifier(self, netlist):
        report = compare_with_sequential(
            netlist.circuit, 2e-6, scheme="combined", threads=3,
            signals=["v(c)"],
        )
        assert report.worst_deviation.max_relative < 0.05
        assert report.speedup > 0.9


class TestSubcircuitFlow:
    def test_full_flow(self):
        netlist = parse_netlist(SUBCKT_DECK)
        result = run_wavepipe(
            netlist.circuit,
            netlist.tran.tstop,
            scheme="backward",
            threads=2,
            tstep=netlist.tran.tstep,
        )
        # two inversions: output follows input levels
        vc = result.waveforms.voltage("c")
        assert vc.at(3e-9) == pytest.approx(3.0, abs=0.1)
        assert vc.at(8e-9) == pytest.approx(0.0, abs=0.1)

    def test_hierarchical_nodes_recorded(self):
        netlist = parse_netlist(SUBCKT_DECK)
        result = run_transient(netlist.circuit, 5e-9)
        assert "v(b)" in result.waveforms.names


class TestOptionsFlow:
    def test_netlist_options_respected(self):
        deck = """opt test
V1 a 0 PULSE(0 1 1n 0.1n 0.1n 10n)
R1 a b 1k
C1 b 0 1p
.options reltol=1e-2 method=be
.tran 0.1n 20n
.end
"""
        netlist = parse_netlist(deck)
        assert netlist.options.method == "be"
        loose = run_transient(netlist.circuit, 20e-9, options=netlist.options)
        tight = run_transient(
            netlist.circuit, 20e-9, options=netlist.options.replace(reltol=1e-5)
        )
        assert loose.stats.accepted_points < tight.stats.accepted_points

    def test_gear2_full_run(self):
        netlist = parse_netlist(SUBCKT_DECK)
        options = SimOptions(method="gear2")
        seq = run_transient(netlist.circuit, 20e-9, options=options)
        pipe = run_wavepipe(
            netlist.circuit, 20e-9, scheme="combined", threads=3, options=options
        )
        for name in ("v(b)", "v(c)"):
            e_seq = seq.waveforms[name].crossings(1.5)
            e_pipe = pipe.waveforms[name].crossings(1.5)
            assert e_seq.size == e_pipe.size
            if e_seq.size:
                assert np.abs(e_seq - e_pipe).max() < 0.2e-9
