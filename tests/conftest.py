"""Shared fixtures: small canonical circuits used across the test suite."""

import pytest

from repro.circuit.circuit import Circuit
from repro.circuit.components import DiodeModel, MosfetModel
from repro.circuit.sources import Dc, Pulse, Sin


@pytest.fixture
def rc_circuit():
    """1 kOhm / 1 nF low-pass driven by a 0->1 V step at 1 us (tau = 1 us)."""
    circuit = Circuit("rc-fixture")
    circuit.add_vsource(
        "V1", "in", "0", Pulse(0.0, 1.0, delay=1e-6, rise=1e-12, width=1.0)
    )
    circuit.add_resistor("R1", "in", "out", 1e3)
    circuit.add_capacitor("C1", "out", "0", 1e-9)
    return circuit


@pytest.fixture
def divider_circuit():
    """Resistive divider: 10 V across 1k + 3k, v(mid) = 7.5 V."""
    circuit = Circuit("divider-fixture")
    circuit.add_vsource("V1", "top", "0", Dc(10.0))
    circuit.add_resistor("R1", "top", "mid", 1e3)
    circuit.add_resistor("R2", "mid", "0", 3e3)
    return circuit


@pytest.fixture
def diode_circuit():
    """Forward-biased diode with series resistor (5 V, 1 kOhm)."""
    circuit = Circuit("diode-fixture")
    circuit.add_vsource("V1", "in", "0", Dc(5.0))
    circuit.add_resistor("R1", "in", "a", 1e3)
    circuit.add_diode("D1", "a", "0", DiodeModel(is_=1e-14, n=1.0))
    return circuit


@pytest.fixture
def inverter_circuit():
    """CMOS inverter with a pulsed input and a capacitive load."""
    nmos = MosfetModel("n", "nmos", vto=0.7, kp=200e-6, lambda_=0.05)
    pmos = MosfetModel("p", "pmos", vto=0.7, kp=100e-6, lambda_=0.05)
    circuit = Circuit("inverter-fixture")
    circuit.add_vsource("VDD", "vdd", "0", Dc(3.0))
    circuit.add_vsource(
        "VIN", "in", "0",
        Pulse(0.0, 3.0, delay=1e-9, rise=0.1e-9, fall=0.1e-9, width=4e-9, period=10e-9),
    )
    circuit.add_mosfet("MP", "out", "in", "vdd", "vdd", pmos, w=2e-6, l=1e-6)
    circuit.add_mosfet("MN", "out", "in", "0", "0", nmos, w=1e-6, l=1e-6)
    circuit.add_capacitor("CL", "out", "0", 20e-15)
    return circuit


@pytest.fixture
def rlc_circuit():
    """Series RLC: underdamped ringing (R=10, L=1u, C=1n; f0 ~ 5 MHz)."""
    circuit = Circuit("rlc-fixture")
    circuit.add_vsource(
        "V1", "in", "0", Pulse(0.0, 1.0, delay=10e-9, rise=1e-12, width=1.0)
    )
    circuit.add_resistor("R1", "in", "n1", 10.0)
    circuit.add_inductor("L1", "n1", "out", 1e-6)
    circuit.add_capacitor("C1", "out", "0", 1e-9)
    return circuit


@pytest.fixture
def sine_rc_circuit():
    """Sine-driven RC (for AC/transient cross-checks): fc = 1/(2 pi RC) ~ 159 kHz."""
    circuit = Circuit("sine-rc-fixture")
    circuit.add_vsource("V1", "in", "0", Sin(0.0, 1.0, 50e3))
    circuit.add_resistor("R1", "in", "out", 1e3)
    circuit.add_capacitor("C1", "out", "0", 1e-9)
    return circuit
