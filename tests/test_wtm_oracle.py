"""WTM differential oracle: partitioned fixed point vs monolithic truth.

:func:`repro.partition.checks.wtm_vs_monolithic` applies the oracle's
tolerance ladder to a genuinely different numerical method, so the
acceptance bar is explicit: every *converged* WTM run on the seeded
multi-block families must classify at ``loose`` (1e-3) or tighter
against the verification-grade sequential reference, and non-converged
runs must be reported as such — never silently classified.

The trailing class covers the diagnosis side: a recorded WTM run must
explain with a ``wtm``-kind critical path (outer iterations bounded by
their costliest partition solve), not fall through to the stage scan of
the partitions' internal pipelines.
"""

import pytest

from repro.diagnose.explain import explain_recorder
from repro.instrument import Recorder
from repro.partition import manifest_from_node_sets, run_wtm, wtm_vs_monolithic
from repro.utils.options import SimOptions
from repro.verify.generators import draw_circuit
from repro.verify.oracle import TOLERANCE_LADDER

#: Ladder rungs an agreeing WTM run may land on (loose or tighter).
AGREEING_TIERS = {name for name, level in TOLERANCE_LADDER if level <= 1e-3}


def draw_family(family: str, seed: int):
    gen = draw_circuit(seed, families=[family])
    assert gen.family == family
    return gen


class TestSeededFamilies:
    @pytest.mark.parametrize("seed", [11, 14])
    def test_bridged_rc_mesh_agrees(self, seed):
        gen = draw_family("bridged-rc-mesh", seed)
        agreement = wtm_vs_monolithic(gen.circuit, gen.tstop, 2)
        assert agreement.converged
        assert agreement.tier in AGREEING_TIERS, agreement.worst
        assert agreement.ok

    def test_inverter_composite_agrees(self):
        gen = draw_family("inverter-composite", 1)
        # The MOSFET stages need verification-grade block tolerances:
        # at looser reltol the per-block step controllers' switching-edge
        # placement dominates the boundary fixed-point agreement.
        agreement = wtm_vs_monolithic(
            gen.circuit, gen.tstop, 2, options=SimOptions(reltol=1e-5)
        )
        assert agreement.converged
        assert agreement.tier in AGREEING_TIERS, agreement.worst
        assert agreement.ok

    def test_deviations_cover_every_node(self):
        gen = draw_family("bridged-rc-mesh", 11)
        agreement = wtm_vs_monolithic(gen.circuit, gen.tstop, 2)
        compared = {d.name for d in agreement.deviations}
        expected = {f"v({node})" for node in gen.circuit.nodes()}
        assert compared == expected
        assert agreement.reference_work > 0


class TestNonConvergenceReporting:
    def test_failed_run_is_never_classified(self):
        gen = draw_family("bridged-rc-mesh", 11)
        circuit = gen.circuit
        nodes = list(circuit.nodes())
        # Sever the node list down the middle regardless of coupling
        # strength: a strong cut the outer iteration cannot contract
        # across within one sweep.
        node_sets = [set(nodes[: len(nodes) // 2]), set(nodes[len(nodes) // 2 :])]
        manifest = manifest_from_node_sets(circuit, node_sets)
        agreement = wtm_vs_monolithic(
            gen.circuit, gen.tstop, manifest=manifest, max_outer=2
        )
        assert not agreement.converged
        assert agreement.tier == "not_converged"
        assert not agreement.ok
        # Deviations still present for diagnosis of the failed iterate.
        assert agreement.deviations
        assert not agreement.wtm.converged


class TestExplainCriticalPath:
    def _recorded_run(self, **kwargs):
        from repro.circuits.multiblock import bridged_rc_blocks

        rec = Recorder()
        res = run_wtm(
            bridged_rc_blocks(blocks=3, rungs=2),
            40e-9,
            3,
            instrument=rec,
            **kwargs,
        )
        assert res.converged
        return explain_recorder(rec)

    def test_wtm_run_explains_as_wtm(self):
        report = self._recorded_run(mode="jacobi")
        cp = report.critical_path
        assert cp["kind"] == "wtm"
        assert cp["stages"] > 0
        # "partitions" counts the distinct *bounding* lanes — one
        # dominant block may bound every sweep, so 1..3 here.
        assert 1 <= cp["partitions"] <= 3
        assert cp["lanes"]
        assert all(lane["lane"] in (0, 1, 2) for lane in cp["lanes"])
        # Every outer iteration is attributed to exactly one lane.
        assert sum(l["stages_bounded"] for l in cp["lanes"]) == cp["stages"]
        assert cp["critical_lane"] is not None
        assert cp["bounding_cost_total"] > 0
        assert report.spans["malformed"] == 0
        assert not report.spans["problems"]

    def test_pipelined_partitions_do_not_hijack_attribution(self):
        # Each partition solve nests stage_run spans of its own WavePipe
        # pipeline; the explain tiering must still rank the outer sweeps.
        report = self._recorded_run(mode="seidel", scheme="combined", threads=2)
        cp = report.critical_path
        assert cp["kind"] == "wtm"
        assert 1 <= cp["partitions"] <= 3
        shares = [lane["share"] for lane in cp["lanes"]]
        assert all(0.0 <= s <= 1.0 for s in shares)
        assert sum(shares) == pytest.approx(1.0, abs=1e-6)
