"""Source waveform shapes, breakpoints and vectorised evaluation."""

import math

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.circuit.sources import (
    Dc,
    Exp,
    Pulse,
    Pwl,
    SampledWaveform,
    Sin,
    as_waveform,
)
from repro.errors import CircuitError


class TestDc:
    def test_constant(self):
        wf = Dc(2.5)
        assert wf.value(0.0) == 2.5
        assert wf.value(1e9) == 2.5
        assert wf.dc == 2.5

    def test_vectorised(self):
        wf = Dc(-1.0)
        np.testing.assert_allclose(wf.values(np.linspace(0, 1, 5)), -1.0)

    def test_no_breakpoints(self):
        assert Dc(1.0).breakpoints(1.0) == []


class TestPulse:
    def make(self, **kw):
        defaults = dict(v1=0.0, v2=1.0, delay=1e-9, rise=1e-9, fall=2e-9, width=5e-9, period=20e-9)
        defaults.update(kw)
        return Pulse(**defaults)

    def test_before_delay(self):
        assert self.make().value(0.5e-9) == 0.0

    def test_mid_rise(self):
        assert self.make().value(1.5e-9) == pytest.approx(0.5)

    def test_plateau(self):
        assert self.make().value(4e-9) == 1.0

    def test_mid_fall(self):
        # fall starts at delay+rise+width = 7ns, lasts 2ns
        assert self.make().value(8e-9) == pytest.approx(0.5)

    def test_after_fall_one_shot(self):
        wf = self.make(period=None)
        assert wf.value(15e-9) == 0.0
        assert wf.value(1.0) == 0.0

    def test_periodic_repeat(self):
        wf = self.make()
        assert wf.value(21.5e-9) == pytest.approx(wf.value(1.5e-9))
        assert wf.value(44e-9) == pytest.approx(wf.value(4e-9))

    def test_breakpoints_one_shot(self):
        wf = self.make(period=None)
        bps = wf.breakpoints(100e-9)
        assert pytest.approx(bps) == [1e-9, 2e-9, 7e-9, 9e-9]

    def test_breakpoints_periodic_clip(self):
        wf = self.make()
        bps = wf.breakpoints(25e-9)
        assert any(abs(bp - 21e-9) < 1e-15 for bp in bps)
        assert all(bp <= 25e-9 for bp in bps)

    def test_validation(self):
        with pytest.raises(CircuitError):
            self.make(rise=-1.0)
        with pytest.raises(CircuitError):
            self.make(period=1e-9)  # shorter than rise+width+fall

    @given(st.floats(min_value=0, max_value=100e-9))
    def test_bounded_by_levels(self, t):
        wf = self.make()
        assert 0.0 <= wf.value(t) <= 1.0


class TestSin:
    def test_before_delay_holds_offset(self):
        wf = Sin(offset=1.0, amplitude=2.0, freq=1e6, delay=1e-6)
        assert wf.value(0.5e-6) == 1.0

    def test_basic_shape(self):
        wf = Sin(offset=0.0, amplitude=1.0, freq=1e6)
        assert wf.value(0.25e-6) == pytest.approx(1.0)
        assert wf.value(0.75e-6) == pytest.approx(-1.0)
        assert wf.value(0.5e-6) == pytest.approx(0.0, abs=1e-12)

    def test_damping(self):
        wf = Sin(offset=0.0, amplitude=1.0, freq=1e6, theta=1e6)
        undamped = Sin(offset=0.0, amplitude=1.0, freq=1e6)
        t = 0.25e-6
        assert wf.value(t) == pytest.approx(undamped.value(t) * math.exp(-1e6 * t))

    def test_vectorised_matches_scalar(self):
        wf = Sin(offset=0.5, amplitude=2.0, freq=3e6, delay=1e-7, theta=1e5)
        times = np.linspace(0, 1e-6, 40)
        np.testing.assert_allclose(
            wf.values(times), [wf.value(float(t)) for t in times], rtol=1e-12
        )

    def test_breakpoint_only_at_turn_on(self):
        assert Sin(0, 1, 1e6, delay=1e-7).breakpoints(1e-6) == [1e-7]
        assert Sin(0, 1, 1e6).breakpoints(1e-6) == []

    def test_frequency_validation(self):
        with pytest.raises(CircuitError):
            Sin(0.0, 1.0, 0.0)


class TestPwl:
    def test_holds_ends(self):
        wf = Pwl(((1e-9, 0.0), (2e-9, 5.0)))
        assert wf.value(0.0) == 0.0
        assert wf.value(3e-9) == 5.0

    def test_interpolates(self):
        wf = Pwl(((0.0, 0.0), (1.0, 10.0)))
        assert wf.value(0.25) == pytest.approx(2.5)

    def test_multi_segment(self):
        wf = Pwl(((0.0, 0.0), (1.0, 1.0), (2.0, -1.0), (4.0, -1.0)))
        assert wf.value(1.5) == pytest.approx(0.0)
        assert wf.value(3.0) == pytest.approx(-1.0)

    def test_breakpoints_are_the_corners(self):
        wf = Pwl(((0.0, 0.0), (1.0, 1.0), (2.0, 0.0)))
        assert wf.breakpoints(1.5) == [0.0, 1.0]

    def test_validation(self):
        with pytest.raises(CircuitError):
            Pwl(())
        with pytest.raises(CircuitError):
            Pwl(((1.0, 0.0), (1.0, 1.0)))
        with pytest.raises(CircuitError):
            Pwl(((2.0, 0.0), (1.0, 1.0)))

    @given(st.floats(min_value=-1.0, max_value=5.0))
    def test_within_value_hull(self, t):
        wf = Pwl(((0.0, -2.0), (1.0, 3.0), (2.0, 0.5)))
        assert -2.0 <= wf.value(t) <= 3.0


class TestExp:
    def test_initial_level(self):
        wf = Exp(v1=0.0, v2=1.0, td1=1e-9, tau1=1e-9, td2=5e-9, tau2=1e-9)
        assert wf.value(0.0) == 0.0

    def test_rises_toward_v2(self):
        wf = Exp(v1=0.0, v2=1.0, td1=0.0, tau1=1e-9, td2=100e-9, tau2=1e-9)
        assert wf.value(1e-9) == pytest.approx(1 - math.exp(-1), rel=1e-6)
        assert wf.value(50e-9) == pytest.approx(1.0, abs=1e-6)

    def test_decays_after_td2(self):
        wf = Exp(v1=0.0, v2=1.0, td1=0.0, tau1=1e-12, td2=10e-9, tau2=1e-9)
        assert wf.value(9.9e-9) == pytest.approx(1.0, abs=1e-3)
        assert wf.value(100e-9) == pytest.approx(0.0, abs=1e-3)

    def test_breakpoints(self):
        wf = Exp(0, 1, td1=1e-9, tau1=1e-9, td2=3e-9, tau2=1e-9)
        assert wf.breakpoints(10e-9) == [1e-9, 3e-9]

    def test_validation(self):
        with pytest.raises(CircuitError):
            Exp(0, 1, tau1=0.0)
        with pytest.raises(CircuitError):
            Exp(0, 1, td1=2e-9, td2=1e-9)


class TestSampledWaveform:
    def test_interpolates_and_clamps(self):
        wf = SampledWaveform([0.0, 1.0, 2.0], [0.0, 2.0, 0.0])
        assert wf.value(0.5) == pytest.approx(1.0)
        assert wf.value(-1.0) == 0.0
        assert wf.value(5.0) == 0.0

    def test_no_breakpoints_by_design(self):
        wf = SampledWaveform([0.0, 1.0], [0.0, 1.0])
        assert wf.breakpoints(1.0) == []

    def test_validation(self):
        with pytest.raises(CircuitError):
            SampledWaveform([], [])
        with pytest.raises(CircuitError):
            SampledWaveform([0.0, 0.0], [1.0, 2.0])
        with pytest.raises(CircuitError):
            SampledWaveform([0.0, 1.0], [1.0])


class TestAsWaveform:
    def test_numbers_become_dc(self):
        wf = as_waveform(3.0)
        assert isinstance(wf, Dc)
        assert wf.level == 3.0

    def test_waveforms_pass_through(self):
        pulse = Pulse(0, 1)
        assert as_waveform(pulse) is pulse

    def test_rejects_garbage(self):
        with pytest.raises(CircuitError):
            as_waveform("PULSE(0 1)")
