"""Circuit compiler: unknown numbering, banks, breakpoints, ICs."""

import numpy as np
import pytest

from repro.circuit.circuit import Circuit
from repro.circuit.sources import Dc, Pulse
from repro.errors import CircuitError
from repro.mna.compiler import compile_circuit


class TestNumbering:
    def test_nodes_before_branches(self, rlc_circuit):
        compiled = compile_circuit(rlc_circuit)
        assert compiled.n_nodes == 3  # in, n1, out
        assert compiled.n_branches == 2  # V1, L1
        assert compiled.n == 5

    def test_unknown_names(self, rc_circuit):
        compiled = compile_circuit(rc_circuit)
        assert "v(in)" in compiled.unknown_names
        assert "v(out)" in compiled.unknown_names
        assert "i(V1)" in compiled.unknown_names

    def test_voltage_mask(self, rlc_circuit):
        compiled = compile_circuit(rlc_circuit)
        assert compiled.voltage_mask.sum() == compiled.n_nodes
        assert compiled.voltage_mask[: compiled.n_nodes].all()
        assert not compiled.voltage_mask[compiled.n_nodes :].any()

    def test_ground_maps_to_trash(self, rc_circuit):
        compiled = compile_circuit(rc_circuit)
        assert compiled.nidx("0") == compiled.n
        assert compiled.nidx("gnd") == compiled.n

    def test_strict_node_lookup_rejects_ground(self, rc_circuit):
        compiled = compile_circuit(rc_circuit)
        with pytest.raises(CircuitError):
            compiled.node_voltage_index("0")

    def test_unknown_node_rejected(self, rc_circuit):
        compiled = compile_circuit(rc_circuit)
        with pytest.raises(CircuitError):
            compiled.nidx("nonexistent")

    def test_branch_lookup(self, rlc_circuit):
        compiled = compile_circuit(rlc_circuit)
        assert compiled.branch_current_index("L1") >= compiled.n_nodes
        with pytest.raises(CircuitError):
            compiled.branch_current_index("R1")

    def test_invalid_circuit_rejected_at_compile(self):
        c = Circuit("bad")
        c.add_resistor("R1", "a", "b", 1.0)
        with pytest.raises(CircuitError):
            compile_circuit(c)


class TestBanks:
    def test_only_needed_banks_created(self, rc_circuit):
        compiled = compile_circuit(rc_circuit)
        names = {type(b).__name__ for b in compiled.banks}
        assert names == {"ResistorBank", "CapacitorBank", "VoltageSourceBank"}

    def test_bank_counts(self, inverter_circuit):
        compiled = compile_circuit(inverter_circuit)
        by_name = {type(b).__name__: b for b in compiled.banks}
        assert by_name["MosfetBank"].count == 2
        assert by_name["VoltageSourceBank"].count == 2

    def test_stats(self, inverter_circuit):
        compiled = compile_circuit(inverter_circuit)
        stats = compiled.stats()
        assert stats["mosfets"] == 2
        assert stats["unknowns"] == compiled.n

    def test_work_units_positive(self, rc_circuit):
        compiled = compile_circuit(rc_circuit)
        assert compiled.work_units_per_eval > 0


class TestBreakpoints:
    def test_pulse_breakpoints_collected(self):
        c = Circuit("t")
        c.add_vsource(
            "V1", "a", "0", Pulse(0, 1, delay=1e-9, rise=1e-10, width=2e-9, period=5e-9)
        )
        c.add_resistor("R1", "a", "0", 1.0)
        bps = compile_circuit(c).collect_breakpoints(10e-9)
        assert bps[-1] == 10e-9  # tstop always terminates
        assert any(abs(b - 1e-9) < 1e-18 for b in bps)
        assert any(abs(b - 6e-9) < 1e-18 for b in bps)

    def test_dc_source_only_tstop(self, divider_circuit):
        bps = compile_circuit(divider_circuit).collect_breakpoints(1e-6)
        np.testing.assert_allclose(bps, [1e-6])

    def test_breakpoints_sorted_unique(self):
        c = Circuit("t")
        wf = Pulse(0, 1, delay=1e-9, rise=1e-10, width=2e-9)
        c.add_vsource("V1", "a", "0", wf)
        c.add_vsource("V2", "b", "0", wf)
        c.add_resistor("R1", "a", "0", 1.0)
        c.add_resistor("R2", "b", "0", 1.0)
        bps = compile_circuit(c).collect_breakpoints(10e-9)
        assert np.all(np.diff(bps) > 0)


class TestInitialConditions:
    def test_grounded_cap_ic(self):
        c = Circuit("t")
        c.add_vsource("V1", "a", "0", Dc(1.0))
        c.add_resistor("R1", "a", "b", 1e3)
        c.add_capacitor("C1", "b", "0", 1e-9, ic=0.5)
        compiled = compile_circuit(c)
        assert compiled.initial_conditions == {"v:b": 0.5}

    def test_reversed_grounded_cap_ic(self):
        c = Circuit("t")
        c.add_vsource("V1", "a", "0", Dc(1.0))
        c.add_resistor("R1", "a", "b", 1e3)
        c.add_capacitor("C1", "0", "b", 1e-9, ic=0.5)
        compiled = compile_circuit(c)
        assert compiled.initial_conditions == {"v:b": -0.5}

    def test_floating_cap_ic_rejected(self):
        c = Circuit("t")
        c.add_vsource("V1", "a", "0", Dc(1.0))
        c.add_resistor("R1", "a", "b", 1e3)
        c.add_resistor("R2", "b", "0", 1e3)
        c.add_capacitor("C1", "a", "b", 1e-9, ic=0.5)
        with pytest.raises(CircuitError, match="floating capacitor"):
            compile_circuit(c)

    def test_inductor_ic(self):
        c = Circuit("t")
        c.add_vsource("V1", "a", "0", Dc(1.0))
        c.add_inductor("L1", "a", "0", 1e-6, ic=1e-3)
        compiled = compile_circuit(c)
        assert compiled.initial_conditions == {"i:L1": 1e-3}
