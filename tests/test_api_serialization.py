"""JSON round-trips of SimOptions and AnalysisRequest.

Batch job specs and campaign manifests embed these dumps, so the
round-trip must be exact: ``from_dict(to_dict(x)) == x`` for any valid
object, and unknown keys must fail loudly (a stale dump silently
dropping a tolerance knob would corrupt cache addressing).
"""

import json

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.api import AnalysisRequest
from repro.circuit.circuit import Circuit
from repro.circuit.components import Resistor, VoltageSource
from repro.circuit.sources import Dc
from repro.errors import SimulationError
from repro.instrument import Recorder
from repro.utils.options import INTEGRATION_METHODS, SimOptions

positive = st.floats(
    min_value=1e-15, max_value=1e3, allow_nan=False, allow_infinity=False
)

#: Valid SimOptions constructor kwargs (respects every __post_init__ rule).
options_kwargs = st.fixed_dictionaries(
    {},
    optional={
        "reltol": positive,
        "abstol": positive,
        "vntol": positive,
        "trtol": positive,
        "method": st.sampled_from(INTEGRATION_METHODS),
        "max_newton_iters": st.integers(min_value=1, max_value=500),
        "step_ratio_max": st.floats(min_value=1.0, max_value=16.0),
        "step_shrink": st.floats(min_value=0.01, max_value=0.99),
        "predictor_order": st.sampled_from([1, 2]),
        "backward_guard_fraction": st.floats(min_value=0.0, max_value=0.99),
        "newton_guess": st.sampled_from(["previous", "predictor"]),
        "jacobian_reuse": st.booleans(),
        "reuse_stall_ratio": st.floats(min_value=0.01, max_value=1.0),
        "refactor_every": st.integers(min_value=0, max_value=10),
        "max_step": st.one_of(st.none(), positive),
        "lte_reltol": st.one_of(st.none(), positive),
    },
)


def tiny_circuit() -> Circuit:
    circuit = Circuit(title="t")
    circuit.add(VoltageSource("V1", "a", "0", waveform=Dc(1.0)))
    circuit.add(Resistor("R1", "a", "0", resistance=1e3))
    return circuit


class TestSimOptionsRoundTrip:
    @settings(max_examples=100, deadline=None)
    @given(kwargs=options_kwargs)
    def test_roundtrip_is_exact(self, kwargs):
        options = SimOptions(**kwargs)
        dumped = json.loads(json.dumps(options.to_dict()))
        assert SimOptions.from_dict(dumped) == options

    def test_dump_is_json_and_complete(self):
        dump = SimOptions().to_dict()
        json.dumps(dump)  # must not raise
        assert "reltol" in dump and "jacobian_reuse" in dump
        assert "instrument" not in dump

    def test_instrument_excluded_and_reattachable(self):
        rec = Recorder()
        options = SimOptions(reltol=1e-4, instrument=rec)
        dump = options.to_dict()
        assert "instrument" not in dump
        rebuilt = SimOptions.from_dict(dump, instrument=rec)
        assert rebuilt == options
        assert rebuilt.instrument is rec

    def test_unknown_key_rejected(self):
        with pytest.raises(SimulationError, match="unknown SimOptions"):
            SimOptions.from_dict({"reltol": 1e-3, "retlol": 1e-3})

    def test_invalid_values_still_validated(self):
        with pytest.raises(SimulationError, match="positive"):
            SimOptions.from_dict({"reltol": -1.0})


class TestAnalysisRequestRoundTrip:
    def test_transient_roundtrip(self):
        circuit = tiny_circuit()
        request = AnalysisRequest(
            analysis="transient",
            circuit=circuit,
            tstop=1e-3,
            tstep=1e-6,
            options=SimOptions(reltol=1e-4),
        )
        dumped = json.loads(json.dumps(request.to_dict()))
        rebuilt = AnalysisRequest.from_dict(dumped, circuit=circuit)
        assert rebuilt == request

    def test_dc_extras_roundtrip_including_numpy(self):
        circuit = tiny_circuit()
        request = AnalysisRequest(
            analysis="dc",
            circuit=circuit,
            extras={"source": "V1", "values": np.linspace(0.0, 1.0, 5)},
        )
        dumped = json.loads(json.dumps(request.to_dict()))
        rebuilt = AnalysisRequest.from_dict(dumped, circuit=circuit)
        assert rebuilt.extras["values"] == [0.0, 0.25, 0.5, 0.75, 1.0]

    def test_wavepipe_fields_roundtrip(self):
        circuit = tiny_circuit()
        request = AnalysisRequest(
            analysis="wavepipe",
            circuit=circuit,
            tstop=1e-3,
            threads=4,
            scheme="combined",
        )
        rebuilt = AnalysisRequest.from_dict(request.to_dict(), circuit=circuit)
        assert rebuilt.threads == 4 and rebuilt.scheme == "combined"

    def test_non_serializable_extras_fail_loudly(self):
        request = AnalysisRequest(
            analysis="sweep",
            tstop=1e-3,
            extras={
                "circuit_factory": lambda v: tiny_circuit(),
                "parameter": "R1",
                "values": [1.0],
                "metrics": {"m": lambda r: 0.0},
            },
        )
        with pytest.raises(SimulationError, match="not JSON-serializable"):
            request.to_dict()

    def test_validation_reruns_on_rebuild(self):
        circuit = tiny_circuit()
        dump = AnalysisRequest(
            analysis="transient", circuit=circuit, tstop=1e-3
        ).to_dict()
        with pytest.raises(SimulationError, match="requires a circuit"):
            AnalysisRequest.from_dict(dump)  # circuit not reattached
