"""Waveform measurements against analytically known signals."""

import numpy as np
import pytest

from repro.circuit.circuit import Circuit
from repro.circuit.sources import Pulse, Sin
from repro.engine.transient import run_transient
from repro.errors import SimulationError
from repro.utils.options import SimOptions
from repro.waveform.measure import (
    duty_cycle,
    fall_time,
    overshoot,
    propagation_delay,
    rise_time,
    settling_time,
    thd,
    tone_magnitude,
)
from repro.waveform.waveform import Waveform


def exponential_step(tau=1e-6, tstop=8e-6, n=4000, delay=0.0):
    t = np.linspace(0, tstop, n)
    v = np.where(t > delay, 1.0 - np.exp(-(t - delay) / tau), 0.0)
    return Waveform(t, v, "step")


class TestRiseFall:
    def test_exponential_rise_time(self):
        # 10-90% rise of a first-order step = tau * ln(9)
        w = exponential_step(tau=1e-6)
        assert rise_time(w) == pytest.approx(1e-6 * np.log(9.0), rel=0.01)

    def test_fall_time_mirror(self):
        t = np.linspace(0, 8e-6, 4000)
        v = np.exp(-t / 1e-6)
        w = Waveform(t, v, "decay")
        assert fall_time(w) == pytest.approx(1e-6 * np.log(9.0), rel=0.01)

    def test_custom_fractions(self):
        w = exponential_step(tau=1e-6)
        t_2080 = rise_time(w, fractions=(0.2, 0.8))
        expected = 1e-6 * (np.log(1 / 0.2) - np.log(1 / 0.8))
        assert t_2080 == pytest.approx(expected, rel=0.02)

    def test_flat_signal_returns_none(self):
        w = Waveform(np.linspace(0, 1, 10), np.ones(10))
        assert rise_time(w) is None
        assert fall_time(w) is None


class TestDelayAndDuty:
    def square(self, period=1e-6, duty=0.3, n=8000, shift=0.0):
        t = np.linspace(0, 5 * period, n)
        v = ((((t - shift) / period) % 1.0) < duty).astype(float)
        return Waveform(t, v, "sq")

    def test_propagation_delay(self):
        a = self.square()
        b = self.square(shift=0.1e-6)
        delay = propagation_delay(a, b, 0.5, 0.5, "rise", "rise")
        assert delay == pytest.approx(0.1e-6, rel=0.02)

    def test_delay_occurrence_selection(self):
        a = self.square()
        b = self.square(shift=0.1e-6)
        d2 = propagation_delay(a, b, 0.5, 0.5, "rise", "rise", occurrence=2)
        assert d2 == pytest.approx(0.1e-6, rel=0.02)

    def test_delay_none_when_target_silent(self):
        a = self.square()
        flat = Waveform(a.times, np.zeros_like(a.values))
        assert propagation_delay(a, flat, 0.5, 0.5) is None

    def test_occurrence_validation(self):
        a = self.square()
        with pytest.raises(SimulationError):
            propagation_delay(a, a, 0.5, 0.5, occurrence=0)

    def test_duty_cycle(self):
        w = self.square(duty=0.3)
        assert duty_cycle(w) == pytest.approx(0.3, abs=0.01)

    def test_duty_cycle_none_for_dc(self):
        w = Waveform(np.linspace(0, 1, 10), np.ones(10))
        assert duty_cycle(w) is None


class TestOvershootSettling:
    def damped_step(self, zeta=0.2, wn=2 * np.pi * 1e6, tstop=10e-6, n=20000):
        t = np.linspace(0, tstop, n)
        wd = wn * np.sqrt(1 - zeta**2)
        v = 1 - np.exp(-zeta * wn * t) * (
            np.cos(wd * t) + zeta / np.sqrt(1 - zeta**2) * np.sin(wd * t)
        )
        return Waveform(t, v, "2nd-order")

    def test_second_order_overshoot(self):
        zeta = 0.2
        w = self.damped_step(zeta=zeta)
        expected = np.exp(-np.pi * zeta / np.sqrt(1 - zeta**2))
        assert overshoot(w, final=1.0) == pytest.approx(expected, rel=0.02)

    def test_monotone_has_zero_overshoot(self):
        assert overshoot(exponential_step(), final=1.0) == 0.0

    def test_settling_time_first_order(self):
        # 2% settling of exp step = tau * ln(50)
        w = exponential_step(tau=1e-6, tstop=12e-6, n=40000)
        assert settling_time(w, 0.02, final=1.0) == pytest.approx(
            1e-6 * np.log(50.0), rel=0.02
        )

    def test_settling_none_when_still_moving(self):
        w = exponential_step(tau=1e-5, tstop=1e-6)  # barely started
        assert settling_time(w, 0.02, final=1.0) is None


class TestSpectral:
    def test_tone_magnitude(self):
        t = np.linspace(0, 10e-6, 8000)
        w = Waveform(t, 0.5 + 2.0 * np.sin(2 * np.pi * 1e6 * t))
        assert tone_magnitude(w, 1e6) == pytest.approx(2.0, rel=0.01)

    def test_thd_of_clipped_sine(self):
        t = np.linspace(0, 10e-6, 16000)
        pure = np.sin(2 * np.pi * 1e6 * t)
        clipped = np.clip(pure, -0.7, 0.7)
        w_pure = Waveform(t, pure)
        w_clip = Waveform(t, clipped)
        assert thd(w_pure, 1e6) < 0.01
        assert thd(w_clip, 1e6) > 0.05

    def test_thd_validation(self):
        w = Waveform(np.linspace(0, 1e-6, 100), np.zeros(100))
        with pytest.raises(SimulationError):
            thd(w, 1e6, harmonics=1)
        assert thd(w, 1e6) is None  # no fundamental present


class TestDegenerateWaveforms:
    """Empty, single-point, and out-of-span-window inputs never raise."""

    def empty(self):
        return Waveform(np.array([]), np.array([]), "empty")

    def single(self):
        return Waveform(np.array([1e-6]), np.array([0.7]), "single")

    def test_empty_waveform_measurements(self):
        w = self.empty()
        assert rise_time(w) is None
        assert fall_time(w) is None
        assert settling_time(w) is None
        assert duty_cycle(w) is None
        assert overshoot(w) == 0.0
        assert tone_magnitude(w, 1e6) == 0.0
        assert thd(w, 1e6) is None

    def test_single_point_waveform_measurements(self):
        w = self.single()
        assert rise_time(w) is None  # zero span
        assert fall_time(w) is None
        assert duty_cycle(w) is None  # no crossings
        assert overshoot(w) == 0.0  # zero swing
        assert settling_time(w) == pytest.approx(1e-6)  # settled trivially
        assert tone_magnitude(w, 1e6) == 0.0
        assert thd(w, 1e6) is None

    def test_empty_trigger_or_target_delay(self):
        w = self.empty()
        step = exponential_step()
        assert propagation_delay(w, step, 0.5, 0.5) is None
        assert propagation_delay(step, w, 0.5, 0.5) is None

    def test_window_outside_span(self):
        # Slicing past the waveform's extent yields an empty waveform;
        # every measurement must degrade gracefully, not raise.
        step = exponential_step(tstop=8e-6)
        window = step.slice(1e-3, 2e-3)
        assert len(window) == 0
        assert rise_time(window) is None
        assert settling_time(window) is None
        assert overshoot(window) == 0.0
        assert thd(window, 1e6) is None


class TestOnSimulatedCircuits:
    def test_rc_rise_time_from_simulation(self, rc_circuit):
        result = run_transient(rc_circuit, 8e-6, options=SimOptions(reltol=1e-4))
        out = result.waveforms.voltage("out")
        assert rise_time(out, low=0.0, high=1.0) == pytest.approx(
            1e-6 * np.log(9.0), rel=0.03
        )

    def test_rlc_overshoot_from_simulation(self, rlc_circuit):
        result = run_transient(rlc_circuit, 2e-6, options=SimOptions(reltol=1e-4))
        out = result.waveforms.voltage("out")
        # zeta = (R/2) sqrt(C/L) = 0.158 -> overshoot exp(-pi z /sqrt(1-z^2))
        zeta = 0.5 * 10.0 * np.sqrt(1e-9 / 1e-6)
        expected = np.exp(-np.pi * zeta / np.sqrt(1 - zeta**2))
        assert overshoot(out, final=1.0) == pytest.approx(expected, rel=0.05)

    def test_inverter_propagation_delay(self, inverter_circuit):
        result = run_transient(inverter_circuit, 10e-9)
        vin = result.waveforms.voltage("in")
        vout = result.waveforms.voltage("out")
        delay = propagation_delay(vin, vout, 1.5, 1.5, "rise", "fall")
        assert delay is not None
        assert 0 < delay < 1e-9  # sub-ns gate

    def test_amplifier_thd_small_signal(self):
        # a lightly driven RC filter barely distorts a sine
        c = Circuit("lin")
        c.add_vsource("V1", "in", "0", Sin(0.0, 0.1, 1e6))
        c.add_resistor("R1", "in", "out", 1e3)
        c.add_capacitor("C1", "out", "0", 10e-12)
        result = run_transient(c, 5e-6, options=SimOptions(reltol=1e-4))
        out = result.waveforms.voltage("out").slice(1e-6, 5e-6)
        assert thd(out, 1e6) < 0.02
