"""Jacobian pattern cache: assembly must match a naive COO construction."""

import numpy as np
import pytest
import scipy.sparse as sp
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import AssemblyError
from repro.mna.pattern import PatternBuilder


def naive_assemble(n, g_entries, c_entries, alpha0, diag_shift=0.0):
    """Reference: plain COO with ground (index n) entries dropped."""
    rows, cols, vals = [], [], []
    for r, c, v in g_entries:
        if r < n and c < n:
            rows.append(r), cols.append(c), vals.append(v)
    for r, c, v in c_entries:
        if r < n and c < n:
            rows.append(r), cols.append(c), vals.append(alpha0 * v)
    for i in range(n):
        rows.append(i), cols.append(i), vals.append(diag_shift)
    return sp.coo_matrix((vals, (rows, cols)), shape=(n, n)).toarray()


class TestPatternBuilder:
    def test_simple_conductance_stamp(self):
        builder = PatternBuilder(2)
        slots = builder.add_g_entries([0, 0, 1, 1], [0, 1, 0, 1])
        pattern = builder.finalize()
        g_vals = np.zeros(len(slots))
        g_vals[slots.slice] = [2.0, -2.0, -2.0, 2.0]
        mat = pattern.assemble(g_vals, np.zeros(0), 0.0).toarray()
        np.testing.assert_allclose(mat, [[2.0, -2.0], [-2.0, 2.0]])

    def test_duplicate_positions_sum(self):
        builder = PatternBuilder(1)
        s1 = builder.add_g_entries([0], [0])
        s2 = builder.add_g_entries([0], [0])
        pattern = builder.finalize()
        g_vals = np.zeros(2)
        g_vals[s1.slice] = 3.0
        g_vals[s2.slice] = 4.0
        mat = pattern.assemble(g_vals, np.zeros(0), 0.0).toarray()
        assert mat[0, 0] == pytest.approx(7.0)

    def test_ground_entries_discarded(self):
        builder = PatternBuilder(2)
        slots = builder.add_g_entries([0, 2, 2, 0], [0, 0, 2, 2])
        pattern = builder.finalize()
        g_vals = np.zeros(4)
        g_vals[slots.slice] = [1.0, 5.0, 5.0, 5.0]
        mat = pattern.assemble(g_vals, np.zeros(0), 0.0).toarray()
        np.testing.assert_allclose(mat, [[1.0, 0.0], [0.0, 0.0]])

    def test_alpha0_scales_c_stream(self):
        builder = PatternBuilder(1)
        gs = builder.add_g_entries([0], [0])
        cs = builder.add_c_entries([0], [0])
        pattern = builder.finalize()
        g_vals = np.array([1.0])
        c_vals = np.array([2.0])
        mat = pattern.assemble(g_vals, c_vals, 10.0).toarray()
        assert mat[0, 0] == pytest.approx(21.0)

    def test_diag_shift(self):
        builder = PatternBuilder(3)
        builder.add_g_entries([0], [1])
        pattern = builder.finalize()
        mat = pattern.assemble(np.zeros(1), np.zeros(0), 0.0, diag_shift=1e-12).toarray()
        np.testing.assert_allclose(np.diag(mat), 1e-12)

    def test_out_of_range_rejected(self):
        builder = PatternBuilder(2)
        with pytest.raises(AssemblyError):
            builder.add_g_entries([3], [0])
        with pytest.raises(AssemblyError):
            builder.add_g_entries([-1], [0])

    def test_mismatched_shapes_rejected(self):
        builder = PatternBuilder(2)
        with pytest.raises(AssemblyError):
            builder.add_g_entries([0, 1], [0])

    def test_finalize_locks_builder(self):
        builder = PatternBuilder(2)
        builder.finalize()
        with pytest.raises(AssemblyError):
            builder.add_g_entries([0], [0])

    def test_wrong_value_sizes_rejected(self):
        builder = PatternBuilder(2)
        builder.add_g_entries([0], [0])
        pattern = builder.finalize()
        with pytest.raises(AssemblyError):
            pattern.assemble(np.zeros(5), np.zeros(0), 0.0)

    def test_zero_size_rejected(self):
        with pytest.raises(AssemblyError):
            PatternBuilder(0)

    @settings(max_examples=40, deadline=None)
    @given(
        st.integers(min_value=1, max_value=6),
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=6),
                st.integers(min_value=0, max_value=6),
                st.floats(min_value=-10, max_value=10, allow_nan=False),
            ),
            max_size=20,
        ),
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=6),
                st.integers(min_value=0, max_value=6),
                st.floats(min_value=-10, max_value=10, allow_nan=False),
            ),
            max_size=20,
        ),
        st.floats(min_value=0, max_value=100, allow_nan=False),
    )
    def test_matches_naive_assembly(self, n, g_entries, c_entries, alpha0):
        g_entries = [(min(r, n), min(c, n), v) for r, c, v in g_entries]
        c_entries = [(min(r, n), min(c, n), v) for r, c, v in c_entries]
        builder = PatternBuilder(n)
        gs = builder.add_g_entries(
            [e[0] for e in g_entries], [e[1] for e in g_entries]
        )
        cs = builder.add_c_entries(
            [e[0] for e in c_entries], [e[1] for e in c_entries]
        )
        pattern = builder.finalize()
        g_vals = np.array([e[2] for e in g_entries])
        c_vals = np.array([e[2] for e in c_entries])
        got = pattern.assemble(g_vals, c_vals, alpha0, diag_shift=1e-9).toarray()
        want = naive_assemble(n, g_entries, c_entries, alpha0, diag_shift=1e-9)
        np.testing.assert_allclose(got, want, atol=1e-12)
