"""WavePipe core: planners, invariants and scheme behaviour.

The load-bearing correctness properties:

* threads=1 pipelining reproduces the sequential trajectory bit-for-bit;
* the thread-pool runtime produces bit-identical results to the serial
  runtime (tasks are genuinely independent and stateless);
* accepted waveforms agree with sequential within integration tolerance
  for every scheme (the paper's central claim);
* accounting invariants: virtual work never exceeds serial-equivalent
  work, wasted solves are charged, stage widths respect the thread count.
"""

import numpy as np
import pytest

from repro.circuit.circuit import Circuit
from repro.circuit.sources import Pulse
from repro.core.backward import BackwardPipeline, plan_backward_targets
from repro.core.combined import CombinedPipeline
from repro.core.forward import ForwardPipeline
from repro.core.wavepipe import compare_with_sequential, run_wavepipe
from repro.engine.transient import run_transient
from repro.errors import SimulationError
from repro.mna.compiler import compile_circuit
from repro.utils.options import SimOptions
from repro.waveform.waveform import compare, worst_deviation


@pytest.fixture(scope="module")
def grid_circuit():
    from repro.circuits.interconnect import rc_grid

    return compile_circuit(rc_grid(nx=4, ny=4))


@pytest.fixture(scope="module")
def chain_circuit():
    from repro.circuits.digital import inverter_chain

    return compile_circuit(inverter_chain(stages=4))


GRID_TSTOP = 25e-9
CHAIN_TSTOP = 25e-9


class TestPlanBackwardTargets:
    def test_single_thread_plain_step(self):
        assert plan_backward_targets(1.0, 10.0, None, 2.0, 1) == [1.0]

    def test_breakpoint_window_collapses_to_single(self):
        targets = plan_backward_targets(0.95, 1.0, None, 2.0, 4)
        assert targets == [1.0]

    def test_chain_grows_geometrically(self):
        targets = plan_backward_targets(1.0, 100.0, None, 2.0, 4)
        assert targets == pytest.approx([1.0, 3.0, 7.0, 15.0])

    def test_chain_capped_by_estimate(self):
        targets = plan_backward_targets(1.0, 100.0, 5.0, 2.0, 4)
        assert targets == pytest.approx([1.0, 3.0])

    def test_cap_never_below_sequential_step(self):
        targets = plan_backward_targets(1.0, 100.0, 0.01, 2.0, 4)
        assert targets[0] == pytest.approx(1.0)

    def test_guard_prepended(self):
        targets = plan_backward_targets(
            1.0, 100.0, None, 2.0, 3, guard_fraction=0.5
        )
        assert targets == pytest.approx([0.5, 1.0, 3.0])

    def test_no_chain_when_disallowed(self):
        targets = plan_backward_targets(
            1.0, 100.0, None, 2.0, 4, allow_chain=False
        )
        assert targets == [1.0]

    def test_room_clips_chain(self):
        targets = plan_backward_targets(1.0, 5.0, None, 2.0, 4)
        # 1, then 3, then 7 > 5*0.9 -> snap to room
        assert targets == pytest.approx([1.0, 3.0, 5.0])

    def test_ascending(self):
        targets = plan_backward_targets(
            1.0, 1000.0, None, 2.0, 6, guard_fraction=0.4
        )
        assert all(b > a for a, b in zip(targets, targets[1:]))


@pytest.mark.parametrize("engine_cls", [BackwardPipeline, ForwardPipeline, CombinedPipeline])
class TestSchemeInvariants:
    def test_single_thread_matches_sequential_exactly(self, engine_cls, grid_circuit):
        seq = run_transient(grid_circuit, GRID_TSTOP)
        pipe = engine_cls(grid_circuit, GRID_TSTOP, threads=1).run()
        np.testing.assert_array_equal(seq.times, pipe.times)
        for name in ("v(p_3_3)", "v(p_0_1)"):
            np.testing.assert_array_equal(
                seq.waveforms[name].values, pipe.waveforms[name].values
            )

    def test_accuracy_within_tolerance(self, engine_cls, chain_circuit):
        """Digital signals: pointwise deviation at a 100 ps edge explodes
        for picosecond timing shifts, so accuracy is asserted the way a
        designer would read it — same switching events, edge times within
        a small fraction of the pulse period, and matching levels."""
        seq = run_transient(chain_circuit, CHAIN_TSTOP)
        pipe = engine_cls(chain_circuit, CHAIN_TSTOP, threads=3).run()
        for name in ("v(n2)", "v(n4)"):
            e_seq = seq.waveforms[name].crossings(1.5)
            e_pipe = pipe.waveforms[name].crossings(1.5)
            assert e_seq.size == e_pipe.size, f"{name}: edge count differs"
            assert np.abs(e_seq - e_pipe).max() < 0.01 * 10e-9  # 1% of period
            assert seq.waveforms[name].final_value() == pytest.approx(
                pipe.waveforms[name].final_value(), abs=0.02
            )

    def test_accounting_invariants(self, engine_cls, grid_circuit):
        pipe = engine_cls(grid_circuit, GRID_TSTOP, threads=3).run()
        stats = pipe.stats
        assert stats.virtual_total <= stats.serial_total + 1e-9
        assert stats.clock.peak_width <= 3
        assert stats.accepted_points == len(pipe.times) - 1
        assert stats.self_speedup() >= 1.0

    def test_reaches_tstop(self, engine_cls, grid_circuit):
        pipe = engine_cls(grid_circuit, GRID_TSTOP, threads=2).run()
        assert pipe.final_time == pytest.approx(GRID_TSTOP, rel=1e-9)

    def test_single_use_enforced(self, engine_cls, grid_circuit):
        engine = engine_cls(grid_circuit, GRID_TSTOP, threads=2)
        engine.run()
        with pytest.raises(SimulationError, match="single-use"):
            engine.run()


class TestThreadRuntimeEquivalence:
    @pytest.mark.parametrize("scheme", ["backward", "forward", "combined"])
    def test_thread_executor_bit_identical(self, scheme, chain_circuit):
        serial = run_wavepipe(
            chain_circuit, CHAIN_TSTOP, scheme=scheme, threads=3, executor="serial"
        )
        threaded = run_wavepipe(
            chain_circuit, CHAIN_TSTOP, scheme=scheme, threads=3, executor="thread"
        )
        np.testing.assert_array_equal(serial.times, threaded.times)
        for name in serial.waveforms.names:
            np.testing.assert_array_equal(
                serial.waveforms[name].values, threaded.waveforms[name].values
            )


class TestBackwardBehaviour:
    def test_chain_extensions_accepted_on_ramping_circuit(self, grid_circuit):
        pipe = BackwardPipeline(grid_circuit, GRID_TSTOP, threads=4).run()
        # ramp-heavy workload: some stages must have run wider than 1 task
        assert pipe.stats.clock.peak_width >= 2
        assert pipe.stats.clock.mean_width > 1.0

    def test_guard_salvages_rejections(self):
        # Ring oscillator: high sequential rejection rate; the guard must
        # convert a meaningful number into progress.
        from repro.circuits.digital import ring_oscillator

        compiled = compile_circuit(ring_oscillator(stages=3))
        pipe = BackwardPipeline(compiled, 10e-9, threads=2).run()
        assert pipe.stats.extra.get("guard_salvages", 0) > 0

    def test_speedup_not_a_slowdown(self, grid_circuit):
        report = compare_with_sequential(
            grid_circuit, GRID_TSTOP, scheme="backward", threads=2
        )
        assert report.speedup >= 0.95

    def test_wasted_work_charged(self, chain_circuit):
        pipe = BackwardPipeline(chain_circuit, CHAIN_TSTOP, threads=4).run()
        stats = pipe.stats
        if stats.wasted_solves:
            assert stats.wasted_work > 0


class TestForwardBehaviour:
    def test_speculation_on_smooth_circuit(self):
        from repro.circuits.digital import ring_oscillator

        compiled = compile_circuit(ring_oscillator(stages=3))
        pipe = ForwardPipeline(compiled, 10e-9, threads=2).run()
        assert pipe.stats.speculative_solves > 0
        assert pipe.stats.speculative_hits > 0

    def test_speculation_disabled_on_cheap_solves(self, grid_circuit):
        # Linear circuit: ~2-iteration solves leave nothing to pre-pay.
        # The cost EWMA needs a few stages to learn that, so allow a
        # handful of startup speculations but require the bulk disabled.
        pipe = ForwardPipeline(grid_circuit, GRID_TSTOP, threads=2).run()
        assert pipe.stats.speculative_solves < 0.1 * pipe.stats.accepted_points

    def test_committed_points_satisfy_exact_equations(self, chain_circuit):
        # The speculative mechanism must never leave a point that fails
        # the exact discretised equations: re-verify KCL residuals.
        from repro.mna.system import MnaSystem

        pipe = ForwardPipeline(chain_circuit, CHAIN_TSTOP, threads=2).run()
        system = MnaSystem(chain_circuit)
        out = system.make_buffers()
        times = pipe.times
        matrix = np.column_stack(
            [pipe.waveforms[n].values for n in system.unknown_names]
        )
        # resistive-only sanity at a few accepted points (charge terms need
        # history; the resistive residual alone is bounded by C*dv/dt).
        for k in np.linspace(1, len(times) - 1, 8, dtype=int):
            system.eval(matrix[k], times[k], out)
            residual = system.resistive_residual(out, matrix[k])
            assert np.all(np.isfinite(residual))


class TestCombinedBehaviour:
    def test_runs_and_matches(self, chain_circuit):
        report = compare_with_sequential(
            chain_circuit, CHAIN_TSTOP, scheme="combined", threads=4,
            signals=["v(n4)"],
        )
        assert report.speedup >= 0.95
        # pointwise deviation on an edge-heavy signal: bounded by one edge
        # displaced within the LTE budget, not by reltol (see above).
        assert report.worst_deviation.max_relative < 0.5

    def test_efficiency_definition(self, chain_circuit):
        report = compare_with_sequential(
            chain_circuit, CHAIN_TSTOP, scheme="combined", threads=4
        )
        assert report.efficiency == pytest.approx(report.speedup / 4)

    def test_summary_renders(self, chain_circuit):
        report = compare_with_sequential(
            chain_circuit, CHAIN_TSTOP, scheme="combined", threads=3
        )
        text = report.summary()
        assert "combined x3" in text
        assert "speedup" in text


class TestApi:
    def test_unknown_scheme_rejected(self, grid_circuit):
        with pytest.raises(SimulationError, match="scheme"):
            run_wavepipe(grid_circuit, GRID_TSTOP, scheme="sideways")

    def test_zero_threads_rejected(self, grid_circuit):
        with pytest.raises(SimulationError):
            run_wavepipe(grid_circuit, GRID_TSTOP, threads=0)

    def test_accepts_raw_circuit(self):
        c = Circuit("rc")
        c.add_vsource("V1", "a", "0", Pulse(0, 1, delay=1e-9, rise=1e-12, width=1.0))
        c.add_resistor("R1", "a", "b", 1e3)
        c.add_capacitor("C1", "b", "0", 1e-9)
        result = run_wavepipe(c, 5e-6, scheme="backward", threads=2)
        assert result.scheme == "backward"
        assert result.threads == 2

    def test_result_metadata(self, grid_circuit):
        result = run_wavepipe(grid_circuit, GRID_TSTOP, scheme="forward", threads=2)
        assert result.scheme == "forward"
        assert result.pipeline_stats is result.stats

    def test_uic_supported(self):
        c = Circuit("t")
        c.add_vsource("V1", "in", "0", 0.0)
        c.add_resistor("R1", "in", "out", 1e3)
        c.add_capacitor("C1", "out", "0", 1e-9, ic=1.0)
        result = run_wavepipe(c, 3e-6, scheme="backward", threads=2, uic=True)
        assert result.waveforms.voltage("out").at(0.0) == pytest.approx(1.0)
