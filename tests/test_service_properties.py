"""Hypothesis property tests for the service layer (satellite 2).

Two families:

* the queue manifest survives *arbitrary* interleavings of submit /
  claim / complete / fail / crash (lease expiry) across nodes, with the
  manifest reloaded from disk before every operation — no job is ever
  lost and none is completed twice;
* every JSON payload that crosses the HTTP boundary round-trips through
  ``json.dumps``/``json.loads`` without changing meaning.
"""

import dataclasses
import json

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st
from hypothesis.stateful import (
    RuleBasedStateMachine,
    initialize,
    invariant,
    rule,
    run_state_machine_as_test,
)

from repro.jobs.spec import CircuitRef, JobSpec
from repro.service.loadgen import LoadReport
from repro.service.queue import ENTRY_STATUSES, JobQueue, QuotaExceeded

DECK = """rc lowpass
V1 in 0 SIN(0 1 1k)
R1 in out 1k
C1 out 0 1u
.tran 10u 1m
.end
"""

LEASE = 10.0
UNIVERSE = 4  # distinct job specs the machine draws from
NODES = ("n1", "n2", "n3")


def variant(i: int) -> JobSpec:
    return JobSpec(
        circuit=CircuitRef(kind="netlist", netlist=DECK),
        label=f"v{i}",
        params={"R1": 1e3 * (1.0 + 0.01 * i)},
    )


class FakeClock:
    def __init__(self) -> None:
        self.now = 1000.0

    def __call__(self) -> float:
        return self.now

    def advance(self, dt: float) -> None:
        self.now += dt


class QueueMachine(RuleBasedStateMachine):
    """Model-based check of the persistent queue's lifecycle invariants.

    The model tracks, per spec hash: whether it was ever submitted, and
    how many times ``complete`` acknowledged a completion.  A fresh
    ``JobQueue`` handle is opened from disk for every operation, so any
    state the manifest fails to persist shows up as a model divergence.
    """

    @initialize()
    def setup(self) -> None:
        import tempfile

        self.dir = tempfile.TemporaryDirectory()
        self.clock = FakeClock()
        self.submitted: set[str] = set()
        self.completions: dict[str, int] = {}
        self.leases: list[tuple[str, str]] = []  # (hash, node) claims seen

    def queue(self) -> JobQueue:
        # a *new* handle per operation: everything must come from disk
        return JobQueue(self.dir.name, clock=self.clock)

    @rule(i=st.integers(0, UNIVERSE - 1), priority=st.integers(0, 2),
          tenant=st.sampled_from(("acme", "free")))
    def submit(self, i, priority, tenant) -> None:
        receipt = self.queue().submit(variant(i), tenant=tenant, priority=priority)
        self.submitted.add(receipt.spec_hash)

    @rule(node=st.sampled_from(NODES), limit=st.integers(1, 3))
    def claim(self, node, limit) -> None:
        for job in self.queue().claim(node, lease_seconds=LEASE, limit=limit):
            assert job.spec_hash in self.submitted
            self.leases.append((job.spec_hash, node))

    @rule(pick=st.randoms(use_true_random=False))
    def complete(self, pick) -> None:
        if not self.leases:
            return
        spec_hash, node = pick.choice(self.leases)
        if self.queue().complete(spec_hash, node):
            self.completions[spec_hash] = self.completions.get(spec_hash, 0) + 1

    @rule(pick=st.randoms(use_true_random=False))
    def fail(self, pick) -> None:
        if not self.leases:
            return
        spec_hash, node = pick.choice(self.leases)
        self.queue().fail(spec_hash, node, "injected")

    @rule()
    def crash(self) -> None:
        # every outstanding lease expires: the holder died without settling
        self.clock.advance(LEASE + 1)
        self.queue().reap_expired()

    @invariant()
    def no_lost_or_double_completed_jobs(self) -> None:
        if not hasattr(self, "submitted"):
            return
        queue = self.queue()
        hashes = set(queue.job_hashes())
        assert hashes == self.submitted, "manifest lost or invented jobs"
        for spec_hash in self.submitted:
            status = queue.status(spec_hash)
            assert status is not None
            assert status["status"] in ENTRY_STATUSES
            done = status["status"] == "done"
            acked = self.completions.get(spec_hash, 0)
            assert acked <= 1, "job completed twice"
            assert (acked == 1) == done, "done flag out of sync with acks"

    def teardown(self) -> None:
        if hasattr(self, "dir"):
            self.dir.cleanup()


def test_queue_survives_arbitrary_interleavings():
    run_state_machine_as_test(
        QueueMachine,
        settings=settings(
            max_examples=30,
            stateful_step_count=30,
            deadline=None,
            suppress_health_check=[HealthCheck.too_slow],
        ),
    )


# --- JSON round-trips for HTTP payloads -------------------------------------

finite = st.floats(
    min_value=1e-9, max_value=1e9, allow_nan=False, allow_infinity=False
)
names = st.text(
    alphabet="abcdefghijklmnopqrstuvwxyz0123456789_", min_size=1, max_size=12
)

spec_strategy = st.builds(
    JobSpec,
    circuit=st.just(CircuitRef(kind="netlist", netlist=DECK)),
    analysis=st.sampled_from(("transient", "wavepipe")),
    label=st.text(max_size=20),
    tstop=st.none() | finite,
    tstep=st.none() | finite,
    threads=st.integers(1, 8),
    params=st.dictionaries(names, finite, max_size=4),
    options=st.dictionaries(
        st.sampled_from(("reltol", "abstol")), finite, max_size=2
    ),
)


@given(spec=spec_strategy)
@settings(max_examples=50, deadline=None)
def test_job_spec_round_trips_through_wire_json(spec):
    wire = json.loads(json.dumps({"spec": spec.to_dict()}))
    rebuilt = JobSpec.from_dict(wire["spec"])
    assert rebuilt == spec
    assert rebuilt.content_hash() == spec.content_hash()


@given(spec=spec_strategy, tenant=names, priority=st.integers(0, 5))
@settings(max_examples=15, deadline=None)
def test_submit_receipt_payload_round_trips(tmp_path_factory, spec, tenant, priority):
    root = tmp_path_factory.mktemp("queue")
    queue = JobQueue(root)
    receipt = queue.submit(spec, tenant=tenant, priority=priority)
    payload = json.loads(json.dumps(dataclasses.asdict(receipt)))
    assert payload["spec_hash"] == spec.content_hash()
    assert payload["created"] is True and payload["deduped"] is False
    status = json.loads(json.dumps(queue.status(receipt.spec_hash)))
    assert status["id"] == spec.content_hash()
    assert status["tenants"] == [tenant]
    assert status["priority"] == priority


@given(
    requests=st.integers(0, 500),
    rejected=st.integers(0, 50),
    elapsed=finite,
    counts=st.dictionaries(st.sampled_from(ENTRY_STATUSES), st.integers(0, 99)),
)
@settings(max_examples=25, deadline=None)
def test_load_report_round_trips(requests, rejected, elapsed, counts):
    report = LoadReport(
        requests=requests, rejected=rejected, elapsed=elapsed, counts=counts
    )
    wire = json.loads(json.dumps(report.to_dict()))
    assert LoadReport(**wire) == report


@given(depth=st.integers(1, 20), quota=st.integers(1, 19))
@settings(max_examples=10, deadline=None)
def test_quota_error_payload_is_json_safe(depth, quota):
    exc = QuotaExceeded("acme", depth=depth, quota=quota)
    # the 429 body the server derives from the exception
    body = json.loads(json.dumps(
        {"error": str(exc), "tenant": exc.tenant, "depth": exc.depth,
         "quota": exc.quota}
    ))
    assert body["depth"] == depth and body["quota"] == quota
    assert "acme" in body["error"]
