"""Telemetry layer: recorder merging, heartbeats, Prometheus exposition.

Covers the cross-process aggregation primitives (snapshot/merge), the
event-capacity accounting (``instrument.events_dropped``, drop vs tail
eviction), the live Heartbeat reporter, the Prometheus text renderer and
its stdlib ``/metrics`` endpoint, and the guarantee that the disabled
(NullRecorder) path allocates nothing.
"""

import http.client
import io
import json
import time
import types

import pytest

from repro.instrument import (
    EVENTS_DROPPED,
    NULL_RECORDER,
    Heartbeat,
    MetricsServer,
    NullRecorder,
    Recorder,
    RunMetrics,
    heartbeat_for,
    serve_metrics,
    to_prometheus,
)
from repro.instrument.prometheus import metric_name


def _stats(**overrides):
    base = dict(
        accepted_points=10,
        rejected_points=2,
        newton_failures=0,
        newton_iterations=30,
        work_units=5.0,
        dc_work_units=1.0,
        dcop_seconds=0.0,
        tran_seconds=0.1,
        extra=None,
    )
    base.update(overrides)
    return types.SimpleNamespace(**base)


class TestEventCapacity:
    def test_drop_mode_keeps_first_and_counts(self):
        rec = Recorder(max_events=2)
        for i in range(5):
            rec.event(f"e{i}")
        assert [e.name for e in rec.events] == ["e0", "e1"]
        assert rec.dropped_events == 3
        assert rec.counter(EVENTS_DROPPED) == 3
        assert rec.snapshot()["dropped_events"] == 3

    def test_tail_mode_keeps_last_and_counts(self):
        rec = Recorder(max_events=3, evict="tail")
        for i in range(5):
            rec.event(f"e{i}")
        assert [e.name for e in rec.events] == ["e2", "e3", "e4"]
        assert rec.dropped_events == 2
        assert rec.counter(EVENTS_DROPPED) == 2

    def test_bad_evict_rejected(self):
        with pytest.raises(ValueError, match="evict"):
            Recorder(evict="lru")

    def test_drops_surface_in_run_metrics(self):
        rec = Recorder(max_events=1)
        rec.event("a")
        rec.event("b")
        metrics = RunMetrics.from_stats(_stats(), recorder=rec)
        assert metrics.events_dropped == 1
        assert metrics.to_dict()["events_dropped"] == 1
        assert "1 events dropped" in metrics.summary()

    def test_no_drops_stay_silent(self):
        rec = Recorder()
        rec.event("a")
        metrics = RunMetrics.from_stats(_stats(), recorder=rec)
        assert metrics.events_dropped == 0
        assert "events_dropped" not in metrics.to_dict()
        assert "dropped" not in metrics.summary()


class TestSnapshotMerge:
    def worker(self) -> Recorder:
        rec = Recorder(max_events=8, evict="tail")
        rec.count("newton.iterations", 12)
        rec.count("lu.solve", 12)
        rec.observe("newton.iterations_per_solve", 3)
        rec.observe("newton.iterations_per_solve", 9)
        rec.event("newton_solve", ts=0.5, lane=1)
        rec.event("step_accept", ts=0.9, t_sim=1e-6)
        return rec

    def test_counters_and_histograms_add(self):
        parent = Recorder()
        parent.count("newton.iterations", 5)
        parent.merge(self.worker().snapshot())
        parent.merge(self.worker().snapshot())
        assert parent.counter("newton.iterations") == 5 + 24
        assert parent.counter("lu.solve") == 24
        hist = parent.histograms["newton.iterations_per_solve"]
        assert hist.count == 4
        assert hist.total == 24.0
        assert hist.minimum == 3.0 and hist.maximum == 9.0
        # log2 buckets: 3 -> bucket 1, 9 -> bucket 3
        assert hist.buckets == {1: 2, 3: 2}

    def test_events_tail_travels_and_replays(self):
        parent = Recorder()
        snap = self.worker().snapshot(events_tail=10)
        assert [row["name"] for row in snap["events_tail"]] == [
            "newton_solve",
            "step_accept",
        ]
        parent.merge(snap)
        assert [e.name for e in parent.events] == ["newton_solve", "step_accept"]
        assert parent.events[0].lane == 1
        assert parent.events[1].t_sim == 1e-6

    def test_merged_events_rebase_onto_receiver_clock(self):
        # Snapshot timestamps are relative to the worker's epoch; merge
        # must shift them onto the parent's clock (tail ends at merge
        # time) or worker events land at bogus trace positions.
        parent = Recorder()
        snap = self.worker().snapshot(events_tail=10)
        time.sleep(0.01)
        before = parent.clock()
        parent.merge(snap)
        after = parent.clock()
        first, last = parent.events
        assert last.ts - first.ts == pytest.approx(0.9 - 0.5)
        assert before <= last.ts <= after

    def test_plain_snapshot_carries_no_events(self):
        snap = self.worker().snapshot()
        assert "events_tail" not in snap
        parent = Recorder()
        parent.merge(snap)
        assert parent.events == []

    def test_dropped_events_accumulate(self):
        worker = Recorder(max_events=1, evict="tail")
        worker.event("a")
        worker.event("b")
        parent = Recorder()
        parent.merge(worker.snapshot())
        parent.merge(worker.snapshot())
        assert parent.dropped_events == 2
        assert parent.counter(EVENTS_DROPPED) == 2

    def test_merge_none_and_empty_are_noops(self):
        parent = Recorder()
        parent.merge(None)
        parent.merge({})
        assert parent.counters == {} and parent.events == []

    def test_json_roundtripped_snapshot_merges(self):
        # Worker snapshots cross a pipe / the result cache as JSON, which
        # stringifies histogram bucket keys.
        snap = json.loads(json.dumps(self.worker().snapshot()))
        parent = Recorder()
        parent.merge(snap)
        hist = parent.histograms["newton.iterations_per_solve"]
        assert hist.buckets == {1: 1, 3: 1}


class TestHeartbeat:
    def test_samples_jobs_rate_and_eta(self, tmp_path):
        rec = Recorder(capture_events=False)
        path = tmp_path / "beats.jsonl"
        beat = Heartbeat(rec, interval=60.0, total_jobs=4, jsonl=str(path))
        beat.start()
        rec.count("jobs.completed", 2)
        rec.count("jobs.failed", 1)
        rec.count("points.accepted", 500)
        record = beat.sample()
        assert record["jobs"] == {"total": 4, "done": 2, "cached": 0, "failed": 1}
        assert record["deltas"]["points.accepted"] == 500
        assert record["points_per_second"] > 0
        assert record["eta_seconds"] is not None and record["eta_seconds"] >= 0
        beat.stop()
        rows = [json.loads(line) for line in path.read_text().splitlines()]
        assert all(row["record"] == "heartbeat" for row in rows)
        assert rows[-1]["final"] is True
        assert [row["seq"] for row in rows] == list(range(len(rows)))

    def test_background_thread_emits_on_interval(self):
        rec = Recorder(capture_events=False)
        with Heartbeat(rec, interval=0.02) as beat:
            deadline = time.monotonic() + 5.0
            while not beat.records and time.monotonic() < deadline:
                time.sleep(0.01)
        # at least one periodic sample plus the final one from stop()
        assert len(beat.records) >= 2
        assert beat.records[-1]["final"] is True

    def test_status_line_on_plain_stream(self):
        rec = Recorder(capture_events=False)
        rec.count("jobs.completed", 3)
        stream = io.StringIO()
        beat = Heartbeat(rec, interval=60.0, total_jobs=3, stream=stream)
        beat.start()
        beat.stop()
        out = stream.getvalue()
        assert "jobs 3 done/3" in out
        assert "ETA" in out

    def test_retried_jobs_do_not_double_count(self):
        # A job that failed once and then succeeded on retry contributes
        # to jobs.failed, jobs.retries, and jobs.completed; it must show
        # up only in "done", or settled exceeds total and the ETA clamps
        # to 0 while work is still running.
        rec = Recorder(capture_events=False)
        rec.count("jobs.completed", 2)
        rec.count("jobs.failed", 1)
        rec.count("jobs.retries", 1)
        beat = Heartbeat(rec, interval=60.0, total_jobs=4)
        beat.start()
        time.sleep(0.01)
        record = beat.sample()
        beat.stop()
        assert record["jobs"]["done"] == 2
        assert record["jobs"]["failed"] == 0
        # 2 of 4 settled: the ETA must still be a live extrapolation
        assert record["eta_seconds"] is not None and record["eta_seconds"] > 0

    def test_exhausted_retries_still_count_as_failed(self):
        # retries=1, both attempts failed: one failed job, not two.
        rec = Recorder(capture_events=False)
        rec.count("jobs.failed", 2)
        rec.count("jobs.retries", 1)
        beat = Heartbeat(rec, interval=60.0, total_jobs=1)
        with beat:
            record = beat.sample()
        assert record["jobs"]["failed"] == 1
        assert record["eta_seconds"] == 0.0

    def test_eta_unknown_without_total(self):
        rec = Recorder(capture_events=False)
        rec.count("jobs.completed", 1)
        with Heartbeat(rec, interval=60.0) as beat:
            assert beat.sample()["eta_seconds"] is None

    def test_bad_interval_rejected(self):
        with pytest.raises(ValueError, match="interval"):
            Heartbeat(Recorder(), interval=0.0)

    def test_heartbeat_for_is_noop_without_sinks(self):
        scope = heartbeat_for(Recorder())
        assert not isinstance(scope, Heartbeat)
        with scope:
            pass
        assert isinstance(
            heartbeat_for(Recorder(), jsonl="unused", progress=False), Heartbeat
        )


class TestPrometheus:
    def recorder(self) -> Recorder:
        rec = Recorder()
        rec.count("newton.iterations", 42)
        rec.count("jobs.completed", 3)
        rec.observe("controller.h_taken", 1e-6)
        rec.observe("controller.h_taken", 2e-6)
        return rec

    def test_counters_render_with_type_lines(self):
        text = to_prometheus(self.recorder())
        assert "# TYPE repro_newton_iterations_total counter" in text
        assert "repro_newton_iterations_total 42" in text
        assert "repro_jobs_completed_total 3" in text
        assert text.endswith("\n")

    def test_histogram_buckets_are_cumulative(self):
        text = to_prometheus(self.recorder())
        lines = [l for l in text.splitlines() if l.startswith("repro_controller_h_taken")]
        bucket_lines = [l for l in lines if "_bucket" in l]
        # two samples in two different log2 buckets -> cumulative 1 then 2
        counts = [int(l.rsplit(" ", 1)[1]) for l in bucket_lines]
        assert counts == sorted(counts)
        assert counts[-1] == 2
        assert any('le="+Inf"' in l for l in bucket_lines)
        assert "repro_controller_h_taken_count 2" in text
        assert "repro_controller_h_taken_sum" in text

    def test_renders_snapshot_dicts_too(self):
        snap = self.recorder().snapshot()
        assert to_prometheus(snap) == to_prometheus(self.recorder())

    def test_metric_name_folding(self):
        assert metric_name("newton.iterations") == "repro_newton_iterations"
        assert metric_name("a b-c") == "repro_a_b_c"
        assert metric_name("2fast") == "repro__2fast"

    def test_http_endpoint_serves_scrapes(self):
        rec = self.recorder()
        with serve_metrics(rec, port=0) as server:
            assert server.port > 0
            conn = http.client.HTTPConnection("127.0.0.1", server.port, timeout=5)
            conn.request("GET", "/metrics")
            response = conn.getresponse()
            body = response.read().decode()
            assert response.status == 200
            assert "text/plain" in response.getheader("Content-Type")
            assert "repro_newton_iterations_total 42" in body
            conn.request("GET", "/healthz")
            health = json.loads(conn.getresponse().read())
            assert health["status"] == "ok"
            conn.request("GET", "/nope")
            assert conn.getresponse().status == 404
            conn.close()

    def test_healthz_reports_actual_ephemeral_port(self):
        # Regression: started with port=0, the server must report the
        # kernel-assigned port in /healthz (clients used to have to
        # guess it out-of-band).
        rec = Recorder(capture_events=False)
        with serve_metrics(rec, port=0) as server:
            bound = server.port
            assert bound > 0
            conn = http.client.HTTPConnection("127.0.0.1", bound, timeout=5)
            conn.request("GET", "/healthz")
            response = conn.getresponse()
            assert response.status == 200
            assert "application/json" in response.getheader("Content-Type")
            health = json.loads(response.read())
            conn.close()
        assert health == {"status": "ok", "host": "127.0.0.1", "port": bound}

    def test_start_logs_the_bound_address(self, caplog):
        rec = Recorder(capture_events=False)
        with caplog.at_level("INFO", logger="repro.instrument.metrics"):
            with serve_metrics(rec, port=0) as server:
                port = server.port
        assert any(f":{port}/metrics" in message for message in caplog.messages)

    def test_scrape_sees_live_updates(self):
        rec = Recorder(capture_events=False)
        server = MetricsServer(rec).start()
        try:
            rec.count("points.accepted", 7)
            conn = http.client.HTTPConnection("127.0.0.1", server.port, timeout=5)
            conn.request("GET", "/metrics")
            assert "repro_points_accepted_total 7" in conn.getresponse().read().decode()
            conn.close()
        finally:
            server.stop()


class TestNullRecorderStaysInert:
    def test_operations_allocate_nothing(self):
        null = NullRecorder()
        null.count("x", 5)
        null.observe("y", 1.0)
        null.event("z", lane=2)
        null.merge({"counters": {"x": 1}, "histograms": {}})
        assert null.counters == {} and null.histograms == {} and null.events == []
        # class-level empty containers: no per-call (or per-instance) state
        assert null.counters is NullRecorder.counters
        assert null.span("s") is NULL_RECORDER.span("s")
        assert null.snapshot(events_tail=5) == {
            "counters": {},
            "histograms": {},
            "events": 0,
            "dropped_events": 0,
        }
