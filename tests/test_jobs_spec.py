"""Job specs: circuit refs, param overrides, hashing, serialization."""

import json

import pytest

from repro.circuit.circuit import Circuit
from repro.circuit.components import Capacitor, Resistor, VoltageSource
from repro.circuit.sources import Dc
from repro.errors import SimulationError
from repro.jobs.spec import (
    CIRCUIT_KINDS,
    JOB_ANALYSES,
    CircuitRef,
    JobSpec,
    apply_params,
    jitterable_params,
)

DECK = """rc lowpass
V1 in 0 SIN(0 1 1k)
R1 in out 1k
C1 out 0 1u
.tran 10u 1m
.end
"""


def rc_circuit() -> Circuit:
    circuit = Circuit(title="rc")
    circuit.add(VoltageSource("V1", "in", "0", waveform=Dc(1.0)))
    circuit.add(Resistor("R1", "in", "out", resistance=1e3))
    circuit.add(Capacitor("C1", "out", "0", capacitance=1e-6))
    return circuit


class TestCircuitRef:
    def test_registry_ref_builds_with_defaults(self):
        built = CircuitRef(kind="registry", name="rectifier").build()
        assert built.tstop is not None and built.tstop > 0
        assert built.signals

    def test_netlist_ref_picks_up_tran_card(self):
        built = CircuitRef(kind="netlist", netlist=DECK).build()
        assert built.tstop == pytest.approx(1e-3)
        assert built.tstep == pytest.approx(10e-6)
        assert "R1" in built.circuit

    def test_verify_ref_is_seed_deterministic(self):
        a = CircuitRef(kind="verify", seed=11).build()
        b = CircuitRef(kind="verify", seed=11).build()
        assert [c.name for c in a.circuit.components] == [
            c.name for c in b.circuit.components
        ]
        assert a.tstop == b.tstop

    def test_unknown_kind_rejected(self):
        with pytest.raises(SimulationError, match="kind"):
            CircuitRef(kind="magic")
        assert set(CIRCUIT_KINDS) == {"registry", "netlist", "verify"}

    @pytest.mark.parametrize(
        "kwargs, match",
        [
            (dict(kind="registry"), "name"),
            (dict(kind="netlist"), "netlist"),
            (dict(kind="verify"), "seed"),
        ],
    )
    def test_missing_required_field_rejected(self, kwargs, match):
        with pytest.raises(SimulationError, match=match):
            CircuitRef(**kwargs)

    def test_unknown_registry_name_is_simulation_error(self):
        with pytest.raises(SimulationError, match="unknown benchmark"):
            CircuitRef(kind="registry", name="nosuch").build()

    def test_roundtrip_through_dict(self):
        for ref in (
            CircuitRef(kind="registry", name="ring5"),
            CircuitRef(kind="netlist", netlist=DECK),
            CircuitRef(kind="verify", seed=3, families=["rc_ladder"]),
        ):
            assert CircuitRef.from_dict(ref.to_dict()) == ref


class TestParamOverrides:
    def test_jitterable_params_names_values(self):
        params = jitterable_params(rc_circuit())
        assert params == {"R1": pytest.approx(1e3), "C1": pytest.approx(1e-6)}

    def test_apply_params_replaces_values_copy(self):
        circuit = rc_circuit()
        out = apply_params(circuit, {"R1": 2e3})
        assert out["R1"].resistance == pytest.approx(2e3)
        assert circuit["R1"].resistance == pytest.approx(1e3)  # original intact

    def test_apply_params_unknown_component_rejected(self):
        with pytest.raises(SimulationError, match="unknown component"):
            apply_params(rc_circuit(), {"R9": 1.0})

    def test_apply_params_non_perturbable_rejected(self):
        with pytest.raises(SimulationError, match="no\\b.*perturbable"):
            apply_params(rc_circuit(), {"V1": 2.0})


class TestJobSpec:
    def spec(self, **kw):
        return JobSpec(circuit=CircuitRef(kind="registry", name="rectifier"), **kw)

    def test_validation(self):
        with pytest.raises(SimulationError, match="analysis"):
            self.spec(analysis="dc")
        with pytest.raises(SimulationError, match="threads"):
            self.spec(threads=0)
        with pytest.raises(SimulationError, match="tstop"):
            self.spec(tstop=-1.0)
        with pytest.raises(SimulationError, match="option"):
            self.spec(options={"no_such_knob": 1})
        assert set(JOB_ANALYSES) == {"transient", "wavepipe"}

    def test_roundtrip_through_json(self):
        spec = self.spec(
            label="a",
            tstop=1e-3,
            options={"reltol": 1e-4},
            params={"RSRC": 55.0},
            signals=("v(out)",),
        )
        rebuilt = JobSpec.from_dict(json.loads(json.dumps(spec.to_dict())))
        assert rebuilt == spec

    def test_hash_ignores_label(self):
        assert (
            self.spec(label="a").content_hash() == self.spec(label="b").content_hash()
        )

    def test_hash_sees_params_options_and_window(self):
        base = self.spec()
        assert base.content_hash() != self.spec(params={"RSRC": 55.0}).content_hash()
        assert base.content_hash() != self.spec(options={"reltol": 1e-4}).content_hash()
        assert base.content_hash() != self.spec(tstop=1e-3).content_hash()

    def test_canonical_json_is_deterministic(self):
        spec = self.spec(params={"b": 2.0, "a": 1.0})
        assert spec.canonical_json() == self.spec(params={"a": 1.0, "b": 2.0}).canonical_json()
        assert '"label"' not in spec.canonical_json()

    def test_derive_revalidates(self):
        spec = self.spec()
        assert spec.derive(label="x").label == "x"
        with pytest.raises(SimulationError, match="threads"):
            spec.derive(threads=-1)
