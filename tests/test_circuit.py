"""Circuit builder, topology validation and subcircuit flattening."""

import pytest

from repro.circuit.circuit import Circuit, Subcircuit, canonical_node, is_ground
from repro.circuit.components import Resistor
from repro.circuit.sources import Dc, Pulse
from repro.errors import CircuitError


class TestGroundHandling:
    @pytest.mark.parametrize("name", ["0", "gnd", "GND", "Gnd"])
    def test_ground_aliases(self, name):
        assert is_ground(name)
        assert canonical_node(name) == "0"

    def test_non_ground_passthrough(self):
        assert canonical_node("out") == "out"
        assert not is_ground("out")


class TestBuilder:
    def test_add_helpers_parse_values(self):
        c = Circuit("t")
        r = c.add_resistor("R1", "a", "0", "2.2k")
        assert r.resistance == pytest.approx(2200.0)
        cap = c.add_capacitor("C1", "a", "0", "10p")
        assert cap.capacitance == pytest.approx(1e-11)

    def test_duplicate_names_rejected(self):
        c = Circuit("t")
        c.add_resistor("R1", "a", "0", 1.0)
        with pytest.raises(CircuitError):
            c.add_resistor("R1", "b", "0", 2.0)

    def test_container_protocol(self):
        c = Circuit("t")
        c.add_resistor("R1", "a", "0", 1.0)
        assert len(c) == 1
        assert "R1" in c
        assert isinstance(c["R1"], Resistor)
        with pytest.raises(CircuitError):
            c["R99"]

    def test_nodes_in_first_appearance_order(self):
        c = Circuit("t")
        c.add_resistor("R1", "b", "a", 1.0)
        c.add_resistor("R2", "a", "0", 1.0)
        assert c.nodes() == ("b", "a")

    def test_stats(self):
        c = Circuit("t")
        c.add_vsource("V1", "a", "0", Dc(1.0))
        c.add_resistor("R1", "a", "b", 1.0)
        c.add_capacitor("C1", "b", "0", 1e-9)
        stats = c.stats()
        assert stats["Resistor"] == 1
        assert stats["nodes"] == 2
        assert stats["components"] == 3

    def test_vsource_accepts_bare_number(self):
        c = Circuit("t")
        v = c.add_vsource("V1", "a", "0", 5.0)
        assert isinstance(v.waveform, Dc)


class TestValidation:
    def test_empty_circuit_rejected(self):
        with pytest.raises(CircuitError, match="no components"):
            Circuit("t").validate()

    def test_missing_ground_rejected(self):
        c = Circuit("t")
        c.add_resistor("R1", "a", "b", 1.0)
        with pytest.raises(CircuitError, match="ground"):
            c.validate()

    def test_floating_node_rejected(self):
        c = Circuit("t")
        c.add_vsource("V1", "a", "0", Dc(1.0))
        c.add_resistor("R1", "a", "b", 1.0)
        # node c only reachable through a capacitor: no DC path
        c.add_capacitor("C1", "b", "x", 1e-9)
        with pytest.raises(CircuitError, match="no DC path"):
            c.validate()

    def test_current_source_chain_rejected(self):
        c = Circuit("t")
        c.add_isource("I1", "a", "0", Dc(1e-3))
        with pytest.raises(CircuitError, match="no DC path"):
            c.validate()

    def test_vsource_loop_rejected(self):
        c = Circuit("t")
        c.add_vsource("V1", "a", "0", Dc(1.0))
        c.add_vsource("V2", "a", "0", Dc(2.0))
        with pytest.raises(CircuitError, match="loop"):
            c.validate()

    def test_vsource_cycle_through_nodes_rejected(self):
        c = Circuit("t")
        c.add_vsource("V1", "a", "0", Dc(1.0))
        c.add_vsource("V2", "b", "a", Dc(1.0))
        c.add_vsource("V3", "b", "0", Dc(2.0))
        with pytest.raises(CircuitError, match="loop"):
            c.validate()

    def test_unknown_control_source_rejected(self):
        c = Circuit("t")
        c.add_vsource("V1", "a", "0", Dc(1.0))
        c.add_resistor("R1", "a", "b", 1.0)
        c.add_resistor("R2", "b", "0", 1.0)
        c.add_cccs("F1", "b", "0", "VX", 2.0)
        with pytest.raises(CircuitError, match="VX"):
            c.validate()

    def test_valid_circuit_passes(self, rc_circuit):
        rc_circuit.validate()


class TestSubcircuit:
    def make_divider(self):
        sub = Subcircuit("div", ["top", "out"])
        sub.add_resistor("R1", "top", "out", 1e3)
        sub.add_resistor("R2", "out", "0", 1e3)
        return sub

    def test_flattening_prefixes_names(self):
        c = Circuit("t")
        c.add_vsource("V1", "in", "0", Dc(2.0))
        c.add_subcircuit("X1", self.make_divider(), {"top": "in", "out": "o"})
        assert "X1.R1" in c
        assert "X1.R2" in c
        assert c["X1.R1"].nodes == ("in", "o")

    def test_internal_nodes_prefixed(self):
        sub = Subcircuit("two", ["a"])
        sub.add_resistor("R1", "a", "mid", 1.0)
        sub.add_resistor("R2", "mid", "0", 1.0)
        c = Circuit("t")
        c.add_vsource("V1", "x", "0", Dc(1.0))
        c.add_subcircuit("X1", sub, {"a": "x"})
        assert c["X1.R1"].nodes == ("x", "X1.mid")
        assert c["X1.R2"].nodes == ("X1.mid", "0")

    def test_ground_not_prefixed(self):
        sub = Subcircuit("g", ["a"])
        sub.add_resistor("R1", "a", "gnd", 1.0)
        c = Circuit("t")
        c.add_vsource("V1", "x", "0", Dc(1.0))
        c.add_subcircuit("X1", sub, {"a": "x"})
        assert c["X1.R1"].nodes == ("x", "0")

    def test_missing_connection_rejected(self):
        c = Circuit("t")
        with pytest.raises(CircuitError, match="missing"):
            c.add_subcircuit("X1", self.make_divider(), {"top": "in"})

    def test_extra_connection_rejected(self):
        c = Circuit("t")
        with pytest.raises(CircuitError, match="unknown port"):
            c.add_subcircuit(
                "X1", self.make_divider(), {"top": "a", "out": "b", "zzz": "c"}
            )

    def test_duplicate_ports_rejected(self):
        with pytest.raises(CircuitError, match="duplicate"):
            Subcircuit("bad", ["a", "a"])

    def test_no_ports_rejected(self):
        with pytest.raises(CircuitError, match="at least one port"):
            Subcircuit("bad", [])

    def test_controlled_source_control_remapped(self):
        sub = Subcircuit("amp", ["inp", "outp"])
        sub.add_vsource("VS", "inp", "sense", Dc(0.0))
        sub.add_resistor("RO", "sense", "0", 1.0)
        sub.add_cccs("F1", "outp", "0", "VS", 10.0)
        c = Circuit("t")
        c.add_vsource("V1", "x", "0", Dc(1.0))
        c.add_resistor("RL", "y", "0", 1.0)
        c.add_subcircuit("X1", sub, {"inp": "x", "outp": "y"})
        assert c["X1.F1"].ctrl_source == "X1.VS"
        c.validate()

    def test_two_instances_coexist(self):
        c = Circuit("t")
        c.add_vsource("V1", "in", "0", Dc(2.0))
        div = self.make_divider()
        c.add_subcircuit("X1", div, {"top": "in", "out": "m1"})
        c.add_subcircuit("X2", div, {"top": "m1", "out": "m2"})
        c.validate()
        assert len(c) == 5
