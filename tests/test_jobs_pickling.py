"""Serialization safety of the objects the batch service moves around.

The process-pool backend deliberately ships JSON dicts, never pickles —
but circuits and results must still survive pickling for any user who
puts them on a ``multiprocessing`` queue or in a joblib-style cache, and
the spawn start method pickles the worker arguments themselves. These
tests pin that whole surface: registry circuits, verify-family draws,
job specs, and job results.
"""

import pickle

import pytest

from repro.circuits.registry import BENCHMARKS, get_benchmark
from repro.jobs import CircuitRef, JobSpec, execute_job
from repro.netlist.writer import write_netlist
from repro.verify.generators import FAMILIES, draw_circuit

DECK = """rc lowpass
V1 in 0 SIN(0 1 1k)
R1 in out 1k
C1 out 0 1u
.tran 10u 1m
.end
"""


@pytest.mark.parametrize("name", sorted(BENCHMARKS))
def test_registry_circuit_pickle_roundtrip(name):
    circuit = get_benchmark(name).build()
    clone = pickle.loads(pickle.dumps(circuit))
    assert [c.name for c in clone.components] == [c.name for c in circuit.components]
    # The netlist text is a full structural fingerprint: values, nodes,
    # models and source waveforms all land in it.
    assert write_netlist(clone) == write_netlist(circuit)


@pytest.mark.parametrize("family", sorted(FAMILIES))
def test_verify_family_circuit_pickle_roundtrip(family):
    generated = draw_circuit(17, families=[family])
    clone = pickle.loads(pickle.dumps(generated.circuit))
    assert write_netlist(clone) == write_netlist(generated.circuit)


def test_generated_circuit_record_pickles_whole():
    generated = draw_circuit(23)
    clone = pickle.loads(pickle.dumps(generated))
    assert clone.name == generated.name
    assert clone.seed == generated.seed
    assert clone.tstop == generated.tstop
    assert write_netlist(clone.circuit) == write_netlist(generated.circuit)


def test_job_spec_pickles_with_stable_hash():
    spec = JobSpec(
        circuit=CircuitRef(kind="netlist", netlist=DECK),
        label="p",
        params={"R1": 2e3},
        signals=("v(out)",),
    )
    clone = pickle.loads(pickle.dumps(spec))
    assert clone == spec
    assert clone.content_hash() == spec.content_hash()


def test_job_result_pickles_with_identical_payload():
    result = execute_job(JobSpec(circuit=CircuitRef(kind="netlist", netlist=DECK)))
    clone = pickle.loads(pickle.dumps(result))
    assert clone.to_dict() == result.to_dict()
