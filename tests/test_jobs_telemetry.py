"""Cross-process telemetry aggregation through the job scheduler.

The acceptance path of the telemetry subsystem: worker processes ship
recorder snapshots back over the result pipe (on success, failure and
timeout), the parent merges them into the campaign recorder, cached
results replay their deterministic telemetry on resume, and campaign
rollups end up byte-identical between a fresh run and a
kill-then-resume run.
"""

import multiprocessing
import time

import pytest

import repro.jobs.workers as workers_module
from repro.instrument import Recorder
from repro.jobs import (
    CircuitRef,
    JobScheduler,
    JobSpec,
    deterministic_telemetry,
    execute_job,
    monte_carlo,
    run_campaign,
)
from repro.jobs.cache import ResultCache

needs_fork = pytest.mark.skipif(
    "fork" not in multiprocessing.get_all_start_methods(),
    reason="fault-injection via FAULT_HOOK needs the fork start method",
)

DECK = """rc lowpass
V1 in 0 SIN(0 1 1k)
R1 in out 1k
C1 out 0 1u
.tran 10u 1m
.end
"""


def rc_spec(label="rc", **kw) -> JobSpec:
    return JobSpec(circuit=CircuitRef(kind="netlist", netlist=DECK), label=label, **kw)


def rc_campaign(n=4):
    return monte_carlo(rc_spec(), n=n, seed=11, jitter=0.05)


def solver_rollup(metrics) -> dict:
    """The deterministic slice of a campaign rollup (no wall-clock)."""
    return {
        "accepted_points": metrics.accepted_points,
        "rejected_points": metrics.rejected_points,
        "newton_failures": metrics.newton_failures,
        "newton_iterations": metrics.newton_iterations,
        "work_units": metrics.work_units,
        "lu_factors": metrics.lu_factors,
        "lu_refactors": metrics.lu_refactors,
        "lu_solves": metrics.lu_solves,
        "lu_reuse_hits": metrics.lu_reuse_hits,
        "bypass_fallbacks": metrics.bypass_fallbacks,
    }


class TestExecuteJobTelemetry:
    def test_result_carries_deterministic_telemetry(self):
        rec = Recorder(capture_events=False)
        result = execute_job(rc_spec(), instrument=rec)
        assert result.telemetry is not None
        assert result.telemetry["counters"]["newton.iterations"] > 0
        assert result.telemetry["counters"]["lu.solve"] > 0
        assert "newton.iterations_per_solve" in result.telemetry["histograms"]
        assert result.to_dict()["telemetry"] == result.telemetry

    def test_without_instrument_payload_is_unchanged(self):
        result = execute_job(rc_spec())
        assert result.telemetry is None
        assert "telemetry" not in result.to_dict()

    def test_telemetry_is_deterministic(self):
        a = execute_job(rc_spec(), instrument=Recorder(capture_events=False))
        b = execute_job(rc_spec(), instrument=Recorder(capture_events=False))
        assert a.to_dict() == b.to_dict()

    def test_deterministic_telemetry_helper(self):
        assert deterministic_telemetry(None) is None
        rec = Recorder()
        rec.count("x", 2)
        rec.event("e")  # events never enter the deterministic slice
        telemetry = deterministic_telemetry(rec)
        assert telemetry == {
            "counters": {"x": 2},
            "histograms": {},
            "dropped_events": 0,
        }


class TestSchedulerAggregation:
    def test_serial_outcomes_carry_and_merge_snapshots(self):
        rec = Recorder()
        with JobScheduler(instrument=rec) as scheduler:
            outcomes = scheduler.run([rc_spec("a"), rc_spec("b")])
        for outcome in outcomes:
            assert outcome.telemetry is not None
            assert outcome.telemetry["counters"]["newton.iterations"] > 0
            assert outcome.telemetry["events_tail"]
        merged = sum(
            o.telemetry["counters"]["newton.iterations"] for o in outcomes
        )
        assert rec.counter("newton.iterations") == merged

    def test_process_pool_aggregates_worker_counters(self):
        rec = Recorder()
        specs = [rc_spec(f"j{i}", params={"R1": 1e3 + i}) for i in range(3)]
        with JobScheduler(backend="process", workers=2, instrument=rec) as scheduler:
            outcomes = scheduler.run(specs)
        assert all(o.status == "done" for o in outcomes)
        assert rec.counter("newton.iterations") > 0
        assert rec.counter("lu.solve") > 0
        assert rec.counter("newton.iterations") == sum(
            o.telemetry["counters"]["newton.iterations"] for o in outcomes
        )

    def test_disabled_recorder_disables_telemetry(self):
        with JobScheduler(backend="process", workers=2) as scheduler:
            outcomes = scheduler.run([rc_spec("a"), rc_spec("b")])
        assert all(o.telemetry is None for o in outcomes)
        assert all("telemetry" not in o.result.to_dict() for o in outcomes)

    def test_cached_results_replay_their_telemetry(self, tmp_path):
        cache = ResultCache(tmp_path)
        first = Recorder(capture_events=False)
        with JobScheduler(cache=cache, instrument=first) as scheduler:
            scheduler.run([rc_spec()])
        second = Recorder(capture_events=False)
        with JobScheduler(cache=cache, instrument=second) as scheduler:
            (outcome,) = scheduler.run([rc_spec()])
        assert outcome.status == "cached"
        assert outcome.telemetry is not None
        assert second.counter("newton.iterations") == first.counter(
            "newton.iterations"
        )
        assert second.counter("lu.solve") == first.counter("lu.solve")

    @needs_fork
    def test_failed_worker_still_ships_partial_snapshot(self, monkeypatch):
        monkeypatch.setattr(
            workers_module,
            "FAULT_HOOK",
            lambda spec: (_ for _ in ()).throw(ValueError("mid-flight")),
        )
        rec = Recorder()
        with JobScheduler(
            backend="process", workers=1, retries=0, instrument=rec
        ) as scheduler:
            (outcome,) = scheduler.run([rc_spec()])
        assert outcome.status == "failed"
        assert outcome.telemetry is not None
        assert "counters" in outcome.telemetry

    @needs_fork
    def test_timed_out_worker_still_ships_partial_snapshot(self, monkeypatch):
        def hook(spec):
            if spec.label == "hang":
                time.sleep(60)

        monkeypatch.setattr(workers_module, "FAULT_HOOK", hook)
        rec = Recorder()
        with JobScheduler(
            backend="process", workers=1, timeout=1.0, retries=0, instrument=rec
        ) as scheduler:
            (outcome,) = scheduler.run([rc_spec("hang")])
        assert outcome.status == "timeout"
        # SIGTERM handler in the worker gets one last message out
        assert outcome.telemetry is not None
        assert rec.counter("jobs.timeouts") == 1


class TestCampaignRollup:
    def test_process_campaign_rollup_reports_solver_work(self, tmp_path):
        rec = Recorder(capture_events=False)
        report = run_campaign(
            rc_campaign(),
            store=tmp_path / "store",
            backend="process",
            workers=2,
            instrument=rec,
        )
        assert report.passed
        rollup = report.metrics
        assert rollup.newton_iterations > 0
        assert rollup.lu_factors > 0 and rollup.lu_solves > 0
        assert rollup.accepted_points > 0
        # the campaign recorder saw the same totals via worker snapshots
        assert rec.counter("newton.iterations") == rollup.newton_iterations
        assert rec.counter("lu.solve") == rollup.lu_solves
        assert rollup.counters["newton.iterations"] == rollup.newton_iterations

    def test_interrupted_campaign_resumes_to_identical_rollup(
        self, tmp_path, monkeypatch
    ):
        campaign = rc_campaign()
        victim = campaign.jobs[1].label

        # Uninterrupted reference run in its own store.
        fresh = run_campaign(
            campaign,
            store=tmp_path / "fresh",
            backend="process",
            workers=2,
            instrument=Recorder(capture_events=False),
        )

        # "Kill" one job mid-campaign, then resume against the same store.
        def hook(spec):
            if spec.label == victim:
                raise RuntimeError("injected interruption")

        monkeypatch.setattr(workers_module, "FAULT_HOOK", hook)
        interrupted = run_campaign(
            campaign,
            store=tmp_path / "resumed",
            backend="process",
            workers=2,
            retries=0,
            instrument=Recorder(capture_events=False),
        )
        assert not interrupted.passed
        monkeypatch.setattr(workers_module, "FAULT_HOOK", None)

        resume_rec = Recorder(capture_events=False)
        resumed = run_campaign(
            campaign,
            store=tmp_path / "resumed",
            backend="process",
            workers=2,
            instrument=resume_rec,
        )
        assert resumed.passed
        assert resumed.cache_hits == len(campaign.jobs) - 1
        assert solver_rollup(resumed.metrics) == solver_rollup(fresh.metrics)
        # per-job payloads (including embedded telemetry) byte-identical
        for a, b in zip(fresh.outcomes, resumed.outcomes):
            assert a.result.to_dict() == b.result.to_dict()

    def test_serial_and_process_rollups_agree(self, tmp_path):
        campaign = rc_campaign(n=2)
        serial = run_campaign(
            campaign,
            store=tmp_path / "serial",
            instrument=Recorder(capture_events=False),
        )
        process = run_campaign(
            campaign,
            store=tmp_path / "process",
            backend="process",
            workers=2,
            instrument=Recorder(capture_events=False),
        )
        assert solver_rollup(serial.metrics) == solver_rollup(process.metrics)

    def test_campaign_heartbeat_counts_jobs(self, tmp_path):
        from repro.instrument import Heartbeat

        rec = Recorder(capture_events=False)
        beat = Heartbeat(
            rec, interval=60.0, jsonl=str(tmp_path / "beats.jsonl")
        )
        report = run_campaign(
            rc_campaign(n=2),
            store=tmp_path / "store",
            instrument=rec,
            heartbeat=beat,
        )
        assert report.passed
        assert beat.total_jobs == 2
        final = beat.records[-1]
        assert final["final"] is True
        assert final["jobs"]["done"] == 2
        assert final["eta_seconds"] == 0.0
