"""Per-bank scalar-vs-ensemble equivalence (the shape contract in action).

Every bank in ``devices/`` must produce bit-identical residuals, charges
and Jacobian slot values whether evaluated on the scalar path (1-D
buffers, ``sims=None``) or through an ensemble system with ``sims=1``.
For K>1 each column of the batched buffers must match the scalar
evaluation of that variant's own compiled circuit, bit for bit — the
trailing sims axis re-orders no arithmetic, it only widens it.
"""

import numpy as np
import pytest

from repro.circuit.circuit import Circuit
from repro.circuit.components import Resistor
from repro.circuit.sources import Dc, Sin
from repro.devices.base import DeviceBank, EvalOutputs, lift_sims, stamp_values
from repro.errors import SimulationError
from repro.jobs.spec import apply_params, jitterable_params
from repro.mna.compiler import compile_circuit
from repro.mna.ensemble import compile_ensemble
from repro.mna.system import MnaSystem


def linear_rc():
    c = Circuit("rc")
    c.add_vsource("V1", "in", "0", Sin(0.0, 1.0, 1e6))
    c.add_resistor("R1", "in", "out", 1e3)
    c.add_capacitor("C1", "out", "0", 1e-9)
    return c


def inductive():
    c = Circuit("ind")
    c.add_isource("I1", "a", "0", Dc(1e-3))
    c.add_inductor("L1", "a", "b", 1e-6)
    c.add_inductor("L2", "b", "0", 2e-6)
    c.add_mutual("K1", "L1", "L2", 0.5)
    c.add_resistor("R1", "b", "0", 50.0)
    return c


def controlled():
    c = Circuit("ctrl")
    c.add_vsource("V1", "in", "0", Dc(1.0))
    c.add_resistor("R1", "in", "a", 1e3)
    c.add_vcvs("E1", "b", "0", "a", "0", 2.0)
    c.add_vccs("G1", "c", "0", "a", "0", 1e-3)
    c.add_cccs("F1", "d", "0", "V1", 0.5)
    c.add_ccvs("H1", "e", "0", "V1", 100.0)
    for node in "bcde":
        c.add_resistor(f"RL{node}", node, "0", 1e3)
    return c


def diode_circuit():
    c = Circuit("diode")
    c.add_vsource("V1", "in", "0", Sin(0.0, 2.0, 1e6))
    c.add_resistor("R1", "in", "a", 1e3)
    c.add_diode("D1", "a", "0")
    return c


def bjt_circuit():
    c = Circuit("bjt")
    c.add_vsource("VCC", "vcc", "0", Dc(5.0))
    c.add_vsource("VB", "b", "0", Dc(0.7))
    c.add_bjt("Q1", "vcc", "b", "e")
    c.add_resistor("RE", "e", "0", 1e3)
    return c


def mosfet_circuit():
    c = Circuit("mos")
    c.add_vsource("VDD", "vdd", "0", Dc(3.0))
    c.add_vsource("VG", "g", "0", Dc(1.5))
    c.add_resistor("RD", "vdd", "d", 1e3)
    c.add_mosfet("M1", "d", "g", "0", "0")
    return c


ALL_CIRCUITS = [
    linear_rc,
    inductive,
    controlled,
    diode_circuit,
    bjt_circuit,
    mosfet_circuit,
]


def probe_x(n, seed):
    """A deterministic, modestly-scaled unknown vector."""
    rng = np.random.default_rng(seed)
    return 0.5 * rng.standard_normal(n)


def assert_columns_match(ens_out, scalar_outs, n):
    """Every ensemble column bitwise equals its scalar counterpart."""
    for k, out_s in enumerate(scalar_outs):
        assert np.array_equal(ens_out.f[:, k], out_s.f)
        assert np.array_equal(ens_out.q[:, k], out_s.q)
        assert np.array_equal(ens_out.s[:, k], out_s.s)
        assert np.array_equal(ens_out.g_vals[:, k], out_s.g_vals)
        assert np.array_equal(ens_out.c_vals[:, k], out_s.c_vals)


@pytest.mark.parametrize("make", ALL_CIRCUITS, ids=lambda f: f.__name__)
@pytest.mark.parametrize("t", [0.0, 0.3e-6])
def test_k1_ensemble_bit_identical(make, t):
    circuit = make()
    scalar = MnaSystem(compile_circuit(circuit))
    out_s = scalar.make_buffers()
    x = probe_x(scalar.n, seed=1)
    scalar.eval(x, t, out_s)

    ens = compile_ensemble([circuit])
    assert ens.sims == 1
    out_e = ens.system.make_buffers()
    ens.system.eval(x[:, None], t, out_e)
    assert_columns_match(out_e, [out_s], scalar.n)


@pytest.mark.parametrize("make", ALL_CIRCUITS, ids=lambda f: f.__name__)
def test_k3_columns_match_their_variants(make, t=0.2e-6):
    """Jittered variants: column k bitwise equals variant k's scalar eval."""
    base = make()
    nominal = jitterable_params(base)
    rng = np.random.default_rng(7)
    variants = []
    for _ in range(3):
        overrides = {
            name: float(value * rng.lognormal(0.0, 0.05))
            for name, value in sorted(nominal.items())
        }
        variants.append(apply_params(base, overrides) if overrides else base)

    scalar_outs = []
    x = None
    for circuit in variants:
        system = MnaSystem(compile_circuit(circuit))
        if x is None:
            x = probe_x(system.n, seed=2)
        out = system.make_buffers()
        system.eval(x, t, out)
        scalar_outs.append(out)

    ens = compile_ensemble(variants)
    assert ens.sims == 3
    out_e = ens.system.make_buffers()
    ens.system.eval(np.repeat(x[:, None], 3, axis=1), t, out_e)
    assert_columns_match(out_e, scalar_outs, len(x))


@pytest.mark.parametrize("make", ALL_CIRCUITS, ids=lambda f: f.__name__)
def test_static_stamp_fast_path_matches_plain(make):
    """Ensemble fast-path buffers (static stamps) equal plain buffers."""
    circuit = make()
    ens = compile_ensemble([circuit, circuit])
    x = probe_x(ens.system.n, seed=3)
    X = np.repeat(x[:, None], 2, axis=1)

    plain = ens.system.make_buffers()
    ens.system.eval(X, 0.1e-6, plain)
    fast = ens.system.make_buffers(fast_path=True)
    ens.system.eval(X, 0.1e-6, fast)

    assert np.array_equal(plain.f, fast.f)
    assert np.array_equal(plain.q, fast.q)
    assert np.array_equal(plain.g_vals, fast.g_vals)
    assert np.array_equal(plain.c_vals, fast.c_vals)


def test_every_bank_opts_into_ensembles():
    """All shipped banks advertise ensemble support.

    This is the inventory check behind the per-circuit tests above: a
    new bank type that forgets the trailing-sims contract must flip
    this test (or implement the contract and extend the circuits list).
    """
    seen = set()
    for make in ALL_CIRCUITS:
        for bank in compile_circuit(make()).banks:
            seen.add(type(bank))
            assert bank.supports_ensemble, type(bank).__name__
            bank.ensure_ensemble(4)  # must not raise
    assert len(seen) >= 10  # R, C, L, mutual, V, I, E, G, F, H, D, Q, M


def test_ensure_ensemble_rejects_unsupporting_bank():
    class ScalarOnlyBank(DeviceBank):
        supports_ensemble = False

        def __init__(self):
            self.count = 1
            self.names = ("X1",)

        def register(self, pattern):  # pragma: no cover - never stamped
            pass

        def eval(self, x, t, out):  # pragma: no cover - never evaluated
            pass

    bank = ScalarOnlyBank()
    bank.ensure_ensemble(1)  # K=1 is always fine
    with pytest.raises(SimulationError, match="supports_ensemble"):
        bank.ensure_ensemble(2)


class TestShapeHelpers:
    def test_stamp_values_lifts_scalar_parts(self):
        # device-major interleave, 1-D parts broadcast across sims
        a = np.array([1.0, 2.0])
        b = np.array([[10.0, 20.0], [30.0, 40.0]])
        out = stamp_values(a, b, sims=2)
        assert out.shape == (4, 2)
        assert np.array_equal(out[0], [1.0, 1.0])
        assert np.array_equal(out[1], [10.0, 20.0])
        assert np.array_equal(out[2], [2.0, 2.0])
        assert np.array_equal(out[3], [30.0, 40.0])

    def test_stamp_values_scalar_mode(self):
        out = stamp_values(np.array([1.0, 2.0]), np.array([3.0, 4.0]), sims=None)
        assert np.array_equal(out, [1.0, 3.0, 2.0, 4.0])

    def test_lift_sims(self):
        v = np.array([1.0, 2.0])
        assert lift_sims(v, None) is v
        lifted = lift_sims(v, 3)
        assert lifted.shape == (2, 3)
        assert np.array_equal(lifted[:, 0], v)

    def test_eval_outputs_shapes(self):
        scalar = EvalOutputs(4, 6, 2)
        assert scalar.f.shape == (5,)
        assert scalar.g_vals.shape == (6,)
        batched = EvalOutputs(4, 6, 2, sims=3)
        assert batched.f.shape == (5, 3)
        assert batched.g_vals.shape == (6, 3)
        assert batched.c_vals.shape == (2, 3)


def test_topology_mismatch_rejected():
    a = linear_rc()
    b = linear_rc()
    b.add_resistor("R2", "out", "0", 1e3)
    with pytest.raises(SimulationError, match="identical topology"):
        compile_ensemble([a, b])


def test_apply_params_preserves_topology():
    base = diode_circuit()
    jittered = apply_params(base, {"R1": 1.1e3})
    comp = compile_ensemble([base, jittered])
    assert comp.sims == 2
    # the jitter landed in the stacked parameter column, not the topology
    r_bank = next(
        b for b in comp.system.compiled.banks if "R1" in getattr(b, "names", [])
    )
    assert r_bank.g.shape == (1, 2)
    assert r_bank.g[0, 0] != r_bank.g[0, 1]
    assert isinstance(base.components[1], Resistor)
