"""Baselines: waveform relaxation and the fine-grained Amdahl model."""

import numpy as np
import pytest

from repro.baselines.finegrained import (
    MATRIX_SPEEDUP_CAP,
    fine_grained_curve,
    fine_grained_estimate,
    work_split,
)
from repro.baselines.relaxation import (
    WaveformRelaxation,
    connectivity_graph,
    partition_nodes,
)
from repro.circuits.digital import inverter_chain, ring_oscillator
from repro.circuits.interconnect import rc_ladder
from repro.engine.transient import run_transient
from repro.errors import SimulationError
from repro.mna.compiler import compile_circuit
from repro.mna.system import MnaSystem
from repro.waveform.waveform import compare, worst_deviation


class TestPartitioning:
    def test_connectivity_graph_excludes_ground(self, rc_circuit):
        graph = connectivity_graph(rc_circuit)
        assert "0" not in graph.nodes
        assert graph.has_edge("in", "out")

    def test_partition_covers_all_nodes(self):
        c = rc_ladder(sections=8)
        parts = partition_nodes(c, 4)
        covered = set().union(*parts)
        assert covered == set(c.nodes())
        assert len(parts) == 4

    def test_partition_balanced_on_ladder(self):
        c = rc_ladder(sections=10)
        parts = partition_nodes(c, 2)
        sizes = sorted(len(p) for p in parts)
        assert sizes[0] >= 4  # 11 nodes split roughly evenly

    def test_non_power_of_two_rejected(self):
        with pytest.raises(SimulationError):
            partition_nodes(rc_ladder(4), 3)


class TestWaveformRelaxation:
    def test_unidirectional_chain_converges(self):
        circuit = inverter_chain(stages=4, period=10e-9)
        wr = WaveformRelaxation(
            circuit,
            tstop=12e-9,
            partition=[{"vdd", "n0", "n1", "n2"}, {"n3", "n4"}],
        )
        result = wr.run(max_sweeps=12, wr_vtol=5e-2)
        assert result.converged
        assert result.sweeps <= 8

    def test_chain_result_close_to_direct(self):
        circuit = inverter_chain(stages=4, period=10e-9)
        wr = WaveformRelaxation(
            circuit,
            tstop=12e-9,
            partition=[{"vdd", "n0", "n1", "n2"}, {"n3", "n4"}],
        )
        result = wr.run(max_sweeps=12, wr_vtol=5e-2)
        direct = run_transient(circuit, 12e-9)
        # WR timing error accumulates through the chain; assert levels and
        # edge count rather than pointwise agreement.
        for name in ("v(n2)", "v(n4)"):
            e_wr = result.waveforms[name].crossings(1.5)
            e_direct = direct.waveforms[name].crossings(1.5)
            assert e_wr.size == e_direct.size

    def test_feedback_loop_fails_to_converge(self):
        """The abstract's contrast: relaxation jeopardises convergence on
        tightly coupled circuits; WavePipe (direct method) does not."""
        circuit = ring_oscillator(stages=5)
        wr = WaveformRelaxation(circuit, tstop=10e-9, blocks=2)
        result = wr.run(max_sweeps=8, wr_vtol=1e-2)
        assert not result.converged
        # deltas do not contract (oscillator phase never locks)
        assert result.sweep_deltas[-1] > 0.5

    def test_parallel_work_less_than_serial(self):
        circuit = rc_ladder(sections=6)
        wr = WaveformRelaxation(circuit, tstop=2e-9, blocks=2)
        result = wr.run(max_sweeps=3, wr_vtol=1e-9)
        assert result.parallel_work < result.serial_work
        assert result.parallel_work > 0

    def test_bad_mode_rejected(self):
        with pytest.raises(SimulationError):
            WaveformRelaxation(rc_ladder(4), 1e-9, mode="chaotic")

    def test_partition_must_cover_nodes(self):
        c = rc_ladder(sections=4)
        with pytest.raises(SimulationError, match="misses"):
            WaveformRelaxation(c, 1e-9, partition=[{"n1", "n2"}])

    def test_node_in_two_blocks_rejected(self):
        c = rc_ladder(sections=2)
        with pytest.raises(SimulationError, match="two blocks"):
            WaveformRelaxation(
                c, 1e-9, partition=[{"n0", "n1", "n2"}, {"n2"}]
            )

    def test_seidel_mode_converges_no_slower(self):
        circuit = inverter_chain(stages=2, period=10e-9)
        partition = [{"vdd", "n0", "n1"}, {"n2"}]
        jacobi = WaveformRelaxation(
            circuit, 12e-9, partition=partition, mode="jacobi"
        ).run(max_sweeps=10, wr_vtol=5e-2)
        seidel = WaveformRelaxation(
            circuit, 12e-9, partition=partition, mode="seidel"
        ).run(max_sweeps=10, wr_vtol=5e-2)
        assert seidel.sweeps <= jacobi.sweeps


class TestFineGrained:
    @pytest.fixture(scope="class")
    def measured(self):
        compiled = compile_circuit(inverter_chain(stages=4))
        seq = run_transient(compiled, 20e-9)
        return MnaSystem(compiled), seq

    def test_work_split_positive(self, measured):
        system, _ = measured
        dev, mat = work_split(system)
        assert dev > 0 and mat > 0

    def test_single_thread_is_baseline(self, measured):
        system, seq = measured
        est = fine_grained_estimate(system, seq, 1)
        assert est.speedup == pytest.approx(1.0, rel=0.01)

    def test_speedup_monotone_then_saturating(self, measured):
        system, seq = measured
        curve = fine_grained_curve(system, seq, [1, 2, 4, 8, 16, 32])
        speedups = [e.speedup for e in curve]
        assert speedups[1] > speedups[0]
        # saturation: 16 -> 32 threads gains < 10%
        assert speedups[5] / speedups[4] < 1.10

    def test_matrix_cap_limits_asymptote(self, measured):
        system, seq = measured
        est = fine_grained_estimate(system, seq, 1000)
        dev, mat = work_split(system)
        bound = (dev + mat) / (mat / MATRIX_SPEEDUP_CAP)
        assert est.speedup < bound

    def test_efficiency_decreases(self, measured):
        system, seq = measured
        e2 = fine_grained_estimate(system, seq, 2)
        e8 = fine_grained_estimate(system, seq, 8)
        assert e8.efficiency < e2.efficiency

    def test_invalid_threads_rejected(self, measured):
        system, seq = measured
        with pytest.raises(ValueError):
            fine_grained_estimate(system, seq, 0)
