"""Benchmark circuit generators and the registry."""

import numpy as np
import pytest

from repro.circuits.analog import gilbert_mixer, lc_oscillator, rectifier
from repro.circuits.digital import inverter_chain, nand_chain, ring_oscillator
from repro.circuits.interconnect import rc_grid, rc_ladder, rlc_line
from repro.circuits.registry import BENCHMARKS, benchmark_names, get_benchmark
from repro.engine.transient import run_transient
from repro.mna.compiler import compile_circuit
from repro.solver.dcop import solve_operating_point
from repro.mna.system import MnaSystem


class TestGeneratorsValidate:
    @pytest.mark.parametrize(
        "factory",
        [
            lambda: ring_oscillator(3),
            lambda: ring_oscillator(9),
            lambda: inverter_chain(1),
            lambda: inverter_chain(12),
            lambda: nand_chain(2),
            lambda: rc_ladder(1),
            lambda: rc_ladder(30),
            lambda: rc_grid(2, 2),
            lambda: rc_grid(7, 3),
            lambda: rlc_line(2),
            gilbert_mixer,
            lc_oscillator,
            rectifier,
        ],
    )
    def test_generated_circuits_compile(self, factory):
        compiled = compile_circuit(factory())
        assert compiled.n > 0

    def test_ring_requires_odd_stages(self):
        with pytest.raises(ValueError):
            ring_oscillator(4)
        with pytest.raises(ValueError):
            ring_oscillator(1)

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            inverter_chain(0)
        with pytest.raises(ValueError):
            rc_ladder(0)
        with pytest.raises(ValueError):
            rc_grid(1, 5)
        with pytest.raises(ValueError):
            rlc_line(0)

    def test_sizes_scale_with_parameters(self):
        small = compile_circuit(rc_grid(3, 3))
        large = compile_circuit(rc_grid(6, 6))
        assert large.n > 3 * small.n / 2


class TestOperatingPoints:
    @pytest.mark.parametrize(
        "factory", [gilbert_mixer, lc_oscillator, rectifier, lambda: nand_chain(3)]
    )
    def test_dc_converges(self, factory):
        system = MnaSystem(compile_circuit(factory()))
        op = solve_operating_point(system)
        assert np.all(np.isfinite(op.x))

    def test_mixer_bias_sane(self):
        compiled = compile_circuit(gilbert_mixer())
        system = MnaSystem(compiled)
        op = solve_operating_point(system)
        outp = op.x[compiled.node_voltage_index("outp")]
        outm = op.x[compiled.node_voltage_index("outm")]
        # balanced: both outputs at the same level, below VCC by IR/2-ish
        assert outp == pytest.approx(outm, abs=0.05)
        assert 2.0 < outp < 5.0

    def test_lc_oscillator_tail_current(self):
        compiled = compile_circuit(lc_oscillator(tail_i=2e-3))
        system = MnaSystem(compiled)
        op = solve_operating_point(system)
        # inductors are DC shorts: both outputs at vdd
        outp = op.x[compiled.node_voltage_index("outp")]
        assert outp == pytest.approx(1.8, abs=0.1)


class TestDynamics:
    def test_ring_oscillates(self):
        res = run_transient(compile_circuit(ring_oscillator(3)), 15e-9)
        w = res.waveforms.voltage("n0")
        assert w.peak_to_peak() > 2.0
        assert w.slice(5e-9, 15e-9).frequency() is not None

    def test_ring_period_scales_with_stages(self):
        f3 = (
            run_transient(compile_circuit(ring_oscillator(3)), 15e-9)
            .waveforms.voltage("n0")
            .slice(6e-9, 15e-9)
            .frequency()
        )
        f5 = (
            run_transient(compile_circuit(ring_oscillator(5)), 25e-9)
            .waveforms.voltage("n0")
            .slice(10e-9, 25e-9)
            .frequency()
        )
        assert f3 > f5  # more stages -> longer period

    def test_inverter_chain_propagates(self):
        res = run_transient(compile_circuit(inverter_chain(stages=4)), 20e-9)
        v4 = res.waveforms.voltage("n4")
        assert v4.peak_to_peak() > 2.5  # full-swing output

    def test_chain_parity(self):
        res = run_transient(compile_circuit(inverter_chain(stages=4)), 20e-9)
        vin = res.waveforms.voltage("n0")
        v4 = res.waveforms.voltage("n4")
        # even number of inversions: output follows input (delayed)
        assert v4.at(8e-9) == pytest.approx(vin.at(8e-9), abs=0.3)

    def test_grid_droop_under_load(self):
        res = run_transient(compile_circuit(rc_grid(5, 5)), 10e-9)
        far = res.waveforms.voltage("p_4_4")
        assert far.values.min() < 1.8 - 0.05  # visible IR droop
        assert far.values.max() <= 1.8 + 0.05

    def test_rectifier_output_positive_and_smoothed(self):
        res = run_transient(compile_circuit(rectifier()), 60e-6)
        out = res.waveforms.voltage("dcp")
        late = out.slice(30e-6, 60e-6)
        assert late.values.min() > 2.0  # charged well above zero
        assert late.peak_to_peak() < 1.5  # ripple bounded by the RC filter

    def test_lc_oscillator_frequency(self):
        res = run_transient(compile_circuit(lc_oscillator()), 8e-9)
        w = res.waveforms.voltage("outp").slice(3e-9, 8e-9)
        f0 = 1.0 / (2 * np.pi * np.sqrt(5e-9 * 1e-12))
        freq = w.frequency()
        assert freq is not None
        assert freq == pytest.approx(f0, rel=0.15)

    def test_rlc_line_delay(self):
        res = run_transient(compile_circuit(rlc_line(sections=8)), 15e-9)
        near = res.waveforms.voltage("n1").crossings(0.5, "rise")
        far = res.waveforms.voltage("n8").crossings(0.5, "rise")
        assert near.size and far.size
        assert far[0] > near[0]  # propagation delay down the line


class TestRegistry:
    def test_all_benchmarks_build_and_compile(self):
        for name in BENCHMARKS:
            bench = get_benchmark(name)
            compiled = compile_circuit(bench.build(), bench.options)
            assert compiled.n > 0
            assert bench.tstop > 0
            assert bench.signals

    def test_signals_exist_in_circuit(self):
        for name in BENCHMARKS:
            bench = get_benchmark(name)
            compiled = compile_circuit(bench.build(), bench.options)
            for signal in bench.signals:
                assert signal in [f"v({n})" for n in compiled.node_index] + [
                    f"i({b})" for b in compiled.branch_index
                ], f"{name}: {signal} not in circuit"

    def test_kind_filter(self):
        digital = benchmark_names("digital")
        assert "ring5" in digital
        assert "mixer" not in digital
        assert set(benchmark_names()) == set(BENCHMARKS)

    def test_unknown_name_rejected(self):
        with pytest.raises(KeyError, match="available"):
            get_benchmark("nonexistent")

    def test_all_kinds_present(self):
        kinds = {b.kind for b in BENCHMARKS.values()}
        assert kinds == {"digital", "analog", "interconnect"}
