"""SimOptions validation and derived properties."""

import pytest

from repro.errors import SimulationError
from repro.utils.options import INTEGRATION_METHODS, SimOptions


class TestDefaults:
    def test_defaults_are_spice_like(self):
        opts = SimOptions()
        assert opts.reltol == 1e-3
        assert opts.abstol == 1e-12
        assert opts.vntol == 1e-6
        assert opts.trtol == 7.0
        assert opts.method == "trap"
        assert opts.newton_guess == "previous"

    def test_integration_methods_registry(self):
        assert set(INTEGRATION_METHODS) == {"be", "trap", "gear2"}

    @pytest.mark.parametrize("method,order", [("be", 1), ("trap", 2), ("gear2", 2)])
    def test_integration_order(self, method, order):
        assert SimOptions(method=method).integration_order == order

    def test_lte_tolerances_default_to_main(self):
        opts = SimOptions(reltol=5e-4, vntol=2e-6)
        assert opts.effective_lte_reltol == 5e-4
        assert opts.effective_lte_abstol == 2e-6

    def test_lte_tolerances_overridable(self):
        opts = SimOptions(lte_reltol=1e-2, lte_abstol=1e-5)
        assert opts.effective_lte_reltol == 1e-2
        assert opts.effective_lte_abstol == 1e-5


class TestValidation:
    @pytest.mark.parametrize("field", ["reltol", "abstol", "vntol", "chgtol", "trtol"])
    def test_positive_tolerances(self, field):
        with pytest.raises(SimulationError):
            SimOptions(**{field: 0.0})
        with pytest.raises(SimulationError):
            SimOptions(**{field: -1.0})

    def test_unknown_method_rejected(self):
        with pytest.raises(SimulationError):
            SimOptions(method="rk4")

    def test_ratio_max_floor(self):
        with pytest.raises(SimulationError):
            SimOptions(step_ratio_max=0.5)

    def test_step_shrink_range(self):
        with pytest.raises(SimulationError):
            SimOptions(step_shrink=0.0)
        with pytest.raises(SimulationError):
            SimOptions(step_shrink=1.0)

    def test_predictor_order_range(self):
        with pytest.raises(SimulationError):
            SimOptions(predictor_order=3)

    def test_guard_fraction_range(self):
        with pytest.raises(SimulationError):
            SimOptions(backward_guard_fraction=1.0)
        with pytest.raises(SimulationError):
            SimOptions(backward_guard_fraction=-0.1)

    def test_newton_guess_values(self):
        with pytest.raises(SimulationError):
            SimOptions(newton_guess="magic")
        assert SimOptions(newton_guess="predictor").newton_guess == "predictor"

    def test_lte_cap_margin_positive(self):
        with pytest.raises(SimulationError):
            SimOptions(lte_cap_margin=0.0)


class TestReplace:
    def test_replace_returns_new_validated_object(self):
        opts = SimOptions()
        changed = opts.replace(reltol=1e-4)
        assert changed.reltol == 1e-4
        assert opts.reltol == 1e-3  # original untouched (frozen)

    def test_replace_validates(self):
        with pytest.raises(SimulationError):
            SimOptions().replace(method="nope")

    def test_frozen(self):
        with pytest.raises(Exception):
            SimOptions().reltol = 1.0  # type: ignore[misc]
