"""Virtual clock accounting and stage executors."""

import threading
import time

import pytest

from repro.errors import SimulationError
from repro.parallel.clock import VirtualClock
from repro.parallel.executors import SerialExecutor, ThreadExecutor, make_executor


class TestVirtualClock:
    def test_stage_charges_max_plus_sync(self):
        clock = VirtualClock(sync_overhead=1.0)
        cost = clock.advance_stage([3.0, 7.0, 2.0])
        assert cost == pytest.approx(8.0)
        assert clock.virtual_work == pytest.approx(8.0)
        assert clock.serial_work == pytest.approx(12.0)
        assert clock.stages == 1
        assert clock.peak_width == 3

    def test_empty_stage_free(self):
        clock = VirtualClock()
        assert clock.advance_stage([]) == 0.0
        assert clock.stages == 0

    def test_serial_charge(self):
        clock = VirtualClock()
        clock.advance_serial(5.0)
        assert clock.virtual_work == 5.0
        assert clock.serial_work == 5.0

    def test_overlapped_hidden_within_producer(self):
        clock = VirtualClock()
        exposed = clock.advance_overlapped(10.0, 6.0)
        assert exposed == 0.0
        assert clock.virtual_work == pytest.approx(10.0)
        assert clock.serial_work == pytest.approx(16.0)

    def test_overlapped_excess_exposed(self):
        clock = VirtualClock()
        exposed = clock.advance_overlapped(10.0, 13.0)
        assert exposed == pytest.approx(3.0)
        assert clock.virtual_work == pytest.approx(13.0)

    def test_producer_stage_multiple_overlaps(self):
        clock = VirtualClock()
        exposed = clock.advance_producer_stage(10.0, [4.0, 12.0, 9.0])
        # only the worst overshoot is exposed (others run on own threads)
        assert exposed == pytest.approx(2.0)
        assert clock.virtual_work == pytest.approx(12.0)
        assert clock.serial_work == pytest.approx(35.0)
        assert clock.peak_width == 4

    def test_mean_width(self):
        clock = VirtualClock()
        clock.advance_stage([1.0])
        clock.advance_stage([1.0, 1.0, 1.0])
        assert clock.mean_width == pytest.approx(2.0)

    def test_speedup_against(self):
        clock = VirtualClock()
        clock.advance_stage([4.0])
        assert clock.speedup_against(8.0) == pytest.approx(2.0)

    def test_speedup_degenerate(self):
        assert VirtualClock().speedup_against(100.0) == 1.0


class TestExecutors:
    def tasks(self, results):
        return [lambda r=r: r for r in results]

    def test_serial_preserves_order(self):
        ex = SerialExecutor()
        assert ex.run_stage(self.tasks([1, 2, 3])) == [1, 2, 3]

    def test_thread_preserves_order(self):
        with ThreadExecutor(4) as ex:
            # stagger completion: later tasks finish first
            def slow(v, delay):
                def run():
                    time.sleep(delay)
                    return v
                return run

            results = ex.run_stage([slow(1, 0.05), slow(2, 0.02), slow(3, 0.0)])
        assert results == [1, 2, 3]

    def test_thread_actually_concurrent(self):
        barrier = threading.Barrier(3, timeout=5.0)

        def task():
            barrier.wait()  # deadlocks unless all 3 run simultaneously
            return True

        with ThreadExecutor(3) as ex:
            assert ex.run_stage([task, task, task]) == [True, True, True]

    def test_thread_propagates_exceptions(self):
        def boom():
            raise ValueError("task failed")

        with ThreadExecutor(2) as ex:
            with pytest.raises(ValueError, match="task failed"):
                ex.run_stage([boom])

    def test_thread_exception_keeps_original_traceback(self):
        def deep_failure():
            raise KeyError("missing state")

        def boom():
            deep_failure()

        with ThreadExecutor(2) as ex:
            with pytest.raises(KeyError) as excinfo:
                ex.run_stage([boom])
        frames = [tb.name for tb in excinfo.traceback]
        assert "deep_failure" in frames  # raising frame survives the hop

    def test_thread_close_is_idempotent(self):
        ex = ThreadExecutor(2)
        ex.close()
        ex.close()  # must not raise
        ex.close()

    def test_thread_run_stage_after_close_raises(self):
        """A closed pool fails fast with a clear SimulationError instead of
        surfacing concurrent.futures internals (or hanging)."""
        ex = ThreadExecutor(2)
        assert ex.run_stage(self.tasks([1])) == [1]
        ex.close()
        with pytest.raises(SimulationError, match="closed"):
            ex.run_stage(self.tasks([2]))

    def test_thread_context_manager_closes(self):
        with ThreadExecutor(2) as ex:
            pass
        with pytest.raises(SimulationError, match="closed"):
            ex.run_stage(self.tasks([1]))

    def test_make_executor_rejects_unknown_kind(self):
        with pytest.raises(SimulationError, match="unknown executor"):
            make_executor("fiber", 2)

    def test_thread_mid_stage_failure_runs_all_tasks(self):
        ran = []

        def ok(k):
            def run():
                ran.append(k)
                return k
            return run

        def boom():
            ran.append("boom")
            raise RuntimeError("mid-stage")

        with ThreadExecutor(3) as ex:
            with pytest.raises(RuntimeError, match="mid-stage"):
                ex.run_stage([ok(0), boom, ok(2)])
        # The stage waits for every sibling before raising: no task is
        # abandoned mid-flight with shared history buffers checked out.
        assert sorted(ran, key=str) == [0, 2, "boom"]

    def test_thread_two_failures_first_in_task_order_wins(self):
        def fail_slow():
            time.sleep(0.05)
            raise ValueError("first in task order")

        def fail_fast():
            raise KeyError("finished first")

        with ThreadExecutor(2) as ex:
            # fail_fast raises long before fail_slow, but propagation is
            # deterministic in task order (matching SerialExecutor).
            with pytest.raises(ValueError, match="first in task order"):
                ex.run_stage([fail_slow, fail_fast])

    @pytest.mark.parametrize("workers", [0, -1, -8])
    def test_worker_floor(self, workers):
        with pytest.raises(SimulationError, match=f"max_workers >= 1, got {workers}"):
            ThreadExecutor(workers)

    @pytest.mark.parametrize("workers", [0, -3])
    def test_worker_floor_through_factory(self, workers):
        with pytest.raises(SimulationError, match=f"got {workers}"):
            make_executor("thread", workers)

    def test_factory(self):
        assert isinstance(make_executor("serial", 4), SerialExecutor)
        ex = make_executor("thread", 2)
        assert isinstance(ex, ThreadExecutor)
        ex.close()
        with pytest.raises(SimulationError):
            make_executor("fiber", 2)
