"""Sequential transient engine: analytic benchmarks and step control."""

import numpy as np
import pytest

from repro.circuit.circuit import Circuit
from repro.circuit.sources import Dc, Pulse, Sin
from repro.engine.transient import run_transient
from repro.errors import TimestepError
from repro.mna.compiler import compile_circuit
from repro.utils.options import SimOptions


class TestRcAnalytic:
    TAU = 1e-6  # fixture: 1k * 1n

    def test_step_response(self, rc_circuit):
        res = run_transient(rc_circuit, tstop=8e-6)
        w = res.waveforms.voltage("out")
        t = np.linspace(1.5e-6, 7.5e-6, 60)
        analytic = 1.0 - np.exp(-(t - 1e-6) / self.TAU)
        assert np.abs(w.at(t) - analytic).max() < 5e-3

    @pytest.mark.parametrize("method", ["be", "trap", "gear2"])
    def test_all_methods_agree(self, rc_circuit, method):
        res = run_transient(rc_circuit, tstop=6e-6, options=SimOptions(method=method))
        w = res.waveforms.voltage("out")
        expected = 1.0 - np.exp(-(5e-6 - 1e-6) / self.TAU)
        assert w.at(5e-6) == pytest.approx(expected, abs=0.02)

    def test_trap_more_efficient_than_be(self, rc_circuit):
        be = run_transient(rc_circuit, tstop=8e-6, options=SimOptions(method="be"))
        trap = run_transient(rc_circuit, tstop=8e-6, options=SimOptions(method="trap"))
        assert trap.stats.accepted_points < be.stats.accepted_points

    def test_tightening_reltol_reduces_error(self, rc_circuit):
        t = np.linspace(1.5e-6, 7.5e-6, 60)
        analytic = 1.0 - np.exp(-(t - 1e-6) / self.TAU)
        errors = {}
        for reltol in (1e-2, 1e-4):
            res = run_transient(
                rc_circuit, tstop=8e-6, options=SimOptions(reltol=reltol)
            )
            errors[reltol] = np.abs(res.waveforms.voltage("out").at(t) - analytic).max()
        assert errors[1e-4] < errors[1e-2]

    def test_source_current_waveform(self, rc_circuit):
        res = run_transient(rc_circuit, tstop=8e-6)
        i_src = res.waveforms.current("V1")
        # just after the step, the full 1 V is across R: i = -1 mA through
        # the source branch (current flows out of the + terminal).
        assert i_src.at(1.05e-6) == pytest.approx(-1e-3, rel=0.05)


class TestRlAnalytic:
    def test_rl_current_rise(self):
        # Series RL: i(t) = V/R (1 - exp(-t R/L)), tau = 1 us
        c = Circuit("rl")
        c.add_vsource("V1", "in", "0", Pulse(0, 1, delay=0.2e-6, rise=1e-12, width=1.0))
        c.add_resistor("R1", "in", "a", 10.0)
        c.add_inductor("L1", "a", "0", 10e-6)
        res = run_transient(c, tstop=6e-6)
        i_l = res.waveforms.current("L1")
        t = np.linspace(0.5e-6, 5.5e-6, 40)
        analytic = 0.1 * (1.0 - np.exp(-(t - 0.2e-6) / 1e-6))
        assert np.abs(i_l.at(t) - analytic).max() < 2e-3


class TestRlcAnalytic:
    def test_ringing_frequency(self, rlc_circuit):
        # f = 1/(2 pi sqrt(LC)) ~ 5.03 MHz, lightly damped (R=10)
        res = run_transient(rlc_circuit, tstop=2e-6, options=SimOptions(reltol=1e-5))
        w = res.waveforms.voltage("out")
        ringing = w.slice(15e-9, 1.5e-6)
        freq = ringing.frequency(level=1.0)
        f0 = 1.0 / (2 * np.pi * np.sqrt(1e-6 * 1e-9))
        zeta = 10.0 / 2.0 * np.sqrt(1e-9 / 1e-6)
        f_damped = f0 * np.sqrt(1.0 - zeta**2)
        assert freq == pytest.approx(f_damped, rel=0.03)

    def test_energy_decay_envelope(self, rlc_circuit):
        # alpha = R/(2L) = 5e6 1/s: peaks decay as exp(-alpha t)
        res = run_transient(rlc_circuit, tstop=1e-6, options=SimOptions(reltol=1e-4))
        w = res.waveforms.voltage("out")
        early = abs(w.at(0.11e-6) - 1.0)
        late = abs(w.at(0.11e-6 + 0.4e-6) - 1.0)
        # same oscillation phase 2 periods later (T~0.199us; 0.4us ~ 2T)
        expected_ratio = np.exp(-5e6 * 0.4e-6)
        assert late / early == pytest.approx(expected_ratio, rel=0.35)


class TestSineDriven:
    def test_low_frequency_passthrough(self, sine_rc_circuit):
        # 50 kHz << fc=159 kHz: output ~ input with small attenuation
        res = run_transient(sine_rc_circuit, tstop=60e-6)
        out = res.waveforms.voltage("out")
        steady = out.slice(30e-6, 60e-6)
        expected_gain = 1 / np.sqrt(1 + (50e3 / 159.155e3) ** 2)
        assert steady.peak_to_peak() / 2 == pytest.approx(expected_gain, rel=0.03)


class TestBreakpoints:
    def test_pulse_corners_are_sample_points(self, rc_circuit):
        res = run_transient(rc_circuit, tstop=8e-6)
        # the delayed step at 1 us must be hit exactly
        assert np.any(np.abs(res.times - 1e-6) < 1e-15)

    def test_waveform_not_smeared_across_edge(self):
        c = Circuit("t")
        c.add_vsource(
            "V1", "a", "0", Pulse(0, 1, delay=1e-6, rise=1e-9, width=2e-6, period=4e-6)
        )
        c.add_resistor("R1", "a", "0", 1e3)
        res = run_transient(c, tstop=10e-6)
        w = res.waveforms.voltage("a")
        assert w.at(0.99e-6) == pytest.approx(0.0, abs=1e-6)
        assert w.at(1.1e-6) == pytest.approx(1.0, abs=1e-6)
        assert w.at(3.5e-6) == pytest.approx(0.0, abs=1e-6)

    def test_final_time_reached_exactly(self, rc_circuit):
        res = run_transient(rc_circuit, tstop=8e-6)
        assert res.final_time == pytest.approx(8e-6, rel=1e-9)


class TestUic:
    def test_cap_ic_skips_op(self):
        c = Circuit("t")
        c.add_vsource("V1", "in", "0", Dc(0.0))
        c.add_resistor("R1", "in", "out", 1e3)
        c.add_capacitor("C1", "out", "0", 1e-9, ic=1.0)
        res = run_transient(c, tstop=5e-6, uic=True)
        w = res.waveforms.voltage("out")
        assert w.at(0.0) == pytest.approx(1.0)
        # discharges through R with tau = 1 us
        assert w.at(2e-6) == pytest.approx(np.exp(-2.0), rel=0.05)

    def test_node_ics_override(self, rc_circuit):
        res = run_transient(rc_circuit, tstop=2e-6, uic=True, node_ics={"out": 0.5})
        assert res.waveforms.voltage("out").at(0.0) == pytest.approx(0.5)


class TestDiagnostics:
    def test_stats_populated(self, rc_circuit):
        res = run_transient(rc_circuit, tstop=8e-6)
        stats = res.stats
        assert stats.accepted_points == len(res.times) - 1
        assert stats.newton_iterations > 0
        assert stats.total_work > 0
        assert stats.wall_seconds > 0

    def test_step_sizes_match_times(self, rc_circuit):
        res = run_transient(rc_circuit, tstop=8e-6)
        np.testing.assert_allclose(
            np.diff(res.times), res.step_sizes, rtol=1e-9, atol=1e-20
        )

    def test_min_step_underflow_raises(self):
        # An impossible tolerance forces the controller below min_step.
        c = Circuit("t")
        c.add_vsource("V1", "a", "0", Sin(0.0, 1.0, 1e6))
        c.add_resistor("R1", "a", "b", 1e3)
        c.add_capacitor("C1", "b", "0", 1e-9)
        options = SimOptions(
            lte_reltol=1e-15, lte_abstol=1e-18, trtol=1.0, min_step_fraction=1e-7
        )
        with pytest.raises(TimestepError):
            run_transient(c, tstop=1e-5, options=options)

    def test_compiled_circuit_reusable(self, rc_circuit):
        compiled = compile_circuit(rc_circuit)
        first = run_transient(compiled, tstop=4e-6)
        second = run_transient(compiled, tstop=4e-6)
        np.testing.assert_allclose(first.times, second.times)


class TestChargeConservation:
    def test_capacitor_charge_matches_integrated_current(self, rc_circuit):
        """Integral of source current equals the charge delivered to C."""
        res = run_transient(rc_circuit, tstop=8e-6, options=SimOptions(reltol=1e-4))
        i_src = res.waveforms.current("V1")
        # current through V1 flows into R then C; total charge = C * v_final
        q_integrated = -np.trapezoid(i_src.values, i_src.times)
        v_out_final = res.waveforms.voltage("out").final_value()
        assert q_integrated == pytest.approx(1e-9 * v_out_final, rel=0.02)
