"""Netlist writer: Circuit -> deck -> Circuit round trips."""

import io

import numpy as np
import pytest

from repro.circuit.circuit import Circuit
from repro.circuit.components import BjtModel, DiodeModel, MosfetModel
from repro.circuit.sources import Dc, Exp, Pulse, Pwl, SampledWaveform, Sin
from repro.circuits.analog import gilbert_mixer, rectifier
from repro.circuits.digital import inverter_chain, ring_oscillator
from repro.circuits.interconnect import rc_grid, rlc_line
from repro.engine.transient import run_transient
from repro.errors import NetlistError
from repro.netlist.writer import _equivalent_component, roundtrip, write_netlist


def assert_equivalent(original: Circuit, restored: Circuit) -> None:
    assert len(restored) == len(original)
    for comp in original.components:
        other = restored[comp.name]
        assert _equivalent_component(comp, other), f"{comp} != {other}"


class TestRoundTrip:
    def test_passives_and_sources(self):
        c = Circuit("mixed sources")
        c.add_vsource("V1", "a", "0", Pulse(0, 5, delay=1e-9, rise=2e-9, fall=3e-9, width=4e-9, period=20e-9))
        c.add_vsource("V2", "b", "0", Sin(0.5, 1.0, 1e6, delay=1e-7, theta=1e3))
        c.add_isource("I1", "a", "0", Exp(0, 1, 1e-9, 2e-9, 5e-9, 3e-9))
        c.add_isource("I2", "b", "0", Pwl(((0.0, 0.0), (1e-9, 1e-3), (5e-9, 0.0))))
        c.add_resistor("R1", "a", "b", 4700.0)
        c.add_capacitor("C1", "b", "0", 1e-11, ic=0.5)
        c.add_inductor("L1", "a", "0", 1e-8, ic=1e-3)
        assert_equivalent(c, roundtrip(c))

    def test_controlled_sources(self):
        c = Circuit("controlled")
        c.add_vsource("V1", "a", "0", Dc(1.0))
        c.add_resistor("R1", "a", "b", 1e3)
        c.add_resistor("R2", "b", "0", 1e3)
        c.add_vcvs("E1", "p", "0", "a", "b", 10.0)
        c.add_vccs("G1", "p", "0", "a", "b", 1e-3)
        c.add_cccs("F1", "q", "0", "V1", 2.0)
        c.add_ccvs("H1", "q2", "0", "V1", 50.0)
        c.add_resistor("RP", "p", "0", 1e3)
        c.add_resistor("RQ", "q", "0", 1e3)
        c.add_resistor("RQ2", "q2", "0", 1e3)
        assert_equivalent(c, roundtrip(c))

    def test_semiconductor_models_deduplicated(self):
        model = DiodeModel("dd", is_=1e-13, n=1.1, cj0=1e-12)
        c = Circuit("diodes")
        c.add_vsource("V1", "a", "0", Dc(1.0))
        c.add_resistor("R1", "a", "x", 100.0)
        c.add_diode("D1", "x", "0", model)
        c.add_diode("D2", "a", "x", model, area=2.0)
        text = write_netlist(c)
        assert text.count(".model") == 1
        assert_equivalent(c, roundtrip(c))

    def test_distinct_models_kept_apart(self):
        c = Circuit("two models")
        c.add_vsource("V1", "a", "0", Dc(1.0))
        c.add_resistor("R1", "a", "x", 100.0)
        c.add_diode("D1", "x", "0", DiodeModel(is_=1e-13))
        c.add_diode("D2", "x", "0", DiodeModel(is_=1e-12))
        assert write_netlist(c).count(".model") == 2

    def test_mosfet_and_bjt(self):
        c = Circuit("actives")
        c.add_vsource("VDD", "vdd", "0", Dc(3.0))
        c.add_mosfet(
            "M1", "vdd", "g", "0", "0",
            MosfetModel("mn", "nmos", vto=0.6, kp=150e-6, lambda_=0.02),
            w=3e-6, l=0.8e-6,
        )
        c.add_resistor("RG", "g", "0", 1e6)
        c.add_resistor("RGV", "vdd", "g", 1e6)
        c.add_bjt(
            "Q1", "vdd", "g", "0",
            BjtModel("qn", "npn", is_=1e-15, bf=80.0, vaf=60.0),
        )
        assert_equivalent(c, roundtrip(c))

    @pytest.mark.parametrize(
        "factory",
        [
            lambda: ring_oscillator(3),
            lambda: inverter_chain(3),
            lambda: rc_grid(3, 3),
            lambda: rlc_line(3),
            rectifier,
            gilbert_mixer,
        ],
    )
    def test_benchmark_circuits_roundtrip(self, factory):
        original = factory()
        assert_equivalent(original, roundtrip(original))

    def test_roundtrip_simulates_identically(self):
        original = inverter_chain(2)
        restored = roundtrip(original)
        a = run_transient(original, 12e-9)
        b = run_transient(restored, 12e-9)
        np.testing.assert_array_equal(a.times, b.times)
        np.testing.assert_array_equal(
            a.waveforms.voltage("n2").values, b.waveforms.voltage("n2").values
        )


class TestOutputs:
    def test_tran_card_emitted(self):
        c = Circuit("t")
        c.add_vsource("V1", "a", "0", Dc(1.0))
        c.add_resistor("R1", "a", "0", 1.0)
        text = write_netlist(c, tran=(1e-9, 1e-6))
        assert ".tran 1e-09 1e-06" in text
        assert text.endswith(".end\n")

    def test_write_to_file_object(self):
        c = Circuit("t")
        c.add_vsource("V1", "a", "0", Dc(1.0))
        c.add_resistor("R1", "a", "0", 1.0)
        buffer = io.StringIO()
        text = write_netlist(c, buffer)
        assert buffer.getvalue() == text

    def test_write_to_path(self, tmp_path):
        c = Circuit("t")
        c.add_vsource("V1", "a", "0", Dc(1.0))
        c.add_resistor("R1", "a", "0", 1.0)
        path = tmp_path / "out.cir"
        write_netlist(c, str(path))
        assert path.read_text().startswith("t\n")

    def test_unsupported_waveform_rejected(self):
        c = Circuit("t")
        c.add_vsource("V1", "a", "0", SampledWaveform([0.0, 1.0], [0.0, 1.0]))
        c.add_resistor("R1", "a", "0", 1.0)
        with pytest.raises(NetlistError, match="no deck representation"):
            write_netlist(c)

    def test_title_preserved(self):
        c = Circuit("My Fancy Title")
        c.add_vsource("V1", "a", "0", Dc(1.0))
        c.add_resistor("R1", "a", "0", 1.0)
        assert roundtrip(c).title == "My Fancy Title"
