"""Exception hierarchy: one base type, informative messages."""

import pytest

from repro.errors import (
    AssemblyError,
    CircuitError,
    ConvergenceError,
    NetlistError,
    ReproError,
    SimulationError,
    SingularMatrixError,
    TimestepError,
    UnitError,
)


class TestHierarchy:
    @pytest.mark.parametrize(
        "exc_type",
        [
            CircuitError,
            NetlistError,
            UnitError,
            AssemblyError,
            SingularMatrixError,
            ConvergenceError,
            TimestepError,
            SimulationError,
        ],
    )
    def test_everything_derives_from_repro_error(self, exc_type):
        assert issubclass(exc_type, ReproError)

    def test_unit_error_is_circuit_error(self):
        # value parsing failures surface as circuit-description problems
        assert issubclass(UnitError, CircuitError)

    def test_one_except_catches_all(self):
        with pytest.raises(ReproError):
            raise TimestepError("boom")


class TestMessages:
    def test_netlist_error_carries_line(self):
        err = NetlistError("bad card", line=17)
        assert err.line == 17
        assert "line 17" in str(err)

    def test_netlist_error_without_line(self):
        err = NetlistError("bad card")
        assert err.line is None
        assert str(err) == "bad card"

    def test_singular_matrix_names_suspect(self):
        err = SingularMatrixError("factorisation failed", unknown="v(n7)")
        assert err.unknown == "v(n7)"
        assert "v(n7)" in str(err)

    def test_convergence_error_details(self):
        err = ConvergenceError("newton failed", iterations=42, residual_norm=1e3)
        assert err.iterations == 42
        assert "42" in str(err)
        assert "1.000e+03" in str(err)

    def test_convergence_error_minimal(self):
        err = ConvergenceError("newton failed")
        assert str(err) == "newton failed"
