"""Ensemble transient engine: K=1 bit-identity and seeded K>1 oracles.

Two guarantees back the ensemble mode's accuracy story:

* **K=1 is the legacy path.** A one-variant ensemble must reproduce the
  sequential transient run bit for bit — same accepted time grid, same
  waveform samples — with Jacobian reuse on *and* off. Any drift here
  means the trailing sims axis re-ordered floating-point arithmetic.
* **K>1 stays on the tolerance ladder.** For every verify circuit
  family, a seeded jittered ensemble must keep each variant within the
  ``loose`` (1e-3) rung of its own standalone sequential run, despite
  sharing one adaptive grid chosen by max-reduction over per-variant
  LTE estimates.
"""

import numpy as np
import pytest

from repro.api import simulate
from repro.engine.ensemble import run_ensemble_transient
from repro.jobs.spec import apply_params, jitterable_params
from repro.utils.options import SimOptions
from repro.verify.generators import draw_circuit
from repro.verify.oracle import classify_tier
from repro.waveform.waveform import compare, worst_deviation

#: One seed per covered verify family (same map as the Table R11 bench).
#: The multi-block WTM families (bridged-rc-mesh, inverter-composite) are
#: deliberately absent: their verification story is the partition oracle
#: in test_wtm_oracle.py, not the shared-grid ensemble, whose pointwise
#: comparison degenerates into edge-timing jitter on switching blocks.
FAMILY_SEEDS = {
    "diode-clipper": 38,
    "mosfet-chain": 16,
    "bjt-follower": 42,
    "rlc-ladder": 7,
    "rc-ladder": 5,
    "resistive-sin": 3,
    "diode-mesh": 101,
}

#: Every variant must clear the loose rung against its sequential run.
LOOSE = 1e-3


def assert_bit_identical(ens, seq):
    assert np.array_equal(ens.times, seq.times)
    variant = ens.variants[0]
    assert set(variant.waveforms.names) == set(seq.waveforms.names)
    for name in seq.waveforms.names:
        assert np.array_equal(
            variant.waveforms[name].values, seq.waveforms[name].values
        ), name


@pytest.mark.parametrize("reuse", [True, False], ids=["reuse", "no-reuse"])
@pytest.mark.parametrize("seed", [11, 42, 19])
def test_k1_bit_identical_to_sequential(seed, reuse):
    gen = draw_circuit(seed)
    options = SimOptions(jacobian_reuse=reuse)
    seq = simulate(gen.circuit, analysis="transient", tstop=gen.tstop, options=options)
    ens = run_ensemble_transient([gen.circuit], gen.tstop, options=options)
    assert ens.sims == 1
    assert_bit_identical(ens, seq)


def test_k1_bit_identical_with_uic():
    gen = draw_circuit(19)
    options = SimOptions(jacobian_reuse=True)
    seq = simulate(
        gen.circuit, analysis="transient", tstop=gen.tstop, options=options, uic=True
    )
    ens = run_ensemble_transient(
        [gen.circuit], gen.tstop, options=options, uic=True
    )
    assert_bit_identical(ens, seq)


def jittered_variants(circuit, k, seed=5, jitter=0.02):
    """The monte_carlo draw: lognormal factors over sorted param names."""
    nominal = jitterable_params(circuit)
    rng = np.random.default_rng(seed)
    names = sorted(nominal)
    out = []
    for _ in range(k):
        factors = rng.lognormal(mean=0.0, sigma=jitter, size=len(names))
        out.append(
            {name: float(nominal[name] * f) for name, f in zip(names, factors)}
        )
    return out


@pytest.mark.parametrize(
    "family", sorted(FAMILY_SEEDS), ids=sorted(FAMILY_SEEDS)
)
def test_k3_oracle_within_loose(family):
    """Each jittered variant tracks its own sequential run to <= loose."""
    gen = draw_circuit(FAMILY_SEEDS[family])
    assert gen.family == family
    options = SimOptions(
        reltol=3e-6, max_step=gen.tstop / 256, jacobian_reuse=True
    )
    overrides = jittered_variants(gen.circuit, k=3)
    circuits = [apply_params(gen.circuit, o) for o in overrides]
    ens = run_ensemble_transient(circuits, gen.tstop, options=options)
    assert ens.sims == 3

    for k, circuit in enumerate(circuits):
        ref = simulate(circuit, analysis="transient", tstop=gen.tstop, options=options)
        worst = worst_deviation(compare(ref.waveforms, ens.variants[k].waveforms))
        rel = worst.max_relative if worst is not None else 0.0
        tier = classify_tier(rel)
        assert rel <= LOOSE, f"{family} variant {k}: {rel:.3e} ({tier})"


def test_variants_share_grid_and_stats():
    gen = draw_circuit(11)
    overrides = jittered_variants(gen.circuit, k=4)
    circuits = [apply_params(gen.circuit, o) for o in overrides]
    ens = run_ensemble_transient(circuits, gen.tstop)
    for variant in ens.variants:
        assert variant.times is ens.times or np.array_equal(
            variant.times, ens.times
        )
        assert variant.stats is ens.stats
    assert ens.metrics is not None
    assert ens.metrics.scheme == "ensemble"


def test_ensemble_counters_recorded():
    from repro.instrument import Recorder

    gen = draw_circuit(19)
    overrides = jittered_variants(gen.circuit, k=2)
    circuits = [apply_params(gen.circuit, o) for o in overrides]
    rec = Recorder()
    run_ensemble_transient(circuits, gen.tstop, instrument=rec)
    counters = rec.snapshot()["counters"]
    assert counters.get("ensemble.solves", 0) > 0
    assert counters["ensemble.variants_per_solve"] == 2 * counters["ensemble.solves"]
    assert counters.get("ensemble.points.accepted", 0) > 0
