"""LTE estimation and the step-size verdict."""

import numpy as np
import pytest

from repro.integration.history import Timepoint, TimepointHistory
from repro.integration.lte import lte_verdict, predicted_max_step
from repro.utils.options import SimOptions


def history_from_fn(fn, times):
    h = TimepointHistory()
    for t in times:
        x = np.array([fn(t)])
        h.append(Timepoint(float(t), x, x.copy(), np.zeros(1)))
    return h


MASK = np.array([True])
OPTS = SimOptions()


class TestVerdict:
    def test_smooth_solution_accepted(self):
        # Linear trajectory: third derivative zero -> trap LTE ~ 0.
        h = history_from_fn(lambda t: 2.0 * t, [0.0, 0.1, 0.2, 0.3])
        verdict = lte_verdict(
            "trap", 2, h, 0.4, np.array([0.8]), MASK, OPTS
        )
        assert verdict.accepted
        assert verdict.error_ratio <= 1e-6
        assert verdict.h_optimal > 0.1  # plenty of headroom

    def test_violent_candidate_rejected(self):
        h = history_from_fn(lambda t: 0.0, [0.0, 0.1, 0.2, 0.3])
        verdict = lte_verdict(
            "trap", 2, h, 0.4, np.array([100.0]), MASK, OPTS
        )
        assert not verdict.accepted
        assert verdict.error_ratio > 1.0
        assert verdict.h_optimal < 0.1

    def test_insufficient_history_accepts_unestimated(self):
        h = history_from_fn(lambda t: t, [0.0])
        verdict = lte_verdict("be", 1, h, 0.1, np.array([0.1]), MASK, OPTS)
        assert verdict.accepted
        assert not verdict.estimated

    def test_h_solve_override_scales_error(self):
        h = history_from_fn(lambda t: t**3, [0.0, 0.1, 0.2, 0.3])
        x_new = np.array([(0.4) ** 3])
        small = lte_verdict("trap", 2, h, 0.4, x_new, MASK, OPTS, h_solve=0.1)
        large = lte_verdict("trap", 2, h, 0.4, x_new, MASK, OPTS, h_solve=0.4)
        assert large.error_ratio > small.error_ratio

    def test_only_voltage_unknowns_checked(self):
        # A wild branch-current trajectory must not reject the step when
        # the mask marks it as a current.
        h = TimepointHistory()
        for i, t in enumerate([0.0, 0.1, 0.2, 0.3]):
            x = np.array([t, (-50.0) ** i])
            h.append(Timepoint(t, x, x.copy(), np.zeros(2)))
        mask = np.array([True, False])
        verdict = lte_verdict(
            "trap", 2, h, 0.4, np.array([0.4, 1e6]), mask, OPTS
        )
        assert verdict.accepted

    def test_tolerances_scale_acceptance(self):
        h = history_from_fn(lambda t: np.sin(10 * t), [0.0, 0.05, 0.1, 0.15])
        x_new = np.array([np.sin(10 * 0.35)])
        loose = lte_verdict(
            "trap", 2, h, 0.35, x_new, MASK, OPTS.replace(lte_reltol=10.0, lte_abstol=10.0)
        )
        tight = lte_verdict(
            "trap", 2, h, 0.35, x_new, MASK,
            OPTS.replace(lte_reltol=1e-9, lte_abstol=1e-12, trtol=1.0),
        )
        assert loose.accepted
        assert not tight.accepted

    def test_be_uses_second_difference(self):
        # Quadratic: x'' nonzero, x''' zero. BE must see error, trap none.
        h = history_from_fn(lambda t: t**2, [0.0, 0.2, 0.4, 0.6])
        x_new = np.array([0.64])
        be = lte_verdict("be", 1, h, 0.8, x_new, MASK, OPTS.replace(trtol=1.0, lte_reltol=1e-6, lte_abstol=1e-9))
        trap = lte_verdict("trap", 2, h, 0.8, x_new, MASK, OPTS.replace(trtol=1.0, lte_reltol=1e-6, lte_abstol=1e-9))
        assert be.error_ratio > trap.error_ratio


class TestPredictedMaxStep:
    def test_none_with_short_history(self):
        h = history_from_fn(lambda t: t, [0.0, 0.1])
        assert predicted_max_step("trap", 2, h, MASK, OPTS) is None

    def test_smooth_gives_large_step(self):
        h = history_from_fn(lambda t: t, [0.0, 0.1, 0.2, 0.3])
        h_opt = predicted_max_step("trap", 2, h, MASK, OPTS)
        assert h_opt is not None
        assert h_opt > 1.0  # linear: effectively unconstrained

    def test_curved_gives_bounded_step(self):
        h = history_from_fn(lambda t: np.sin(20 * t), [0.0, 0.02, 0.04, 0.06])
        h_opt = predicted_max_step("trap", 2, h, MASK, OPTS)
        assert h_opt is not None
        assert h_opt < 1.0

    def test_inverts_lte_formula(self):
        # Construct x = t^3 so dd3 = 1 exactly; check the predicted step
        # satisfies C * h^3 * dd == trtol * tol at equality.
        h = history_from_fn(lambda t: t**3, [0.0, 0.5, 1.0, 1.5])
        opts = OPTS.replace(trtol=1.0, lte_reltol=1e-9, lte_abstol=1e-3)
        h_opt = predicted_max_step("trap", 2, h, MASK, opts)
        # 0.5 * h^3 * 1 = 1e-3 (abs tol dominates, |x| small-ish) -> h ~ 0.9*(2e-3)^(1/3)
        expected = 0.9 * (2e-3 + 2e-9 * (1.5**3) / 0.5) ** (1 / 3)
        assert h_opt == pytest.approx(expected, rel=0.05)
