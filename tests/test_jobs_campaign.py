"""Campaign generators and the checkpoint/resume contract.

The interrupted-campaign tests enforce the headline guarantee: killing a
campaign mid-flight and re-running it yields a manifest and cached result
files *byte-identical* to an uninterrupted run's.
"""

import json

import pytest

from repro.cli import main
from repro.errors import SimulationError
from repro.instrument import CAMPAIGN_RUN, Recorder
from repro.jobs import (
    CORNERS,
    CampaignStore,
    CircuitRef,
    JobSpec,
    monte_carlo,
    param_sweep,
    pvt_corners,
    run_campaign,
    single,
)

DECK = """rc lowpass
V1 in 0 SIN(0 1 1k)
R1 in out 1k
C1 out 0 1u
.tran 10u 1m
.end
"""


def rc_spec(**kw) -> JobSpec:
    return JobSpec(circuit=CircuitRef(kind="netlist", netlist=DECK), **kw)


class TestMonteCarlo:
    def test_same_seed_same_hashes(self):
        a = monte_carlo(rc_spec(), n=5, seed=3)
        b = monte_carlo(rc_spec(), n=5, seed=3)
        assert [j.content_hash() for j in a.jobs] == [
            j.content_hash() for j in b.jobs
        ]

    def test_different_seeds_differ(self):
        a = monte_carlo(rc_spec(), n=5, seed=3)
        b = monte_carlo(rc_spec(), n=5, seed=4)
        assert [j.content_hash() for j in a.jobs] != [
            j.content_hash() for j in b.jobs
        ]

    def test_jitter_perturbs_every_param(self):
        campaign = monte_carlo(rc_spec(), n=2, seed=0, jitter=0.1)
        for job in campaign.jobs:
            assert set(job.params) == {"R1", "C1"}
            assert job.params["R1"] != pytest.approx(1e3)
            assert job.params["R1"] == pytest.approx(1e3, rel=0.8)

    def test_component_restriction(self):
        campaign = monte_carlo(rc_spec(), n=2, seed=0, components=["R1"])
        assert all(set(j.params) == {"R1"} for j in campaign.jobs)
        with pytest.raises(SimulationError, match="not perturbable"):
            monte_carlo(rc_spec(), n=2, seed=0, components=["R9"])

    def test_validation(self):
        with pytest.raises(SimulationError, match="n >= 1"):
            monte_carlo(rc_spec(), n=0, seed=0)
        with pytest.raises(SimulationError, match="jitter"):
            monte_carlo(rc_spec(), n=1, seed=0, jitter=-0.1)


class TestCornersAndSweep:
    def test_stock_corners(self):
        campaign = pvt_corners(rc_spec())
        labels = [j.label.split("/")[-1] for j in campaign.jobs]
        assert labels == list(CORNERS)
        by_corner = {j.label.split("/")[-1]: j for j in campaign.jobs}
        assert by_corner["tt"].params == {}
        assert by_corner["ff"].params["R1"] == pytest.approx(0.9e3)
        assert by_corner["ss"].params["C1"] == pytest.approx(1.1e-6)

    def test_corner_subset_and_unknown(self):
        assert len(pvt_corners(rc_spec(), corners=["tt", "ss"]).jobs) == 2
        with pytest.raises(SimulationError, match="unknown corner"):
            pvt_corners(rc_spec(), corners=["xx"])
        with pytest.raises(SimulationError, match="class"):
            pvt_corners(rc_spec(), corners={"odd": {"resistors": 2.0}})

    def test_sweep(self):
        campaign = param_sweep(rc_spec(), "R1", [500.0, 1000.0, 2000.0])
        assert [j.params["R1"] for j in campaign.jobs] == [500.0, 1000.0, 2000.0]
        with pytest.raises(SimulationError, match="not a perturbable"):
            param_sweep(rc_spec(), "V1", [1.0])
        with pytest.raises(SimulationError, match="at least one"):
            param_sweep(rc_spec(), "R1", [])


class TestRunCampaign:
    def test_serial_run_and_cached_rerun(self, tmp_path):
        campaign = monte_carlo(rc_spec(), n=4, seed=7)
        rec = Recorder()
        result = run_campaign(campaign, store=tmp_path, instrument=rec)
        assert result.passed and result.counts == {"done": 4}
        assert result.metrics.accepted_points > 0
        assert result.metrics.counters["jobs.completed"] == 4
        assert any(e.name == CAMPAIGN_RUN for e in rec.events)

        rerun = run_campaign(campaign, store=tmp_path)
        assert rerun.counts == {"cached": 4}
        assert rerun.cache_hits == 4
        assert rerun.metrics.tran_seconds == 0.0

    def test_ephemeral_run_without_store(self):
        result = run_campaign(single(rc_spec()))
        assert result.passed and result.manifest_path is None

    def test_manifest_tracks_statuses(self, tmp_path):
        campaign = monte_carlo(rc_spec(), n=2, seed=1)
        run_campaign(campaign, store=tmp_path)
        store = CampaignStore(tmp_path)
        manifest = store.load_manifest()
        assert manifest["name"] == campaign.name
        assert [row["status"] for row in manifest["jobs"]] == ["done", "done"]
        assert store.manifest_jobs() == campaign.jobs

    def test_interrupted_campaign_resumes_byte_identically(self, tmp_path):
        campaign = monte_carlo(rc_spec(), n=4, seed=9)

        # Reference: one uninterrupted run.
        clean = tmp_path / "clean"
        run_campaign(campaign, store=clean)

        # Victim: killed (exception unwinds the whole campaign) after
        # the second job checkpoints.
        broken = tmp_path / "broken"
        seen = []

        def killer(outcome):
            seen.append(outcome)
            if len(seen) == 2:
                raise KeyboardInterrupt("simulated kill")

        with pytest.raises(KeyboardInterrupt):
            run_campaign(campaign, store=broken, on_outcome=killer)

        partial = json.loads((broken / "manifest.json").read_text())
        statuses = [row["status"] for row in partial["jobs"]]
        assert statuses.count("done") == 2 and statuses.count("pending") == 2

        # Resume: finished jobs come back as cache hits, the rest run.
        resumed = run_campaign(campaign, store=broken)
        assert resumed.passed
        assert resumed.cache_hits == 2

        assert (broken / "manifest.json").read_bytes() == (
            clean / "manifest.json"
        ).read_bytes()
        clean_results = sorted(p.name for p in (clean / "results").iterdir())
        broken_results = sorted(p.name for p in (broken / "results").iterdir())
        assert broken_results == clean_results
        for name in clean_results:
            assert (broken / "results" / name).read_bytes() == (
                clean / "results" / name
            ).read_bytes()

    def test_failed_job_fails_the_campaign(self, tmp_path, monkeypatch):
        import repro.jobs.workers as workers_module

        def hook(spec):
            if spec.label.endswith("mc001"):
                raise RuntimeError("injected")

        monkeypatch.setattr(workers_module, "FAULT_HOOK", hook)
        campaign = monte_carlo(rc_spec(), n=3, seed=2)
        result = run_campaign(campaign, store=tmp_path, retries=0)
        assert not result.passed
        assert result.counts == {"done": 2, "failed": 1}
        assert "injected" in result.failures[0].error
        manifest = CampaignStore(tmp_path).load_manifest()
        assert sorted(row["status"] for row in manifest["jobs"]) == [
            "done",
            "done",
            "failed",
        ]


class TestBatchCli:
    def test_montecarlo_run_and_cached_rerun(self, tmp_path, capsys):
        deck = tmp_path / "rc.cir"
        deck.write_text(DECK, encoding="utf-8")
        args = [
            "batch",
            "--deck",
            str(deck),
            "--montecarlo",
            "3",
            "--seed",
            "5",
            "--store",
            str(tmp_path / "store"),
            "--json",
            str(tmp_path / "report.json"),
        ]
        assert main(args) == 0
        first = json.loads((tmp_path / "report.json").read_text())
        assert first["passed"] and first["counts"] == {"done": 3}

        assert main(args) == 0
        second = json.loads((tmp_path / "report.json").read_text())
        assert second["counts"] == {"cached": 3}

    def test_requires_a_circuit_source(self, capsys):
        assert main(["batch", "--montecarlo", "2"]) == 2
        assert "provide --circuit" in capsys.readouterr().err

    def test_unknown_circuit_exits_2(self, capsys):
        assert main(["batch", "--circuit", "nosuch", "--corners"]) == 2
        assert "unknown benchmark" in capsys.readouterr().err

    def test_failed_jobs_exit_nonzero(self, tmp_path, capsys, monkeypatch):
        import repro.jobs.workers as workers_module

        monkeypatch.setattr(
            workers_module,
            "FAULT_HOOK",
            lambda spec: (_ for _ in ()).throw(RuntimeError("boom")),
        )
        deck = tmp_path / "rc.cir"
        deck.write_text(DECK, encoding="utf-8")
        assert main(["batch", "--deck", str(deck), "--retries", "0"]) == 1

    def test_list_circuits(self, capsys):
        assert main(["batch", "--list-circuits"]) == 0
        assert "rectifier" in capsys.readouterr().out
