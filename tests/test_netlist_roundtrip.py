"""Seeded round-trip property tests for the netlist layer.

Property: for any generated circuit, ``parser(writer(circuit))``
produces an equivalent :class:`~repro.circuit.circuit.Circuit` — same
node set, same device parameters (modulo model-card renaming), same
source expressions — and the round trip is a fixed point: writing the
re-parsed circuit reproduces the identical deck text.
"""

import pytest

from repro.netlist.parser import parse_netlist
from repro.netlist.writer import _equivalent_component, roundtrip, write_netlist
from repro.verify.generators import FAMILIES, draw_circuit

#: Seeds chosen so every generator family appears at least once (see
#: test_seeds_cover_every_family below, which keeps this honest; 38 is
#: the first seed that draws diode-clipper in the 10-family map).
ROUNDTRIP_SEEDS = list(range(24)) + [38]


def _drawn(seed):
    return draw_circuit(seed).circuit


class TestNetlistRoundtrip:
    @pytest.mark.parametrize("seed", ROUNDTRIP_SEEDS)
    def test_roundtrip_preserves_node_set(self, seed):
        original = _drawn(seed)
        recovered = roundtrip(original)
        assert set(recovered.nodes()) == set(original.nodes())

    @pytest.mark.parametrize("seed", ROUNDTRIP_SEEDS)
    def test_roundtrip_preserves_components(self, seed):
        """Every component survives with its parameters and waveform
        expression intact (model cards may be renamed by the writer)."""
        original = _drawn(seed)
        recovered = roundtrip(original)
        originals = {comp.name.upper(): comp for comp in original.components}
        recovereds = {comp.name.upper(): comp for comp in recovered.components}
        assert set(recovereds) == set(originals)
        for name, comp in originals.items():
            assert _equivalent_component(comp, recovereds[name]), (
                f"seed={seed}: component {name} changed across the round trip:"
                f"\n  wrote: {comp}\n  read:  {recovereds[name]}"
            )

    @pytest.mark.parametrize("seed", ROUNDTRIP_SEEDS)
    def test_roundtrip_is_fixed_point(self, seed):
        """writer(parser(writer(c))) == writer(c): one trip reaches the
        canonical deck, byte for byte."""
        original = _drawn(seed)
        deck = write_netlist(original)
        again = write_netlist(parse_netlist(deck).circuit)
        assert again == deck

    def test_seeds_cover_every_family(self):
        """The seed list above must exercise each generator family, or the
        round-trip property silently loses coverage as families evolve."""
        covered = {draw_circuit(seed).family for seed in ROUNDTRIP_SEEDS}
        assert covered == set(FAMILIES), (
            f"uncovered families: {sorted(set(FAMILIES) - covered)}; "
            "extend ROUNDTRIP_SEEDS"
        )

    def test_tran_card_roundtrip(self):
        generated = draw_circuit(0)
        deck = write_netlist(generated.circuit, tran=(generated.tstop / 100, generated.tstop))
        netlist = parse_netlist(deck)
        [tran] = netlist.analyses
        assert tran.tstop == pytest.approx(generated.tstop)
