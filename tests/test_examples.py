"""Smoke tests for the runnable examples (the fast ones).

The longer studies (ring sweep, power grid, mixer, scheduler anatomy) run
multi-minute campaigns and are exercised by the bench suite's equivalent
experiments instead; here we keep the user-facing quickstart paths green.
"""

import runpy
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"


def run_example(name: str, capsys) -> str:
    path = EXAMPLES / name
    assert path.exists(), f"missing example {name}"
    argv = sys.argv
    try:
        sys.argv = [str(path)]
        runpy.run_path(str(path), run_name="__main__")
    finally:
        sys.argv = argv
    return capsys.readouterr().out


class TestExamples:
    def test_quickstart(self, capsys):
        out = run_example("quickstart.py", capsys)
        assert "max deviation from analytic step response" in out
        assert "backward x2" in out
        assert "combined x4" in out

    def test_netlist_tour(self, capsys):
        out = run_example("netlist_tour.py", capsys)
        assert "DC transfer" in out
        assert "wavepipe combined x3" in out
        assert "AC: RC front-end corner" in out

    def test_all_examples_present_and_documented(self):
        expected = {
            "quickstart.py",
            "ring_oscillator_study.py",
            "power_grid_wavepipe.py",
            "mixer_wavepipe.py",
            "netlist_tour.py",
            "scheduler_anatomy.py",
        }
        found = {p.name for p in EXAMPLES.glob("*.py")}
        assert expected <= found
        for name in expected:
            source = (EXAMPLES / name).read_text()
            assert source.lstrip().startswith('"""'), f"{name} lacks a docstring"
            assert "__main__" in source, f"{name} is not runnable"
