"""SPICE netlist parser."""

import pytest

from repro.circuit.components import (
    Bjt,
    Capacitor,
    Cccs,
    Ccvs,
    Diode,
    Inductor,
    Mosfet,
    Resistor,
    Vccs,
    Vcvs,
    VoltageSource,
)
from repro.circuit.sources import Dc, Exp, Pulse, Pwl, Sin
from repro.errors import NetlistError
from repro.netlist.parser import DcCommand, OpCommand, TranCommand, parse_netlist


def parse(body: str):
    return parse_netlist("test deck\n" + body + "\n.end\n")


class TestStructure:
    def test_title_is_first_line(self):
        nl = parse_netlist("My Amplifier\nR1 a 0 1k\n")
        assert nl.title == "My Amplifier"

    def test_dot_card_first_line_rejected(self):
        with pytest.raises(NetlistError, match="title"):
            parse_netlist(".tran 1n 1u\nR1 a 0 1k\n")

    def test_empty_deck_rejected(self):
        with pytest.raises(NetlistError, match="empty"):
            parse_netlist("\n\n")

    def test_comments_ignored(self):
        nl = parse("* a comment\nR1 a 0 1k $ inline\nR2 a 0 2k ; also inline")
        assert len(nl.circuit) == 2

    def test_continuation_lines(self):
        nl = parse("V1 in 0 PULSE(0 1\n+ 1n 1n 1n\n+ 5n 20n)")
        wf = nl.circuit["V1"].waveform
        assert isinstance(wf, Pulse)
        assert wf.period == pytest.approx(20e-9)

    def test_continuation_without_previous_rejected(self):
        with pytest.raises(NetlistError, match="continuation"):
            parse_netlist("+ R1 a 0 1k\n")

    def test_continuation_can_extend_title(self):
        nl = parse_netlist("my\n+ title\nR1 a 0 1k\n")
        assert nl.title == "my title"

    def test_stops_at_end_card(self):
        nl = parse_netlist("t\nR1 a 0 1k\n.end\nR2 b 0 2k\n")
        assert "R2" not in nl.circuit

    def test_error_carries_line_number(self):
        with pytest.raises(NetlistError, match="line 3"):
            parse_netlist("t\nR1 a 0 1k\nZ9 a 0 1k\n")


class TestPassiveElements:
    def test_resistor(self):
        nl = parse("R1 in out 4.7k")
        r = nl.circuit["R1"]
        assert isinstance(r, Resistor)
        assert r.resistance == pytest.approx(4700.0)

    def test_capacitor_with_ic(self):
        nl = parse("V1 a 0 1\nR0 a c 1\nC1 c 0 10p ic=1.5")
        c = nl.circuit["C1"]
        assert isinstance(c, Capacitor)
        assert c.ic == 1.5

    def test_inductor(self):
        nl = parse("L1 a b 10n")
        assert isinstance(nl.circuit["L1"], Inductor)

    def test_wrong_arity_rejected(self):
        with pytest.raises(NetlistError, match="expected"):
            parse("R1 a 0")

    def test_resistor_ic_rejected(self):
        with pytest.raises(NetlistError, match="no ic"):
            parse("R1 a 0 1k ic=1")


class TestSources:
    def test_bare_value_is_dc(self):
        nl = parse("V1 a 0 3.3")
        assert isinstance(nl.circuit["V1"].waveform, Dc)
        assert nl.circuit["V1"].waveform.level == pytest.approx(3.3)

    def test_dc_keyword(self):
        nl = parse("I1 a 0 DC 1m")
        assert nl.circuit["I1"].waveform.level == pytest.approx(1e-3)

    def test_default_zero(self):
        nl = parse("V1 a 0")
        assert nl.circuit["V1"].waveform.level == 0.0

    def test_pulse(self):
        nl = parse("V1 a 0 PULSE(0 5 1n 2n 3n 10n 50n)")
        wf = nl.circuit["V1"].waveform
        assert isinstance(wf, Pulse)
        assert (wf.v1, wf.v2) == (0.0, 5.0)
        assert wf.rise == pytest.approx(2e-9)
        assert wf.fall == pytest.approx(3e-9)

    def test_sin(self):
        nl = parse("V1 a 0 SIN(1 2 1meg 1u 1k)")
        wf = nl.circuit["V1"].waveform
        assert isinstance(wf, Sin)
        assert wf.freq == pytest.approx(1e6)
        assert wf.theta == pytest.approx(1e3)

    def test_pwl(self):
        nl = parse("V1 a 0 PWL(0 0 1n 1 2n 0)")
        wf = nl.circuit["V1"].waveform
        assert isinstance(wf, Pwl)
        assert len(wf.points) == 3

    def test_pwl_odd_args_rejected(self):
        with pytest.raises(NetlistError, match="pairs"):
            parse("V1 a 0 PWL(0 0 1n)")

    def test_exp(self):
        nl = parse("V1 a 0 EXP(0 1 1n 2n 10n 3n)")
        wf = nl.circuit["V1"].waveform
        assert isinstance(wf, Exp)
        assert wf.tau1 == pytest.approx(2e-9)

    def test_missing_paren_rejected(self):
        with pytest.raises(NetlistError):
            parse("V1 a 0 PULSE 0 1")


class TestControlledSources:
    def test_vcvs(self):
        nl = parse("E1 p 0 cp cm 100")
        e = nl.circuit["E1"]
        assert isinstance(e, Vcvs)
        assert e.gain == 100.0

    def test_vccs(self):
        nl = parse("G1 p 0 cp cm 1m")
        assert isinstance(nl.circuit["G1"], Vccs)

    def test_cccs_and_ccvs(self):
        nl = parse("V1 a 0 1\nF1 p 0 V1 2\nH1 q 0 V1 50")
        assert isinstance(nl.circuit["F1"], Cccs)
        assert isinstance(nl.circuit["H1"], Ccvs)
        assert nl.circuit["H1"].ctrl_source == "V1"


class TestDevicesAndModels:
    def test_diode_with_model(self):
        nl = parse(".model dfast d is=1e-12 n=1.1\nD1 a 0 dfast 2.0")
        d = nl.circuit["D1"]
        assert isinstance(d, Diode)
        assert d.model.is_ == pytest.approx(1e-12)
        assert d.area == 2.0

    def test_mosfet_with_geometry(self):
        nl = parse(".model mn nmos vto=0.5 kp=100u\nM1 d g s 0 mn w=2u l=0.5u")
        m = nl.circuit["M1"]
        assert isinstance(m, Mosfet)
        assert m.model.polarity == "nmos"
        assert m.w == pytest.approx(2e-6)
        assert m.l == pytest.approx(0.5e-6)

    def test_pmos_polarity(self):
        nl = parse(".model mp pmos vto=0.6\nM1 d g s b mp")
        assert nl.circuit["M1"].model.polarity == "pmos"

    def test_bjt(self):
        nl = parse(".model qn npn bf=200\nQ1 c b e qn")
        q = nl.circuit["Q1"]
        assert isinstance(q, Bjt)
        assert q.model.bf == 200.0

    def test_model_parens_tolerated(self):
        nl = parse(".model dd d (is=1e-13)\nD1 a 0 dd")
        assert nl.circuit["D1"].model.is_ == pytest.approx(1e-13)

    def test_unknown_model_rejected(self):
        with pytest.raises(NetlistError, match="unknown model"):
            parse("D1 a 0 nosuchmodel")

    def test_wrong_model_type_rejected(self):
        with pytest.raises(NetlistError, match="expected"):
            parse(".model mn nmos\nD1 a 0 mn")

    def test_unknown_model_param_rejected(self):
        with pytest.raises(NetlistError, match="unknown parameter"):
            parse(".model dd d zeta=1")

    def test_model_lambda_alias(self):
        nl = parse(".model mn nmos lambda=0.1\nM1 d g s 0 mn")
        assert nl.circuit["M1"].model.lambda_ == pytest.approx(0.1)


class TestParamsAndExpressions:
    def test_param_used_in_value(self):
        nl = parse(".param rload=2k\nR1 a 0 {rload}")
        assert nl.circuit["R1"].resistance == pytest.approx(2000.0)

    def test_param_chain(self):
        nl = parse(".param vdd=3 half={vdd/2}\nV1 a 0 {half}")
        assert nl.circuit["V1"].waveform.level == pytest.approx(1.5)

    def test_expression_in_waveform(self):
        nl = parse(".param amp=2\nV1 a 0 SIN(0 {amp*2} 1meg)")
        assert nl.circuit["V1"].waveform.amplitude == pytest.approx(4.0)

    def test_unknown_param_rejected(self):
        with pytest.raises(NetlistError, match="unknown parameter"):
            parse("R1 a 0 {nope}")


class TestAnalysesAndOptions:
    def test_tran(self):
        nl = parse("R1 a 0 1k\n.tran 1n 100n")
        assert nl.tran.tstep == pytest.approx(1e-9)
        assert nl.tran.tstop == pytest.approx(100e-9)

    def test_tran_validation(self):
        with pytest.raises(NetlistError, match="positive"):
            parse("R1 a 0 1\n.tran 0 10n")

    def test_dc_command(self):
        nl = parse("V1 a 0 1\n.dc V1 0 5 0.1")
        cmd = nl.analyses[0]
        assert isinstance(cmd, DcCommand)
        assert cmd.source == "V1"
        assert cmd.step == pytest.approx(0.1)

    def test_op_command(self):
        nl = parse("R1 a 0 1\n.op")
        assert any(isinstance(a, OpCommand) for a in nl.analyses)

    def test_options_flow_into_simoptions(self):
        nl = parse("R1 a 0 1\n.options reltol=1e-5 method=gear2")
        assert nl.options.reltol == pytest.approx(1e-5)
        assert nl.options.method == "gear2"

    def test_unknown_option_rejected(self):
        with pytest.raises(NetlistError, match="unsupported option"):
            parse("R1 a 0 1\n.options frobnicate=1")

    def test_unknown_card_rejected(self):
        with pytest.raises(NetlistError, match="unknown card"):
            parse(".fourier 1k v(out)")


class TestSubcircuits:
    DECK = """\
.subckt inv in out vdd
M1 out in vdd vdd mp
M2 out in 0 0 mn
.ends
.model mn nmos vto=0.7
.model mp pmos vto=0.7
VDD vdd 0 3
V1 a 0 PULSE(0 3 1n 0.1n 0.1n 5n 10n)
X1 a b vdd inv
X2 b c vdd inv
"""

    def test_instantiation(self):
        nl = parse(self.DECK)
        assert "X1.M1" in nl.circuit
        assert "X2.M2" in nl.circuit
        assert nl.circuit["X1.M1"].nodes == ("b", "a", "vdd", "vdd")

    def test_port_count_mismatch_rejected(self):
        with pytest.raises(NetlistError, match="port"):
            parse(self.DECK + "X3 a b inv")

    def test_unknown_subckt_rejected(self):
        with pytest.raises(NetlistError, match="unknown subcircuit"):
            parse("X1 a b nosub")

    def test_missing_ends_rejected(self):
        with pytest.raises(NetlistError, match="missing .ends"):
            parse(".subckt foo a\nR1 a 0 1k")

    def test_nested_subckt_rejected(self):
        with pytest.raises(NetlistError, match="nested"):
            parse(".subckt a x\n.subckt b y\n.ends\n.ends")

    def test_stray_ends_rejected(self):
        with pytest.raises(NetlistError, match="without matching"):
            parse(".ends")

    def test_models_shared_with_subcircuits(self):
        nl = parse(self.DECK)
        assert nl.circuit["X1.M1"].model.polarity == "pmos"
