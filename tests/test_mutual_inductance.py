"""Coupled inductors (SPICE K element): transformer physics."""

import numpy as np
import pytest

from repro.circuit.circuit import Circuit
from repro.circuit.components import MutualInductance
from repro.circuit.sources import Sin
from repro.engine.transient import run_transient
from repro.analysis.ac import ac_analysis
from repro.errors import CircuitError, NetlistError
from repro.netlist.parser import parse_netlist
from repro.netlist.writer import roundtrip, write_netlist
from repro.utils.options import SimOptions


def transformer(k=0.999, l1=1e-3, l2=4e-3, rload=1e3):
    """Sine-driven transformer: turns ratio n = sqrt(L2/L1) = 2."""
    c = Circuit("transformer")
    c.add_vsource("V1", "in", "0", Sin(0.0, 1.0, 10e3))
    c.add_resistor("RS", "in", "p", 10.0)
    c.add_inductor("L1", "p", "0", l1)
    c.add_inductor("L2", "s", "0", l2)
    c.add_mutual("K1", "L1", "L2", k)
    c.add_resistor("RL", "s", "0", rload)
    return c


class TestValidation:
    def test_coupling_range(self):
        with pytest.raises(CircuitError, match="0 < |k|".replace("|", r"\|")):
            MutualInductance("K1", "L1", "L2", 1.0)
        with pytest.raises(CircuitError):
            MutualInductance("K1", "L1", "L2", 0.0)
        with pytest.raises(CircuitError):
            MutualInductance("K1", "L1", "L2", -1.5)

    def test_self_coupling_rejected(self):
        with pytest.raises(CircuitError, match="itself"):
            MutualInductance("K1", "L1", "L1", 0.9)

    def test_unknown_inductor_rejected(self):
        c = Circuit("t")
        c.add_vsource("V1", "a", "0", 1.0)
        c.add_inductor("L1", "a", "0", 1e-6)
        c.add_mutual("K1", "L1", "L9", 0.9)
        with pytest.raises(CircuitError, match="L9"):
            c.validate()


class TestTransformerPhysics:
    def test_voltage_ratio_follows_turns_ratio(self):
        # tight coupling, light load: Vs/Vp ~ sqrt(L2/L1) = 2
        result = run_transient(
            transformer(), 0.5e-3, options=SimOptions(reltol=1e-4)
        )
        vp = result.waveforms.voltage("p").slice(0.2e-3, 0.5e-3)
        vs = result.waveforms.voltage("s").slice(0.2e-3, 0.5e-3)
        ratio = vs.peak_to_peak() / vp.peak_to_peak()
        assert ratio == pytest.approx(2.0, rel=0.05)

    def test_polarity_follows_coupling_sign(self):
        pos = run_transient(transformer(k=0.99), 0.3e-3)
        neg = run_transient(transformer(k=-0.99), 0.3e-3)
        t_check = 0.225e-3  # quarter period into a cycle
        vs_pos = pos.waveforms.voltage("s").at(t_check)
        vs_neg = neg.waveforms.voltage("s").at(t_check)
        assert np.sign(vs_pos) == -np.sign(vs_neg)
        assert vs_pos == pytest.approx(-vs_neg, rel=0.02)

    def test_weak_coupling_transfers_less(self):
        tight = run_transient(transformer(k=0.99), 0.3e-3)
        loose = run_transient(transformer(k=0.3), 0.3e-3)
        vs_tight = tight.waveforms.voltage("s").slice(0.1e-3, 0.3e-3).peak_to_peak()
        vs_loose = loose.waveforms.voltage("s").slice(0.1e-3, 0.3e-3).peak_to_peak()
        assert vs_loose < 0.5 * vs_tight

    def test_ac_transfer_matches_transient(self):
        circuit = transformer()
        ac = ac_analysis(circuit, "V1", [10e3])
        gain_ac = ac.magnitude("v(s)")[0]
        result = run_transient(circuit, 0.5e-3, options=SimOptions(reltol=1e-4))
        vs = result.waveforms.voltage("s").slice(0.2e-3, 0.5e-3)
        assert vs.peak_to_peak() / 2 == pytest.approx(gain_ac, rel=0.03)

    def test_energy_passivity(self):
        """|k| < 1 keeps the inductance matrix positive definite: the
        magnetically stored energy 0.5 j^T L j never goes negative."""
        circuit = transformer(k=0.9)
        result = run_transient(circuit, 0.3e-3)
        j1 = result.waveforms.current("L1").values
        j2 = result.waveforms.current("L2").values
        l1, l2 = 1e-3, 4e-3
        m = 0.9 * np.sqrt(l1 * l2)
        energy = 0.5 * (l1 * j1**2 + 2 * m * j1 * j2 + l2 * j2**2)
        assert energy.min() >= -1e-15


class TestDeckSupport:
    DECK = """transformer deck
V1 in 0 SIN(0 1 10k)
RS in p 10
L1 p 0 1m
L2 s 0 4m
K1 L1 L2 0.99
RL s 0 1k
.end
"""

    def test_parse_k_element(self):
        netlist = parse_netlist(self.DECK)
        k = netlist.circuit["K1"]
        assert isinstance(k, MutualInductance)
        assert k.coupling == pytest.approx(0.99)

    def test_k_arity_error(self):
        with pytest.raises(NetlistError, match="expected"):
            parse_netlist("t\nK1 L1 L2\n.end\n")

    def test_k_bad_coupling_reported_with_line(self):
        with pytest.raises(NetlistError, match="line"):
            parse_netlist("t\nL1 a 0 1m\nL2 b 0 1m\nK1 L1 L2 1.5\n.end\n")

    def test_writer_roundtrip(self):
        circuit = transformer()
        restored = roundtrip(circuit)
        assert restored["K1"].coupling == pytest.approx(0.999)
        text = write_netlist(circuit)
        assert "K1 L1 L2" in text

    def test_subcircuit_remap(self):
        from repro.circuit.circuit import Subcircuit

        sub = Subcircuit("xfmr", ["p", "s"])
        sub.add_inductor("LP", "p", "0", 1e-3)
        sub.add_inductor("LS", "s", "0", 1e-3)
        sub.add_mutual("K1", "LP", "LS", 0.95)
        c = Circuit("t")
        c.add_vsource("V1", "a", "0", Sin(0, 1, 1e4))
        c.add_resistor("R1", "a", "ap", 10.0)
        c.add_subcircuit("X1", sub, {"p": "ap", "s": "as"})
        c.add_resistor("RL", "as", "0", 1e3)
        assert c["X1.K1"].inductor1 == "X1.LP"
        c.validate()
