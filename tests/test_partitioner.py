"""Deterministic weak-coupling partitioner over Circuit.

The partitioner's contract: cuts land on the weakest couplings the
circuit offers (high-R bridges, small coupling caps), device node
cliques are never severed, the boundary interface names exactly who
owns and who consumes each shared node, and the whole manifest is a
pure function of the circuit — byte-identical JSON on every call.
"""

import pytest

from repro.circuit.circuit import Circuit
from repro.circuit.sources import Pulse
from repro.circuits.multiblock import (
    bridged_rc_blocks,
    coupled_inverter_chains,
    mixed_rate_blocks,
)
from repro.errors import SimulationError
from repro.partition import (
    PartitionManifest,
    coupling_edges,
    manifest_from_node_sets,
    partition_circuit,
)
from repro.partition.partitioner import DEVICE_WEIGHT, coupling_weight


def two_block_bridge(bridge_r=2e5) -> Circuit:
    """Two RC sections joined by one weak bridge resistor."""
    c = Circuit("two-block-bridge")
    c.add_vsource("V1", "a0", "0", Pulse(0.0, 1.0, delay=1e-9, rise=1e-9,
                                         fall=1e-9, width=8e-9, period=20e-9))
    c.add_resistor("R1", "a0", "a1", 1e3)
    c.add_capacitor("C1", "a1", "0", 1e-12)
    c.add_resistor("RBR", "a1", "b0", bridge_r)
    c.add_resistor("R2", "b0", "b1", 1e3)
    c.add_capacitor("C2", "b1", "0", 1e-12)
    return c


class TestWeakCouplingCuts:
    def test_cut_lands_on_the_bridge(self):
        manifest = partition_circuit(two_block_bridge(), 2)
        assert len(manifest) == 2
        (cut,) = manifest.cuts
        assert cut.components == ("RBR",)
        assert {cut.a, cut.b} == {"a1", "b0"}

    def test_blocks_stay_whole(self):
        manifest = partition_circuit(two_block_bridge(), 2)
        nodes = [set(spec.nodes) for spec in manifest.partitions]
        assert nodes == [{"a0", "a1"}, {"b0", "b1"}]

    @pytest.mark.parametrize("blocks", [2, 3, 6])
    def test_bridged_rc_blocks_split_at_every_bridge(self, blocks):
        circuit = bridged_rc_blocks(blocks=blocks, rungs=3)
        manifest = partition_circuit(circuit, blocks)
        assert len(manifest) == blocks
        for cut in manifest.cuts:
            assert all(name.startswith(("RBR", "CBR")) for name in cut.components)

    def test_mixed_rate_blocks_split_at_bridges(self):
        manifest = partition_circuit(mixed_rate_blocks(blocks=4, rungs=2), 4)
        assert [len(spec.nodes) for spec in manifest.partitions] == [3, 3, 3, 3]

    def test_coarser_than_natural_blocks(self):
        # Asking for fewer partitions than blocks merges across the
        # *strongest* bridges first, still cutting only weak couplings.
        manifest = partition_circuit(bridged_rc_blocks(blocks=4, rungs=2), 2)
        assert len(manifest) == 2
        for cut in manifest.cuts:
            assert cut.weight < DEVICE_WEIGHT


class TestDeviceCliquesNeverCut:
    def test_inverter_chains_cut_only_the_links(self):
        circuit = coupled_inverter_chains(blocks=3, stages=2)
        manifest = partition_circuit(circuit, 3)
        for cut in manifest.cuts:
            assert all(name.startswith(("RLINK", "CLINK")) for name in cut.components)

    def test_refuses_to_cut_through_a_device(self):
        # 4 partitions over 3 inverter blocks would have to sever a
        # MOSFET clique or a supply branch.
        circuit = coupled_inverter_chains(blocks=3, stages=2)
        with pytest.raises(SimulationError, match="device/branch coupling"):
            partition_circuit(circuit, 4)

    def test_allow_strong_cuts_overrides(self):
        circuit = coupled_inverter_chains(blocks=3, stages=2)
        manifest = partition_circuit(circuit, 4, allow_strong_cuts=True)
        assert len(manifest) == 4


class TestDeterminism:
    def test_manifest_json_is_byte_identical_across_builds(self):
        a = partition_circuit(bridged_rc_blocks(blocks=3, rungs=4), 3)
        b = partition_circuit(bridged_rc_blocks(blocks=3, rungs=4), 3)
        assert a.to_json() == b.to_json()

    def test_roundtrip_through_dict_is_stable(self):
        manifest = partition_circuit(two_block_bridge(), 2)
        d = manifest.to_dict()
        assert d["requested"] == 2
        assert [p["index"] for p in d["partitions"]] == [0, 1]
        assert isinstance(manifest, PartitionManifest)


class TestBoundaryInterface:
    def test_owner_and_consumers(self):
        manifest = partition_circuit(two_block_bridge(), 2)
        by_node = {spec.node: spec for spec in manifest.boundary}
        # both bridge endpoints are shared: each side consumes the other's
        assert by_node["a1"].owner == 0 and by_node["a1"].consumers == (1,)
        assert by_node["b0"].owner == 1 and by_node["b0"].consumers == (0,)
        assert manifest.foreign_nodes(0) == ("b0",)
        assert manifest.foreign_nodes(1) == ("a1",)
        assert manifest.owner_of("a0") == 0
        with pytest.raises(KeyError):
            manifest.owner_of("nope")


class TestValidation:
    def test_partition_count_bounds(self):
        with pytest.raises(SimulationError, match=">= 1"):
            partition_circuit(two_block_bridge(), 0)
        with pytest.raises(SimulationError, match="cannot split"):
            partition_circuit(two_block_bridge(), 99)

    def test_disconnected_halves_cannot_merge(self):
        c = Circuit("disconnected")
        c.add_vsource("V1", "a", "0", 1.0)
        c.add_resistor("R1", "a", "b", 1e3)
        c.add_vsource("V2", "x", "0", 1.0)
        c.add_resistor("R2", "x", "y", 1e3)
        with pytest.raises(SimulationError, match="connectivity supports"):
            partition_circuit(c, 1)


class TestExplicitNodeSets:
    def test_matches_partitioner_on_the_natural_cut(self):
        circuit = two_block_bridge()
        auto = partition_circuit(circuit, 2)
        manual = manifest_from_node_sets(
            circuit, [{"a0", "a1"}, {"b0", "b1"}]
        )
        assert [s.nodes for s in manual.partitions] == [
            s.nodes for s in auto.partitions
        ]
        assert manual.boundary == auto.boundary

    def test_duplicate_node_rejected(self):
        with pytest.raises(SimulationError, match="two partitions"):
            manifest_from_node_sets(
                two_block_bridge(), [{"a0", "a1"}, {"a1", "b0", "b1"}]
            )

    def test_missing_node_rejected(self):
        with pytest.raises(SimulationError, match="misses node"):
            manifest_from_node_sets(two_block_bridge(), [{"a0", "a1"}, {"b0"}])


class TestCouplingWeights:
    def test_resistor_weight_is_conductance(self):
        c = two_block_bridge(bridge_r=1e6)
        edges = coupling_edges(c)
        assert edges[("a1", "b0")]["weight"] == pytest.approx(1e-6)

    def test_parallel_couplings_sum(self):
        c = two_block_bridge()
        c.add_capacitor("CBR", "a1", "b0", 1e-14)
        edges = coupling_edges(c)
        assert edges[("a1", "b0")]["components"] == ["RBR", "CBR"]
        assert edges[("a1", "b0")]["weight"] == pytest.approx(
            1.0 / 2e5 + 1e-14 / 1e-9
        )

    def test_device_weight_for_branch_components(self):
        c = Circuit("branch")
        c.add_inductor("L1", "a", "b", 1e-9)
        (comp,) = c.components
        assert coupling_weight(comp) == DEVICE_WEIGHT
