"""The differential oracle: lattice shape, verdicts, reproducibility, CLI.

Fast-path unit tests plus a handful of real (but small) oracle runs.
The expensive full-campaign acceptance check lives in CI's verify-fuzz
job (``python -m repro verify --trials 10 --seed 0``); here we pin the
machinery: lattice construction, tier classification, report structure,
byte-identical same-seed JSON, recorder counters and CLI exit codes.
"""

import json

import pytest

from repro.cli import main
from repro.errors import SimulationError
from repro.instrument import Recorder
from repro.verify.generators import FAMILIES
from repro.verify.oracle import (
    DEFAULT_TOLERANCE,
    TOLERANCE_LADDER,
    ConfigResult,
    ConfigSpec,
    EquivalenceReport,
    classify_tier,
    configuration_lattice,
    run_verification,
    verify_circuit,
)

#: Single-scheme / single-family settings keep real oracle runs in this
#: module around a second each instead of a full 17-config lattice.
FAST = dict(schemes=["combined"], chaos=False)


class TestToleranceLadder:
    def test_ladder_is_sorted_tightest_first(self):
        levels = [level for _, level in TOLERANCE_LADDER]
        assert levels == sorted(levels)

    def test_default_is_the_lte_rung(self):
        assert DEFAULT_TOLERANCE == dict(TOLERANCE_LADDER)["lte"]

    @pytest.mark.parametrize(
        "value,expected",
        [
            (0.0, "exact"),
            (1e-13, "machine"),
            (1e-12, "machine"),
            (1e-9, "tight"),
            (1e-4, "loose"),
            (1e-2, "lte"),
            (0.5, "beyond"),
        ],
    )
    def test_classify_tier(self, value, expected):
        assert classify_tier(value) == expected


class TestConfigurationLattice:
    def test_full_lattice_shape(self):
        configs = configuration_lattice()
        # 2 sequential + 3 schemes x 2 executors x 2 reuse + 3 chaos
        assert len(configs) == 2 + 12 + 3
        assert configs[0] == ConfigSpec("sequential", reuse=False)
        labels = [c.label for c in configs]
        assert len(set(labels)) == len(labels)  # all distinct

    def test_no_chaos_drops_only_chaos_configs(self):
        with_chaos = configuration_lattice(chaos=True)
        without = configuration_lattice(chaos=False)
        assert without == [c for c in with_chaos if c.chaos_seed is None]

    def test_scheme_subset(self):
        configs = configuration_lattice(chaos=False, schemes=["combined"])
        assert len(configs) == 2 + 4
        assert {c.analysis for c in configs} == {"sequential", "combined"}

    def test_unknown_scheme_raises(self):
        with pytest.raises(SimulationError, match="unknown WavePipe scheme"):
            configuration_lattice(schemes=["diagonal"])

    def test_labels_are_replayable_descriptions(self):
        assert ConfigSpec("sequential", reuse=True).label == "sequential[reuse=on]"
        assert (
            ConfigSpec("combined", "thread", True).label
            == "combined/thread[reuse=on]"
        )
        assert (
            ConfigSpec("forward", "serial", False, chaos_seed=2).label
            == "forward/serial+chaos2[reuse=off]"
        )


class TestVerifyCircuit:
    def test_rc_lattice_passes(self, rc_circuit):
        report = verify_circuit(rc_circuit, tstop=8e-6, schemes=["combined"])
        assert report.passed, report.summary()
        assert report.reference == "sequential[reuse=off]"
        assert report.reference_points > 0
        # sequential reuse=on + 4 combined + 1 chaos candidate
        assert len(report.configs) == 6
        for result in report.configs:
            assert result.tier != "beyond"
            assert result.accepted_points > 0
            assert result.deviations  # per-signal detail present

    def test_requires_tstop(self, rc_circuit):
        with pytest.raises(SimulationError, match="tstop"):
            verify_circuit(rc_circuit)

    def test_recorder_counters(self, rc_circuit):
        rec = Recorder(capture_events=True)
        verify_circuit(rc_circuit, tstop=4e-6, instrument=rec, **FAST)
        assert rec.counter("verify.circuits") == 1
        assert rec.counter("verify.configs_run") == 6
        assert rec.counter("verify.circuits_passed") == 1
        [event] = [e for e in rec.events if e.name == "verify_trial"]
        assert event.attrs["passed"] is True

    def test_chaos_books_chaos_counters(self, rc_circuit):
        rec = Recorder(capture_events=False)
        verify_circuit(
            rc_circuit, tstop=4e-6, schemes=["combined"], chaos=True,
            instrument=rec,
        )
        assert rec.counter("chaos.stages") > 0
        assert rec.counter("chaos.tasks") > 0

    def test_report_json_is_deterministic(self, rc_circuit):
        a = verify_circuit(rc_circuit, tstop=8e-6, **FAST).to_json()
        b = verify_circuit(rc_circuit, tstop=8e-6, **FAST).to_json()
        assert a == b
        parsed = json.loads(a)
        assert parsed["circuit"] == "rc-fixture"
        assert parsed["passed"] is True


class TestReportStructure:
    def _result(self, rel, passed):
        return ConfigResult(
            config="combined/serial[reuse=off]",
            accepted_points=10,
            deviations=[],
            worst_signal="v(out)",
            worst_relative=rel,
            worst_abs=rel,
            tier=classify_tier(rel),
            passed=passed,
        )

    def test_failures_and_worst(self):
        report = EquivalenceReport(
            circuit="c", family=None, seed=None, tstop=1.0, threads=2,
            tolerance=DEFAULT_TOLERANCE, reference="sequential[reuse=off]",
            reference_points=10,
            configs=[self._result(1e-8, True), self._result(0.3, False)],
        )
        assert not report.passed
        assert len(report.failures) == 1
        assert report.worst.worst_relative == 0.3
        assert "FAIL(1 configs)" in report.summary()

    def test_empty_report_passes_vacuously(self):
        report = EquivalenceReport(
            circuit="c", family=None, seed=None, tstop=1.0, threads=2,
            tolerance=DEFAULT_TOLERANCE, reference="sequential[reuse=off]",
            reference_points=10,
        )
        assert report.passed
        assert report.worst is None
        assert "no configs" in report.summary()


class TestRunVerification:
    def test_campaign_is_byte_identical_across_reruns(self):
        kwargs = dict(trials=2, seed=7, families=["rc-mesh"], **FAST)
        first = run_verification(**kwargs)
        second = run_verification(**kwargs)
        assert first.passed, first.summary()
        assert first.to_json() == second.to_json()

    def test_different_seed_different_campaign(self):
        a = run_verification(trials=1, seed=0, families=["rc-mesh"], **FAST)
        b = run_verification(trials=1, seed=1, families=["rc-mesh"], **FAST)
        assert a.reports[0].circuit != b.reports[0].circuit

    def test_trials_floor(self):
        with pytest.raises(SimulationError, match="trials"):
            run_verification(trials=0)

    def test_on_report_callback_and_counters(self):
        rec = Recorder(capture_events=False)
        seen = []
        report = run_verification(
            trials=2, seed=3, families=["diode-clipper"], instrument=rec,
            on_report=seen.append, **FAST,
        )
        assert len(seen) == 2
        assert seen == report.reports
        assert rec.counter("verify.trials") == 2
        assert rec.counter("verify.circuits") == 2


class TestVerifyCli:
    def test_verify_subcommand_passes(self, tmp_path, capsys):
        out_file = tmp_path / "report.json"
        code = main([
            "verify", "--trials", "1", "--seed", "0",
            "--families", "rc-mesh", "--no-chaos",
            "--json", str(out_file), "--metrics",
        ])
        assert code == 0
        captured = capsys.readouterr().out
        assert "verify: PASS" in captured
        assert "verify.trials = 1" in captured
        payload = json.loads(out_file.read_text())
        assert payload["passed"] is True
        assert payload["families"] == ["rc-mesh"]

    def test_unknown_family_exits_2(self, capsys):
        assert main(["verify", "--trials", "1", "--families", "warp-core"]) == 2
        assert "unknown family" in capsys.readouterr().err

    def test_list_families(self, capsys):
        assert main(["verify", "--list-families"]) == 0
        listed = capsys.readouterr().out.split()
        assert listed == sorted(FAMILIES)


class TestTrialErrorCapture:
    """A trial that blows up mid-campaign must fail, not abort, the run."""

    def _raise_on_second(self, monkeypatch):
        import repro.verify.oracle as oracle_module

        real = oracle_module.verify_circuit
        calls = {"n": 0}

        def flaky(*args, **kwargs):
            calls["n"] += 1
            if calls["n"] == 2:
                raise SimulationError("Newton blew up")
            return real(*args, **kwargs)

        monkeypatch.setattr(oracle_module, "verify_circuit", flaky)

    def test_raising_trial_recorded_not_fatal(self, monkeypatch):
        self._raise_on_second(monkeypatch)
        rec = Recorder(capture_events=False)
        report = run_verification(
            trials=3, seed=3, families=["diode-clipper"], instrument=rec, **FAST
        )
        assert len(report.reports) == 3  # campaign ran to completion
        assert not report.passed
        errored = report.reports[1]
        assert errored.error == "SimulationError: Newton blew up"
        assert not errored.passed
        assert "ERROR" in errored.summary()
        assert report.failures == [errored]
        assert rec.counter("verify.trial_errors") == 1

    def test_error_lands_in_json(self, monkeypatch):
        self._raise_on_second(monkeypatch)
        report = run_verification(
            trials=2, seed=3, families=["diode-clipper"], **FAST
        )
        payload = json.loads(report.to_json())
        assert payload["passed"] is False
        assert payload["reports"][1]["error"].startswith("SimulationError")
        assert payload["reports"][0]["error"] is None

    def test_cli_exits_nonzero_on_raising_trial(self, monkeypatch, capsys):
        import repro.verify.oracle as oracle_module

        def boom(*args, **kwargs):
            raise SimulationError("synthetic engine failure")

        monkeypatch.setattr(oracle_module, "verify_circuit", boom)
        code = main(
            ["verify", "--trials", "1", "--families", "rc-mesh", "--no-chaos"]
        )
        assert code == 1
        assert "ERROR" in capsys.readouterr().out

    def test_cli_exits_nonzero_on_classification_failure(self, capsys):
        # An absurdly tight tolerance turns legal interpolation noise
        # into a classification failure on every config.
        code = main([
            "verify", "--trials", "1", "--seed", "0", "--families", "rc-mesh",
            "--no-chaos", "--tol", "1e-30",
        ])
        assert code == 1
        assert "FAIL" in capsys.readouterr().out
