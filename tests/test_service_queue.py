"""JobQueue semantics: dedup, quotas, leases, attempts, persistence.

Everything time-dependent runs on an injected fake clock, so lease
expiry and reaping are tested deterministically; everything else reloads
the manifest from disk through fresh JobQueue handles to prove the queue
has no hidden in-memory state a node restart would lose.
"""

import json

import pytest

from repro.errors import SimulationError
from repro.jobs.spec import CircuitRef, JobSpec
from repro.service.queue import (
    JobQueue,
    QuotaExceeded,
    campaign_id,
)

DECK = """rc lowpass
V1 in 0 SIN(0 1 1k)
R1 in out 1k
C1 out 0 1u
.tran 10u 1m
.end
"""


def rc_spec(label="rc", **kw) -> JobSpec:
    return JobSpec(circuit=CircuitRef(kind="netlist", netlist=DECK), label=label, **kw)


class FakeClock:
    def __init__(self, now=1000.0):
        self.now = now

    def __call__(self) -> float:
        return self.now

    def advance(self, dt: float) -> None:
        self.now += dt


@pytest.fixture
def clock():
    return FakeClock()


@pytest.fixture
def queue(tmp_path, clock):
    return JobQueue(tmp_path / "q", clock=clock)


class TestSubmit:
    def test_submit_creates_pending_entry(self, queue):
        receipt = queue.submit(rc_spec())
        assert receipt.created and not receipt.deduped
        assert receipt.status == "pending"
        status = queue.status(receipt.spec_hash)
        assert status["status"] == "pending"
        assert status["tenants"] == ["default"]
        assert queue.depth() == 1

    def test_identical_specs_dedup_by_content_hash(self, queue):
        first = queue.submit(rc_spec(label="a"), tenant="t1")
        second = queue.submit(rc_spec(label="b"), tenant="t2")  # label is not content
        assert second.spec_hash == first.spec_hash
        assert second.deduped and not second.created
        status = queue.status(first.spec_hash)
        assert status["tenants"] == ["t1", "t2"]
        assert queue.depth() == 1  # one physical job
        assert queue.depth("t1") == queue.depth("t2") == 1

    def test_priority_takes_the_max_across_submitters(self, queue):
        receipt = queue.submit(rc_spec(), priority=1)
        queue.submit(rc_spec(), tenant="other", priority=5)
        queue.submit(rc_spec(), priority=2)
        assert queue.status(receipt.spec_hash)["priority"] == 5

    def test_resubmitting_a_failed_job_requeues_it(self, queue, clock):
        queue = JobQueue(queue.root, max_attempts=1, clock=clock)
        receipt = queue.submit(rc_spec())
        queue.claim("n1")
        assert queue.fail(receipt.spec_hash, "n1", "boom") == "failed"
        again = queue.submit(rc_spec())
        assert again.deduped
        status = queue.status(receipt.spec_hash)
        assert status["status"] == "pending"
        assert status["attempts"] == 0 and status["error"] is None

    def test_manifest_is_plain_json_on_disk(self, queue):
        queue.submit(rc_spec())
        state = json.loads(queue.path.read_text())
        assert state["version"] == 1
        assert len(state["jobs"]) == 1

    def test_persistence_across_handles(self, queue, clock):
        receipt = queue.submit(rc_spec())
        reopened = JobQueue(queue.root, clock=clock)
        assert reopened.status(receipt.spec_hash)["status"] == "pending"
        assert reopened.claim("n1")[0].spec_hash == receipt.spec_hash


class TestQuota:
    def test_quota_rejects_excess_active_jobs(self, tmp_path, clock):
        queue = JobQueue(tmp_path / "q", quota=2, clock=clock)
        queue.submit(rc_spec(params={"R1": 1.0e3}))
        queue.submit(rc_spec(params={"R1": 1.1e3}))
        with pytest.raises(QuotaExceeded) as err:
            queue.submit(rc_spec(params={"R1": 1.2e3}))
        assert err.value.tenant == "default"
        assert err.value.depth == 2 and err.value.quota == 2
        assert queue.depth() == 2  # rejected submit left no trace

    def test_quota_counts_per_tenant(self, tmp_path, clock):
        queue = JobQueue(tmp_path / "q", quota=1, clock=clock)
        queue.submit(rc_spec(params={"R1": 1.0e3}), tenant="a")
        queue.submit(rc_spec(params={"R1": 1.1e3}), tenant="b")  # other tenant ok
        with pytest.raises(QuotaExceeded):
            queue.submit(rc_spec(params={"R1": 1.2e3}), tenant="a")

    def test_subscribing_to_an_active_job_counts_against_quota(self, tmp_path, clock):
        queue = JobQueue(tmp_path / "q", quota=1, clock=clock)
        queue.submit(rc_spec(params={"R1": 1.0e3}), tenant="a")
        queue.submit(rc_spec(params={"R1": 1.1e3}), tenant="b")
        # b is at quota; joining a's (distinct) active job must be refused
        with pytest.raises(QuotaExceeded):
            queue.submit(rc_spec(params={"R1": 1.0e3}), tenant="b")

    def test_settled_jobs_free_quota(self, tmp_path, clock):
        queue = JobQueue(tmp_path / "q", quota=1, clock=clock)
        first = queue.submit(rc_spec(params={"R1": 1.0e3}))
        queue.claim("n1")
        queue.complete(first.spec_hash, "n1")
        queue.submit(rc_spec(params={"R1": 1.1e3}))  # no raise

    def test_campaign_quota_is_all_or_nothing(self, tmp_path, clock):
        queue = JobQueue(tmp_path / "q", quota=2, clock=clock)
        jobs = [rc_spec(params={"R1": 1e3 * (1 + i)}) for i in range(3)]
        with pytest.raises(QuotaExceeded):
            queue.submit_campaign("big", jobs)
        assert queue.depth() == 0  # nothing partially enqueued
        cid, receipts = queue.submit_campaign("ok", jobs[:2])
        assert len(receipts) == 2 and queue.depth() == 2


class TestClaimAndLease:
    def test_claim_order_priority_then_submission(self, queue):
        low = queue.submit(rc_spec(params={"R1": 1.0e3}), priority=0)
        high = queue.submit(rc_spec(params={"R1": 1.1e3}), priority=9)
        mid = queue.submit(rc_spec(params={"R1": 1.2e3}), priority=5)
        order = [job.spec_hash for job in queue.claim("n1", limit=3)]
        assert order == [high.spec_hash, mid.spec_hash, low.spec_hash]

    def test_claimed_spec_round_trips(self, queue):
        spec = rc_spec(label="keepme", tstop=5e-4)
        queue.submit(spec)
        [claimed] = queue.claim("n1")
        assert claimed.spec.content_hash() == spec.content_hash()
        assert claimed.spec.label == "keepme"
        assert claimed.attempts == 1

    def test_claimed_jobs_are_invisible_to_other_claimants(self, queue):
        queue.submit(rc_spec())
        assert queue.claim("n1")
        assert queue.claim("n2") == []

    def test_lease_expiry_returns_job_to_pending(self, queue, clock):
        receipt = queue.submit(rc_spec())
        queue.claim("n1", lease_seconds=30.0)
        clock.advance(31.0)
        [reclaimed] = queue.claim("n2", lease_seconds=30.0)
        assert reclaimed.spec_hash == receipt.spec_hash
        assert reclaimed.attempts == 2
        assert queue.status(receipt.spec_hash)["lease"]["node"] == "n2"

    def test_renew_extends_the_lease(self, queue, clock):
        receipt = queue.submit(rc_spec())
        queue.claim("n1", lease_seconds=30.0)
        clock.advance(25.0)
        assert queue.renew(receipt.spec_hash, "n1", lease_seconds=30.0)
        clock.advance(25.0)  # would have expired without the renewal
        assert queue.claim("n2") == []

    def test_renew_refused_after_losing_the_lease(self, queue, clock):
        receipt = queue.submit(rc_spec())
        queue.claim("n1", lease_seconds=30.0)
        clock.advance(31.0)
        queue.claim("n2")
        assert not queue.renew(receipt.spec_hash, "n1")

    def test_burned_attempts_fail_the_job(self, tmp_path, clock):
        queue = JobQueue(tmp_path / "q", max_attempts=2, clock=clock)
        receipt = queue.submit(rc_spec())
        for node in ("n1", "n2"):
            assert queue.claim(node, lease_seconds=10.0)
            clock.advance(11.0)
        assert queue.claim("n3") == []
        status = queue.status(receipt.spec_hash)
        assert status["status"] == "failed"
        assert "lease expired" in status["error"]

    def test_reap_expired_reports_touched_hashes(self, queue, clock):
        receipt = queue.submit(rc_spec())
        queue.claim("n1", lease_seconds=10.0)
        assert queue.reap_expired() == []
        clock.advance(11.0)
        assert queue.reap_expired() == [receipt.spec_hash]
        assert queue.status(receipt.spec_hash)["status"] == "pending"


class TestSettlement:
    def test_complete_is_idempotent(self, queue):
        receipt = queue.submit(rc_spec())
        queue.claim("n1")
        assert queue.complete(receipt.spec_hash, "n1")
        assert not queue.complete(receipt.spec_hash, "n2")  # duplicate
        assert queue.status(receipt.spec_hash)["status"] == "done"

    def test_late_completion_after_lost_lease_is_accepted(self, queue, clock):
        # n1's lease expires, n2 reclaims — then n1 finishes anyway.
        # Deterministic content-addressed results make that harmless.
        receipt = queue.submit(rc_spec())
        queue.claim("n1", lease_seconds=10.0)
        clock.advance(11.0)
        queue.claim("n2")
        assert queue.complete(receipt.spec_hash, "n1")
        assert not queue.complete(receipt.spec_hash, "n2")
        assert queue.status(receipt.spec_hash)["status"] == "done"

    def test_fail_requeues_while_attempts_remain(self, queue):
        receipt = queue.submit(rc_spec())
        queue.claim("n1")
        assert queue.fail(receipt.spec_hash, "n1", "sim blew up") == "pending"
        status = queue.status(receipt.spec_hash)
        assert status["error"] == "sim blew up"
        assert queue.claim("n2")  # claimable again

    def test_fail_after_completion_is_a_noop(self, queue):
        receipt = queue.submit(rc_spec())
        queue.claim("n1")
        queue.complete(receipt.spec_hash, "n1")
        assert queue.fail(receipt.spec_hash, "n2", "late error") == "done"

    def test_unknown_hash_rejected(self, queue):
        with pytest.raises(SimulationError, match="unknown job"):
            queue.complete("0" * 64, "n1")
        with pytest.raises(SimulationError, match="unknown job"):
            queue.fail("0" * 64, "n1", "x")


class TestCampaigns:
    def test_campaign_id_is_deterministic(self):
        a = campaign_id("mc", ["h1", "h2"])
        assert a == campaign_id("mc", ["h1", "h2"])
        assert a != campaign_id("mc", ["h2", "h1"])
        assert a != campaign_id("other", ["h1", "h2"])

    def test_campaign_rollup_tracks_member_statuses(self, queue):
        jobs = [rc_spec(params={"R1": 1e3 * (1 + i)}) for i in range(3)]
        cid, receipts = queue.submit_campaign("mc3", jobs, generator={"kind": "x"})
        rollup = queue.campaign_status(cid)
        assert rollup["jobs"] == 3 and not rollup["done"]
        assert rollup["counts"] == {"pending": 3}
        queue.claim("n1", limit=2)
        queue.complete(receipts[0].spec_hash, "n1")
        queue.fail(receipts[1].spec_hash, "n1", "err")
        rollup = queue.campaign_status(cid)
        assert rollup["counts"] == {"done": 1, "pending": 2}
        assert not rollup["done"]

    def test_campaign_resubmission_dedups_members(self, queue):
        jobs = [rc_spec(params={"R1": 1e3 * (1 + i)}) for i in range(2)]
        cid1, _ = queue.submit_campaign("mc", jobs, tenant="a")
        cid2, receipts = queue.submit_campaign("mc", jobs, tenant="b")
        assert cid1 == cid2
        assert all(r.deduped for r in receipts)
        assert queue.campaign_status(cid1)["tenants"] == ["a", "b"]
        assert queue.depth() == 2

    def test_unknown_campaign_is_none(self, queue):
        assert queue.campaign_status("feedbeef") is None


class TestInspection:
    def test_counts_and_depths(self, queue):
        a = queue.submit(rc_spec(params={"R1": 1.0e3}), tenant="a")
        queue.submit(rc_spec(params={"R1": 1.1e3}), tenant="b")
        queue.claim("n1", limit=1)
        queue.complete(a.spec_hash, "n1")
        assert queue.counts() == {"done": 1, "pending": 1}
        assert queue.depths_by_tenant() == {"b": 1}

    def test_job_hashes_in_submission_order(self, queue):
        first = queue.submit(rc_spec(params={"R1": 1.0e3}))
        second = queue.submit(rc_spec(params={"R1": 1.1e3}))
        assert queue.job_hashes() == [first.spec_hash, second.spec_hash]

    def test_validation(self, tmp_path):
        with pytest.raises(SimulationError):
            JobQueue(tmp_path, quota=0)
        with pytest.raises(SimulationError):
            JobQueue(tmp_path, max_attempts=0)
        queue = JobQueue(tmp_path / "q")
        with pytest.raises(SimulationError):
            queue.claim("n", limit=0)
        with pytest.raises(SimulationError):
            queue.claim("n", lease_seconds=0)
        with pytest.raises(SimulationError):
            queue.submit_campaign("empty", [])
