"""HTTP layer: endpoints, backpressure headers, streaming, exposition.

One module-scoped accept-only server (no worker nodes) covers the pure
request/response surface deterministically; the few cases that need real
results run a FarmNode step inline against the same queue directory.
"""

import http.client
import json

import pytest

from repro.instrument.recorder import Recorder
from repro.jobs.spec import CircuitRef, JobSpec
from repro.service.client import Backpressure, ServiceClient, ServiceError
from repro.service.node import FarmNode
from repro.service.server import ServiceServer, build_campaign, spec_from_payload

DECK = """rc lowpass
V1 in 0 SIN(0 1 1k)
R1 in out 1k
C1 out 0 1u
.tran 10u 1m
.end
"""


def rc_spec(label="rc", **kw) -> JobSpec:
    return JobSpec(circuit=CircuitRef(kind="netlist", netlist=DECK), label=label, **kw)


def variant(i: int) -> JobSpec:
    return rc_spec(label=f"v{i}", params={"R1": 1e3 * (1.0 + 0.01 * i)})


@pytest.fixture
def server(tmp_path):
    with ServiceServer(tmp_path / "q", recorder=Recorder(capture_events=False)) as srv:
        yield srv


@pytest.fixture
def client(server):
    return ServiceClient(server.url, tenant="testsuite")


class TestSubmitEndpoints:
    def test_submit_job_returns_202_with_hash_id(self, server, client):
        spec = variant(0)
        receipt = client.submit_job(spec)
        assert receipt["id"] == spec.content_hash()
        assert receipt["status"] == "pending"
        assert receipt["created"] and not receipt["deduped"]
        assert receipt["queue_depth"] == 1

    def test_duplicate_submit_dedups(self, server, client):
        client.submit_job(variant(0))
        receipt = client.submit_job(variant(0))
        assert receipt["deduped"] and not receipt["created"]
        assert receipt["queue_depth"] == 1

    def test_tenant_from_header_and_body(self, server, client):
        client.submit_job(variant(0))  # X-Tenant: testsuite
        conn = http.client.HTTPConnection(server.host, server.port, timeout=5)
        body = json.dumps({"spec": variant(1).to_dict(), "tenant": "bodytenant"})
        conn.request("POST", "/jobs", body=body,
                     headers={"Content-Type": "application/json"})
        assert conn.getresponse().status == 202
        conn.close()
        depths = server.queue.depths_by_tenant()
        assert depths == {"testsuite": 1, "bodytenant": 1}

    def test_registry_shorthand_spec(self, server, client):
        conn = http.client.HTTPConnection(server.host, server.port, timeout=5)
        conn.request("POST", "/jobs",
                     body=json.dumps({"spec": {"circuit": "rcladder20"}}),
                     headers={"Content-Type": "application/json"})
        response = conn.getresponse()
        payload = json.loads(response.read())
        conn.close()
        assert response.status == 202
        expected = JobSpec(circuit=CircuitRef(kind="registry", name="rcladder20"))
        assert payload["id"] == expected.content_hash()

    def test_malformed_spec_is_400(self, server, client):
        with pytest.raises(ServiceError) as err:
            client.submit_job({"circuit": {"kind": "registry"}})
        assert err.value.status == 400

    def test_bad_json_body_is_400(self, server):
        conn = http.client.HTTPConnection(server.host, server.port, timeout=5)
        conn.request("POST", "/jobs", body=b"not json{",
                     headers={"Content-Type": "application/json"})
        assert conn.getresponse().status == 400
        conn.close()

    def test_unknown_endpoint_is_404(self, server, client):
        with pytest.raises(ServiceError) as err:
            err_client = ServiceClient(server.url)
            err_client._request("POST", "/nope", {})
        assert err.value.status == 404

    def test_submit_campaign_generates_members(self, server, client):
        receipt = client.submit_campaign(
            rc_spec(), {"kind": "monte_carlo", "n": 3, "seed": 5}
        )
        assert len(receipt["jobs"]) == 3
        assert receipt["submitted"] == 3 and receipt["deduped"] == 0
        rollup = client.campaign(receipt["id"])
        assert rollup["counts"] == {"pending": 3}
        # same generator resubmitted: same campaign id, all dedup
        again = client.submit_campaign(
            rc_spec(), {"kind": "monte_carlo", "n": 3, "seed": 5}
        )
        assert again["id"] == receipt["id"]
        assert again["deduped"] == 3

    def test_unknown_generator_kind_is_400(self, server, client):
        with pytest.raises(ServiceError) as err:
            client.submit_campaign(rc_spec(), {"kind": "quantum"})
        assert err.value.status == 400


class TestBackpressure:
    def test_429_with_queue_depth_headers(self, tmp_path):
        with ServiceServer(tmp_path / "q", quota=2) as server:
            client = ServiceClient(server.url, tenant="small")
            client.submit_job(variant(0))
            client.submit_job(variant(1))
            with pytest.raises(Backpressure) as err:
                client.submit_job(variant(2))
            assert err.value.status == 429
            assert err.value.tenant_depth == 2
            assert err.value.queue_depth == 2
            assert err.value.retry_after > 0
            # rejection is metered globally and per tenant
            counters = server.recorder.snapshot()["counters"]
            assert counters["service.rejected.quota"] == 1
            assert counters["service.tenant.small.rejected"] == 1

    def test_campaign_quota_is_atomic_over_http(self, tmp_path):
        with ServiceServer(tmp_path / "q", quota=2) as server:
            client = ServiceClient(server.url, tenant="small")
            with pytest.raises(Backpressure):
                client.submit_campaign(
                    rc_spec(), {"kind": "monte_carlo", "n": 5, "seed": 1}
                )
            assert client.healthz()["queue"] == {}


class TestReadEndpoints:
    def test_status_and_result_lifecycle(self, server, client):
        receipt = client.submit_job(variant(0))
        # not ready yet: status readable, result is a 409
        assert client.job(receipt["id"])["status"] == "pending"
        with pytest.raises(ServiceError) as err:
            client.result(receipt["id"])
        assert err.value.status == 409
        assert err.value.payload["status"] == "pending"
        # run a farm node step against the same queue, then read back
        node = FarmNode(server.root)
        assert node.step() == 1
        status = client.job(receipt["id"])
        assert status["status"] == "done" and status["attempts"] == 1
        result = client.result(receipt["id"])
        assert result["spec_hash"] == receipt["id"]
        assert len(result["times"]) == len(result["signals"]["v(out)"])
        waveform = client.waveform(receipt["id"])
        assert waveform["id"] == receipt["id"]
        assert waveform["signals"]["v(out)"] == result["signals"]["v(out)"]

    def test_unknown_ids_are_404(self, server, client):
        for getter in (client.job, client.result, client.waveform):
            with pytest.raises(ServiceError) as err:
                getter("0" * 64)
            assert err.value.status == 404
        with pytest.raises(ServiceError) as err:
            client.campaign("feedbeef")
        assert err.value.status == 404

    def test_healthz_reports_actual_port_and_queue(self, server, client):
        health = client.healthz()
        assert health["status"] == "ok"
        assert health["port"] == server.port > 0
        assert health["queue"] == {}

    def test_stats_rolls_up_tenants(self, server, client):
        client.submit_job(variant(0))
        client.submit_job(variant(1), tenant="other")
        stats = client.stats()
        assert stats["depth"] == 2
        assert stats["depths_by_tenant"] == {"testsuite": 1, "other": 1}
        assert stats["tenants"]["testsuite"]["submitted"] == 1
        assert stats["tenants"]["other"]["submitted"] == 1

    def test_metrics_exposition_includes_queue_gauges(self, server, client):
        client.submit_job(variant(0))
        text = client.metrics_text()
        assert "repro_service_submitted_total 1" in text
        assert "repro_service_queue_depth 1" in text
        assert 'repro_service_queue_depth{tenant="testsuite"} 1' in text


class TestStreaming:
    def test_stream_follows_campaign_to_final_tick(self, tmp_path):
        # worker node inside the server so the campaign actually finishes
        with ServiceServer(tmp_path / "q", workers=1) as server:
            client = ServiceClient(server.url)
            receipt = client.submit_campaign(
                rc_spec(), {"kind": "monte_carlo", "n": 3, "seed": 2}
            )
            records = list(client.stream(receipt["id"], interval=0.05))
            assert records, "stream yielded nothing"
            last = records[-1]
            assert last["final"] is True
            assert last["record"] == "heartbeat"
            assert last["jobs"] == {
                "total": 3, "done": 3, "failed": 0, "cached": 0,
            }
            assert last["campaign"]["done"] is True
            assert last["campaign"]["counts"] == {"done": 3}
            # monotone sequence numbers, one final record only
            assert [r["seq"] for r in records] == list(range(len(records)))
            assert sum(r["final"] for r in records) == 1

    def test_stream_of_unknown_campaign_is_404(self, server, client):
        with pytest.raises(ServiceError) as err:
            list(client.stream("feedbeef"))
        assert err.value.status == 404


class TestPayloadHelpers:
    def test_spec_from_payload_rejects_non_objects(self):
        with pytest.raises(Exception, match="JSON object"):
            spec_from_payload([1, 2])

    def test_build_campaign_kinds(self):
        base = rc_spec()
        mc = build_campaign(base, {"kind": "monte_carlo", "n": 2, "seed": 1})
        assert len(mc.jobs) == 2
        ens = build_campaign(base, {"kind": "ensemble", "n": 2, "seed": 1})
        assert ens.generator["kind"] == "ensemble"
        # ensemble is monte carlo content-wise: same specs, same hashes
        assert [j.content_hash() for j in ens.jobs] == [
            j.content_hash() for j in mc.jobs
        ]
        sweep = build_campaign(
            base, {"kind": "param_sweep", "component": "R1", "values": [1e3, 2e3]}
        )
        assert len(sweep.jobs) == 2
        corners = build_campaign(base, {"kind": "pvt_corners", "corners": ["tt", "ss"]})
        assert len(corners.jobs) == 2
        one = build_campaign(base, {"kind": "single"})
        assert len(one.jobs) == 1
