"""Ensemble scheduler backend: grouping, cost apportionment, resume.

The backend batches same-topology transient jobs into lockstep solves
while keeping the campaign contract intact: per-job content-hash cache
addressing, exact integer cost accounting (apportioned counters sum back
to the batched solve's totals), per-job failure isolation through the
scalar fallback, and — the headline — killed-and-resumed ensemble
campaigns still converge on a manifest byte-identical to an
uninterrupted run's (and to a serial backend's, since manifests record
nothing backend-dependent).
"""

import json

import pytest

from repro.jobs import (
    CampaignStore,
    CircuitRef,
    JobSpec,
    monte_carlo,
    run_campaign,
)
from repro.jobs.ensemble import EnsembleBackend, _apportion, group_key

DECK = """rc lowpass
V1 in 0 SIN(0 1 1k)
R1 in out 1k
C1 out 0 1u
.tran 10u 1m
.end
"""


def rc_spec(**kw) -> JobSpec:
    return JobSpec(circuit=CircuitRef(kind="netlist", netlist=DECK), **kw)


class TestGroupKey:
    def test_params_do_not_split_groups(self):
        a = rc_spec(params={"R1": 900.0})
        b = rc_spec(params={"R1": 1100.0, "C1": 1.1e-6})
        assert group_key(a) == group_key(b)

    def test_everything_else_does(self):
        base = rc_spec()
        assert group_key(rc_spec(tstop=1e-3)) != group_key(base)
        assert group_key(rc_spec(options={"reltol": 1e-5})) != group_key(base)
        assert group_key(rc_spec(signals=["vout"])) != group_key(base)

    def test_key_is_canonical_json(self):
        key = group_key(rc_spec())
        decoded = json.loads(key)
        assert "params" not in decoded


class TestApportion:
    @pytest.mark.parametrize("total", [0, 1, 7, 100, 12345])
    @pytest.mark.parametrize("sims", [1, 2, 3, 16])
    def test_shares_sum_exactly(self, total, sims):
        shares = [_apportion(total, sims, k) for k in range(sims)]
        assert sum(shares) == total
        assert max(shares) - min(shares) <= 1

    def test_remainder_goes_to_leading_members(self):
        assert [_apportion(7, 3, k) for k in range(3)] == [3, 2, 2]


class TestEnsembleBackendCampaign:
    def test_batched_campaign_passes_and_sums_costs(self, tmp_path):
        campaign = monte_carlo(rc_spec(), n=5, seed=7)
        result = run_campaign(
            campaign, store=tmp_path, backend=EnsembleBackend(max_group=64)
        )
        assert result.passed and result.counts == {"done": 5}
        # one shared grid: every member reports identical accepted points
        accepted = {o.result.stats["accepted_points"] for o in result.outcomes}
        assert len(accepted) == 1
        # apportioned integer counters sum back to the batched totals
        lu_solves = [o.result.stats["lu_solves"] for o in result.outcomes]
        assert max(lu_solves) - min(lu_solves) <= 1

    def test_max_group_chunks_and_still_passes(self, tmp_path):
        campaign = monte_carlo(rc_spec(), n=5, seed=7)
        result = run_campaign(
            campaign, store=tmp_path, backend=EnsembleBackend(max_group=2)
        )
        assert result.passed and result.counts == {"done": 5}

    def test_invalid_max_group_rejected(self):
        with pytest.raises(ValueError, match="max_group"):
            EnsembleBackend(max_group=0)

    def test_singleton_group_matches_serial_backend(self, tmp_path):
        campaign = monte_carlo(rc_spec(), n=1, seed=3)
        serial = run_campaign(campaign, store=tmp_path / "serial")
        batched = run_campaign(
            campaign, store=tmp_path / "ens", backend=EnsembleBackend()
        )
        assert serial.passed and batched.passed
        s, e = serial.outcomes[0].result, batched.outcomes[0].result
        assert s.spec_hash == e.spec_hash
        assert s.times == e.times
        assert s.signals == e.signals
        assert s.stats == e.stats

    def test_failed_group_falls_back_per_job(self, tmp_path, monkeypatch):
        import repro.jobs.workers as workers_module

        def hook(spec):
            if spec.label.endswith("mc001"):
                raise RuntimeError("injected")

        monkeypatch.setattr(workers_module, "FAULT_HOOK", hook)
        campaign = monte_carlo(rc_spec(), n=3, seed=2)
        result = run_campaign(
            campaign,
            store=tmp_path,
            backend=EnsembleBackend(),
            retries=0,
        )
        # the poisoned member fails alone; its groupmates survive via
        # the scalar fallback
        assert not result.passed
        assert result.counts == {"done": 2, "failed": 1}
        assert "injected" in result.failures[0].error
        manifest = CampaignStore(tmp_path).load_manifest()
        assert sorted(row["status"] for row in manifest["jobs"]) == [
            "done",
            "done",
            "failed",
        ]

    def test_cached_rerun_hits_per_variant(self, tmp_path):
        campaign = monte_carlo(rc_spec(), n=4, seed=11)
        first = run_campaign(
            campaign, store=tmp_path, backend=EnsembleBackend()
        )
        assert first.counts == {"done": 4}
        rerun = run_campaign(
            campaign, store=tmp_path, backend=EnsembleBackend()
        )
        assert rerun.counts == {"cached": 4}
        assert rerun.cache_hits == 4


class TestKillResume:
    def test_interrupted_ensemble_campaign_resumes_byte_identically(
        self, tmp_path
    ):
        campaign = monte_carlo(rc_spec(), n=4, seed=9)

        # References: an uninterrupted ensemble run and a serial run —
        # manifests record nothing backend-dependent, so all three must
        # converge on identical bytes.
        clean = tmp_path / "clean"
        run_campaign(campaign, store=clean, backend=EnsembleBackend())
        serial = tmp_path / "serial"
        run_campaign(campaign, store=serial)

        # Victim: killed after the second member of the batch checkpoints.
        broken = tmp_path / "broken"
        seen = []

        def killer(outcome):
            seen.append(outcome)
            if len(seen) == 2:
                raise KeyboardInterrupt("simulated kill")

        with pytest.raises(KeyboardInterrupt):
            run_campaign(
                campaign,
                store=broken,
                backend=EnsembleBackend(),
                on_outcome=killer,
            )

        partial = json.loads((broken / "manifest.json").read_text())
        statuses = [row["status"] for row in partial["jobs"]]
        assert statuses.count("done") == 2 and statuses.count("pending") == 2

        # Resume: the two checkpointed members come back as cache hits,
        # the survivors re-batch as a smaller ensemble.
        resumed = run_campaign(
            campaign, store=broken, backend=EnsembleBackend()
        )
        assert resumed.passed
        assert resumed.cache_hits == 2

        clean_bytes = (clean / "manifest.json").read_bytes()
        assert (broken / "manifest.json").read_bytes() == clean_bytes
        assert (serial / "manifest.json").read_bytes() == clean_bytes
