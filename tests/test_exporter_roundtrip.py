"""Property test: the JSONL trace log is a lossless recorder serialization.

``write_jsonl -> recorder_from_jsonl`` must preserve events (order,
lanes, durations, attrs), counters, and histogram summaries including
the log2 buckets — so the rebuilt recorder renders the *same* Chrome
trace as the original. Runs derandomized (seeded) so CI is stable.
"""

import io

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.instrument import (
    Recorder,
    chrome_trace_dict,
    read_jsonl,
    recorder_from_jsonl,
    write_jsonl,
)

finite = st.floats(min_value=0.0, max_value=1e3, allow_nan=False, allow_infinity=False)
positive = st.floats(
    min_value=1e-9, max_value=1e6, allow_nan=False, allow_infinity=False
)

event_dicts = st.fixed_dictionaries(
    {
        "name": st.sampled_from(
            ["newton_solve", "step_accept", "lte_reject", "stage_run", "job_run"]
        ),
        "ts": finite,
        "dur": st.one_of(st.none(), finite),
        "lane": st.integers(min_value=0, max_value=3),
        "t_sim": st.one_of(st.none(), finite),
        "attrs": st.dictionaries(
            st.sampled_from(["iters", "h", "label"]),
            st.one_of(st.integers(-100, 100), finite),
            max_size=2,
        ),
    }
)

counter_dicts = st.dictionaries(
    st.sampled_from(["newton.iterations", "lu.solve", "points.accepted", "odd name!"]),
    st.integers(min_value=0, max_value=10_000),
    max_size=4,
)

sample_lists = st.dictionaries(
    st.sampled_from(["newton.iterations_per_solve", "controller.h_taken"]),
    st.lists(positive, min_size=1, max_size=20),
    max_size=2,
)


def build_recorder(events, counters, samples) -> Recorder:
    rec = Recorder()
    for ev in events:
        rec.event(
            ev["name"],
            ts=ev["ts"],
            dur=ev["dur"],
            lane=ev["lane"],
            t_sim=ev["t_sim"],
            **ev["attrs"],
        )
    for name, value in counters.items():
        rec.count(name, value)
    for name, values in samples.items():
        for value in values:
            rec.observe(name, value)
    return rec


@given(
    events=st.lists(event_dicts, max_size=25),
    counters=counter_dicts,
    samples=sample_lists,
)
@settings(max_examples=40, derandomize=True, deadline=None)
def test_jsonl_roundtrip_is_lossless(events, counters, samples):
    rec = build_recorder(events, counters, samples)

    buffer = io.StringIO()
    write_jsonl(rec, buffer)
    buffer.seek(0)
    rebuilt = recorder_from_jsonl(buffer)

    assert list(rebuilt.events) == list(rec.events)
    assert rebuilt.lanes == rec.lanes
    assert rebuilt.counters == rec.counters
    assert set(rebuilt.histograms) == set(rec.histograms)
    for name, hist in rec.histograms.items():
        other = rebuilt.histograms[name]
        assert other.count == hist.count
        assert other.total == hist.total
        assert other.minimum == hist.minimum
        assert other.maximum == hist.maximum
        assert other.buckets == hist.buckets
    assert rebuilt.dropped_events == rec.dropped_events

    assert chrome_trace_dict(rebuilt) == chrome_trace_dict(rec)


@given(events=st.lists(event_dicts, max_size=10), counters=counter_dicts)
@settings(max_examples=20, derandomize=True, deadline=None)
def test_read_jsonl_summary_matches_snapshot(events, counters):
    rec = build_recorder(events, counters, {})
    buffer = io.StringIO()
    write_jsonl(rec, buffer)
    buffer.seek(0)
    parsed_events, summary = read_jsonl(buffer)
    assert len(parsed_events) == len(rec.events)
    assert summary["counters"] == rec.counters
    assert summary["events"] == len(rec.events)
