"""Live telemetry: wall-clock heartbeats for long-running work.

A :class:`Heartbeat` watches a :class:`~repro.instrument.recorder.Recorder`
from a background thread and, on a fixed wall-clock interval, emits one
*heartbeat* per tick: the current counter snapshot, the per-interval
deltas, derived progress (jobs done/failed/cached, accepted points per
second, an ETA when the total job count is known). Heartbeats go to a
JSONL sink, an optional TTY status line, or both — so a multi-hour
Monte-Carlo campaign or wavepipe run is observable *while it runs*
instead of only after it finishes.

Heartbeat JSONL schema (one object per line)::

    {"record": "heartbeat", "seq": 3, "elapsed": 6.0, "final": false,
     "counters": {...},            # cumulative counter snapshot
     "deltas": {...},              # counter movement since the last tick
     "jobs": {"total": 16, "done": 5, "failed": 1, "cached": 2},
     "points_per_second": 1234.5,  # accepted points over the interval
     "eta_seconds": 12.8}          # null when total is unknown / no rate

The reporter only ever *reads* the recorder (``snapshot()`` is
thread-safe), so it composes with any producer: the in-process engine,
the batch scheduler merging worker snapshots, or both at once.
"""

from __future__ import annotations

import json
import re
import sys
import threading
import time

#: Counters summed into the "failed" heartbeat bucket.
_FAILURE_COUNTERS = ("jobs.failed", "jobs.timeouts", "jobs.crashes")


class Heartbeat:
    """Periodic snapshot-delta reporter over one recorder.

    Args:
        recorder: the recorder to sample (its ``snapshot()`` is the only
            method used, so any recorder type works).
        interval: wall-clock seconds between samples.
        total_jobs: expected job count, for progress/ETA lines; None
            leaves the ETA null.
        jsonl: path of the JSONL heartbeat log, or None to skip it.
        stream: text stream for the live status line, or None for no
            status line. The line is carriage-return rewritten on TTYs
            and printed whole otherwise.

    Use as a context manager (``with Heartbeat(...)``) or via
    ``start()``/``stop()``. ``stop()`` always emits one final sample so
    short runs still produce at least one heartbeat.
    """

    def __init__(
        self,
        recorder,
        interval: float = 5.0,
        total_jobs: int | None = None,
        jsonl: str | None = None,
        stream=None,
    ):
        if interval <= 0:
            raise ValueError(f"heartbeat interval must be positive, got {interval}")
        self.recorder = recorder
        self.interval = interval
        self.total_jobs = total_jobs
        self.jsonl_path = jsonl
        self.stream = stream
        self.records: list[dict] = []
        self._handle = None
        self._thread: threading.Thread | None = None
        self._stop = threading.Event()
        self._seq = 0
        self._started_at: float | None = None
        self._last_counters: dict[str, float] = {}
        self._last_time: float | None = None
        self._status_live = False

    # -- lifecycle --------------------------------------------------------------

    def start(self) -> "Heartbeat":
        if self._thread is not None:
            return self
        self._started_at = time.monotonic()
        self._last_time = self._started_at
        self._last_counters = dict(self.recorder.snapshot()["counters"])
        if self.jsonl_path is not None:
            self._handle = open(self.jsonl_path, "w", encoding="utf-8")
        self._stop.clear()
        self._thread = threading.Thread(
            target=self._run, name="repro-heartbeat", daemon=True
        )
        self._thread.start()
        return self

    def stop(self) -> None:
        thread, self._thread = self._thread, None
        if thread is None:
            return
        self._stop.set()
        thread.join()
        self.sample(final=True)
        if self._status_live and self.stream is not None:
            self.stream.write("\n")
            self.stream.flush()
            self._status_live = False
        if self._handle is not None:
            self._handle.close()
            self._handle = None

    def __enter__(self) -> "Heartbeat":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()

    def _run(self) -> None:
        while not self._stop.wait(self.interval):
            self.sample()

    def prime(self) -> "Heartbeat":
        """Initialise sampling baselines without starting the thread.

        For callers that drive :meth:`sample` manually on their own
        cadence (the service's chunked campaign streams): after
        ``prime()`` the first sample reports deltas against *now* rather
        than against an all-zero ancient past, and ``elapsed`` counts
        from the prime instant.
        """
        if self._started_at is None:
            self._started_at = self._last_time = time.monotonic()
            self._last_counters = dict(self.recorder.snapshot()["counters"])
        return self

    # -- sampling ---------------------------------------------------------------

    def sample(self, final: bool = False) -> dict:
        """Take one sample now; returns (and records) the heartbeat dict."""
        now = time.monotonic()
        counters = dict(self.recorder.snapshot()["counters"])
        dt = max(now - (self._last_time or now), 1e-9)
        deltas = {
            name: value - self._last_counters.get(name, 0)
            for name, value in counters.items()
            if value != self._last_counters.get(name, 0)
        }
        record = {
            "record": "heartbeat",
            "seq": self._seq,
            "elapsed": now - (self._started_at or now),
            "final": final,
            "counters": counters,
            "deltas": deltas,
            "jobs": self._job_progress(counters),
            "points_per_second": deltas.get("points.accepted", 0) / dt,
            "eta_seconds": None,
        }
        record["eta_seconds"] = self._eta(record)
        self._seq += 1
        self._last_counters = counters
        self._last_time = now
        self.records.append(record)
        if self._handle is not None:
            self._handle.write(json.dumps(record, sort_keys=True) + "\n")
            self._handle.flush()
        if self.stream is not None:
            self._emit_status(record)
        return record

    def _job_progress(self, counters: dict) -> dict:
        # jobs.failed / jobs.timeouts / jobs.crashes count *attempts*,
        # and jobs.retries counts one per job re-entering a retry round —
        # so the difference is the jobs whose latest attempt failed.
        # Counting raw attempts would let done + cached + failed exceed
        # total_jobs mid-run (a retried-then-successful job lands in both
        # buckets), clamping the ETA to 0 while work is still running.
        failures = sum(counters.get(name, 0) for name in _FAILURE_COUNTERS)
        return {
            "total": self.total_jobs,
            "done": counters.get("jobs.completed", 0),
            "cached": counters.get("jobs.cache_hits", 0),
            "failed": max(failures - counters.get("jobs.retries", 0), 0),
        }

    def _eta(self, record: dict) -> float | None:
        """Remaining seconds from the cumulative completion rate."""
        jobs = record["jobs"]
        if self.total_jobs is None:
            return None
        settled = jobs["done"] + jobs["cached"] + jobs["failed"]
        remaining = max(self.total_jobs - settled, 0)
        if remaining == 0:
            return 0.0
        elapsed = record["elapsed"]
        if settled <= 0 or elapsed <= 0:
            return None
        return remaining * elapsed / settled

    def _emit_status(self, record: dict) -> None:
        jobs = record["jobs"]
        total = f"/{self.total_jobs}" if self.total_jobs is not None else ""
        eta = record["eta_seconds"]
        line = (
            f"[heartbeat {record['elapsed']:7.1f}s] "
            f"jobs {jobs['done']:g} done{total}, {jobs['failed']:g} failed, "
            f"{jobs['cached']:g} cached | "
            f"{record['points_per_second']:.0f} pts/s | "
            f"ETA {'--' if eta is None else f'{eta:.0f}s'}"
        )
        if getattr(self.stream, "isatty", lambda: False)():
            self.stream.write("\r\x1b[2K" + line)
            self._status_live = True
        else:
            self.stream.write(line + "\n")
        self.stream.flush()


#: Counter prefix the service layer uses for per-tenant accounting.
TENANT_PREFIX = "service.tenant."

#: Characters allowed verbatim in a tenant's counter-name segment; the
#: rest fold to "_" so tenant names can never smuggle a "." separator
#: (which is what keeps :func:`tenant_rollups` parseable).
_TENANT_SAFE = re.compile(r"[^A-Za-z0-9_-]")


def tenant_counter(tenant: str, metric: str) -> str:
    """Channel name for *metric* attributed to *tenant*.

    Lives here (not in the server) because every farm component — the
    HTTP front end, the farm-node claim loop, future batch reporters —
    records per-tenant channels, and the instrument layer must not
    depend on ``repro.service``.
    """
    safe = _TENANT_SAFE.sub("_", tenant) or "default"
    return f"{TENANT_PREFIX}{safe}.{metric}"


def tenant_rollups(counters: dict) -> dict[str, dict[str, float]]:
    """Group ``service.tenant.<tenant>.<metric>`` counters by tenant.

    The service records every tenant-attributed event twice: once on the
    global channel (``service.submitted``) and once under the tenant's
    own prefix. This helper inverts the flat counter namespace back into
    ``{tenant: {metric: value}}`` for quota dashboards and the farm
    reconciliation tests. Tenant names are sanitised at record time
    (non-alphanumerics fold to ``_``), so the first dot after the prefix
    is always the tenant/metric boundary.
    """
    out: dict[str, dict[str, float]] = {}
    for name, value in counters.items():
        if not name.startswith(TENANT_PREFIX):
            continue
        tenant, _, metric = name[len(TENANT_PREFIX):].partition(".")
        if not tenant or not metric:
            continue
        out.setdefault(tenant, {})[metric] = value
    return out


def heartbeat_for(
    recorder,
    interval: float = 5.0,
    total_jobs: int | None = None,
    jsonl: str | None = None,
    progress: bool = False,
):
    """CLI helper: a started-on-entry Heartbeat, or a no-op context.

    Returns a context manager either way, so call sites can write
    ``with heartbeat_for(rec, ...):`` without branching on whether any
    telemetry sink was requested.
    """
    import contextlib

    if jsonl is None and not progress:
        return contextlib.nullcontext()
    return Heartbeat(
        recorder,
        interval=interval,
        total_jobs=total_jobs,
        jsonl=jsonl,
        stream=sys.stderr if progress else None,
    )
