"""Per-run metrics: the numbers that explain *why* a run was fast or slow.

:class:`RunMetrics` condenses a run's :class:`TransientStats` (and, for
pipelined runs, the virtual clock) into the quantities the paper's
evaluation hinges on — Newton iterations per accepted point, LTE reject
rate, pipeline stage utilization, speculation hit rate — plus the raw
counts they derive from, so the summary always reconciles with the
underlying stats. Built via :meth:`RunMetrics.from_stats`, which uses
duck typing on the stats object to avoid importing the engine (the
engine imports this package, not the other way around).
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class RunMetrics:
    """Derived diagnostics of one transient run (sequential or pipelined)."""

    scheme: str = "sequential"
    threads: int = 1

    accepted_points: int = 0
    rejected_points: int = 0
    newton_failures: int = 0
    newton_iterations: int = 0
    work_units: float = 0.0
    dc_work_units: float = 0.0

    dcop_seconds: float = 0.0
    tran_seconds: float = 0.0

    # Linear-solver cost breakdown (factorisation-reuse fast path).
    lu_factors: int = 0
    lu_refactors: int = 0
    lu_solves: int = 0
    lu_reuse_hits: int = 0
    bypass_fallbacks: int = 0

    # Pipeline-only (zero / defaults on sequential runs).
    stages: int = 0
    mean_stage_width: float = 1.0
    peak_stage_width: int = 1
    virtual_work: float = 0.0
    serial_work: float = 0.0
    speculative_solves: int = 0
    speculative_hits: int = 0
    wasted_solves: int = 0
    wasted_work: float = 0.0
    speculative_work: float = 0.0
    speculative_wasted_work: float = 0.0
    guard_salvages: int = 0

    #: Counter snapshot from the attached recorder, when one was enabled.
    counters: dict = field(default_factory=dict)

    #: Trace events the recorder could not retain (capacity overflow);
    #: nonzero means the exported trace is incomplete.
    events_dropped: int = 0

    # -- derived ratios ---------------------------------------------------------

    @property
    def wall_seconds(self) -> float:
        return self.dcop_seconds + self.tran_seconds

    @property
    def attempted_points(self) -> int:
        """Every candidate that reached the LTE test or failed Newton."""
        return self.accepted_points + self.rejected_points + self.newton_failures

    @property
    def iterations_per_point(self) -> float:
        """Newton iterations per *accepted* point (includes rejected work)."""
        if self.accepted_points <= 0:
            return 0.0
        return self.newton_iterations / self.accepted_points

    @property
    def reject_rate(self) -> float:
        """LTE rejections as a fraction of LTE-tested candidates."""
        tested = self.accepted_points + self.rejected_points
        return self.rejected_points / tested if tested else 0.0

    @property
    def stage_utilization(self) -> float:
        """Fraction of the thread-pool's pipelined capacity doing work.

        ``serial_work / (virtual_work * threads)``: 1.0 means every lane
        was busy for the whole virtual schedule, lower values expose
        bubbles (idle lanes while the stage's critical task finishes).
        Sequential runs report 1.0 by construction.
        """
        if self.virtual_work <= 0 or self.threads <= 1:
            return 1.0
        return min(1.0, self.serial_work / (self.virtual_work * self.threads))

    @property
    def speculation_hit_rate(self) -> float:
        if self.speculative_solves <= 0:
            return 0.0
        return self.speculative_hits / self.speculative_solves

    @property
    def speculation_efficiency(self) -> float:
        """Fraction of speculative work units that ended up useful.

        1.0 when the scheme never speculated (nothing was risked), down
        to 0.0 when every speculative solve was discarded — the economics
        number the depth throttle is trying to maximise.
        """
        if self.speculative_work <= 0:
            return 1.0
        return max(0.0, 1.0 - self.speculative_wasted_work / self.speculative_work)

    @property
    def reuse_hit_rate(self) -> float:
        """Back-solves served by reused factors, as a fraction of all
        back-solves (0.0 with jacobian_reuse off)."""
        if self.lu_solves <= 0:
            return 0.0
        return self.lu_reuse_hits / self.lu_solves

    @property
    def is_pipelined(self) -> bool:
        return self.stages > 0

    # -- construction -----------------------------------------------------------

    @classmethod
    def from_stats(
        cls,
        stats,
        scheme: str = "sequential",
        threads: int = 1,
        recorder=None,
    ) -> "RunMetrics":
        """Build metrics from a TransientStats/PipelineStats object."""
        metrics = cls(
            scheme=scheme,
            threads=threads,
            accepted_points=stats.accepted_points,
            rejected_points=stats.rejected_points,
            newton_failures=stats.newton_failures,
            newton_iterations=stats.newton_iterations,
            work_units=stats.work_units,
            dc_work_units=stats.dc_work_units,
            dcop_seconds=stats.dcop_seconds,
            tran_seconds=stats.tran_seconds,
            lu_factors=getattr(stats, "lu_factors", 0),
            lu_refactors=getattr(stats, "lu_refactors", 0),
            lu_solves=getattr(stats, "lu_solves", 0),
            lu_reuse_hits=getattr(stats, "lu_reuse_hits", 0),
            bypass_fallbacks=getattr(stats, "bypass_fallbacks", 0),
        )
        clock = getattr(stats, "clock", None)
        if clock is not None and clock.stages > 0:
            metrics.stages = clock.stages
            metrics.mean_stage_width = clock.mean_width
            metrics.peak_stage_width = clock.peak_width
            metrics.virtual_work = clock.virtual_work
            metrics.serial_work = clock.serial_work
        metrics.speculative_solves = getattr(stats, "speculative_solves", 0)
        metrics.speculative_hits = getattr(stats, "speculative_hits", 0)
        metrics.wasted_solves = getattr(stats, "wasted_solves", 0)
        metrics.wasted_work = getattr(stats, "wasted_work", 0.0)
        metrics.speculative_work = getattr(stats, "speculative_work", 0.0)
        metrics.speculative_wasted_work = getattr(
            stats, "speculative_wasted_work", 0.0
        )
        extra = getattr(stats, "extra", None) or {}
        metrics.guard_salvages = extra.get("guard_salvages", 0)
        if recorder is not None and recorder.enabled:
            metrics.counters = dict(recorder.counters)
            metrics.events_dropped = int(getattr(recorder, "dropped_events", 0))
        return metrics

    # -- presentation -----------------------------------------------------------

    def to_dict(self) -> dict:
        """JSON-safe dump: raw fields plus the derived ratios."""
        out = {
            "scheme": self.scheme,
            "threads": self.threads,
            "accepted_points": self.accepted_points,
            "rejected_points": self.rejected_points,
            "newton_failures": self.newton_failures,
            "newton_iterations": self.newton_iterations,
            "iterations_per_point": self.iterations_per_point,
            "reject_rate": self.reject_rate,
            "work_units": self.work_units,
            "dc_work_units": self.dc_work_units,
            "dcop_seconds": self.dcop_seconds,
            "tran_seconds": self.tran_seconds,
            "wall_seconds": self.wall_seconds,
            "lu_factors": self.lu_factors,
            "lu_refactors": self.lu_refactors,
            "lu_solves": self.lu_solves,
            "lu_reuse_hits": self.lu_reuse_hits,
            "reuse_hit_rate": self.reuse_hit_rate,
            "bypass_fallbacks": self.bypass_fallbacks,
        }
        if self.is_pipelined:
            out.update(
                {
                    "stages": self.stages,
                    "mean_stage_width": self.mean_stage_width,
                    "peak_stage_width": self.peak_stage_width,
                    "stage_utilization": self.stage_utilization,
                    "virtual_work": self.virtual_work,
                    "serial_work": self.serial_work,
                    "speculative_solves": self.speculative_solves,
                    "speculative_hits": self.speculative_hits,
                    "speculation_hit_rate": self.speculation_hit_rate,
                    "wasted_solves": self.wasted_solves,
                    "wasted_work": self.wasted_work,
                    "speculative_work": self.speculative_work,
                    "speculative_wasted_work": self.speculative_wasted_work,
                    "speculation_efficiency": self.speculation_efficiency,
                    "guard_salvages": self.guard_salvages,
                }
            )
        if self.events_dropped:
            out["events_dropped"] = self.events_dropped
        if self.counters:
            out["counters"] = dict(self.counters)
        return out

    def summary(self) -> str:
        """Human-readable end-of-run report."""
        label = self.scheme if self.threads <= 1 else f"{self.scheme} x{self.threads}"
        lines = [f"run metrics ({label})"]
        lines.append(
            f"  points: {self.accepted_points} accepted, "
            f"{self.rejected_points} rejected ({self.reject_rate:.1%} reject rate), "
            f"{self.newton_failures} Newton failures"
        )
        lines.append(
            f"  newton: {self.newton_iterations} iterations, "
            f"{self.iterations_per_point:.2f} per accepted point"
        )
        lines.append(
            f"  wall: dcop {self.dcop_seconds:.4f}s + transient "
            f"{self.tran_seconds:.4f}s = {self.wall_seconds:.4f}s"
        )
        if self.events_dropped:
            lines.append(
                f"  trace: {self.events_dropped} events dropped "
                f"(raise Recorder max_events for a complete trace)"
            )
        if self.lu_solves:
            lines.append(
                f"  lu: {self.lu_factors} factor + {self.lu_refactors} refactor, "
                f"{self.lu_solves} back-solves "
                f"({self.reuse_hit_rate:.1%} on reused factors, "
                f"{self.bypass_fallbacks} bypass fallbacks)"
            )
        if self.is_pipelined:
            lines.append(
                f"  pipeline: {self.stages} stages, mean width "
                f"{self.mean_stage_width:.2f} (peak {self.peak_stage_width}), "
                f"stage utilization {self.stage_utilization:.1%}"
            )
            lines.append(
                f"  work: virtual {self.virtual_work:.1f} wu vs serial-equivalent "
                f"{self.serial_work:.1f} wu (+ dcop {self.dc_work_units:.1f} wu)"
            )
            lines.append(
                f"  speculation: {self.speculative_solves} solves, "
                f"{self.speculative_hits} hits "
                f"({self.speculation_hit_rate:.1%} hit rate); "
                f"wasted {self.wasted_solves} solves "
                f"({self.wasted_work:.1f} wu); "
                f"{self.guard_salvages} guard salvages"
            )
            if self.speculative_work > 0:
                lines.append(
                    f"  speculation economics: {self.speculative_work:.1f} wu "
                    f"risked, {self.speculative_wasted_work:.1f} wu wasted "
                    f"({self.speculation_efficiency:.1%} efficient)"
                )
        return "\n".join(lines)


def metrics_delta(reference: RunMetrics, candidate: RunMetrics) -> dict:
    """Side-by-side (reference, candidate) pairs of the headline metrics.

    Used by ``compare_with_sequential`` to report *why* a pipelined run's
    speedup is what it is — extra iterations, extra rejects, wasted work —
    alongside the speedup number itself.
    """
    return {
        "accepted_points": (reference.accepted_points, candidate.accepted_points),
        "iterations_per_point": (
            reference.iterations_per_point,
            candidate.iterations_per_point,
        ),
        "reject_rate": (reference.reject_rate, candidate.reject_rate),
        "newton_failures": (reference.newton_failures, candidate.newton_failures),
        "work_units": (reference.work_units, candidate.work_units),
        "wall_seconds": (reference.wall_seconds, candidate.wall_seconds),
        "lu_factors": (reference.lu_factors, candidate.lu_factors),
        "reuse_hit_rate": (reference.reuse_hit_rate, candidate.reuse_hit_rate),
    }
