"""Trace exporters: JSONL event logs and Chrome ``trace_event`` files.

Two serialisations of one :class:`~repro.instrument.recorder.Recorder`:

* :func:`write_jsonl` — one JSON object per line, first a header record
  (``{"record": "header", ...}``), then every event in emission order,
  finally a footer with the counter/histogram snapshot. Greppable,
  streamable, diff-able.
* :func:`write_chrome_trace` — the Chrome ``trace_event`` JSON object
  format (loadable in ``chrome://tracing`` and Perfetto). Each logical
  pipeline lane becomes one named thread row: lane 0 is the scheduler
  (``stage_run``, ``step_accept``...), lane *k* the k-th task slot of a
  stage — so stage occupancy and pipeline bubbles are directly visible
  as gaps in the worker rows.
"""

from __future__ import annotations

import json

from repro.instrument.events import TraceEvent

#: Fixed pid used in Chrome traces (single-process engine).
_PID = 1


def _open_target(target, mode="w"):
    if hasattr(target, "write"):
        return target, False
    return open(target, mode, encoding="utf-8"), True


def write_jsonl(recorder, target) -> None:
    """Write the recorder's events as JSON Lines to *target* (path or file)."""
    handle, owned = _open_target(target)
    try:
        header = {"record": "header", "format": "repro-trace-v1"}
        handle.write(json.dumps(header) + "\n")
        for ev in recorder.events:
            row = ev.to_dict()
            row["record"] = "event"
            handle.write(json.dumps(row) + "\n")
        footer = {"record": "summary", **recorder.snapshot()}
        handle.write(json.dumps(footer) + "\n")
    finally:
        if owned:
            handle.close()


def read_jsonl(source) -> tuple[list[TraceEvent], dict]:
    """Read a :func:`write_jsonl` file back into (events, summary)."""
    handle, owned = _open_target(source, "r")
    try:
        events: list[TraceEvent] = []
        summary: dict = {}
        for line in handle:
            line = line.strip()
            if not line:
                continue
            row = json.loads(line)
            kind = row.pop("record", "event")
            if kind == "event":
                events.append(
                    TraceEvent(
                        name=row["name"],
                        ts=row["ts"],
                        dur=row.get("dur"),
                        lane=row.get("lane", 0),
                        t_sim=row.get("t_sim"),
                        attrs=row.get("attrs", {}),
                    )
                )
            elif kind == "summary":
                summary = row
        return events, summary
    finally:
        if owned:
            handle.close()


def recorder_from_jsonl(source) -> "Recorder":
    """Rebuild a :class:`Recorder` from a :func:`write_jsonl` file.

    The summary footer restores counters, histogram summaries (including
    log2 buckets) and the dropped-event count via ``Recorder.merge``;
    the event rows repopulate the event log. The result feeds straight
    into :func:`chrome_trace_dict`, so a JSONL log captured on one host
    (or in a worker process) converts to a Perfetto trace on another.
    """
    from repro.instrument.recorder import Recorder

    events, summary = read_jsonl(source)
    recorder = Recorder()
    recorder.merge(summary)
    recorder.events.extend(events)
    return recorder


def _lane_name(lane: int) -> str:
    return "scheduler" if lane == 0 else f"worker-{lane}"


def chrome_trace_dict(recorder) -> dict:
    """The recorder's events as a Chrome ``trace_event`` object."""
    trace_events: list[dict] = []
    for lane in recorder.lanes or [0]:
        trace_events.append(
            {
                "ph": "M",
                "pid": _PID,
                "tid": lane,
                "name": "thread_name",
                "args": {"name": _lane_name(lane)},
            }
        )
        trace_events.append(
            {
                "ph": "M",
                "pid": _PID,
                "tid": lane,
                "name": "thread_sort_index",
                "args": {"sort_index": lane},
            }
        )
    span_entries: list[tuple] = []
    for ev in recorder.events:
        args = dict(ev.attrs)
        if ev.t_sim is not None:
            args["t_sim"] = ev.t_sim
        if "span" in ev.attrs and ev.dur is not None:
            # Tree spans become nested duration (B/E) pairs so Perfetto
            # renders real hierarchy. Sorted so that at equal timestamps
            # ends precede begins (a sibling closes before the next
            # opens) and enclosing spans open before their children.
            dur = ev.dur * 1e6
            ts = ev.ts * 1e6
            begin = {
                "name": ev.name, "ph": "B", "pid": _PID, "tid": ev.lane,
                "ts": ts, "args": args,
            }
            end = {
                "name": ev.name, "ph": "E", "pid": _PID, "tid": ev.lane,
                "ts": ts + dur,
            }
            span_entries.append(((ts, 1, -dur), begin))
            span_entries.append(((ts + dur, 0, dur), end))
            continue
        entry = {
            "name": ev.name,
            "pid": _PID,
            "tid": ev.lane,
            "ts": ev.ts * 1e6,  # trace_event timestamps are microseconds
            "args": args,
        }
        if ev.dur is not None:
            entry["ph"] = "X"
            entry["dur"] = ev.dur * 1e6
        else:
            entry["ph"] = "i"
            entry["s"] = "t"  # instant event scoped to its thread row
        trace_events.append(entry)
    trace_events.extend(entry for _, entry in sorted(span_entries, key=lambda p: p[0]))
    return {
        "traceEvents": trace_events,
        "displayTimeUnit": "ms",
        "otherData": {
            "counters": dict(recorder.counters),
            "dropped_events": recorder.dropped_events,
        },
    }


def write_chrome_trace(recorder, target) -> None:
    """Write a Chrome/Perfetto-loadable trace JSON to *target* (path or file)."""
    handle, owned = _open_target(target)
    try:
        json.dump(chrome_trace_dict(recorder), handle)
    finally:
        if owned:
            handle.close()


def write_trace(recorder, path: str) -> str:
    """Write *path* in the format its extension implies.

    ``.jsonl`` / ``.ndjson`` selects the JSONL event log; anything else
    (conventionally ``.json``) gets the Chrome ``trace_event`` format.
    Returns the format written ("jsonl" or "chrome").
    """
    lower = str(path).lower()
    if lower.endswith((".jsonl", ".ndjson")):
        write_jsonl(recorder, path)
        return "jsonl"
    write_chrome_trace(recorder, path)
    return "chrome"
