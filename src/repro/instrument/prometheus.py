"""Prometheus text-format exposition of recorder state.

:func:`to_prometheus` renders a recorder (or a portable ``snapshot()``
dict) in the Prometheus text exposition format (version 0.0.4):

* every counter becomes ``repro_<name>_total`` (dots and other invalid
  characters fold to ``_``), e.g. ``newton.iterations`` →
  ``repro_newton_iterations_total``;
* every histogram becomes a native Prometheus histogram: cumulative
  ``_bucket{le="..."}`` lines derived from the recorder's log2 buckets
  (upper bound ``2**(b+1)`` for bucket *b*), plus ``_sum`` and
  ``_count``;
* per-tenant service channels (``service.tenant.<tenant>.<metric>``,
  minted by :func:`~repro.instrument.telemetry.tenant_counter`) fold
  into **labeled** samples of one family per metric —
  ``repro_service_requests_total{tenant="acme"}`` rather than a metric
  name per tenant — so dashboards can aggregate and slice by the
  ``tenant`` label. The unlabeled sample of the same family (the
  all-tenants channel, e.g. ``service.requests``) is emitted first when
  present.

:class:`MetricsServer` serves that rendering on a plain
``http.server``-based ``/metrics`` endpoint — no third-party client
library, scrape-ready — which the CLI exposes as ``--serve-metrics
PORT`` for long campaigns.
"""

from __future__ import annotations

import json
import logging
import re
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

logger = logging.getLogger("repro.instrument.metrics")

#: Metric-name prefix for everything the engine exports.
NAMESPACE = "repro"

_INVALID = re.compile(r"[^a-zA-Z0-9_:]")

#: text exposition content type, as scraped by Prometheus.
CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"


def metric_name(name: str, namespace: str = NAMESPACE) -> str:
    """Fold a recorder channel name into a valid Prometheus metric name."""
    folded = _INVALID.sub("_", name)
    if folded and folded[0].isdigit():
        folded = "_" + folded
    return f"{namespace}_{folded}"


def _format_value(value: float) -> str:
    if isinstance(value, float) and value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


def _split_tenant(name: str):
    """``(family_channel, tenant)`` for a per-tenant service channel.

    ``service.tenant.acme.requests`` → ``("service.requests", "acme")``;
    None for every other channel. The tenant segment is dot-free by
    construction (:func:`~repro.instrument.telemetry.tenant_counter`
    sanitizes it), so the first dot after the prefix is the boundary.
    """
    from repro.instrument.telemetry import TENANT_PREFIX

    if not name.startswith(TENANT_PREFIX):
        return None
    tenant, _, metric = name[len(TENANT_PREFIX):].partition(".")
    if not tenant or not metric:
        return None
    return f"service.{metric}", tenant


def _histogram_samples(lines: list, metric: str, data: dict,
                       label: str = "") -> None:
    """Append one histogram's bucket/sum/count samples to *lines*."""
    prefix = f"{label}," if label else ""
    suffix = f"{{{label}}}" if label else ""
    cumulative = 0
    buckets = {int(b): int(n) for b, n in (data.get("buckets") or {}).items()}
    for bucket in sorted(buckets):
        cumulative += buckets[bucket]
        le = 2.0 ** (bucket + 1)
        lines.append(f'{metric}_bucket{{{prefix}le="{le!r}"}} {cumulative}')
    count = int(data.get("count", 0))
    lines.append(f'{metric}_bucket{{{prefix}le="+Inf"}} {count}')
    lines.append(f"{metric}_sum{suffix} {_format_value(float(data.get('total', 0.0)))}")
    lines.append(f"{metric}_count{suffix} {count}")


def to_prometheus(source, namespace: str = NAMESPACE) -> str:
    """Render *source* (Recorder or snapshot dict) as exposition text."""
    snap = source if isinstance(source, dict) else source.snapshot()
    lines: list[str] = []

    plain_counters: dict[str, float] = {}
    tenant_counters: dict[str, dict[str, float]] = {}
    for name, value in (snap.get("counters") or {}).items():
        split = _split_tenant(name)
        if split is None:
            plain_counters[name] = value
        else:
            family, tenant = split
            tenant_counters.setdefault(family, {})[tenant] = value
    for name in sorted(set(plain_counters) | set(tenant_counters)):
        metric = metric_name(name, namespace) + "_total"
        lines.append(f"# HELP {metric} repro counter {name}")
        lines.append(f"# TYPE {metric} counter")
        if name in plain_counters:
            lines.append(f"{metric} {_format_value(plain_counters[name])}")
        for tenant in sorted(tenant_counters.get(name, ())):
            lines.append(
                f'{metric}{{tenant="{tenant}"}} '
                f"{_format_value(tenant_counters[name][tenant])}"
            )

    plain_hists: dict[str, dict] = {}
    tenant_hists: dict[str, dict[str, dict]] = {}
    for name, data in (snap.get("histograms") or {}).items():
        split = _split_tenant(name)
        if split is None:
            plain_hists[name] = data
        else:
            family, tenant = split
            tenant_hists.setdefault(family, {})[tenant] = data
    for name in sorted(set(plain_hists) | set(tenant_hists)):
        metric = metric_name(name, namespace)
        lines.append(f"# HELP {metric} repro histogram {name}")
        lines.append(f"# TYPE {metric} histogram")
        if name in plain_hists:
            _histogram_samples(lines, metric, plain_hists[name])
        for tenant in sorted(tenant_hists.get(name, ())):
            _histogram_samples(
                lines, metric, tenant_hists[name][tenant],
                label=f'tenant="{tenant}"',
            )
    counters = snap.get("counters") or {}
    useful = counters.get("speculate.useful_work")
    wasted = counters.get("speculate.wasted_work")
    if useful is not None or wasted is not None:
        # Derived gauge: fraction of speculative work units that paid off.
        # Only emitted when a pipelined scheme actually speculated, so
        # sequential scrapes stay byte-identical to earlier releases.
        total = float(useful or 0.0) + float(wasted or 0.0)
        efficiency = float(useful or 0.0) / total if total > 0 else 0.0
        metric = f"{namespace}_speculation_efficiency"
        lines.append(f"# HELP {metric} useful fraction of speculative work units")
        lines.append(f"# TYPE {metric} gauge")
        lines.append(f"{metric} {_format_value(efficiency)}")
    dropped = snap.get("dropped_events", 0)
    metric = f"{namespace}_instrument_dropped_events"
    lines.append(f"# HELP {metric} trace events not retained by the recorder")
    lines.append(f"# TYPE {metric} gauge")
    lines.append(f"{metric} {int(dropped)}")
    return "\n".join(lines) + "\n"


class MetricsServer:
    """Background ``/metrics`` endpoint over one recorder.

    ``port=0`` binds an ephemeral port; after :meth:`start` the actual
    one is available as ``server.port``, is logged, and is reported in
    the ``/healthz`` JSON body — so scrapers (and tests) never have to
    guess which port the kernel handed out. Only ``GET /metrics`` (plus
    ``/healthz``) is served; everything else is 404.
    """

    def __init__(self, recorder, port: int = 0, host: str = "127.0.0.1"):
        self.recorder = recorder
        self.host = host
        self._requested_port = port
        self._httpd: ThreadingHTTPServer | None = None
        self._thread: threading.Thread | None = None

    @property
    def port(self) -> int:
        if self._httpd is None:
            return self._requested_port
        return self._httpd.server_address[1]

    def start(self) -> "MetricsServer":
        if self._httpd is not None:
            return self
        recorder = self.recorder
        server = self

        class Handler(BaseHTTPRequestHandler):
            def do_GET(self):  # noqa: N802 (http.server API)
                if self.path.split("?")[0] == "/metrics":
                    body = to_prometheus(recorder).encode("utf-8")
                    self.send_response(200)
                    self.send_header("Content-Type", CONTENT_TYPE)
                elif self.path == "/healthz":
                    # The *actual* bound address: with port=0 the kernel
                    # picked an ephemeral port, and health probes are the
                    # one place a client can discover it.
                    payload = {
                        "status": "ok",
                        "host": server.host,
                        "port": server.port,
                    }
                    body = (json.dumps(payload, sort_keys=True) + "\n").encode(
                        "utf-8"
                    )
                    self.send_response(200)
                    self.send_header("Content-Type", "application/json")
                else:
                    body = b"try /metrics\n"
                    self.send_response(404)
                    self.send_header("Content-Type", "text/plain")
                self.send_header("Content-Length", str(len(body)))
                self.end_headers()
                self.wfile.write(body)

            def log_message(self, *args):  # silence per-request stderr noise
                pass

        self._httpd = ThreadingHTTPServer((self.host, self._requested_port), Handler)
        self._thread = threading.Thread(
            target=self._httpd.serve_forever,
            name="repro-metrics-server",
            daemon=True,
        )
        self._thread.start()
        logger.info(
            "metrics server listening on http://%s:%d/metrics", self.host, self.port
        )
        return self

    def stop(self) -> None:
        httpd, self._httpd = self._httpd, None
        thread, self._thread = self._thread, None
        if httpd is not None:
            httpd.shutdown()
            httpd.server_close()
        if thread is not None:
            thread.join()

    def __enter__(self) -> "MetricsServer":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()


def serve_metrics(recorder, port: int = 0, host: str = "127.0.0.1") -> MetricsServer:
    """Start (and return) a :class:`MetricsServer` for *recorder*."""
    return MetricsServer(recorder, port=port, host=host).start()
