"""Trace event vocabulary and the event record itself.

Every instrumented layer emits :class:`TraceEvent` objects through a
:class:`~repro.instrument.recorder.Recorder`. The schema is deliberately
small and flat so the exporters (JSONL, Chrome ``trace_event``) are
direct translations:

* ``name`` — one of the constants below (free-form names are allowed,
  these are the ones the stock engine emits).
* ``ts`` — wall-clock start in seconds, relative to the recorder's epoch
  (``Recorder.clock()``).
* ``dur`` — wall-clock duration in seconds, or None for instant events.
* ``lane`` — logical pipeline lane: 0 is the scheduler/main loop, lane
  ``k >= 1`` is the k-th task slot of a stage (one Chrome trace row per
  lane, which is what makes stage occupancy and bubbles visible).
* ``t_sim`` — simulated time the event concerns, or None.
* ``attrs`` — free-form JSON-safe details (iteration counts, verdicts...).
"""

from __future__ import annotations

from dataclasses import dataclass, field

#: One Newton solve finished (converged or not). Emitted by
#: :func:`repro.solver.newton.newton_solve`.
NEWTON_SOLVE = "newton_solve"

#: A converged candidate point failed the truncation-error test.
LTE_REJECT = "lte_reject"

#: A point entered the accepted history.
STEP_ACCEPT = "step_accept"

#: One pipeline stage ran (scheduler's view: width, cost, progress).
STAGE_RUN = "stage_run"

#: One task of a pipeline stage ran on its lane (executor's view).
STAGE_TASK = "stage_task"

#: A speculative (forward-pipelined) point was resolved: corrective
#: phase outcome, hit/miss classification.
SPECULATE = "speculate"

#: DC operating point solve.
DCOP = "dcop"

#: One whole transient run (sequential or pipelined).
RUN = "run"

#: ChaosExecutor scrambled one stage (attrs carry the permutation).
CHAOS_STAGE = "chaos_stage"

#: The differential oracle finished one fuzz trial (pass/fail, worst
#: deviation). Emitted by :func:`repro.verify.oracle.verify_circuit`.
VERIFY_TRIAL = "verify_trial"

#: One batch job reached an outcome (attrs: label, status, attempts,
#: hash). Emitted by :class:`repro.jobs.scheduler.JobScheduler`.
JOB_RUN = "job_run"

#: One whole batch campaign finished (attrs: name, jobs, status counts).
#: Emitted by :func:`repro.jobs.campaign.run_campaign`.
CAMPAIGN_RUN = "campaign_run"

#: One attempted timepoint in the sequential transient loop (span).
TIMESTEP = "timestep"

#: One whole WTM (waveform-transmission) partitioned transient (span).
#: Emitted by :func:`repro.partition.coordinator.run_wtm`.
WTM_RUN = "wtm_run"

#: One WTM time window iterated to convergence (span, child of wtm_run).
WTM_WINDOW = "wtm_window"

#: One Gauss-Jacobi/Seidel outer iteration (span, child of wtm_window).
WTM_OUTER_ITER = "wtm_outer_iter"

#: One per-partition transient solve inside an outer iteration (span,
#: child of wtm_outer_iter; ``attrs["partition"]`` carries the partition
#: index — lanes stay at 0 because nested engine spans inherit them).
WTM_PARTITION = "wtm_partition"

#: Synthesized service-tier spans. These are *stitched* rather than
#: recorded live: :func:`repro.service.trace.build_campaign_trace` builds
#: them from queue-manifest timestamps and per-node trace records, so a
#: single tree spans every process and farm node a campaign touched.
#: One submitting request (one trace id) — the root of a service trace.
SERVICE_REQUEST = "service_request"
#: One queued job's end-to-end life under its request (enqueue→settle).
SERVICE_JOB = "service_job"
#: Time a job sat pending in the queue before a node claimed it.
QUEUE_WAIT = "queue_wait"
#: The claimed job executing on a farm node (the worker span snapshot is
#: re-parented under this span at stitch time).
SERVICE_SOLVE = "service_solve"
#: Settling the finished job back into the queue/result store.
RESULT_UPLOAD = "result_upload"
#: A dedup-served duplicate submission: zero-cost child of the job that
#: paid for the miss, attributed to the duplicate's own trace id/tenant.
SERVICE_DEDUP = "service_dedup"

#: Synthesized solver-phase spans nested inside a ``newton_solve`` span.
#: Their costs come from the virtual-clock work model (see
#: :func:`repro.solver.newton.iteration_work`), laid back-to-back inside
#: the parent span's wall interval, so they are deterministic quantities
#: drawn on a wall-clock canvas.
PHASE_DEVICE_EVAL = "device_eval"
PHASE_ASSEMBLY = "assembly"
PHASE_FACTOR = "factor"
PHASE_BACKSOLVE = "backsolve"

#: Outcome tags a span may carry in ``attrs["outcome"]``. Every candidate
#: timepoint span ends in exactly one of these, which is what lets
#: ``repro explain`` classify 100% of rejected steps by cause.
OUTCOME_ACCEPTED = "accepted"
OUTCOME_LTE_REJECT = "lte_reject"
OUTCOME_NEWTON_FAIL = "newton_fail"
OUTCOME_SPECULATIVE_HIT = "speculative_hit"
OUTCOME_SPECULATIVE_WASTE = "speculative_waste"


@dataclass
class TraceEvent:
    """One structured trace record (see module docstring for the schema)."""

    name: str
    ts: float
    dur: float | None = None
    lane: int = 0
    t_sim: float | None = None
    attrs: dict = field(default_factory=dict)

    def to_dict(self) -> dict:
        """Flat JSON-safe dict (JSONL exporter's row format)."""
        row = {"name": self.name, "ts": self.ts, "lane": self.lane}
        if self.dur is not None:
            row["dur"] = self.dur
        if self.t_sim is not None:
            row["t_sim"] = self.t_sim
        if self.attrs:
            row["attrs"] = self.attrs
        return row
