"""Span-tree reconstruction and validation.

A tree span is an ordinary completed :class:`TraceEvent` whose attrs
carry ``span`` (an id unique within the emitting recorder), optionally
``parent``, and the analysis payload: ``outcome`` (one of the
``OUTCOME_*`` constants) and ``cost`` (virtual-clock work units). That
representation is deliberate — spans ride every existing transport
untouched: the JSONL log, the Chrome exporter, the worker snapshot tail,
and :meth:`Recorder.merge` (which re-ids them so trees from many worker
processes cannot collide).

This module rebuilds the hierarchy from a flat event list and checks the
invariants the rest of the diagnosis stack relies on:

* ids are unique;
* a child's parent id refers to a known span (orphans whose parent fell
  out of a worker's ring buffer are *not* malformed — they are promoted
  to roots — but a parent id colliding with the child itself is);
* children nest temporally inside their parent's ``[ts, ts + dur]``
  interval (small float slack);
* lanes are consistent: a child runs on its parent's lane, except that
  the scheduler lane (0) may fan work out to worker lanes, which is
  exactly what a pipeline stage does.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Sequence

from repro.instrument.events import TraceEvent

#: Relative slack on the nesting check: spans are measured with
#: ``perf_counter`` and synthesized phases are laid out with float
#: arithmetic, so exact closure cannot be demanded.
NEST_SLACK = 1e-9


@dataclass
class SpanNode:
    """One reconstructed span with its children."""

    id: int
    name: str
    ts: float
    dur: float
    lane: int
    t_sim: float | None
    outcome: str | None
    cost: float
    attrs: dict
    parent: "SpanNode | None" = None
    children: list = field(default_factory=list)

    @property
    def end(self) -> float:
        return self.ts + self.dur

    @property
    def path(self) -> str:
        if self.parent is None:
            return self.name
        return f"{self.parent.path}/{self.name}"

    def walk(self):
        """Yield this node and every descendant, depth-first."""
        yield self
        for child in self.children:
            yield from child.walk()


@dataclass
class SpanTree:
    """Reconstruction result: forest roots plus validation findings."""

    roots: list
    nodes: dict
    problems: list

    @property
    def malformed(self) -> int:
        return len(self.problems)

    def walk(self):
        for root in self.roots:
            yield from root.walk()


def span_events(events: Iterable[TraceEvent]) -> list[TraceEvent]:
    """The subset of *events* that are tree spans."""
    return [ev for ev in events if "span" in ev.attrs]


def build_span_tree(events: Iterable[TraceEvent]) -> SpanTree:
    """Rebuild the span forest from a flat event list and validate it.

    Returns every problem found rather than raising: diagnosis must
    still work on a partially-damaged trace (that the count is zero is
    itself one of the report's assertions).
    """
    nodes: dict[int, SpanNode] = {}
    problems: list[str] = []
    order: list[SpanNode] = []
    for ev in events:
        sid = ev.attrs.get("span")
        if sid is None:
            continue
        if sid in nodes:
            problems.append(f"duplicate span id {sid} ({ev.name!r})")
            continue
        node = SpanNode(
            id=sid,
            name=ev.name,
            ts=ev.ts,
            dur=ev.dur if ev.dur is not None else 0.0,
            lane=ev.lane,
            t_sim=ev.t_sim,
            outcome=ev.attrs.get("outcome"),
            cost=float(ev.attrs.get("cost", 0.0)),
            attrs=ev.attrs,
        )
        if ev.dur is None:
            problems.append(f"span {sid} ({ev.name!r}) has no duration")
        nodes[sid] = node
        order.append(node)

    roots: list[SpanNode] = []
    for node in order:
        pid = node.attrs.get("parent")
        if pid is None:
            roots.append(node)
            continue
        if pid == node.id:
            problems.append(f"span {node.id} ({node.name!r}) is its own parent")
            roots.append(node)
            continue
        parent = nodes.get(pid)
        if parent is None:
            # parent record evicted upstream (worker ring buffer): the
            # subtree survives as its own root, nothing is malformed
            roots.append(node)
            continue
        node.parent = parent
        parent.children.append(node)

    for node in order:
        parent = node.parent
        if parent is None:
            continue
        slack = NEST_SLACK * max(1.0, abs(parent.end))
        if node.ts < parent.ts - slack or node.end > parent.end + slack:
            problems.append(
                f"span {node.id} ({node.name!r}) [{node.ts:.9f}, {node.end:.9f}] "
                f"escapes parent {parent.id} ({parent.name!r}) "
                f"[{parent.ts:.9f}, {parent.end:.9f}]"
            )
        if node.lane != parent.lane and parent.lane != 0:
            problems.append(
                f"span {node.id} ({node.name!r}) on lane {node.lane} under "
                f"parent {parent.id} ({parent.name!r}) on lane {parent.lane}"
            )

    # cycles among spans whose parents resolved: every resolved node must
    # reach a root; walk() from roots must visit each node exactly once
    seen: set[int] = set()
    for root in roots:
        for node in root.walk():
            if node.id in seen:
                problems.append(f"span {node.id} visited twice (cycle)")
                break
            seen.add(node.id)
    for node in order:
        if node.id not in seen:
            problems.append(f"span {node.id} ({node.name!r}) unreachable (cycle)")

    return SpanTree(roots=roots, nodes=nodes, problems=problems)


def aggregate_by_path(tree: SpanTree) -> dict[str, dict]:
    """Fold a span forest into ``path -> {count, cost}`` totals.

    Matches the shape of ``Recorder.span_totals`` (modulo spans whose
    ancestry was truncated by a worker's ring buffer), sorted by path so
    serialization is deterministic.
    """
    totals: dict[str, dict] = {}
    for node in tree.walk():
        entry = totals.setdefault(node.path, {"count": 0, "cost": 0.0})
        entry["count"] += 1
        entry["cost"] += node.cost
    return dict(sorted(totals.items()))


def outcome_counts(tree: SpanTree, names: Sequence[str] | None = None) -> dict:
    """Count span outcomes, optionally restricted to the given span names."""
    counts: dict[str, int] = {}
    for node in tree.walk():
        if names is not None and node.name not in names:
            continue
        key = node.outcome if node.outcome is not None else "untagged"
        counts[key] = counts.get(key, 0) + 1
    return dict(sorted(counts.items()))
