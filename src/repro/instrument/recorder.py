"""Zero-dependency run instrumentation: counters, histograms, events.

The engine is instrumented at every layer (Newton solver, step control,
transient loop, pipeline schemes, stage executors), but tracing must cost
nothing when nobody is looking — WavePipe's speedup tables are timing
studies. Two recorder types realise that bargain:

* :class:`Recorder` — collects named counters, value histograms and
  :class:`~repro.instrument.events.TraceEvent` records, thread-safe so
  ``ThreadExecutor`` tasks can emit concurrently.
* :class:`NullRecorder` — every method is a no-op and ``enabled`` is
  False. Instrumented call sites guard their event construction with
  ``if rec.enabled:`` so the disabled path costs one attribute read and
  a branch per *solve* (not per iteration).

A process-global default (initially a :class:`NullRecorder`) backs call
sites that were not handed an explicit recorder through
``SimOptions.instrument``; :func:`use_recorder` binds a replacement for
the current thread only (a contextvar, nestable), which is how the bench
harness attaches metrics collection to whole experiment campaigns — and
how concurrent farm-node threads each run jobs under their own per-job
telemetry recorder without cross-contaminating one another's counters.
"""

from __future__ import annotations

import contextlib
import contextvars
import math
import threading
import time
from collections import deque
from dataclasses import dataclass, field

from repro.instrument.events import TraceEvent

#: Counter booked whenever an event is not retained (capacity overflow in
#: ``drop`` mode, eviction of the oldest record in ``tail`` mode).
EVENTS_DROPPED = "instrument.events_dropped"


@dataclass
class Histogram:
    """Streaming summary of one observed quantity (no sample retention)."""

    count: int = 0
    total: float = 0.0
    minimum: float = float("inf")
    maximum: float = float("-inf")
    #: log2 bucket -> count; bucket is floor(log2(max(value, eps))).
    buckets: dict[int, int] = field(default_factory=dict)

    def add(self, value: float) -> None:
        value = float(value)
        self.count += 1
        self.total += value
        if value < self.minimum:
            self.minimum = value
        if value > self.maximum:
            self.maximum = value
        bucket = _log2_bucket(value)
        self.buckets[bucket] = self.buckets.get(bucket, 0) + 1

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def to_dict(self) -> dict:
        return {
            "count": self.count,
            "total": self.total,
            "min": self.minimum if self.count else None,
            "max": self.maximum if self.count else None,
            "mean": self.mean,
            "buckets": dict(self.buckets),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "Histogram":
        """Rebuild from :meth:`to_dict` output (JSON string keys accepted)."""
        hist = cls()
        hist.merge_dict(data)
        return hist

    def merge_dict(self, data: dict) -> None:
        """Fold another histogram's :meth:`to_dict` summary into this one."""
        count = int(data.get("count", 0))
        if count <= 0:
            return
        self.count += count
        self.total += float(data.get("total", 0.0))
        low, high = data.get("min"), data.get("max")
        if low is not None and float(low) < self.minimum:
            self.minimum = float(low)
        if high is not None and float(high) > self.maximum:
            self.maximum = float(high)
        for bucket, n in (data.get("buckets") or {}).items():
            key = int(bucket)  # JSON round-trips dict keys as strings
            self.buckets[key] = self.buckets.get(key, 0) + int(n)


def _log2_bucket(value: float) -> int:
    if value <= 0.0:
        return -1075  # below the smallest subnormal: its own bucket
    return math.frexp(value)[1] - 1


class Recorder:
    """Collecting recorder: counters + histograms + bounded event log.

    ``evict`` picks the overflow policy once ``max_events`` is reached:
    ``"drop"`` (the default) keeps the *first* events and discards new
    ones — the cheap choice for whole-run traces; ``"tail"`` keeps the
    *last* events in a ring buffer — what worker processes use so a
    crash post-mortem sees how the run ended, not how it began. Either
    way every unretained event is tallied in ``dropped_events`` and the
    ``instrument.events_dropped`` counter.
    """

    enabled = True

    def __init__(
        self,
        capture_events: bool = True,
        max_events: int = 500_000,
        evict: str = "drop",
    ):
        if evict not in ("drop", "tail"):
            raise ValueError(f"evict must be 'drop' or 'tail', got {evict!r}")
        self.capture_events = capture_events
        self.max_events = max_events
        self.evict = evict
        self.counters: dict[str, float] = {}
        self.histograms: dict[str, Histogram] = {}
        self.events = deque(maxlen=max_events) if evict == "tail" else []
        self.dropped_events = 0
        #: span path ("run/timestep/newton_solve") -> {"count", "cost"}.
        #: The deterministic aggregate of the span tree: pure counts and
        #: virtual-clock work units, no wall time, so it can ride the
        #: cached telemetry slice byte-stably.
        self.span_totals: dict[str, dict] = {}
        self._span_seq = 0
        self._open_spans: dict[int, list] = {}
        self._span_index: dict[int, TraceEvent] = {}
        self._span_tls = threading.local()
        self._lock = threading.Lock()
        self._epoch = time.perf_counter()

    # -- time -----------------------------------------------------------------

    def clock(self) -> float:
        """Seconds since this recorder was created (event timebase)."""
        return time.perf_counter() - self._epoch

    # -- scalar channels --------------------------------------------------------

    def count(self, name: str, value: float = 1) -> None:
        """Add *value* to the named counter."""
        with self._lock:
            self.counters[name] = self.counters.get(name, 0) + value

    def observe(self, name: str, value: float) -> None:
        """Record one sample into the named histogram."""
        with self._lock:
            hist = self.histograms.get(name)
            if hist is None:
                hist = self.histograms[name] = Histogram()
            hist.add(value)

    # -- events -----------------------------------------------------------------

    def event(
        self,
        name: str,
        ts: float | None = None,
        dur: float | None = None,
        lane: int = 0,
        t_sim: float | None = None,
        **attrs,
    ) -> None:
        """Append one trace event (dropped beyond ``max_events``)."""
        if not self.capture_events:
            return
        if ts is None:
            ts = self.clock()
        record = TraceEvent(name, ts, dur, lane, t_sim, attrs)
        with self._lock:
            self._append_record(record)

    def _append_record(self, record: TraceEvent) -> None:
        """Append under the caller-held lock, honouring the evict policy."""
        if len(self.events) >= self.max_events:
            self.dropped_events += 1
            self.counters[EVENTS_DROPPED] = self.counters.get(EVENTS_DROPPED, 0) + 1
            if self.evict == "drop":
                return
        self.events.append(record)

    @contextlib.contextmanager
    def span(self, name: str, lane: int = 0, t_sim: float | None = None, **attrs):
        """Context manager emitting a complete (duration) event."""
        t0 = self.clock()
        try:
            yield self
        finally:
            self.event(name, ts=t0, dur=self.clock() - t0, lane=lane,
                       t_sim=t_sim, **attrs)

    # -- span tree --------------------------------------------------------------
    #
    # Tree spans are completed TraceEvents whose attrs carry ``span`` (an
    # id unique within this recorder), optionally ``parent`` (another
    # span's id), ``outcome`` and ``cost`` (virtual-clock work units).
    # Parentage nests automatically per thread: a begin_span on the same
    # thread as an open span becomes its child, which is how a Newton
    # solve lands inside the timestep that requested it. Cross-thread
    # children (stage tasks running on pool threads) pass ``parent=``
    # explicitly. See repro.instrument.spans for tree reconstruction.

    #: Bound on the id->event map kept for post-hoc outcome tagging; old
    #: entries are evicted FIFO (tags land promptly in practice — the
    #: verify phase of the very next stage).
    SPAN_INDEX_CAP = 8192

    def _thread_stack(self) -> list:
        stack = getattr(self._span_tls, "stack", None)
        if stack is None:
            stack = self._span_tls.stack = []
        return stack

    def begin_span(
        self,
        name: str,
        lane: int | None = None,
        t_sim: float | None = None,
        parent: int | None = None,
        **attrs,
    ) -> int:
        """Open a tree span; returns its id (0 on a NullRecorder).

        ``lane=None`` inherits the parent's lane (explicit or enclosing),
        so nested solver spans stay on the worker lane that ran them.
        """
        stack = self._thread_stack()
        with self._lock:
            self._span_seq += 1
            sid = self._span_seq
            if parent is None and stack:
                parent = stack[-1]
            entry = self._open_spans.get(parent) if parent is not None else None
            if lane is None:
                lane = entry[3] if entry is not None else 0
            path = f"{entry[0]}/{name}" if entry is not None else name
            # entry: [path, t0, t_sim, lane, parent, attrs]
            self._open_spans[sid] = [path, self.clock(), t_sim, lane, parent, attrs]
        stack.append(sid)
        return sid

    def end_span(
        self,
        span_id: int,
        outcome: str | None = None,
        cost: float | None = None,
        t_sim: float | None = None,
        **attrs,
    ) -> None:
        """Close a tree span, folding it into ``span_totals``.

        ``t_sim`` overrides the begin-time value when given (a stage task
        only learns its target time from the solution it produced).
        """
        stack = self._thread_stack()
        if span_id in stack:
            del stack[stack.index(span_id):]
        with self._lock:
            entry = self._open_spans.pop(span_id, None)
            if entry is None:
                return
            path, t0, t_sim0, lane, parent, open_attrs = entry
            self._close_span_locked(
                path, t0, self.clock() - t0, lane,
                t_sim if t_sim is not None else t_sim0, span_id, parent,
                outcome, cost, {**open_attrs, **attrs},
            )

    def emit_span(
        self,
        name: str,
        ts: float,
        dur: float,
        lane: int | None = None,
        t_sim: float | None = None,
        parent: int | None = None,
        outcome: str | None = None,
        cost: float | None = None,
        **attrs,
    ) -> int:
        """Record an already-delimited span in one call (returns its id).

        Used for synthesized spans (solver phases laid out inside their
        parent's wall interval) and after-the-fact spans whose duration
        was measured externally (batch job outcomes).
        """
        stack = self._thread_stack()
        with self._lock:
            self._span_seq += 1
            sid = self._span_seq
            if parent is None and stack:
                parent = stack[-1]
            entry = self._open_spans.get(parent) if parent is not None else None
            if lane is None:
                lane = entry[3] if entry is not None else 0
            path = f"{entry[0]}/{name}" if entry is not None else name
            self._close_span_locked(
                path, ts, dur, lane, t_sim, sid, parent, outcome, cost, attrs
            )
        return sid

    def _close_span_locked(
        self, path, ts, dur, lane, t_sim, sid, parent, outcome, cost, attrs
    ) -> None:
        total = self.span_totals.get(path)
        if total is None:
            total = self.span_totals[path] = {"count": 0, "cost": 0.0}
        total["count"] += 1
        total["cost"] += float(cost) if cost is not None else 0.0
        attrs["span"] = sid
        if parent is not None:
            attrs["parent"] = parent
        if outcome is not None:
            attrs["outcome"] = outcome
        if cost is not None:
            attrs["cost"] = cost
        if not self.capture_events:
            return
        record = TraceEvent(name=path.rsplit("/", 1)[-1], ts=ts, dur=dur,
                            lane=lane, t_sim=t_sim, attrs=attrs)
        self._append_record(record)
        self._span_index[sid] = record
        while len(self._span_index) > self.SPAN_INDEX_CAP:
            self._span_index.pop(next(iter(self._span_index)))

    def tag_span(
        self,
        span_id: int | None,
        outcome: str | None = None,
        overwrite: bool = True,
        **attrs,
    ):
        """Attach an outcome (decided later) to an already-closed span.

        Pipeline candidate points learn their fate only when the
        scheduler verifies the stage, well after the solve span closed on
        its worker lane. No-op for unknown/evicted ids and ``None``.
        ``overwrite=False`` keeps an outcome that is already set — the
        blanket waste-tagging pass must not clobber a specific cause
        (``newton_fail``/``lte_reject``) recorded moments earlier.
        """
        if not span_id:
            return
        with self._lock:
            record = self._span_index.get(span_id)
            if record is None:
                return
            if outcome is not None and (overwrite or "outcome" not in record.attrs):
                record.attrs["outcome"] = outcome
            record.attrs.update(attrs)

    @contextlib.contextmanager
    def tree_span(
        self,
        name: str,
        lane: int | None = None,
        t_sim: float | None = None,
        parent: int | None = None,
        **attrs,
    ):
        """Contextmanager form of :meth:`begin_span`/:meth:`end_span`."""
        sid = self.begin_span(name, lane=lane, t_sim=t_sim, parent=parent, **attrs)
        try:
            yield sid
        finally:
            self.end_span(sid)

    # -- snapshots --------------------------------------------------------------

    def counter(self, name: str, default: float = 0) -> float:
        return self.counters.get(name, default)

    def snapshot(self, events_tail: int = 0) -> dict:
        """JSON-safe snapshot of counters and histogram summaries.

        With ``events_tail > 0`` the snapshot also carries the last that
        many events (as :meth:`TraceEvent.to_dict` rows) under
        ``"events_tail"`` — the portable form another process's recorder
        can absorb via :meth:`merge`.
        """
        with self._lock:
            snap = {
                "counters": dict(self.counters),
                "histograms": {k: h.to_dict() for k, h in self.histograms.items()},
                "events": len(self.events),
                "dropped_events": self.dropped_events,
            }
            if self.span_totals:
                snap["span_totals"] = {
                    path: dict(total)
                    for path, total in sorted(self.span_totals.items())
                }
            if events_tail > 0:
                tail = list(self.events)[-events_tail:]
                snap["events_tail"] = [ev.to_dict() for ev in tail]
        return snap

    def merge(
        self,
        snapshot: dict | None,
        parent: int | None = None,
        at: float | None = None,
    ) -> None:
        """Fold another recorder's :meth:`snapshot` into this one.

        Counters add, histograms combine (count/total/min/max and log2
        buckets), ``dropped_events`` accumulates, and any serialized
        ``events_tail`` rows are appended to the event log (subject to
        this recorder's own capacity and evict policy). Event timestamps
        in the snapshot are relative to the *sending* recorder's epoch
        (its own perf_counter zero), so they are rebased onto this
        recorder's clock: the tail is shifted so its last event ends at
        merge time — which for the batch scheduler is right after the
        worker finished — with relative spacing inside the tail
        preserved. This is how the batch scheduler aggregates per-worker
        telemetry into the campaign-level recorder.

        Args:
            parent: a span id in *this* recorder to re-parent the tail's
                root spans under. Without it, sender spans whose parent
                is unknown here become roots; with it, the whole worker
                tree hangs under the caller's span (the distributed-trace
                stitch: a worker's spans become children of the service
                request that caused them).
            at: timestamp on this recorder's clock the tail should end
                at, instead of "now". Callers that emit the enclosing
                span first pass its end time so the rebased tail stays
                inside the parent span's interval.
        """
        if not snapshot:
            return
        with self._lock:
            for name, value in (snapshot.get("counters") or {}).items():
                self.counters[name] = self.counters.get(name, 0) + value
            for name, data in (snapshot.get("histograms") or {}).items():
                hist = self.histograms.get(name)
                if hist is None:
                    hist = self.histograms[name] = Histogram()
                hist.merge_dict(data)
            self.dropped_events += int(snapshot.get("dropped_events", 0))
            for path, total in (snapshot.get("span_totals") or {}).items():
                mine = self.span_totals.get(path)
                if mine is None:
                    mine = self.span_totals[path] = {"count": 0, "cost": 0.0}
                mine["count"] += int(total.get("count", 0))
                mine["cost"] += float(total.get("cost", 0.0))
            if self.capture_events:
                rows = snapshot.get("events_tail") or ()
                if rows:
                    tail_end = max(
                        row["ts"] + (row.get("dur") or 0.0) for row in rows
                    )
                    offset = (at if at is not None else self.clock()) - tail_end
                    # Span ids in the tail were allocated by the sender;
                    # give them fresh ids here so merged trees from many
                    # workers cannot collide. Parents whose own record
                    # fell out of the sender's ring become roots.
                    remap: dict = {}
                    for row in rows:
                        sid = (row.get("attrs") or {}).get("span")
                        if sid is not None:
                            self._span_seq += 1
                            remap[sid] = self._span_seq
                for row in rows:
                    attrs = row.get("attrs", {})
                    if "span" in attrs:
                        attrs = dict(attrs)
                        attrs["span"] = remap[attrs["span"]]
                        row_parent = attrs.get("parent")
                        if row_parent is not None and row_parent in remap:
                            attrs["parent"] = remap[row_parent]
                        elif parent is not None:
                            attrs["parent"] = parent
                        elif row_parent is not None:
                            del attrs["parent"]
                    self._append_record(
                        TraceEvent(
                            name=row["name"],
                            ts=row["ts"] + offset,
                            dur=row.get("dur"),
                            lane=row.get("lane", 0),
                            t_sim=row.get("t_sim"),
                            attrs=attrs,
                        )
                    )

    @property
    def lanes(self) -> list[int]:
        """Sorted lane ids appearing in the event log."""
        return sorted({ev.lane for ev in self.events})


class _NullSpan:
    def __enter__(self):
        return None

    def __exit__(self, *exc):
        return False


_NULL_SPAN = _NullSpan()


class NullRecorder:
    """Recorder whose every operation is a no-op (the default)."""

    enabled = False
    capture_events = False
    counters: dict[str, float] = {}
    histograms: dict[str, Histogram] = {}
    events: list[TraceEvent] = []
    span_totals: dict[str, dict] = {}
    dropped_events = 0

    def clock(self) -> float:
        return 0.0

    def count(self, name: str, value: float = 1) -> None:
        pass

    def observe(self, name: str, value: float) -> None:
        pass

    def event(self, name: str, **kwargs) -> None:
        pass

    def span(self, name: str, **kwargs):
        return _NULL_SPAN

    def begin_span(self, name: str, **kwargs) -> int:
        return 0

    def end_span(self, span_id: int, **kwargs) -> None:
        pass

    def emit_span(self, name: str, ts: float, dur: float, **kwargs) -> int:
        return 0

    def tag_span(self, span_id, outcome=None, **attrs) -> None:
        pass

    def tree_span(self, name: str, **kwargs):
        return _NULL_SPAN

    def counter(self, name: str, default: float = 0) -> float:
        return default

    def snapshot(self, events_tail: int = 0) -> dict:
        return {"counters": {}, "histograms": {}, "events": 0, "dropped_events": 0}

    def merge(self, snapshot) -> None:
        pass

    @property
    def lanes(self) -> list[int]:
        return []


#: Shared inert instance; identity-comparable, safe because it is stateless.
NULL_RECORDER = NullRecorder()

_default_recorder = NULL_RECORDER
_default_lock = threading.Lock()

#: Thread/task-scoped ambient recorder. :func:`use_recorder` binds here
#: first, so two threads scoping different recorders concurrently (e.g.
#: in-process farm nodes running per-job telemetry recorders) never see
#: each other's — a shared global swap would let one thread's solver
#: counts land in another job's about-to-be-discarded recorder.
_scoped_recorder = contextvars.ContextVar("repro_recorder", default=None)


def get_recorder():
    """The ambient recorder: the current scope's, else the process default.

    :func:`use_recorder` scopes are thread-local (contextvar), so a
    freshly spawned thread starts from the process default set by
    :func:`set_recorder` — not from whatever scope its parent happened
    to be inside.
    """
    scoped = _scoped_recorder.get()
    if scoped is not None:
        return scoped
    return _default_recorder


def set_recorder(recorder) -> object:
    """Install *recorder* as the process default; returns the previous one.

    Passing None restores the inert :data:`NULL_RECORDER`.
    """
    global _default_recorder
    with _default_lock:
        previous = _default_recorder
        _default_recorder = recorder if recorder is not None else NULL_RECORDER
    return previous


@contextlib.contextmanager
def use_recorder(recorder):
    """Bind *recorder* as the ambient recorder for the current scope.

    The binding is a contextvar: it only affects the calling thread (and
    asyncio tasks forked from it), and nests correctly. The process
    default from :func:`set_recorder` is untouched, so threads spawned
    *inside* the scope still fall back to it.
    """
    token = _scoped_recorder.set(recorder if recorder is not None else NULL_RECORDER)
    try:
        yield recorder
    finally:
        _scoped_recorder.reset(token)


def resolve_recorder(instrument):
    """Recorder an engine should use given its ``SimOptions.instrument``.

    None falls back to the process-global default; ``True`` is a
    convenience for "allocate a fresh collecting recorder".
    """
    if instrument is None:
        return get_recorder()
    if instrument is True:
        return Recorder()
    return instrument
