"""Perf trending: canonical baselines and regression diffs for the bench
harness's ``BENCH_METRICS_*.json`` dumps.

The bench harness (``benchmarks/conftest.py``) dumps deterministic solver
counters and histogram summaries per experiment — Newton iterations,
accepted points, LTE rejects, lu factor/solve splits — exactly the
numbers the Table R9/R10 claims rest on. Until now those files were
write-only. This module turns them into a trend line:

* :func:`build_baseline` canonicalizes every ``BENCH_METRICS_<exp>.json``
  in a directory into one committed ``BENCH_BASELINE.json``;
* :func:`diff_against_baseline` compares a fresh metrics directory
  against that baseline with per-metric relative tolerances and reports
  every regression — CI fails when the diff is nonempty.

Direction matters: for most metrics *more* is worse (iterations,
rejects, factorisations), but for a few *less* is the regression —
losing lu reuse hits or cache hits means the fast path stopped firing,
and a shrinking mean accepted step means the integrator is taking more
steps for the same simulated window.
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass, field
from pathlib import Path

#: Baseline file schema version.
BASELINE_VERSION = 1

#: Default relative tolerance before a metric movement counts as a change.
DEFAULT_TOLERANCE = 0.25

#: Stock baseline location, relative to a repo checkout.
DEFAULT_BASELINE = "benchmarks/BENCH_BASELINE.json"

#: Metric keys (flattened form, see :func:`flatten_metrics`) where a
#: *decrease* is the regression direction. Everything else regresses on
#: increase. Matching is by channel name, so both the counter and any
#: histogram views of a channel share a direction.
BENEFIT_CHANNELS = frozenset(
    {
        "lu.reuse_hit",
        "jobs.cache_hits",
        "controller.h_taken",
        "step.h_accepted",
        # Speculation-benefit channels: fewer speculative successes or
        # fewer pipeline stages for the same simulated window means the
        # pipelined schemes stopped overlapping work.
        "speculate.successes",
        "pipeline.stages",
        # Fewer variants amortised per lockstep solve means the ensemble
        # backend stopped batching same-topology jobs together.
        "ensemble.variants_per_solve",
        # Deliberately NOT listed: wtm.outer_iterations. The default
        # direction is the right one — more outer sweeps for the same
        # Table R13 workloads means the boundary exchange stopped
        # contracting (a convergence regression), so it gates on increase.
        # Deliberately NOT listed: service.request_duration (and its
        # service.tenant.<name>.request_duration variants). Request
        # latency regresses when it *grows*, so the default direction
        # already gates it; listing it here would invert the gate and
        # celebrate a slower front door.
    }
)

_METRICS_GLOB = "BENCH_METRICS_*.json"


def load_metrics_dir(metrics_dir) -> dict[str, dict]:
    """Every ``BENCH_METRICS_<exp_id>.json`` in *metrics_dir*, by exp id."""
    out: dict[str, dict] = {}
    for path in sorted(Path(metrics_dir).glob(_METRICS_GLOB)):
        with open(path, encoding="utf-8") as handle:
            payload = json.load(handle)
        exp_id = payload.get("exp_id") or path.stem.removeprefix("BENCH_METRICS_")
        out[exp_id] = payload
    return out


def canonicalize(payload: dict) -> dict:
    """The comparable core of one metrics dump.

    Keeps counters verbatim and reduces histograms to their ``count`` and
    ``mean`` (the log2 buckets and min/max are diagnostic detail, too
    granular to gate CI on).
    """
    histograms = {}
    for name, data in (payload.get("histograms") or {}).items():
        histograms[name] = {
            "count": int(data.get("count", 0)),
            "mean": float(data.get("mean", 0.0)),
        }
    return {
        "title": payload.get("title", ""),
        "counters": {k: float(v) for k, v in (payload.get("counters") or {}).items()},
        "histograms": histograms,
    }


def flatten_metrics(canonical: dict) -> dict[str, float]:
    """Canonical experiment dict -> flat ``{metric_key: value}``.

    Keys look like ``counters.newton.iterations`` and
    ``histograms.step.h_accepted.mean``.
    """
    flat: dict[str, float] = {}
    for name, value in canonical.get("counters", {}).items():
        flat[f"counters.{name}"] = float(value)
    for name, data in canonical.get("histograms", {}).items():
        flat[f"histograms.{name}.count"] = float(data.get("count", 0))
        flat[f"histograms.{name}.mean"] = float(data.get("mean", 0.0))
    return flat


def channel_of(metric_key: str) -> str:
    """The recorder channel a flattened metric key refers to."""
    if metric_key.startswith("counters."):
        return metric_key[len("counters."):]
    if metric_key.startswith("histograms."):
        name = metric_key[len("histograms."):]
        return name.rsplit(".", 1)[0]  # strip the .count / .mean suffix
    return metric_key


def build_baseline(metrics_dir, tolerances: dict[str, float] | None = None) -> dict:
    """Canonical baseline document for every metrics dump in *metrics_dir*."""
    experiments = {
        exp_id: canonicalize(payload)
        for exp_id, payload in load_metrics_dir(metrics_dir).items()
    }
    return {
        "version": BASELINE_VERSION,
        "experiments": experiments,
        "tolerances": dict(tolerances or {}),
    }


def write_baseline(baseline: dict, out_path) -> Path:
    """Write *baseline* as deterministic JSON (sorted keys, trailing \\n)."""
    path = Path(out_path)
    path.write_text(
        json.dumps(baseline, indent=2, sort_keys=True) + "\n", encoding="utf-8"
    )
    return path


def load_baseline(path) -> dict:
    with open(path, encoding="utf-8") as handle:
        baseline = json.load(handle)
    version = baseline.get("version")
    if version != BASELINE_VERSION:
        raise ValueError(
            f"baseline version {version!r} unsupported (expected {BASELINE_VERSION})"
        )
    return baseline


@dataclass
class PerfEntry:
    """One metric's movement between baseline and current run."""

    exp_id: str
    metric: str
    baseline: float
    current: float
    tolerance: float
    #: ok | regressed | improved (improved = moved beyond tolerance in
    #: the good direction; never fails the diff).
    status: str

    @property
    def rel_change(self) -> float:
        if self.baseline == 0.0:
            return math.inf if self.current != 0.0 else 0.0
        return (self.current - self.baseline) / abs(self.baseline)

    def to_dict(self) -> dict:
        rel = self.rel_change
        return {
            "exp_id": self.exp_id,
            "metric": self.metric,
            "baseline": self.baseline,
            "current": self.current,
            "rel_change": None if math.isinf(rel) else rel,
            "tolerance": self.tolerance,
            "status": self.status,
        }

    def describe(self) -> str:
        rel = self.rel_change
        pct = "new" if math.isinf(rel) else f"{rel:+.1%}"
        return (
            f"[{self.status:>9}] {self.exp_id}: {self.metric} "
            f"{self.baseline:g} -> {self.current:g} ({pct}, tol {self.tolerance:.0%})"
        )


@dataclass
class PerfDiff:
    """Outcome of one baseline-vs-current comparison."""

    entries: list[PerfEntry] = field(default_factory=list)
    compared: list[str] = field(default_factory=list)
    skipped: list[str] = field(default_factory=list)

    @property
    def regressions(self) -> list[PerfEntry]:
        return [e for e in self.entries if e.status == "regressed"]

    @property
    def improvements(self) -> list[PerfEntry]:
        return [e for e in self.entries if e.status == "improved"]

    @property
    def passed(self) -> bool:
        return not self.regressions

    def to_dict(self) -> dict:
        return {
            "passed": self.passed,
            "compared": list(self.compared),
            "skipped": list(self.skipped),
            "regressions": [e.to_dict() for e in self.regressions],
            "improvements": [e.to_dict() for e in self.improvements],
        }

    def summary(self) -> str:
        lines = [
            f"perf diff: {len(self.compared)} experiment(s) compared"
            + (f", {len(self.skipped)} skipped (no fresh metrics)" if self.skipped else "")
        ]
        for entry in self.regressions + self.improvements:
            lines.append("  " + entry.describe())
        lines.append(
            "PASS: no perf regressions"
            if self.passed
            else f"FAIL: {len(self.regressions)} metric(s) regressed"
        )
        return "\n".join(lines)


def _classify(metric: str, base: float, current: float, tolerance: float) -> str:
    if base == 0.0 and current == 0.0:
        return "ok"
    if base == 0.0:
        rel = math.inf
    else:
        rel = (current - base) / abs(base)
    if abs(rel) <= tolerance:
        return "ok"
    worse_is_up = channel_of(metric) not in BENEFIT_CHANNELS
    regressed = rel > 0 if worse_is_up else rel < 0
    return "regressed" if regressed else "improved"


def diff_against_baseline(
    baseline: dict,
    metrics_dir,
    tolerance: float = DEFAULT_TOLERANCE,
    metric_tolerances: dict[str, float] | None = None,
) -> PerfDiff:
    """Compare fresh metrics dumps in *metrics_dir* against *baseline*.

    Only experiments present in **both** the baseline and the fresh
    directory are compared (CI runs smoke subsets; the full-table dumps
    simply carry over). Within a compared experiment a metric missing on
    either side counts as 0 — the engine omits zero counters, so
    "vanished" and "zero" are the same observation. Per-metric
    tolerances (flattened key or bare channel name) override the global
    one; baseline-embedded ``tolerances`` sit below CLI-provided ones.
    """
    resolved: dict[str, float] = dict(baseline.get("tolerances") or {})
    resolved.update(metric_tolerances or {})

    def tol_for(metric: str) -> float:
        return resolved.get(metric, resolved.get(channel_of(metric), tolerance))

    fresh = {
        exp_id: canonicalize(payload)
        for exp_id, payload in load_metrics_dir(metrics_dir).items()
    }
    diff = PerfDiff()
    for exp_id, base_exp in sorted(baseline.get("experiments", {}).items()):
        if exp_id not in fresh:
            diff.skipped.append(exp_id)
            continue
        diff.compared.append(exp_id)
        base_flat = flatten_metrics(base_exp)
        cur_flat = flatten_metrics(fresh[exp_id])
        for metric in sorted(set(base_flat) | set(cur_flat)):
            base_value = base_flat.get(metric, 0.0)
            cur_value = cur_flat.get(metric, 0.0)
            tol = tol_for(metric)
            status = _classify(metric, base_value, cur_value, tol)
            if status != "ok":
                diff.entries.append(
                    PerfEntry(exp_id, metric, base_value, cur_value, tol, status)
                )
    return diff
