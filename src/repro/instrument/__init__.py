"""Structured tracing, counters, and pipeline-occupancy metrics.

The observability substrate of the engine (see ``docs/observability.md``):

* :class:`Recorder` / :class:`NullRecorder` — collecting vs inert
  instrumentation sinks; the process-global default is inert so
  instrumented code costs ~nothing when tracing is off.
* event vocabulary (``newton_solve``, ``lte_reject``, ``step_accept``,
  ``stage_run``, ``stage_task``, ``speculate``, ``dcop``, ``run``) in
  :mod:`repro.instrument.events`.
* exporters — JSONL event logs and Chrome ``trace_event`` files with one
  lane per pipeline thread (:mod:`repro.instrument.exporters`).
* :class:`RunMetrics` — the end-of-run summary every transient result
  carries (:mod:`repro.instrument.metrics`).
* live telemetry — :class:`Heartbeat` progress reporting
  (:mod:`repro.instrument.telemetry`), Prometheus text exposition and a
  stdlib ``/metrics`` endpoint (:mod:`repro.instrument.prometheus`).
* perf trending — committed bench baselines and regression diffs
  (:mod:`repro.instrument.perf`), driven by ``python -m repro perf``.

Typical use::

    from repro import run_wavepipe
    from repro.instrument import Recorder, write_chrome_trace

    rec = Recorder()
    result = run_wavepipe(circuit, 1e-6, scheme="combined", threads=3,
                          instrument=rec)
    print(result.metrics.summary())
    write_chrome_trace(rec, "run.trace.json")   # open in Perfetto
"""

from repro.instrument.events import (
    CAMPAIGN_RUN,
    DCOP,
    JOB_RUN,
    LTE_REJECT,
    NEWTON_SOLVE,
    OUTCOME_ACCEPTED,
    OUTCOME_LTE_REJECT,
    OUTCOME_NEWTON_FAIL,
    OUTCOME_SPECULATIVE_HIT,
    OUTCOME_SPECULATIVE_WASTE,
    PHASE_ASSEMBLY,
    PHASE_BACKSOLVE,
    PHASE_DEVICE_EVAL,
    PHASE_FACTOR,
    QUEUE_WAIT,
    RESULT_UPLOAD,
    RUN,
    SERVICE_DEDUP,
    SERVICE_JOB,
    SERVICE_REQUEST,
    SERVICE_SOLVE,
    SPECULATE,
    STAGE_RUN,
    STAGE_TASK,
    STEP_ACCEPT,
    TIMESTEP,
    TraceEvent,
)
from repro.instrument.exporters import (
    chrome_trace_dict,
    read_jsonl,
    recorder_from_jsonl,
    write_chrome_trace,
    write_jsonl,
    write_trace,
)
from repro.instrument.metrics import RunMetrics, metrics_delta
from repro.instrument.perf import (
    build_baseline,
    diff_against_baseline,
    load_baseline,
    write_baseline,
)
from repro.instrument.prometheus import MetricsServer, serve_metrics, to_prometheus
from repro.instrument.spans import (
    SpanNode,
    SpanTree,
    aggregate_by_path,
    build_span_tree,
    outcome_counts,
    span_events,
)
from repro.instrument.recorder import (
    EVENTS_DROPPED,
    NULL_RECORDER,
    Histogram,
    NullRecorder,
    Recorder,
    get_recorder,
    resolve_recorder,
    set_recorder,
    use_recorder,
)
from repro.instrument.telemetry import (
    TENANT_PREFIX,
    Heartbeat,
    heartbeat_for,
    tenant_counter,
    tenant_rollups,
)
from repro.instrument.tracectx import (
    TraceContext,
    current_trace,
    use_trace,
)

__all__ = [
    "TraceEvent",
    "NEWTON_SOLVE",
    "LTE_REJECT",
    "STEP_ACCEPT",
    "STAGE_RUN",
    "STAGE_TASK",
    "SPECULATE",
    "DCOP",
    "RUN",
    "JOB_RUN",
    "CAMPAIGN_RUN",
    "TIMESTEP",
    "SERVICE_REQUEST",
    "SERVICE_JOB",
    "QUEUE_WAIT",
    "SERVICE_SOLVE",
    "RESULT_UPLOAD",
    "SERVICE_DEDUP",
    "PHASE_DEVICE_EVAL",
    "PHASE_ASSEMBLY",
    "PHASE_FACTOR",
    "PHASE_BACKSOLVE",
    "OUTCOME_ACCEPTED",
    "OUTCOME_LTE_REJECT",
    "OUTCOME_NEWTON_FAIL",
    "OUTCOME_SPECULATIVE_HIT",
    "OUTCOME_SPECULATIVE_WASTE",
    "SpanNode",
    "SpanTree",
    "span_events",
    "build_span_tree",
    "aggregate_by_path",
    "outcome_counts",
    "Recorder",
    "NullRecorder",
    "NULL_RECORDER",
    "Histogram",
    "get_recorder",
    "set_recorder",
    "use_recorder",
    "resolve_recorder",
    "RunMetrics",
    "metrics_delta",
    "chrome_trace_dict",
    "write_chrome_trace",
    "write_jsonl",
    "read_jsonl",
    "recorder_from_jsonl",
    "write_trace",
    "EVENTS_DROPPED",
    "Heartbeat",
    "heartbeat_for",
    "TENANT_PREFIX",
    "tenant_counter",
    "tenant_rollups",
    "TraceContext",
    "current_trace",
    "use_trace",
    "MetricsServer",
    "serve_metrics",
    "to_prometheus",
    "build_baseline",
    "diff_against_baseline",
    "load_baseline",
    "write_baseline",
]
