"""W3C-traceparent-style trace context for the simulation farm.

One request to the service fans out across processes and machines: the
client submits over HTTP, the server writes a queue entry, a farm node
claims it, a worker process solves it, and the result is published to
the shared cache. :class:`TraceContext` is the identity that survives
that journey — a 128-bit trace id plus the submitting request's span id,
the tenant, and the submit origin — serialised three ways:

* **HTTP headers** — the W3C ``traceparent`` wire format
  (``00-<trace_id>-<span_id>-01``) plus ``X-Trace-Origin``, so any
  OpenTelemetry-speaking proxy in front of the service keeps the ids.
* **queue records** — :meth:`to_dict` / :meth:`from_dict`, persisted in
  the ``queue.json`` manifest so a context outlives the process (and the
  node) that minted it.
* **ambient contextvar** — :func:`use_trace` / :func:`current_trace`,
  the in-process hand-off between layers that do not share signatures.

Trace ids never enter a :class:`~repro.jobs.spec.JobSpec` content hash
or a cached result payload: identity is observability metadata, and the
dedup/caching layers must keep producing byte-identical artifacts no
matter who asked.
"""

from __future__ import annotations

import contextlib
import contextvars
import hashlib
import os
import re
from dataclasses import dataclass, replace

#: traceparent version emitted (the only one defined by W3C level 1).
TRACEPARENT_VERSION = "00"

#: Wire flag: always "sampled" — the farm records every request.
TRACE_FLAGS = "01"

#: Header names used on the wire.
TRACEPARENT_HEADER = "traceparent"
ORIGIN_HEADER = "X-Trace-Origin"

_TRACEPARENT = re.compile(
    r"^([0-9a-f]{2})-([0-9a-f]{32})-([0-9a-f]{16})-([0-9a-f]{2})$"
)
_HEX = re.compile(r"^[0-9a-f]+$")


def _hex_field(value, width: int) -> str | None:
    """*value* as a lowercase hex string of exactly *width* chars, or None."""
    if not isinstance(value, str):
        return None
    value = value.lower()
    if len(value) != width or not _HEX.match(value):
        return None
    if value == "0" * width:  # all-zero ids are invalid per W3C
        return None
    return value


@dataclass(frozen=True)
class TraceContext:
    """Identity of one service request, propagated end to end.

    Attributes:
        trace_id: 32 lowercase hex chars shared by every span of the
            request, across every process and node it touches.
        span_id: 16 lowercase hex chars naming the requesting span —
            the parent that worker span trees are stitched under.
        tenant: the tenant the request was submitted as.
        origin: where the context was minted (``client``, ``server``,
            ``cli`` ...), for attribution in the merged trace.
    """

    trace_id: str
    span_id: str
    tenant: str = "default"
    origin: str = "unknown"

    # -- minting -----------------------------------------------------------------

    @classmethod
    def mint(
        cls,
        tenant: str = "default",
        origin: str = "unknown",
        entropy=None,
    ) -> "TraceContext":
        """A fresh context. *entropy* (any printable value) makes the ids
        deterministic — tests and seeded load generators use it so two
        runs of the same traffic mint the same trace ids."""
        if entropy is None:
            raw = os.urandom(24).hex()
        else:
            raw = hashlib.sha256(
                f"{entropy}|{tenant}|{origin}".encode("utf-8")
            ).hexdigest()
        trace_id = raw[:32]
        span_id = raw[32:48]
        if trace_id == "0" * 32:  # pragma: no cover - astronomically unlikely
            trace_id = "1" + trace_id[1:]
        if span_id == "0" * 16:  # pragma: no cover
            span_id = "1" + span_id[1:]
        return cls(trace_id=trace_id, span_id=span_id, tenant=tenant, origin=origin)

    def bound(self, **changes) -> "TraceContext":
        """A copy with the given fields replaced (tenant, origin, ...)."""
        return replace(self, **changes)

    # -- wire format -------------------------------------------------------------

    def to_traceparent(self) -> str:
        return f"{TRACEPARENT_VERSION}-{self.trace_id}-{self.span_id}-{TRACE_FLAGS}"

    @classmethod
    def from_traceparent(
        cls, header: str | None, tenant: str = "default", origin: str = "unknown"
    ) -> "TraceContext | None":
        """Parse a ``traceparent`` header; None when absent or malformed."""
        if not header:
            return None
        match = _TRACEPARENT.match(header.strip().lower())
        if match is None:
            return None
        _, trace_id, span_id, _ = match.groups()
        if trace_id == "0" * 32 or span_id == "0" * 16:
            return None
        return cls(trace_id=trace_id, span_id=span_id, tenant=tenant, origin=origin)

    def to_headers(self) -> dict:
        return {
            TRACEPARENT_HEADER: self.to_traceparent(),
            ORIGIN_HEADER: self.origin,
        }

    @classmethod
    def from_headers(
        cls, headers, tenant: str = "default"
    ) -> "TraceContext | None":
        """Context carried by an HTTP request's headers, or None.

        *headers* is any mapping with ``.get`` (``http.client`` and
        ``http.server`` message objects both qualify).
        """
        ctx = cls.from_traceparent(headers.get(TRACEPARENT_HEADER), tenant=tenant)
        if ctx is None:
            return None
        origin = headers.get(ORIGIN_HEADER)
        if origin:
            ctx = ctx.bound(origin=str(origin))
        return ctx

    # -- persisted form ----------------------------------------------------------

    def to_dict(self) -> dict:
        return {
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "tenant": self.tenant,
            "origin": self.origin,
        }

    @classmethod
    def from_dict(cls, data) -> "TraceContext | None":
        """Rebuild from :meth:`to_dict` output; None for anything invalid.

        Queue manifests outlive code revisions, so a record written by a
        different version (or by hand) must degrade to "untraced", never
        raise.
        """
        if not isinstance(data, dict):
            return None
        trace_id = _hex_field(data.get("trace_id"), 32)
        span_id = _hex_field(data.get("span_id"), 16)
        if trace_id is None or span_id is None:
            return None
        return cls(
            trace_id=trace_id,
            span_id=span_id,
            tenant=str(data.get("tenant", "default")),
            origin=str(data.get("origin", "unknown")),
        )


#: Ambient context for layers that do not share call signatures (the
#: worker binds the claimed job's context here so fault hooks and future
#: engine layers can read it without plumbing).
_current_trace = contextvars.ContextVar("repro_trace", default=None)


def current_trace() -> TraceContext | None:
    """The trace context bound to the current scope, or None."""
    return _current_trace.get()


@contextlib.contextmanager
def use_trace(ctx: TraceContext | None):
    """Bind *ctx* as the ambient trace context for the current scope."""
    token = _current_trace.set(ctx)
    try:
        yield ctx
    finally:
        _current_trace.reset(token)


__all__ = [
    "ORIGIN_HEADER",
    "TRACEPARENT_HEADER",
    "TRACEPARENT_VERSION",
    "TraceContext",
    "current_trace",
    "use_trace",
]
