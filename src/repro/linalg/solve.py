"""Sparse linear solve with circuit-flavoured diagnostics and factor reuse.

Wraps LAPACK (dense path, below :data:`DENSE_CUTOFF` unknowns) and SuperLU
(sparse path) behind one factor/back-solve API. Singular or near-singular
factorisations raise :class:`~repro.errors.SingularMatrixError` carrying
the name of the suspect unknown, which turns "RuntimeError: Factor is
exactly singular" into "floating node v(n7)".

The solver caches its most recent factorisation so callers can split the
classic ``solve()`` into the three operations a Newton hot loop actually
needs:

* :meth:`LinearSolver.factor` — factorise a matrix and remember an opaque
  *key* describing what was factored (e.g. ``(pattern, alpha0, gshunt)``).
* :meth:`LinearSolver.resolve` — triangular back-solve against the current
  factors.
* :meth:`LinearSolver.solve_reused` — back-solve against *previously*
  computed factors without refactoring: the modified-Newton "Jacobian
  bypass". Counted separately (``reuse_hits``) so the cost model can price
  a reused factorisation at its true (back-solve only) cost.

On the sparse path the column permutation computed by the first
factorisation of a pattern is cached and re-applied on subsequent
factorisations (``permc_spec="NATURAL"`` on the pre-permuted matrix), so
only the numeric phase is repeated; those show up as ``refactor_count``
rather than ``factor_count``. Pattern identity is tracked by the CSC
``indices`` array *object*, so a matrix assembled for a different
:class:`~repro.mna.pattern.JacobianPattern` (a different ``MnaSystem``)
never inherits a stale ordering.

All cache state is per-instance: WavePipe tasks each own a solver, so
reuse never crosses thread boundaries.
"""

from __future__ import annotations

import warnings

import numpy as np
import scipy.linalg as sla
import scipy.sparse as sp
import scipy.sparse.linalg as spla

from repro.errors import SingularMatrixError

#: Below this many unknowns a dense solve is faster than SuperLU setup.
DENSE_CUTOFF = 40

#: 1/condition estimate below which we refuse the factorisation.
RCOND_FLOOR = 1e-14


class LinearSolver:
    """Factor-and-solve helper bound to one matrix size.

    Instances are cheap; WavePipe tasks each use their own. The cached
    factorisation (and the symbolic ordering on the sparse path) lives on
    the instance, never in shared state.
    """

    def __init__(self, unknown_names: list[str] | None = None):
        self.unknown_names = unknown_names
        #: Full factorisations performed (symbolic + numeric).
        self.factor_count = 0
        #: Numeric-only refactorisations reusing a cached symbolic ordering.
        self.refactor_count = 0
        #: Triangular back-solves performed.
        self.solve_count = 0
        #: Back-solves served from previously computed factors (bypass).
        self.reuse_hits = 0
        #: Consecutive bypassed solves since the last factorisation;
        #: policy state for ``SimOptions.refactor_every``.
        self.bypass_streak = 0

        self._key: object | None = None
        self._mode: str | None = None  # "dense" | "sparse" | None
        self._dense_lu = None
        self._dense_ref: np.ndarray | None = None
        self._sparse_lu = None
        self._sparse_ref = None
        #: Column permutation applied to the factored matrix (refactor
        #: path) — None when the factors came from a fresh symbolic pass.
        self._applied_perm: np.ndarray | None = None
        #: Cached symbolic ordering and the identity of the pattern
        #: (its CSC indices array) it was computed for.
        self._perm_c: np.ndarray | None = None
        self._sym_indices: np.ndarray | None = None

    # -- diagnostics -------------------------------------------------------------

    def _name(self, index: int) -> str | None:
        if self.unknown_names is not None and 0 <= index < len(self.unknown_names):
            return self.unknown_names[index]
        return None

    def _suspect_dense(self, dense: np.ndarray) -> str | None:
        """Heuristic: the unknown whose row has the smallest max magnitude."""
        row_max = np.abs(dense).max(axis=1)
        return self._name(int(np.argmin(row_max)))

    def _suspect_sparse(self, matrix: sp.csc_matrix) -> str | None:
        csr = matrix.tocsr()
        row_max = np.zeros(matrix.shape[0])
        for i in range(matrix.shape[0]):
            row = csr.data[csr.indptr[i] : csr.indptr[i + 1]]
            row_max[i] = np.abs(row).max() if row.size else 0.0
        return self._name(int(np.argmin(row_max)))

    # -- cache management --------------------------------------------------------

    def matches(self, key: object) -> bool:
        """True when live factors exist and were computed under *key*."""
        return (
            key is not None
            and self._mode is not None
            and self._key is not None
            and self._key == key
        )

    def invalidate(self) -> None:
        """Drop the cached factors (the symbolic ordering survives)."""
        self._key = None
        self._mode = None
        self._dense_lu = None
        self._dense_ref = None
        self._sparse_lu = None
        self._sparse_ref = None
        self._applied_perm = None
        self.bypass_streak = 0

    # -- factor / solve ----------------------------------------------------------

    def factor(self, matrix: sp.csc_matrix, key: object | None = None) -> None:
        """Factorise *matrix*, replacing any cached factors.

        Args:
            key: opaque description of what was factored; later
                :meth:`matches` calls compare against it. ``None`` marks
                the factors as unkeyed (never matched).
        """
        n = matrix.shape[0]
        if n <= DENSE_CUTOFF:
            self._factor_dense(matrix)
        else:
            self._factor_sparse(matrix)
        self._key = key
        self.bypass_streak = 0

    def resolve(self, rhs: np.ndarray) -> np.ndarray:
        """Back-solve against the current factors."""
        if self._mode is None:
            raise SingularMatrixError("no factorisation available (factor() first)")
        self.solve_count += 1
        return self._backsolve(rhs)

    def solve_reused(self, rhs: np.ndarray) -> np.ndarray:
        """Back-solve against *previously computed* factors (Jacobian bypass).

        Identical to :meth:`resolve` numerically; booked as a reuse hit so
        cost models can price the skipped factorisation.
        """
        if self._mode is None:
            raise SingularMatrixError("no factorisation available (factor() first)")
        self.solve_count += 1
        self.reuse_hits += 1
        return self._backsolve(rhs)

    def solve(self, matrix: sp.csc_matrix, rhs: np.ndarray,
              key: object | None = None) -> np.ndarray:
        """Solve ``matrix @ x = rhs``; raises SingularMatrixError on failure.

        Convenience wrapper: one factorisation plus one back-solve.
        """
        self.factor(matrix, key=key)
        return self.resolve(rhs)

    # -- dense path --------------------------------------------------------------

    def _factor_dense(self, matrix) -> None:
        self.factor_count += 1
        dense = matrix.toarray() if sp.issparse(matrix) else np.asarray(matrix, float)
        with warnings.catch_warnings():
            # LAPACK getrf flags exact zero pivots with a LinAlgWarning;
            # we turn that condition into a typed error below instead.
            warnings.simplefilter("ignore")
            lu, piv = sla.lu_factor(dense, check_finite=False)
        u_diag = np.diagonal(lu)
        if not np.all(np.isfinite(lu)) or np.any(u_diag == 0.0):
            self._mode = None
            raise SingularMatrixError(
                "dense factorisation failed (singular matrix)",
                unknown=self._suspect_dense(dense),
            )
        self._dense_lu = (lu, piv)
        self._dense_ref = dense
        self._sparse_lu = None
        self._sparse_ref = None
        self._applied_perm = None
        self._mode = "dense"

    # -- sparse path -------------------------------------------------------------

    def _factor_sparse(self, matrix) -> None:
        if not sp.issparse(matrix):
            matrix = sp.csc_matrix(matrix)
        reuse_symbolic = (
            self._perm_c is not None and matrix.indices is self._sym_indices
        )
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", spla.MatrixRankWarning)
            try:
                if reuse_symbolic:
                    self.refactor_count += 1
                    lu = spla.splu(
                        matrix[:, self._perm_c].tocsc(), permc_spec="NATURAL"
                    )
                    applied_perm = self._perm_c
                else:
                    self.factor_count += 1
                    lu = spla.splu(matrix)
                    self._perm_c = np.asarray(lu.perm_c)
                    self._sym_indices = matrix.indices
                    applied_perm = None
            except RuntimeError as exc:
                self._mode = None
                raise SingularMatrixError(
                    f"sparse factorisation failed: {exc}",
                    unknown=self._suspect_sparse(matrix),
                ) from None
        self._sparse_lu = lu
        self._sparse_ref = matrix
        self._applied_perm = applied_perm
        self._dense_lu = None
        self._dense_ref = None
        self._mode = "sparse"

    # -- shared back-solve -------------------------------------------------------

    def _backsolve(self, rhs: np.ndarray) -> np.ndarray:
        if self._mode == "dense":
            result = sla.lu_solve(self._dense_lu, rhs, check_finite=False)
            if not np.all(np.isfinite(result)):
                raise SingularMatrixError(
                    "dense solve produced non-finite values",
                    unknown=self._suspect_dense(self._dense_ref),
                )
            return result
        solution = self._sparse_lu.solve(rhs)
        if self._applied_perm is not None:
            # Factored A[:, perm]: un-permute the solution components.
            result = np.empty_like(solution)
            result[self._applied_perm] = solution
        else:
            result = solution
        if not np.all(np.isfinite(result)):
            raise SingularMatrixError(
                "sparse solve produced non-finite values",
                unknown=self._suspect_sparse(self._sparse_ref),
            )
        return result


class BlockSolver:
    """K per-variant solvers for an ensemble, sharing one symbolic ordering.

    Each variant of an ensemble factorises its own numeric Jacobian, but
    every variant matrix is assembled over the same sparsity pattern (the
    :class:`~repro.mna.pattern.BlockAssemblyWorkspace` matrices share the
    pattern's ``indices`` array). The first sparse factorisation computes
    the column ordering once; :meth:`factor_all` then seeds that cached
    ordering into every other variant's solver before its first factor,
    so variants 1..K-1 only ever pay the numeric phase (they book as
    ``refactor_count``, exactly like the scalar reuse fast path).

    Per-variant factor *caches* stay independent — the modified-Newton
    bypass freezes and refactors variants individually — so the ensemble
    Newton loop drives ``solvers[k]`` directly for back-solves and
    bypass decisions.
    """

    def __init__(self, sims: int, unknown_names: list[str] | None = None):
        self.sims = sims
        self.solvers = [LinearSolver(unknown_names) for _ in range(sims)]

    def factor_all(
        self,
        matrices,
        key: object | None = None,
        active: np.ndarray | None = None,
    ) -> None:
        """Factor each variant's matrix, sharing the symbolic ordering.

        Args:
            matrices: K CSC matrices over one shared pattern.
            key: factor-cache key recorded on every factored solver.
            active: optional ``(K,)`` bool mask; variants marked False
                (converged/frozen) keep their existing factors untouched.
        """
        donor = next((s for s in self.solvers if s._perm_c is not None), None)
        for k, (solver, matrix) in enumerate(zip(self.solvers, matrices)):
            if active is not None and not active[k]:
                continue
            if (
                solver._perm_c is None
                and donor is not None
                and sp.issparse(matrix)
                and matrix.indices is donor._sym_indices
            ):
                solver._perm_c = donor._perm_c
                solver._sym_indices = donor._sym_indices
            solver.factor(matrix, key=key)
            if donor is None and solver._perm_c is not None:
                donor = solver

    def invalidate_all(self) -> None:
        """Drop every variant's cached factors (symbolic orderings survive)."""
        for solver in self.solvers:
            solver.invalidate()

    # -- aggregate counters (sum over variants) ----------------------------------

    @property
    def factor_count(self) -> int:
        return sum(s.factor_count for s in self.solvers)

    @property
    def refactor_count(self) -> int:
        return sum(s.refactor_count for s in self.solvers)

    @property
    def solve_count(self) -> int:
        return sum(s.solve_count for s in self.solvers)

    @property
    def reuse_hits(self) -> int:
        return sum(s.reuse_hits for s in self.solvers)


def condition_estimate(matrix: sp.csc_matrix) -> float:
    """Cheap 1-norm condition estimate (exact for the dense path).

    Used by tests and diagnostics, not by the solve hot path.
    """
    dense = matrix.toarray()
    try:
        return float(np.linalg.cond(dense, 1))
    except np.linalg.LinAlgError:
        return float("inf")
