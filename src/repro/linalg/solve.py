"""Sparse linear solve with circuit-flavoured diagnostics.

Wraps SuperLU (scipy) for the general case and a dense LAPACK path for
very small systems where sparse setup overhead dominates. Singular or
near-singular factorisations raise
:class:`~repro.errors.SingularMatrixError` carrying the name of the suspect
unknown, which turns "RuntimeError: Factor is exactly singular" into
"floating node v(n7)".
"""

from __future__ import annotations

import warnings

import numpy as np
import scipy.sparse as sp
import scipy.sparse.linalg as spla

from repro.errors import SingularMatrixError

#: Below this many unknowns a dense solve is faster than SuperLU setup.
DENSE_CUTOFF = 40

#: 1/condition estimate below which we refuse the factorisation.
RCOND_FLOOR = 1e-14


class LinearSolver:
    """Factor-and-solve helper bound to one matrix size.

    Instances are cheap and stateless between calls; WavePipe tasks each
    use their own.
    """

    def __init__(self, unknown_names: list[str] | None = None):
        self.unknown_names = unknown_names
        #: Number of factorisations performed (cost-model input).
        self.factor_count = 0
        #: Number of triangular back-solves performed.
        self.solve_count = 0

    def _name(self, index: int) -> str | None:
        if self.unknown_names is not None and 0 <= index < len(self.unknown_names):
            return self.unknown_names[index]
        return None

    def solve(self, matrix: sp.csc_matrix, rhs: np.ndarray) -> np.ndarray:
        """Solve ``matrix @ x = rhs``; raises SingularMatrixError on failure."""
        self.factor_count += 1
        self.solve_count += 1
        n = matrix.shape[0]
        if n <= DENSE_CUTOFF:
            return self._solve_dense(matrix, rhs)
        return self._solve_sparse(matrix, rhs)

    def _solve_dense(self, matrix: sp.csc_matrix, rhs: np.ndarray) -> np.ndarray:
        dense = matrix.toarray()
        try:
            result = np.linalg.solve(dense, rhs)
        except np.linalg.LinAlgError:
            raise SingularMatrixError(
                "dense factorisation failed (singular matrix)",
                unknown=self._suspect_dense(dense),
            ) from None
        if not np.all(np.isfinite(result)):
            raise SingularMatrixError(
                "dense solve produced non-finite values",
                unknown=self._suspect_dense(dense),
            )
        return result

    def _suspect_dense(self, dense: np.ndarray) -> str | None:
        """Heuristic: the unknown whose row has the smallest max magnitude."""
        row_max = np.abs(dense).max(axis=1)
        return self._name(int(np.argmin(row_max)))

    def _solve_sparse(self, matrix: sp.csc_matrix, rhs: np.ndarray) -> np.ndarray:
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", spla.MatrixRankWarning)
            try:
                lu = spla.splu(matrix)
            except RuntimeError as exc:
                raise SingularMatrixError(
                    f"sparse factorisation failed: {exc}",
                    unknown=self._suspect_sparse(matrix),
                ) from None
        result = lu.solve(rhs)
        if not np.all(np.isfinite(result)):
            raise SingularMatrixError(
                "sparse solve produced non-finite values",
                unknown=self._suspect_sparse(matrix),
            )
        return result

    def _suspect_sparse(self, matrix: sp.csc_matrix) -> str | None:
        csr = matrix.tocsr()
        row_max = np.zeros(matrix.shape[0])
        for i in range(matrix.shape[0]):
            row = csr.data[csr.indptr[i] : csr.indptr[i + 1]]
            row_max[i] = np.abs(row).max() if row.size else 0.0
        return self._name(int(np.argmin(row_max)))


def condition_estimate(matrix: sp.csc_matrix) -> float:
    """Cheap 1-norm condition estimate (exact for the dense path).

    Used by tests and diagnostics, not by the solve hot path.
    """
    dense = matrix.toarray()
    try:
        return float(np.linalg.cond(dense, 1))
    except np.linalg.LinAlgError:
        return float("inf")
