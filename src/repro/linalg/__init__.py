"""Sparse linear algebra with circuit-flavoured diagnostics."""
