"""Simulator options.

:class:`SimOptions` is the one options object threaded through every layer
(Newton solver, integration/step control, transient engines, WavePipe
schedulers). Field names and defaults follow SPICE3/ngspice conventions
where an equivalent exists (``reltol``, ``abstol``, ``vntol``, ``trtol``,
``gmin``...), so decks and intuition transfer.

The object is a frozen dataclass: engines never mutate options, they derive
new ones with :meth:`SimOptions.replace` — this keeps concurrent WavePipe
tasks free of shared mutable state.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass

from repro.errors import SimulationError

#: Integration methods understood by the engine.
INTEGRATION_METHODS = ("be", "trap", "gear2")


@dataclass(frozen=True)
class SimOptions:
    """Tolerances and algorithm knobs for all analyses.

    Attributes:
        reltol: relative tolerance on Newton updates and LTE.
        abstol: absolute current tolerance (A) for branch-type unknowns.
        vntol: absolute voltage tolerance (V) for node-type unknowns.
        chgtol: absolute charge tolerance (C) used by LTE estimation.
        gmin: conductance placed across every nonlinear junction.
        max_newton_iters: Newton iteration cap per solve attempt.
        damping: scale cap on Newton updates; 1.0 disables extra damping.
        voltage_limit: per-iteration cap (V) on any node-voltage update,
            the coarse global companion to per-device junction limiting.
        method: integration method, one of ``be``, ``trap``, ``gear2``.
        trtol: SPICE truncation-error fudge factor (>1 trusts the LTE
            estimate less and allows bigger steps).
        lte_reltol / lte_abstol: tolerances used by the LTE test; default
            to ``reltol`` / ``vntol`` when set to None.
        step_ratio_max: max allowed ratio of consecutive accepted steps
            (the bound WavePipe's backward pipelining legally exceeds by
            inserting verified intermediate points).
        step_shrink / step_grow_cap: reject-retry shrink factor and the
            hard cap on per-step growth recommendation.
        min_step_fraction: minimum step as a fraction of the sim window;
            going below raises :class:`~repro.errors.TimestepError`.
        first_step_fraction: initial step as fraction of ``tstep`` hint.
        max_step: optional absolute ceiling on the step (s).
        gmin_steps / source_steps: homotopy schedule lengths for the DC
            operating-point fallbacks.
        newton_guess: initial iterate for each transient Newton solve —
            ``"previous"`` (the last accepted solution, classic SPICE3
            behaviour and the regime the paper's forward pipelining
            targets) or ``"predictor"`` (polynomial extrapolation; a
            stronger baseline that shrinks forward pipelining's margin —
            see the ablation bench).
        sync_overhead: virtual-clock cost (work units) charged per
            pipeline stage for thread synchronisation.
        speculative_iter_cap: max Newton iterations a forward-pipelined
            task may spend against predicted history (on real hardware
            speculation is bounded by the producer's solve time; this cap
            models that bound).
        predictor_order: polynomial predictor order (1 or 2).
        backward_guard_fraction: backward pipelining places a guard point
            at this fraction of the main step when recent stages saw LTE
            rejections; 0 disables guards.
        reject_ewma_threshold: rejection-rate EWMA above which the
            backward scheduler spends a thread on the guard point.
        lte_cap_margin: scale on the a-priori LTE-optimal step used to cap
            backward chain targets (<1 is more conservative).
        spec_min_iters: forward speculation is only scheduled when the
            running average Newton cost per solve is at least this many
            iterations — a corrective phase costs about one iteration, so
            cheaper solves (e.g. linear circuits) leave speculation
            nothing to save.
        chain_headroom_min: backward chain extension requires the
            LTE-optimal step estimate to exceed ``chain_headroom_min *
            step_ratio_max * h`` — i.e. real headroom beyond the ratio
            cap, which separates genuine post-event ramps from LTE
            blind spots on oscillatory waveforms.
        jacobian_reuse: enable the factorisation-reuse fast path —
            static linear-device stamps copied from precomputed
            baselines, in-place Jacobian assembly into a persistent CSC
            workspace, and the modified-Newton "Jacobian bypass" that
            back-solves against the previous LU factors instead of
            refactoring every iteration. Off by default: the reuse-off
            path is the bit-exact full-Newton reference.
        reuse_stall_ratio: while bypassing, the residual must contract
            by at least this factor per iteration
            (``|F_k| <= reuse_stall_ratio * |F_{k-1}|``); a stall forces
            a full refactorisation on the spot (counted as
            ``newton.bypass_fallback``). 1.0 tolerates non-increasing
            residuals; smaller values demand faster contraction and
            refactor more eagerly.
        refactor_every: force a refactorisation after this many
            consecutive bypassed solves (0 disables the cap). A belt
            alongside the stall guard's suspenders for circuits whose
            residual contracts slowly but monotonically under stale
            factors — slow enough to waste iterations, not slow enough
            to trip the stall ratio. The default of 2 is uniformly
            profitable across the registry circuits; purely linear
            systems rarely reach the cap (every step-size change
            refactors anyway).
        instrument: optional :class:`~repro.instrument.Recorder` every
            layer reports into (None falls back to the process-global
            default, a NullRecorder unless someone installed one).
            Excluded from equality comparison and repr — it is a sink,
            not a numerical knob.
    """

    reltol: float = 1e-3
    abstol: float = 1e-12
    vntol: float = 1e-6
    chgtol: float = 1e-14
    gmin: float = 1e-12
    max_newton_iters: int = 100
    damping: float = 1.0
    voltage_limit: float = 2.0

    method: str = "trap"
    trtol: float = 7.0
    lte_reltol: float | None = None
    lte_abstol: float | None = None
    step_ratio_max: float = 2.0
    step_shrink: float = 0.25
    step_grow_cap: float = 2.0
    min_step_fraction: float = 1e-12
    first_step_fraction: float = 0.01
    max_step: float | None = None

    gmin_steps: int = 10
    source_steps: int = 10
    newton_guess: str = "previous"

    sync_overhead: float = 0.0
    speculative_iter_cap: int = 5
    predictor_order: int = 2
    backward_guard_fraction: float = 0.5
    reject_ewma_threshold: float = 0.15
    lte_cap_margin: float = 1.0
    spec_min_iters: float = 2.5
    chain_headroom_min: float = 2.0

    jacobian_reuse: bool = False
    reuse_stall_ratio: float = 0.9
    refactor_every: int = 2

    instrument: object | None = dataclasses.field(
        default=None, compare=False, repr=False
    )

    def __post_init__(self) -> None:
        if self.method not in INTEGRATION_METHODS:
            raise SimulationError(
                f"unknown integration method {self.method!r}; "
                f"expected one of {INTEGRATION_METHODS}"
            )
        for name in ("reltol", "abstol", "vntol", "chgtol", "trtol"):
            if getattr(self, name) <= 0:
                raise SimulationError(f"option {name} must be positive")
        if self.step_ratio_max < 1.0:
            raise SimulationError("step_ratio_max must be >= 1")
        if not 0 < self.step_shrink < 1:
            raise SimulationError("step_shrink must lie in (0, 1)")
        if self.predictor_order not in (1, 2):
            raise SimulationError("predictor_order must be 1 or 2")
        if not 0 <= self.backward_guard_fraction < 1:
            raise SimulationError("backward_guard_fraction must lie in [0, 1)")
        if self.lte_cap_margin <= 0:
            raise SimulationError("lte_cap_margin must be positive")
        if self.newton_guess not in ("previous", "predictor"):
            raise SimulationError("newton_guess must be 'previous' or 'predictor'")
        if not 0 < self.reuse_stall_ratio <= 1:
            raise SimulationError("reuse_stall_ratio must lie in (0, 1]")
        if self.refactor_every < 0:
            raise SimulationError("refactor_every must be >= 0")

    # -- serialization -----------------------------------------------------------

    def to_dict(self) -> dict:
        """JSON-safe dump of every numerical knob.

        ``instrument`` is excluded: it is a live object sink, not a
        reproducible setting. ``from_dict(to_dict())`` equals the
        original options object (equality also ignores ``instrument``).
        """
        out = {}
        for f in dataclasses.fields(self):
            if f.name == "instrument":
                continue
            out[f.name] = getattr(self, f.name)
        return out

    @classmethod
    def from_dict(cls, data: dict, instrument=None) -> "SimOptions":
        """Rebuild options from a :meth:`to_dict` dump (validated afresh).

        Missing keys take their defaults; unknown keys raise
        :class:`SimulationError` so stale job specs fail loudly instead
        of silently dropping a knob.
        """
        known = {f.name for f in dataclasses.fields(cls)} - {"instrument"}
        unknown = set(data) - known
        if unknown:
            raise SimulationError(
                f"unknown SimOptions field(s) in dump: {sorted(unknown)}"
            )
        return cls(**data, instrument=instrument)

    @property
    def effective_lte_reltol(self) -> float:
        """LTE relative tolerance, defaulting to ``reltol``."""
        return self.reltol if self.lte_reltol is None else self.lte_reltol

    @property
    def effective_lte_abstol(self) -> float:
        """LTE absolute tolerance, defaulting to ``vntol``."""
        return self.vntol if self.lte_abstol is None else self.lte_abstol

    @property
    def integration_order(self) -> int:
        """Order of the configured integration method (1 or 2)."""
        return 1 if self.method == "be" else 2

    def replace(self, **changes) -> "SimOptions":
        """Return a copy with *changes* applied (validated like a fresh object)."""
        return dataclasses.replace(self, **changes)
