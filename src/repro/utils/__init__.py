"""Shared utilities: unit parsing and simulator options."""
