"""SPICE engineering-notation number parsing and formatting.

SPICE decks write component values with case-insensitive engineering
suffixes: ``1k`` is 1000, ``2.5u`` is 2.5e-6, ``1meg`` is 1e6 (``m`` alone
is milli), ``10mil`` is 10 * 25.4e-6. Trailing alphabetic unit garnish is
tolerated and ignored, as in real SPICE (``10kOhm``, ``5pF``).

:func:`parse_value` is the single entry point used by the circuit builder
and the netlist parser; :func:`format_si` renders a float back into
readable engineering notation for tables and reprs.
"""

from __future__ import annotations

import math
import re

from repro.errors import UnitError

#: Multipliers keyed by lower-case suffix, longest match first at parse time.
SUFFIXES: dict[str, float] = {
    "t": 1e12,
    "g": 1e9,
    "meg": 1e6,
    "x": 1e6,
    "k": 1e3,
    "m": 1e-3,
    "mil": 25.4e-6,
    "u": 1e-6,
    "n": 1e-9,
    "p": 1e-12,
    "f": 1e-15,
    "a": 1e-18,
}

_NUMBER_RE = re.compile(
    r"^\s*(?P<num>[+-]?(?:\d+\.?\d*|\.\d+)(?:[eE][+-]?\d+)?)(?P<rest>[a-zA-Z]*)\s*$"
)


def parse_value(text: str | float | int) -> float:
    """Parse a SPICE-style numeric value into a float.

    Accepts plain numbers (int/float pass through), scientific notation,
    and engineering suffixes with optional trailing unit letters::

        parse_value("1k")      -> 1000.0
        parse_value("2.5u")    -> 2.5e-6
        parse_value("1meg")    -> 1e6
        parse_value("10pF")    -> 1e-11
        parse_value(47.0)      -> 47.0

    Raises:
        UnitError: if *text* is not a recognisable number.
    """
    if isinstance(text, (int, float)):
        value = float(text)
        if math.isnan(value):
            raise UnitError("value is NaN")
        return value
    match = _NUMBER_RE.match(text)
    if match is None:
        raise UnitError(f"cannot parse numeric value {text!r}")
    base = float(match.group("num"))
    rest = match.group("rest").lower()
    if not rest:
        return base
    # Longest suffix first so "meg" and "mil" beat "m".
    for suffix in ("meg", "mil"):
        if rest.startswith(suffix):
            return base * SUFFIXES[suffix]
    head = rest[0]
    if head in SUFFIXES:
        return base * SUFFIXES[head]
    # Unknown letters are unit garnish ("Ohm", "V", "Hz") -> no scaling.
    return base


_SI_PREFIXES = [
    (1e12, "T"),
    (1e9, "G"),
    # "Meg", not "M": SPICE suffixes are case-insensitive and "m" is milli,
    # so formatted values must round-trip through parse_value correctly.
    (1e6, "Meg"),
    (1e3, "k"),
    (1.0, ""),
    (1e-3, "m"),
    (1e-6, "u"),
    (1e-9, "n"),
    (1e-12, "p"),
    (1e-15, "f"),
]


def format_si(value: float, unit: str = "", digits: int = 4) -> str:
    """Format *value* with an SI prefix, e.g. ``format_si(2.2e-6, "F")`` -> ``"2.2uF"``.

    Values of exactly zero render as ``"0<unit>"``; magnitudes outside the
    prefix table fall back to scientific notation.
    """
    if value == 0:
        return f"0{unit}"
    magnitude = abs(value)
    for scale, prefix in _SI_PREFIXES:
        if magnitude >= scale:
            scaled = value / scale
            text = f"{scaled:.{digits}g}"
            return f"{text}{prefix}{unit}"
    return f"{value:.{digits}e}{unit}"
