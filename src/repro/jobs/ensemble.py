"""Ensemble scheduler backend: batch same-topology jobs into one solve.

Monte Carlo and PVT-corner campaigns produce many jobs that differ only
in component-parameter overrides — exactly the shape the vectorized
ensemble engine (:mod:`repro.engine.ensemble`) consumes. This backend
groups transient specs whose canonical form (minus ``params``) matches,
runs each group as one K-variant lockstep simulation, and unpacks the
result into per-member :class:`~repro.jobs.workers.JobResult` records
that mirror :func:`~repro.jobs.workers.execute_job`'s payload: same
signal resolution, same stat fields, and — critically — each member
keeps its **own** content hash, so the result cache stays addressed per
variant and resumed campaigns hit it per job.

Cost accounting: the batched solve's cost counters (``work_units``,
``lu_*``, ``bypass_fallbacks``) are apportioned across members so a
campaign rollup sums back to the ensemble's true cost — integer counters
by an exact largest-remainder split, float work as an equal share. The
grid-level counts (accepted/rejected points, Newton iterations) describe
the one shared adaptive grid and are reported identically on every
member. The group's telemetry snapshot rides on the first member only,
so campaign-recorder merges count each batch exactly once.

Singleton groups and non-transient specs fall back to
:func:`~repro.jobs.workers.execute_job` unchanged; so does every member
of a group whose batched solve fails for any reason (unsupported bank,
diverging variant), preserving per-job failure isolation. Like the
serial backend, execution is in-process: per-job timeouts are not
enforced.
"""

from __future__ import annotations

import contextlib
import json
import time

from repro.instrument import Recorder, use_recorder
from repro.jobs.spec import JobSpec, apply_params
from repro.jobs.workers import (
    TELEMETRY_EVENT_TAIL,
    JobResult,
    deterministic_telemetry,
    execute_job,
)
from repro.utils.options import SimOptions

#: Stat fields apportioned across group members (cost counters); the
#: remaining _STAT_FIELDS are grid-level counts shared verbatim.
_APPORTIONED_INT_FIELDS = (
    "lu_factors",
    "lu_refactors",
    "lu_solves",
    "lu_reuse_hits",
    "bypass_fallbacks",
)


def group_key(spec: JobSpec) -> str:
    """Batching key: the canonical spec with the jitter channel removed.

    Two specs with equal keys are the same simulation except for
    component-parameter overrides — same circuit ref, window, options and
    recorded signals — which is precisely what the ensemble engine
    requires (topology identity is still re-verified at compile time).
    """
    canonical = spec.canonical_dict()
    del canonical["params"]
    return json.dumps(canonical, sort_keys=True, separators=(",", ":"))


def _apportion(total: int, sims: int, k: int) -> int:
    """Member *k*'s share of an integer counter (sums exactly to *total*)."""
    share, remainder = divmod(int(total), sims)
    return share + (1 if k < remainder else 0)


class EnsembleBackend:
    """In-process backend that batches same-topology jobs per solve.

    Args:
        max_group: cap on variants per batched solve; larger groups are
            split into consecutive chunks (memory for the ``(n, K)``
            state and K factorisations grows linearly in K).
    """

    kind = "ensemble"
    workers = 1

    def __init__(self, max_group: int = 64):
        if max_group < 1:
            raise ValueError(f"max_group must be >= 1, got {max_group}")
        self.max_group = max_group

    def run(
        self, indexed_specs, timeout, emit, telemetry: bool = False, trace=None
    ) -> None:
        # trace contexts are accepted for scheduler compatibility but not
        # bound per job: a lockstep group mixes jobs from many requests.
        groups: dict[str, list[tuple[int, JobSpec]]] = {}
        order: list[str] = []
        for index, spec in indexed_specs:
            if spec.analysis != "transient":
                key = f"!single:{index}"  # never batches
            else:
                key = group_key(spec)
            if key not in groups:
                groups[key] = []
                order.append(key)
            groups[key].append((index, spec))

        for key in order:
            members = groups[key]
            while members:
                chunk, members = members[: self.max_group], members[self.max_group :]
                if len(chunk) < 2:
                    self._run_single(*chunk[0], emit, telemetry)
                    continue
                if not self._run_group(chunk, emit, telemetry):
                    for index, spec in chunk:
                        self._run_single(index, spec, emit, telemetry)

    @staticmethod
    def _run_single(index: int, spec: JobSpec, emit, telemetry: bool) -> None:
        """Serial-backend execution path for one unbatchable job."""
        recorder = (
            Recorder(max_events=TELEMETRY_EVENT_TAIL, evict="tail")
            if telemetry
            else None
        )

        def snapshot():
            if recorder is None:
                return None
            return recorder.snapshot(events_tail=TELEMETRY_EVENT_TAIL)

        t0 = time.perf_counter()
        try:
            result = execute_job(spec, instrument=recorder)
        except Exception as exc:
            emit(index, "error", f"{type(exc).__name__}: {exc}",
                 time.perf_counter() - t0, snapshot())
        else:
            emit(index, "ok", result, result.elapsed, snapshot())

    def _run_group(self, chunk, emit, telemetry: bool) -> bool:
        """One batched solve for *chunk*; False requests per-job fallback.

        Nothing is emitted unless the whole group succeeds, so the
        fallback path re-runs every member with clean slate semantics.
        """
        from repro.engine.ensemble import run_ensemble_transient
        from repro.jobs.workers import FAULT_HOOK as fault_hook

        specs = [spec for _, spec in chunk]
        recorder = (
            Recorder(max_events=TELEMETRY_EVENT_TAIL, evict="tail")
            if telemetry
            else None
        )
        t0 = time.perf_counter()
        try:
            if fault_hook is not None:
                for spec in specs:
                    fault_hook(spec)
            built = specs[0].circuit.build()
            circuits = [apply_params(built.circuit, spec.params) for spec in specs]
            tstop = specs[0].tstop if specs[0].tstop is not None else built.tstop
            if tstop is None or tstop <= 0:
                return False  # surface the error through the scalar path
            tstep = specs[0].tstep if specs[0].tstep is not None else built.tstep
            options = built.options or SimOptions()
            if specs[0].options:
                options = options.replace(**specs[0].options)
            sim_scope = (
                use_recorder(recorder)
                if recorder is not None
                else contextlib.nullcontext()
            )
            if recorder is not None:
                recorder.count("ensemble.batches")
            with sim_scope:
                result = run_ensemble_transient(
                    circuits, tstop, tstep, options=options, instrument=recorder
                )
        except Exception:
            return False

        elapsed = time.perf_counter() - t0
        sims = len(specs)
        share = elapsed / sims
        stats = result.stats
        times = [float(t) for t in result.times]
        group_telemetry = deterministic_telemetry(recorder)
        snapshot = (
            recorder.snapshot(events_tail=TELEMETRY_EVENT_TAIL)
            if recorder is not None
            else None
        )
        for k, (index, spec) in enumerate(chunk):
            variant = result.variants[k]
            waveforms = variant.waveforms
            names = list(spec.signals) if spec.signals is not None else None
            if names is None and built.signals is not None:
                names = list(built.signals)
            if names is None:
                names = [n for n in waveforms.names if n.startswith("v")]
            missing = [n for n in names if n not in waveforms]
            if missing:
                emit(
                    index,
                    "error",
                    f"job {spec.label!r}: no trace(s) named {missing} in the result",
                    share,
                    snapshot if k == 0 else None,
                )
                continue
            stat_dump = {
                "accepted_points": stats.accepted_points,
                "rejected_points": stats.rejected_points,
                "newton_failures": stats.newton_failures,
                "newton_iterations": stats.newton_iterations,
                "work_units": stats.work_units / sims,
            }
            for field in _APPORTIONED_INT_FIELDS:
                stat_dump[field] = _apportion(getattr(stats, field), sims, k)
            job_result = JobResult(
                spec_hash=spec.content_hash(),
                label=spec.label,
                analysis=spec.analysis,
                final_time=float(result.final_time),
                times=times,
                signals={n: [float(v) for v in waveforms[n].values] for n in names},
                stats=stat_dump,
                telemetry=group_telemetry if k == 0 else None,
                elapsed=share,
            )
            emit(index, "ok", job_result, share, snapshot if k == 0 else None)
        return True

    def close(self) -> None:
        pass
