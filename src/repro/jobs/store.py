"""On-disk campaign store: manifest + result cache under one root.

Layout::

    <root>/
      manifest.json       # campaign identity, job list, per-job status
      results/<hash>.json # the content-addressed ResultCache

The manifest is the campaign's checkpoint. It is rewritten atomically
after every job completes, so killing a campaign at any instant leaves a
consistent snapshot: finished jobs are ``done`` with their results safely
in the cache, everything else is ``pending``/``failed``. Resuming simply
re-runs the campaign — content addressing turns every already-finished
job into a cache hit, and the final manifest (which carries no wall-clock
or host data) comes out identical to an uninterrupted run's.
"""

from __future__ import annotations

import json
import os
from pathlib import Path

from repro.errors import SimulationError
from repro.jobs.cache import ResultCache
from repro.jobs.spec import JobSpec

#: Manifest schema version (bump on incompatible layout changes).
MANIFEST_VERSION = 1

#: Job states a manifest may record.
JOB_STATUSES = ("pending", "done", "cached", "failed", "timeout", "crashed")


class CampaignStore:
    """One campaign's on-disk home: manifest plus result cache."""

    def __init__(self, root) -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.cache = ResultCache(self.root / "results")

    @property
    def manifest_path(self) -> Path:
        return self.root / "manifest.json"

    def has_manifest(self) -> bool:
        return self.manifest_path.is_file()

    def write_manifest(
        self,
        name: str,
        generator: dict,
        jobs: list[JobSpec],
        statuses: dict[str, str] | None = None,
    ) -> Path:
        """Atomically (re)write the manifest.

        *statuses* maps spec hash -> status; jobs without an entry are
        ``pending``. Note the manifest deliberately contains nothing
        host- or time-dependent: byte-identical campaigns produce
        byte-identical manifests.
        """
        statuses = statuses or {}
        rows = []
        for spec in jobs:
            spec_hash = spec.content_hash()
            status = statuses.get(spec_hash, "pending")
            if status not in JOB_STATUSES:
                raise SimulationError(f"unknown job status {status!r}")
            rows.append(
                {
                    "label": spec.label,
                    "hash": spec_hash,
                    "status": status,
                    "spec": spec.canonical_dict(),
                }
            )
        payload = {
            "version": MANIFEST_VERSION,
            "name": name,
            "generator": generator,
            "jobs": rows,
        }
        text = json.dumps(payload, sort_keys=True, indent=2) + "\n"
        tmp = self.manifest_path.with_suffix(f".tmp.{os.getpid()}")
        tmp.write_text(text, encoding="utf-8")
        os.replace(tmp, self.manifest_path)
        return self.manifest_path

    def load_manifest(self) -> dict:
        """Parse the manifest; raises :class:`SimulationError` when absent."""
        if not self.has_manifest():
            raise SimulationError(f"no manifest at {self.manifest_path}")
        with open(self.manifest_path, encoding="utf-8") as handle:
            data = json.load(handle)
        if data.get("version") != MANIFEST_VERSION:
            raise SimulationError(
                f"manifest version {data.get('version')!r} unsupported "
                f"(expected {MANIFEST_VERSION})"
            )
        return data

    def manifest_jobs(self) -> list[JobSpec]:
        """Rebuild the job specs recorded in the manifest (labels restored)."""
        jobs = []
        for row in self.load_manifest()["jobs"]:
            spec = JobSpec.from_dict(dict(row["spec"], label=row.get("label", "")))
            jobs.append(spec)
        return jobs

    def statuses(self) -> dict[str, str]:
        """Spec hash -> recorded status from the manifest."""
        return {
            row["hash"]: row["status"] for row in self.load_manifest()["jobs"]
        }
