"""Campaign generation and execution: Monte Carlo, corners, sweeps.

A :class:`Campaign` is a named list of job specs plus the provenance dict
that reproduces it. The three stock generators cover the bread-and-butter
industrial batch workloads the engine serves:

* :func:`monte_carlo` — seeded lognormal jitter on every perturbable
  component parameter (R/C/L values, diode/BJT areas, MOSFET widths).
  Same seed => identical specs => identical content hashes, which is
  what makes re-runs free and resume exact.
* :func:`pvt_corners` — process corner sets expressed as per-component-
  class multiplicative scales (tt/ff/ss/fs/sf by default).
* :func:`param_sweep` — one job per value of one named component.

:func:`run_campaign` drives a campaign through a
:class:`~repro.jobs.scheduler.JobScheduler`, checkpointing a manifest in
a :class:`~repro.jobs.store.CampaignStore` after every job so a killed
campaign resumes from where it stopped (finished jobs come back as cache
hits; the final manifest and cached result bytes are identical to an
uninterrupted run's).
"""

from __future__ import annotations

import contextlib
from dataclasses import dataclass, field

import numpy as np

from repro.circuit.components import Bjt, Capacitor, Diode, Inductor, Mosfet, Resistor
from repro.errors import SimulationError
from repro.instrument.events import CAMPAIGN_RUN
from repro.instrument.metrics import RunMetrics
from repro.instrument.recorder import resolve_recorder
from repro.instrument.tracectx import current_trace
from repro.jobs.scheduler import JobOutcome, JobScheduler
from repro.jobs.spec import JobSpec, jitterable_params
from repro.jobs.store import CampaignStore

#: Component-class keys accepted in corner scale sets.
_CLASS_KEYS = {
    Resistor: "resistor",
    Capacitor: "capacitor",
    Inductor: "inductor",
    Diode: "device",
    Bjt: "device",
    Mosfet: "device",
}

#: Stock process corners: multiplicative scales per component class.
#: "fast" silicon: lower R/C (shorter delays), stronger devices.
CORNERS: dict[str, dict[str, float]] = {
    "tt": {},
    "ff": {"resistor": 0.9, "capacitor": 0.9, "inductor": 0.9, "device": 1.1},
    "ss": {"resistor": 1.1, "capacitor": 1.1, "inductor": 1.1, "device": 0.9},
    "fs": {"resistor": 0.9, "capacitor": 1.1},
    "sf": {"resistor": 1.1, "capacitor": 0.9},
}


@dataclass
class Campaign:
    """A named, reproducible set of job specs."""

    name: str
    jobs: list[JobSpec]
    generator: dict = field(default_factory=dict)

    def __len__(self) -> int:
        return len(self.jobs)


def _base_label(base: JobSpec) -> str:
    return base.label or base.circuit.describe


def monte_carlo(
    base: JobSpec,
    n: int,
    seed: int,
    jitter: float = 0.05,
    components: list[str] | None = None,
) -> Campaign:
    """*n* seeded Monte Carlo variants of *base*.

    Every perturbable component value is multiplied by an independent
    lognormal factor with sigma=*jitter* (values stay positive; 0.05 is
    roughly a 5% one-sigma spread). *components* restricts the jitter to
    the named components.

    Overrides already present in ``base.params`` are treated as the
    nominal values the jitter multiplies.
    """
    if n < 1:
        raise SimulationError("monte_carlo requires n >= 1")
    if jitter < 0:
        raise SimulationError("monte_carlo jitter must be >= 0")
    nominal = jitterable_params(base.circuit.build().circuit)
    nominal.update(base.params)
    if components is not None:
        unknown = set(components) - set(nominal)
        if unknown:
            raise SimulationError(
                f"monte_carlo components not perturbable/present: {sorted(unknown)}"
            )
        nominal = {name: nominal[name] for name in components}
    if not nominal:
        raise SimulationError("circuit has no perturbable parameters to jitter")
    rng = np.random.default_rng(seed)
    names = sorted(nominal)  # fixed draw order => seed-stable campaigns
    label = _base_label(base)
    jobs = []
    for i in range(n):
        factors = rng.lognormal(mean=0.0, sigma=jitter, size=len(names))
        params = dict(base.params)
        params.update(
            {name: float(nominal[name] * f) for name, f in zip(names, factors)}
        )
        jobs.append(base.derive(label=f"{label}/mc{i:03d}", params=params))
    return Campaign(
        name=f"{label}-mc{n}",
        jobs=jobs,
        generator={
            "kind": "monte_carlo",
            "n": n,
            "seed": seed,
            "jitter": jitter,
            "components": sorted(components) if components is not None else None,
        },
    )


def pvt_corners(
    base: JobSpec,
    corners: dict[str, dict[str, float]] | list[str] | None = None,
) -> Campaign:
    """One job per corner; scales applied per component class.

    *corners* may be a list of stock corner names (subset of
    :data:`CORNERS`) or a full mapping ``{name: {class_key: scale}}``
    with class keys ``resistor``/``capacitor``/``inductor``/``device``.
    """
    if corners is None:
        table = dict(CORNERS)
    elif isinstance(corners, dict):
        table = corners
    else:
        unknown = set(corners) - set(CORNERS)
        if unknown:
            raise SimulationError(
                f"unknown corner(s) {sorted(unknown)}; stock corners: {sorted(CORNERS)}"
            )
        table = {name: CORNERS[name] for name in corners}
    circuit = base.circuit.build().circuit
    nominals = jitterable_params(circuit)
    label = _base_label(base)
    jobs = []
    for corner_name in table:
        scales = table[corner_name]
        bad = set(scales) - set(_CLASS_KEYS.values())
        if bad:
            raise SimulationError(
                f"corner {corner_name!r} scales unknown class(es) {sorted(bad)}; "
                f"allowed: {sorted(set(_CLASS_KEYS.values()))}"
            )
        params = dict(base.params)
        for comp in circuit.components:
            key = _CLASS_KEYS.get(type(comp))
            scale = scales.get(key) if key is not None else None
            if scale is None:
                continue
            nominal = base.params.get(comp.name, nominals[comp.name])
            params[comp.name] = float(nominal * scale)
        jobs.append(base.derive(label=f"{label}/{corner_name}", params=params))
    return Campaign(
        name=f"{label}-corners",
        jobs=jobs,
        generator={
            "kind": "pvt_corners",
            "corners": {name: dict(table[name]) for name in table},
        },
    )


def param_sweep(base: JobSpec, component: str, values) -> Campaign:
    """One job per value of *component* (absolute values, not scales)."""
    values = [float(v) for v in values]
    if not values:
        raise SimulationError("param_sweep requires at least one value")
    nominal = jitterable_params(base.circuit.build().circuit)
    if component not in nominal:
        raise SimulationError(
            f"component {component!r} is not a perturbable parameter of the circuit"
        )
    label = _base_label(base)
    jobs = [
        base.derive(
            label=f"{label}/{component}={value:g}",
            params=dict(base.params, **{component: value}),
        )
        for value in values
    ]
    return Campaign(
        name=f"{label}-sweep-{component}",
        jobs=jobs,
        generator={"kind": "param_sweep", "component": component, "values": values},
    )


def single(base: JobSpec) -> Campaign:
    """Degenerate one-job campaign (the CLI's no-generator default)."""
    label = _base_label(base)
    return Campaign(
        name=label,
        jobs=[base.derive(label=base.label or label)],
        generator={"kind": "single"},
    )


@dataclass
class CampaignResult:
    """Everything one campaign run produced."""

    campaign: Campaign
    outcomes: list[JobOutcome]
    metrics: RunMetrics
    manifest_path: str | None = None

    @property
    def passed(self) -> bool:
        return all(outcome.ok for outcome in self.outcomes)

    @property
    def counts(self) -> dict[str, int]:
        out: dict[str, int] = {}
        for outcome in self.outcomes:
            out[outcome.status] = out.get(outcome.status, 0) + 1
        return out

    @property
    def cache_hits(self) -> int:
        return self.counts.get("cached", 0)

    @property
    def failures(self) -> list[JobOutcome]:
        return [outcome for outcome in self.outcomes if not outcome.ok]

    def to_dict(self) -> dict:
        return {
            "name": self.campaign.name,
            "generator": self.campaign.generator,
            "jobs": len(self.outcomes),
            "passed": self.passed,
            "counts": self.counts,
            "manifest": self.manifest_path,
            "wall_seconds": self.metrics.tran_seconds,
            "outcomes": [
                {
                    "label": outcome.spec.label,
                    "hash": outcome.spec_hash,
                    "status": outcome.status,
                    "attempts": outcome.attempts,
                    "error": outcome.error,
                }
                for outcome in self.outcomes
            ],
        }

    def summary(self) -> str:
        counts = ", ".join(
            f"{count} {status}" for status, count in sorted(self.counts.items())
        )
        verdict = "PASS" if self.passed else f"FAIL({len(self.failures)} jobs)"
        return (
            f"campaign {self.campaign.name}: {verdict} — "
            f"{len(self.outcomes)} jobs ({counts}), "
            f"{self.metrics.tran_seconds:.2f}s simulated wall time"
        )


def rollup_metrics(outcomes: list[JobOutcome], workers: int = 1) -> RunMetrics:
    """Campaign-level RunMetrics: sums of every completed job's counts.

    ``tran_seconds`` aggregates actual execution time (cache hits cost
    nothing and contribute nothing).
    """
    metrics = RunMetrics(scheme="campaign", threads=workers)
    for outcome in outcomes:
        result = outcome.result
        if result is None:
            continue
        stats = result.stats
        metrics.accepted_points += int(stats.get("accepted_points", 0))
        metrics.rejected_points += int(stats.get("rejected_points", 0))
        metrics.newton_failures += int(stats.get("newton_failures", 0))
        metrics.newton_iterations += int(stats.get("newton_iterations", 0))
        metrics.work_units += float(stats.get("work_units", 0.0))
        metrics.lu_factors += int(stats.get("lu_factors", 0))
        metrics.lu_refactors += int(stats.get("lu_refactors", 0))
        metrics.lu_solves += int(stats.get("lu_solves", 0))
        metrics.lu_reuse_hits += int(stats.get("lu_reuse_hits", 0))
        metrics.bypass_fallbacks += int(stats.get("bypass_fallbacks", 0))
        if not result.cached:
            metrics.tran_seconds += outcome.elapsed or result.elapsed
    return metrics


def run_campaign(
    campaign: Campaign,
    store: CampaignStore | str | None = None,
    backend="serial",
    workers: int = 1,
    timeout: float | None = None,
    retries: int = 1,
    backoff: float = 0.0,
    instrument=None,
    on_outcome=None,
    heartbeat=None,
) -> CampaignResult:
    """Run every job of *campaign*, checkpointing into *store*.

    Args:
        store: a :class:`CampaignStore`, a directory path to create one
            in, or None for an ephemeral run (no cache, no manifest).
        backend / workers / timeout / retries / backoff: scheduler
            configuration (see :class:`~repro.jobs.scheduler.JobScheduler`).
        instrument: optional Recorder; gains ``jobs.*`` counters, per-job
            ``job_run`` events, worker telemetry rollups and a
            campaign-level ``campaign_run`` event.
        on_outcome: optional callback fired per job outcome (after the
            manifest checkpoint).
        heartbeat: optional :class:`~repro.instrument.telemetry.Heartbeat`
            started for the duration of the scheduler run (its
            ``total_jobs`` is set to the campaign size if unset).
    """
    if isinstance(store, (str, bytes)) or hasattr(store, "__fspath__"):
        store = CampaignStore(store)
    rec = resolve_recorder(instrument)
    statuses: dict[str, str] = {}
    if store is not None and store.has_manifest():
        # Carry prior terminal statuses so a resumed campaign's manifest
        # reflects history for jobs not re-run this time (cache hits
        # overwrite them with "cached"/"done" below anyway).
        statuses.update(store.statuses())
        statuses = {h: s for h, s in statuses.items() if s in ("done", "failed")}

    def checkpoint(outcome: JobOutcome) -> None:
        # "cached" means "done on an earlier run": the manifest records
        # success uniformly, so an interrupted-then-resumed campaign's
        # final manifest is byte-identical to an uninterrupted run's.
        status = "done" if outcome.status == "cached" else outcome.status
        statuses[outcome.spec_hash] = status
        if store is not None:
            store.write_manifest(
                campaign.name, campaign.generator, campaign.jobs, statuses
            )
        if on_outcome is not None:
            on_outcome(outcome)

    if store is not None:
        store.write_manifest(campaign.name, campaign.generator, campaign.jobs, statuses)
    scheduler = JobScheduler(
        backend=backend,
        workers=workers,
        cache=store.cache if store is not None else None,
        timeout=timeout,
        retries=retries,
        backoff=backoff,
        instrument=instrument,
    )
    if heartbeat is not None and heartbeat.total_jobs is None:
        heartbeat.total_jobs = len(campaign.jobs)
    beat_scope = heartbeat if heartbeat is not None else contextlib.nullcontext()
    # When an ambient trace context is bound (a farm node running this
    # campaign on behalf of a service submission), stamp its ids on the
    # campaign root so a stitched cross-node trace can tie the span back
    # to the request that paid for it.
    ambient = current_trace()
    span_attrs = {"campaign": campaign.name, "jobs": len(campaign.jobs)}
    if ambient is not None:
        span_attrs["trace_id"] = ambient.trace_id
        span_attrs["tenant"] = ambient.tenant
    # tree_span (not the flat span helper) so per-job ``job_run`` spans
    # settled on this thread nest under the campaign root.
    with rec.tree_span(CAMPAIGN_RUN, **span_attrs):
        with beat_scope, scheduler:
            outcomes = scheduler.run(campaign.jobs, on_outcome=checkpoint)
    rec.count("jobs.campaigns")
    effective_workers = getattr(scheduler.backend, "workers", workers)
    result = CampaignResult(
        campaign=campaign,
        outcomes=outcomes,
        metrics=rollup_metrics(outcomes, workers=effective_workers),
        manifest_path=str(store.manifest_path) if store is not None else None,
    )
    if rec.enabled:
        result.metrics.counters = dict(rec.counters)
    return result
