"""Job execution: build the circuit, run the analysis, package the result.

:func:`execute_job` is the single execution path shared by every backend —
the serial backend calls it inline, the process-pool backend calls it
inside a child process via :func:`worker_main`. Workers exchange only
JSON-safe dicts over their pipe, never live engine objects, so the parent
survives any child behaviour: a clean result, a raised exception (sent
back as a traceback string), or an outright process death (detected by
the backend as a closed pipe / nonzero exit code).

:class:`JobResult` is deliberately split into a *deterministic* payload
(waveform samples on the accepted grid plus counting stats — what
:meth:`JobResult.to_dict` emits and the result cache stores, byte-stable
across reruns) and runtime-only fields (``elapsed``, ``cached``) that
never reach disk.
"""

from __future__ import annotations

import time
import traceback
from dataclasses import dataclass, field

from repro.errors import SimulationError
from repro.jobs.spec import JobSpec, apply_params
from repro.utils.options import SimOptions

#: Test/fault-injection hook: when set, called with the JobSpec at the
#: start of every execution (including inside worker processes, which see
#: it under the fork start method). Lets tests simulate worker crashes
#: and hangs without patching engine internals.
FAULT_HOOK = None

#: Stats fields copied into the deterministic result payload. Wall-clock
#: fields are deliberately absent: cached results must be byte-identical
#: across reruns on any host.
_STAT_FIELDS = (
    "accepted_points",
    "rejected_points",
    "newton_failures",
    "newton_iterations",
    "work_units",
)


@dataclass
class JobResult:
    """Outcome payload of one completed job.

    ``to_dict()``/``from_dict()`` carry only the deterministic part;
    ``elapsed`` (wall seconds) and ``cached`` (served from the result
    cache) are runtime annotations for scheduling and metrics rollups.
    """

    spec_hash: str
    label: str
    analysis: str
    final_time: float
    times: list[float]
    signals: dict[str, list[float]]
    stats: dict = field(default_factory=dict)
    elapsed: float = 0.0
    cached: bool = False

    def to_dict(self) -> dict:
        return {
            "spec_hash": self.spec_hash,
            "label": self.label,
            "analysis": self.analysis,
            "final_time": self.final_time,
            "times": self.times,
            "signals": self.signals,
            "stats": self.stats,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "JobResult":
        return cls(
            spec_hash=data["spec_hash"],
            label=data.get("label", ""),
            analysis=data.get("analysis", "transient"),
            final_time=data["final_time"],
            times=list(data["times"]),
            signals={k: list(v) for k, v in data["signals"].items()},
            stats=dict(data.get("stats") or {}),
        )


def execute_job(spec: JobSpec) -> JobResult:
    """Run one job in the current process and return its result.

    Raises whatever the engine raises (:class:`~repro.errors.ReproError`
    subclasses for simulation failures); the schedulers translate those
    into failed outcomes.
    """
    from repro.api import simulate

    if FAULT_HOOK is not None:
        FAULT_HOOK(spec)
    t0 = time.perf_counter()
    built = spec.circuit.build()
    circuit = apply_params(built.circuit, spec.params)
    tstop = spec.tstop if spec.tstop is not None else built.tstop
    if tstop is None or tstop <= 0:
        raise SimulationError(
            f"job {spec.label or spec.circuit.describe!r} has no tstop (neither "
            "the spec nor the circuit reference provides a transient window)"
        )
    tstep = spec.tstep if spec.tstep is not None else built.tstep
    options = built.options or SimOptions()
    if spec.options:
        options = options.replace(**spec.options)
    result = simulate(
        circuit,
        analysis=spec.analysis,
        tstop=tstop,
        tstep=tstep,
        options=options,
        threads=spec.threads,
        scheme=spec.scheme,
    )
    waveforms = result.waveforms
    names = list(spec.signals) if spec.signals is not None else None
    if names is None and built.signals is not None:
        names = list(built.signals)
    if names is None:
        names = [n for n in waveforms.names if n.startswith("v")]
    missing = [n for n in names if n not in waveforms]
    if missing:
        raise SimulationError(
            f"job {spec.label!r}: no trace(s) named {missing} in the result"
        )
    stats = result.stats
    stat_dump = {
        name: getattr(stats, name)
        for name in _STAT_FIELDS
        if getattr(stats, name, None) is not None
    }
    return JobResult(
        spec_hash=spec.content_hash(),
        label=spec.label,
        analysis=spec.analysis,
        final_time=float(result.final_time),
        times=[float(t) for t in waveforms.times],
        signals={n: [float(v) for v in waveforms[n].values] for n in names},
        stats=stat_dump,
        elapsed=time.perf_counter() - t0,
    )


def worker_main(conn, spec_dict: dict) -> None:
    """Child-process entry: run one job, ship the outcome over *conn*.

    Sends ``("ok", result_dict, elapsed)`` or ``("error", traceback_text,
    elapsed)``. Anything else the parent observes (EOF, nonzero exit)
    means the worker died mid-job — which fails that job only.
    """
    t0 = time.perf_counter()
    try:
        spec = JobSpec.from_dict(spec_dict)
        result = execute_job(spec)
        conn.send(("ok", result.to_dict(), result.elapsed))
    except BaseException:
        try:
            conn.send(("error", traceback.format_exc(), time.perf_counter() - t0))
        except (BrokenPipeError, OSError):  # parent gone: nothing to report
            pass
    finally:
        conn.close()
