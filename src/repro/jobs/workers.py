"""Job execution: build the circuit, run the analysis, package the result.

:func:`execute_job` is the single execution path shared by every backend —
the serial backend calls it inline, the process-pool backend calls it
inside a child process via :func:`worker_main`. Workers exchange only
JSON-safe dicts over their pipe, never live engine objects, so the parent
survives any child behaviour: a clean result, a raised exception (sent
back as a traceback string), or an outright process death (detected by
the backend as a closed pipe / nonzero exit code).

:class:`JobResult` is deliberately split into a *deterministic* payload
(waveform samples on the accepted grid plus counting stats — what
:meth:`JobResult.to_dict` emits and the result cache stores, byte-stable
across reruns) and runtime-only fields (``elapsed``, ``cached``) that
never reach disk.
"""

from __future__ import annotations

import contextlib
import signal
import time
import traceback
from dataclasses import dataclass, field

from repro.errors import SimulationError
from repro.instrument import Recorder, use_recorder
from repro.instrument.tracectx import TraceContext, use_trace
from repro.jobs.spec import JobSpec, apply_params
from repro.utils.options import SimOptions

#: Test/fault-injection hook: when set, called with the JobSpec at the
#: start of every execution (including inside worker processes, which see
#: it under the fork start method). Lets tests simulate worker crashes
#: and hangs without patching engine internals.
FAULT_HOOK = None

#: Stats fields copied into the deterministic result payload. Wall-clock
#: fields are deliberately absent: cached results must be byte-identical
#: across reruns on any host.
_STAT_FIELDS = (
    "accepted_points",
    "rejected_points",
    "newton_failures",
    "newton_iterations",
    "work_units",
    "lu_factors",
    "lu_refactors",
    "lu_solves",
    "lu_reuse_hits",
    "bypass_fallbacks",
)

#: Ring-buffer depth of a telemetry worker's event log: post-mortems need
#: the *last* events before a crash or timeout, not a whole-run trace.
TELEMETRY_EVENT_TAIL = 64


@dataclass
class JobResult:
    """Outcome payload of one completed job.

    ``to_dict()``/``from_dict()`` carry only the deterministic part;
    ``elapsed`` (wall seconds) and ``cached`` (served from the result
    cache) are runtime annotations for scheduling and metrics rollups.
    """

    spec_hash: str
    label: str
    analysis: str
    final_time: float
    times: list[float]
    signals: dict[str, list[float]]
    stats: dict = field(default_factory=dict)
    #: Deterministic recorder rollup of the job's own solver work
    #: (counters + histogram summaries, no wall-clock data), present only
    #: when the job ran under telemetry. Cached alongside the waveforms so
    #: a resumed campaign aggregates the same totals as a fresh one.
    telemetry: dict | None = None
    elapsed: float = 0.0
    cached: bool = False

    def to_dict(self) -> dict:
        out = {
            "spec_hash": self.spec_hash,
            "label": self.label,
            "analysis": self.analysis,
            "final_time": self.final_time,
            "times": self.times,
            "signals": self.signals,
            "stats": self.stats,
        }
        if self.telemetry is not None:
            out["telemetry"] = self.telemetry
        return out

    @classmethod
    def from_dict(cls, data: dict) -> "JobResult":
        return cls(
            spec_hash=data["spec_hash"],
            label=data.get("label", ""),
            analysis=data.get("analysis", "transient"),
            final_time=data["final_time"],
            times=list(data["times"]),
            signals={k: list(v) for k, v in data["signals"].items()},
            stats=dict(data.get("stats") or {}),
            telemetry=data.get("telemetry"),
        )


def deterministic_telemetry(recorder) -> dict | None:
    """The cacheable slice of a recorder's state, or None when inert.

    Counters and histogram summaries are pure counts / simulated-time
    quantities — byte-stable across reruns — so they may ride inside the
    deterministic result payload. Event records carry wall-clock
    timestamps and stay out; they travel separately (runtime-only) as the
    worker's ``events_tail`` snapshot.
    """
    if recorder is None or not getattr(recorder, "enabled", False):
        return None
    snap = recorder.snapshot()
    # Stringify histogram bucket keys so the payload equals its own JSON
    # roundtrip — cached results must replay byte-identical telemetry.
    histograms = {
        name: {
            **hist,
            "buckets": {str(k): v for k, v in hist.get("buckets", {}).items()},
        }
        for name, hist in snap["histograms"].items()
    }
    out = {
        "counters": snap["counters"],
        "histograms": histograms,
        "dropped_events": snap.get("dropped_events", 0),
    }
    # Span-path aggregates are pure counts + virtual work units, so they
    # are as cacheable as the counters; absent when the job traced no
    # spans to keep legacy payloads byte-identical.
    if snap.get("span_totals"):
        out["span_totals"] = snap["span_totals"]
    return out


def execute_job(spec: JobSpec, instrument=None) -> JobResult:
    """Run one job in the current process and return its result.

    With *instrument* (a recorder) the engine runs under it via
    :func:`use_recorder` — spec options travel as JSON and cannot carry a
    live recorder — and the result gains its deterministic telemetry
    rollup.

    Raises whatever the engine raises (:class:`~repro.errors.ReproError`
    subclasses for simulation failures); the schedulers translate those
    into failed outcomes.
    """
    from repro.api import simulate

    if FAULT_HOOK is not None:
        FAULT_HOOK(spec)
    t0 = time.perf_counter()
    built = spec.circuit.build()
    circuit = apply_params(built.circuit, spec.params)
    tstop = spec.tstop if spec.tstop is not None else built.tstop
    if tstop is None or tstop <= 0:
        raise SimulationError(
            f"job {spec.label or spec.circuit.describe!r} has no tstop (neither "
            "the spec nor the circuit reference provides a transient window)"
        )
    tstep = spec.tstep if spec.tstep is not None else built.tstep
    options = built.options or SimOptions()
    if spec.options:
        options = options.replace(**spec.options)
    sim_scope = (
        use_recorder(instrument) if instrument is not None else contextlib.nullcontext()
    )
    with sim_scope:
        result = simulate(
            circuit,
            analysis=spec.analysis,
            tstop=tstop,
            tstep=tstep,
            options=options,
            threads=spec.threads,
            scheme=spec.scheme,
        )
    waveforms = result.waveforms
    names = list(spec.signals) if spec.signals is not None else None
    if names is None and built.signals is not None:
        names = list(built.signals)
    if names is None:
        names = [n for n in waveforms.names if n.startswith("v")]
    missing = [n for n in names if n not in waveforms]
    if missing:
        raise SimulationError(
            f"job {spec.label!r}: no trace(s) named {missing} in the result"
        )
    stats = result.stats
    stat_dump = {
        name: getattr(stats, name)
        for name in _STAT_FIELDS
        if getattr(stats, name, None) is not None
    }
    return JobResult(
        spec_hash=spec.content_hash(),
        label=spec.label,
        analysis=spec.analysis,
        final_time=float(result.final_time),
        times=[float(t) for t in waveforms.times],
        signals={n: [float(v) for v in waveforms[n].values] for n in names},
        stats=stat_dump,
        telemetry=deterministic_telemetry(instrument),
        elapsed=time.perf_counter() - t0,
    )


class _Terminated(BaseException):
    """Raised by the worker's SIGTERM handler so the normal except path
    runs and ships a final telemetry snapshot before the process dies."""


def _on_sigterm(signum, frame):
    raise _Terminated(f"worker received signal {signum}")


def worker_main(
    conn, spec_dict: dict, telemetry: bool = False, trace=None
) -> None:
    """Child-process entry: run one job, ship the outcome over *conn*.

    Sends ``("ok", result_dict, elapsed, snapshot)`` or ``("error",
    traceback_text, elapsed, snapshot)``; *snapshot* is the worker
    recorder's portable snapshot (None with telemetry off). The snapshot
    rides on *every* outcome — including failures and the SIGTERM a
    parent-side timeout delivers — so the campaign rollup still sees the
    partial solver work of jobs that never finished. Anything else the
    parent observes (EOF, nonzero exit) means the worker died mid-job —
    which fails that job only.

    *trace* is the claimed job's trace-context dict, if any; it is bound
    as the ambient :func:`~repro.instrument.tracectx.current_trace` for
    the duration of the job so in-worker layers (fault hooks, future
    engine attribution) can see which request they are working for. It
    never enters the result payload — cached bytes stay identical no
    matter who asked.
    """
    recorder = (
        Recorder(max_events=TELEMETRY_EVENT_TAIL, evict="tail") if telemetry else None
    )

    def snapshot():
        if recorder is None:
            return None
        return recorder.snapshot(events_tail=TELEMETRY_EVENT_TAIL)

    t0 = time.perf_counter()
    try:
        signal.signal(signal.SIGTERM, _on_sigterm)
    except (ValueError, OSError):  # non-main thread / exotic platform
        pass
    send_in_flight = False
    try:
        spec = JobSpec.from_dict(spec_dict)
        with use_trace(TraceContext.from_dict(trace)):
            result = execute_job(spec, instrument=recorder)
        message = ("ok", result.to_dict(), result.elapsed, snapshot())
        send_in_flight = True
        conn.send(message)
        send_in_flight = False
    except BaseException:
        # If SIGTERM interrupted a send mid-frame, the pipe may already
        # hold a partial message; writing a second one would corrupt the
        # stream and crash the parent's recv. Stay silent in that case —
        # the parent treats a truncated/absent reply as a worker death.
        if not send_in_flight:
            try:
                conn.send(
                    (
                        "error",
                        traceback.format_exc(),
                        time.perf_counter() - t0,
                        snapshot(),
                    )
                )
            except (BrokenPipeError, OSError):  # parent gone: nothing to report
                pass
    finally:
        conn.close()
