"""Content-addressed result cache: spec hash -> stored JobResult JSON.

One file per result, named by the job spec's content hash, written
atomically (temp file + ``os.replace``) so a killed campaign never leaves
a torn entry behind — the checkpoint/resume story rests on this: a hash
either resolves to a complete, deterministic result or to nothing.

Because :meth:`~repro.jobs.workers.JobResult.to_dict` excludes all
wall-clock data and the JSON is dumped with sorted keys, a cache entry is
byte-identical no matter which run, worker process, or host produced it.
"""

from __future__ import annotations

import json
import os
from pathlib import Path

from repro.jobs.workers import JobResult


class ResultCache:
    """Directory of content-addressed job results."""

    def __init__(self, root) -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)

    def path(self, spec_hash: str) -> Path:
        return self.root / f"{spec_hash}.json"

    def __contains__(self, spec_hash: str) -> bool:
        return self.path(spec_hash).is_file()

    def __len__(self) -> int:
        return sum(1 for _ in self.root.glob("*.json"))

    def get(self, spec_hash: str) -> JobResult | None:
        """The stored result, or None when absent or unreadable.

        A corrupt entry (torn write from a hard kill predating the atomic
        rename, manual tampering) is treated as a miss and removed, so
        the job simply reruns.
        """
        path = self.path(spec_hash)
        try:
            with open(path, encoding="utf-8") as handle:
                data = json.load(handle)
            result = JobResult.from_dict(data)
        except FileNotFoundError:
            return None
        except (json.JSONDecodeError, KeyError, TypeError, ValueError):
            path.unlink(missing_ok=True)
            return None
        result.cached = True
        return result

    def put(self, result: JobResult) -> Path:
        """Store *result* under its spec hash (atomic, deterministic bytes)."""
        path = self.path(result.spec_hash)
        payload = json.dumps(result.to_dict(), sort_keys=True, indent=2) + "\n"
        tmp = path.with_suffix(f".tmp.{os.getpid()}")
        tmp.write_text(payload, encoding="utf-8")
        os.replace(tmp, path)
        return path

    def clear(self) -> int:
        """Delete every entry; returns the number removed."""
        removed = 0
        for entry in self.root.glob("*.json"):
            entry.unlink()
            removed += 1
        return removed
