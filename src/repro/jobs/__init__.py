"""Batch simulation service: job specs, scheduling, caching, campaigns.

``repro.jobs`` turns the single-run engine into a batch service (see
``docs/batch.md``):

* :class:`JobSpec` / :class:`CircuitRef` — JSON-serializable,
  content-hashable description of one simulation job
  (:mod:`repro.jobs.spec`).
* :class:`JobScheduler` with pluggable backends — in-process serial and
  a crash-isolated process pool with per-job timeouts and bounded retry
  (:mod:`repro.jobs.scheduler`).
* :class:`ResultCache` — content-addressed result store keyed by the
  sha256 of the canonical spec (:mod:`repro.jobs.cache`).
* :class:`CampaignStore` — on-disk manifest + cache enabling
  checkpoint/resume (:mod:`repro.jobs.store`).
* campaign generators — Monte Carlo, PVT corners, parameter sweeps —
  and :func:`run_campaign` (:mod:`repro.jobs.campaign`).

Quick start::

    from repro.jobs import JobSpec, CircuitRef, monte_carlo, run_campaign

    base = JobSpec(circuit=CircuitRef(kind="registry", name="rectifier"))
    campaign = monte_carlo(base, n=16, seed=7, jitter=0.05)
    result = run_campaign(campaign, store="out/rectifier-mc",
                          backend="process", workers=4)
    print(result.summary())
"""

from repro.jobs.cache import ResultCache
from repro.jobs.campaign import (
    CORNERS,
    Campaign,
    CampaignResult,
    monte_carlo,
    param_sweep,
    pvt_corners,
    rollup_metrics,
    run_campaign,
    single,
)
from repro.jobs.scheduler import (
    BACKENDS,
    JobOutcome,
    JobScheduler,
    ProcessPoolBackend,
    SerialBackend,
    make_backend,
)
from repro.jobs.spec import (
    CIRCUIT_KINDS,
    JOB_ANALYSES,
    CircuitRef,
    JobSpec,
    apply_params,
    jitterable_params,
)
from repro.jobs.store import JOB_STATUSES, MANIFEST_VERSION, CampaignStore
from repro.jobs.workers import (
    TELEMETRY_EVENT_TAIL,
    JobResult,
    deterministic_telemetry,
    execute_job,
)

__all__ = [
    "JobSpec",
    "CircuitRef",
    "JOB_ANALYSES",
    "CIRCUIT_KINDS",
    "jitterable_params",
    "apply_params",
    "JobResult",
    "execute_job",
    "deterministic_telemetry",
    "TELEMETRY_EVENT_TAIL",
    "ResultCache",
    "CampaignStore",
    "MANIFEST_VERSION",
    "JOB_STATUSES",
    "JobScheduler",
    "JobOutcome",
    "SerialBackend",
    "ProcessPoolBackend",
    "make_backend",
    "BACKENDS",
    "Campaign",
    "CampaignResult",
    "CORNERS",
    "monte_carlo",
    "pvt_corners",
    "param_sweep",
    "single",
    "rollup_metrics",
    "run_campaign",
]
