"""Job scheduling: pluggable backends, timeouts, retries, crash recovery.

The :class:`JobScheduler` turns a list of :class:`~repro.jobs.spec.JobSpec`
into :class:`JobOutcome` records. It owns the *policy* — result-cache
consultation, bounded retry with exponential backoff, instrumentation —
and delegates the *mechanism* of running jobs to a backend:

* :class:`SerialBackend` executes jobs in-process, in order. The
  deterministic reference, and the fastest option for tiny campaigns
  (no process start-up cost).
* :class:`ProcessPoolBackend` runs up to ``workers`` jobs concurrently,
  **one fresh process per job**. Unlike a shared pool
  (``concurrent.futures`` breaks the whole pool when a worker dies),
  process-per-job gives hard isolation for free: a crashing or hanging
  worker fails only its own job. Per-job wall-clock timeouts are
  enforced by the parent (the worker is terminated), and because jobs
  run in separate interpreters the GIL never serialises them — this is
  the axis of parallelism orthogonal to WavePipe's intra-run pipelining.

Workers receive specs as JSON-safe dicts and reply over a pipe (see
:mod:`repro.jobs.workers`), so nothing about a circuit or engine object
needs to survive pickling.
"""

from __future__ import annotations

import multiprocessing
import time
from collections import deque
from dataclasses import dataclass
from multiprocessing import connection as mp_connection

from repro.errors import SimulationError
from repro.instrument.events import JOB_RUN
from repro.instrument.recorder import Recorder, resolve_recorder
from repro.instrument.tracectx import TraceContext, use_trace
from repro.jobs.spec import JobSpec
from repro.jobs.workers import (
    TELEMETRY_EVENT_TAIL,
    JobResult,
    execute_job,
    worker_main,
)

#: Upper bound on one supervisor wait; keeps timeout enforcement and new
#: job dispatch responsive even when no pipe becomes ready.
_POLL_INTERVAL = 0.2

#: After terminating a timed-out worker, how long to wait for the final
#: message its SIGTERM handler sends (the partial telemetry snapshot).
#: Also bounds the post-terminate join: the handler only runs between
#: Python bytecodes, so a worker stuck in a native call (LAPACK, a
#: blocking pipe write) never sees SIGTERM and must be SIGKILLed.
_TERMINATE_GRACE = 0.5

#: Backend registry keys accepted by :func:`make_backend`.
BACKENDS = ("serial", "process", "ensemble")


@dataclass
class JobOutcome:
    """Final (or latest-attempt) state of one scheduled job."""

    spec: JobSpec
    spec_hash: str
    status: str  # done | cached | failed | timeout | crashed
    result: JobResult | None = None
    error: str | None = None
    attempts: int = 0
    elapsed: float = 0.0
    #: Portable recorder snapshot of the job's own solver work, when the
    #: scheduler ran under telemetry: live worker snapshots for executed
    #: jobs (including failures/timeouts), the cached deterministic
    #: rollup for cache hits, None otherwise.
    telemetry: dict | None = None

    @property
    def ok(self) -> bool:
        return self.status in ("done", "cached")


class SerialBackend:
    """In-process, in-order execution (no timeout enforcement)."""

    kind = "serial"
    workers = 1

    def run(
        self, indexed_specs, timeout, emit, telemetry: bool = False, trace=None
    ) -> None:
        for index, spec in indexed_specs:
            recorder = (
                Recorder(max_events=TELEMETRY_EVENT_TAIL, evict="tail")
                if telemetry
                else None
            )

            def snapshot():
                if recorder is None:
                    return None
                return recorder.snapshot(events_tail=TELEMETRY_EVENT_TAIL)

            ctx = TraceContext.from_dict((trace or {}).get(index))
            t0 = time.perf_counter()
            try:
                with use_trace(ctx):
                    result = execute_job(spec, instrument=recorder)
            except Exception as exc:
                emit(index, "error", f"{type(exc).__name__}: {exc}",
                     time.perf_counter() - t0, snapshot())
            else:
                emit(index, "ok", result, result.elapsed, snapshot())

    def close(self) -> None:
        pass


def _reap(process) -> None:
    """Join a terminated worker, escalating to SIGKILL when needed.

    The worker's SIGTERM handler only runs between Python bytecodes, so a
    child stuck in a long native call (scipy/LAPACK factorization) or
    blocked mid ``conn.send`` never exits on terminate(); an unbounded
    join here would hang the supervisor on the very timeout it is
    enforcing.
    """
    process.join(_TERMINATE_GRACE)
    if process.is_alive():
        process.kill()
        process.join()


def _race_won_result(message) -> JobResult | None:
    """The finished result inside a grace-poll message, if any.

    A job that completes just as its deadline expires has a full
    ``("ok", ...)`` reply in the pipe when the timeout fires; settling it
    as done keeps the work instead of re-running it on retry.
    """
    if message is None or len(message) < 4 or message[0] != "ok":
        return None
    try:
        result = JobResult.from_dict(message[1])
    except Exception:
        return None
    result.elapsed = message[2]
    return result


class ProcessPoolBackend:
    """Concurrent process-per-job execution with per-job timeouts.

    Args:
        workers: max concurrently running worker processes.
        start_method: multiprocessing start method; defaults to ``fork``
            where available (fast, shares the warmed-up interpreter) and
            falls back to ``spawn``.
    """

    kind = "process"

    def __init__(self, workers: int, start_method: str | None = None):
        if workers < 1:
            raise SimulationError(
                f"ProcessPoolBackend needs workers >= 1, got {workers}"
            )
        self.workers = workers
        methods = multiprocessing.get_all_start_methods()
        if start_method is None:
            start_method = "fork" if "fork" in methods else "spawn"
        elif start_method not in methods:
            raise SimulationError(
                f"start method {start_method!r} unavailable (have {methods})"
            )
        self.start_method = start_method
        self._ctx = multiprocessing.get_context(start_method)

    def run(
        self, indexed_specs, timeout, emit, telemetry: bool = False, trace=None
    ) -> None:
        pending = deque(indexed_specs)
        running: dict = {}  # reader conn -> [index, process, started]
        try:
            while pending or running:
                while pending and len(running) < self.workers:
                    index, spec = pending.popleft()
                    reader, writer = self._ctx.Pipe(duplex=False)
                    process = self._ctx.Process(
                        target=worker_main,
                        args=(
                            writer,
                            spec.to_dict(),
                            telemetry,
                            (trace or {}).get(index),
                        ),
                        daemon=True,
                    )
                    process.start()
                    writer.close()  # parent keeps only the read end
                    running[reader] = [index, process, time.monotonic()]

                wait_for = _POLL_INTERVAL
                if timeout is not None and running:
                    next_deadline = min(
                        started + timeout for _, _, started in running.values()
                    )
                    wait_for = min(wait_for, max(next_deadline - time.monotonic(), 0.0))
                for reader in mp_connection.wait(list(running), timeout=wait_for):
                    index, process, started = running.pop(reader)
                    self._finish(reader, index, process, started, emit)

                if timeout is not None:
                    now = time.monotonic()
                    expired = [
                        reader
                        for reader, (_, _, started) in running.items()
                        if now - started > timeout
                    ]
                    for reader in expired:
                        index, process, started = running.pop(reader)
                        process.terminate()
                        # The worker's SIGTERM handler ships one last
                        # ("error", ..., snapshot) message — unless the
                        # job finished just as the deadline hit, in which
                        # case a complete ("ok", ...) is already in the
                        # pipe. Any malformed/truncated frame reads as no
                        # message at all.
                        message = None
                        try:
                            if reader.poll(_TERMINATE_GRACE):
                                message = reader.recv()
                        except Exception:
                            message = None
                        _reap(process)
                        reader.close()
                        result = _race_won_result(message)
                        if result is not None:
                            emit(index, "ok", result, result.elapsed, message[3])
                            continue
                        snapshot = (
                            message[3]
                            if message is not None and len(message) >= 4
                            else None
                        )
                        emit(
                            index,
                            "timeout",
                            f"job exceeded {timeout:g}s wall-clock timeout",
                            now - started,
                            snapshot,
                        )
        finally:
            # A raised callback or KeyboardInterrupt must not leak workers.
            for reader, (_, process, _) in running.items():
                process.terminate()
                _reap(process)
                reader.close()

    @staticmethod
    def _finish(reader, index, process, started, emit) -> None:
        """Collect one finished worker: clean result, error, or death.

        Any failure to read a well-formed message — EOF, a torn pipe, a
        partial frame left by a signal-interrupted send (unpickling /
        struct errors), a wrong-shape tuple — counts as a crash of *this*
        job only; it must never abort the whole scheduler run.
        """
        try:
            status, payload, elapsed, snapshot = reader.recv()
        except Exception:
            if process.is_alive():  # sent garbage but didn't exit
                process.terminate()
            _reap(process)
            emit(
                index,
                "crash",
                f"worker process died (exit code {process.exitcode})",
                time.monotonic() - started,
            )
            return
        finally:
            reader.close()
        process.join()
        if status == "ok":
            result = JobResult.from_dict(payload)
            result.elapsed = elapsed
            emit(index, "ok", result, elapsed, snapshot)
        else:
            emit(index, "error", payload, elapsed, snapshot)

    def close(self) -> None:
        pass


def make_backend(kind, workers: int = 1):
    """Backend factory: a :data:`BACKENDS` name or a ready instance."""
    if not isinstance(kind, str):
        return kind
    if kind == "serial":
        return SerialBackend()
    if kind == "process":
        return ProcessPoolBackend(workers)
    if kind == "ensemble":
        # Imported lazily: the backend pulls in the whole ensemble engine.
        from repro.jobs.ensemble import EnsembleBackend

        return EnsembleBackend()
    raise SimulationError(f"unknown backend {kind!r}; expected one of {BACKENDS}")


#: emit() statuses -> outcome statuses + failure counter names.
_FAILURE_STATUS = {
    "error": ("failed", "jobs.failed"),
    "timeout": ("timeout", "jobs.timeouts"),
    "crash": ("crashed", "jobs.crashes"),
}


class JobScheduler:
    """Cache-aware, retrying front end over a job backend.

    Args:
        backend: a :data:`BACKENDS` name or backend instance.
        workers: worker count used when *backend* is a name.
        cache: optional :class:`~repro.jobs.cache.ResultCache`; hits skip
            execution entirely.
        timeout: per-job wall-clock limit in seconds (process backend
            only; the serial backend cannot preempt a running solve).
        retries: additional attempts granted to failed/timed-out/crashed
            jobs (0 disables retry).
        backoff: base delay in seconds before retry round *k*, growing
            as ``backoff * 2**(k-1)``.
        instrument: optional Recorder for ``jobs.*`` counters and
            per-job :data:`~repro.instrument.events.JOB_RUN` events.
    """

    def __init__(
        self,
        backend="serial",
        workers: int = 1,
        cache=None,
        timeout: float | None = None,
        retries: int = 1,
        backoff: float = 0.0,
        instrument=None,
    ):
        if retries < 0:
            raise SimulationError("retries must be >= 0")
        if timeout is not None and timeout <= 0:
            raise SimulationError("timeout must be positive (or None)")
        self.backend = make_backend(backend, workers)
        self.cache = cache
        self.timeout = timeout
        self.retries = retries
        self.backoff = backoff
        self.instrument = instrument

    def run(
        self, specs: list[JobSpec], on_outcome=None, trace=None
    ) -> list[JobOutcome]:
        """Execute *specs*; returns one outcome per spec, in order.

        *on_outcome* is called with each :class:`JobOutcome` as it is
        (re)determined — including failures that will still be retried —
        which is the hook campaign checkpointing uses to rewrite its
        manifest incrementally.

        *trace* maps spec content hashes to trace-context dicts (see
        :mod:`repro.instrument.tracectx`). A traced job's ``job_run``
        span carries the trace id and tenant, and the worker's span
        snapshot is re-parented *under* that span at merge — which is
        what lets a stitched service trace show worker solve internals
        as children of the request that caused them.
        """
        rec = resolve_recorder(self.instrument)
        outcomes: list[JobOutcome | None] = [None] * len(specs)
        attempts = [0] * len(specs)
        trace_by_index: dict[int, dict] = {}

        def settle(index: int, outcome: JobOutcome, snapshot=None) -> None:
            outcomes[index] = outcome
            if rec.enabled:
                # A closed span rather than a bare event: it nests under
                # the campaign_run span (same thread) and carries the
                # job's serial work as its cost, which is what the
                # explain critical-path pass ranks jobs by.
                elapsed = float(outcome.elapsed or 0.0)
                stats = outcome.result.stats if outcome.result is not None else {}
                end = rec.clock()
                extra = {}
                ctx = trace_by_index.get(index)
                if ctx:
                    extra = {
                        "trace_id": ctx.get("trace_id"),
                        "tenant": ctx.get("tenant", "default"),
                    }
                sid = rec.emit_span(
                    JOB_RUN,
                    ts=end - elapsed,
                    dur=elapsed,
                    outcome=outcome.status,
                    cost=float((stats or {}).get("work_units", 0.0)),
                    label=outcome.spec.label,
                    status=outcome.status,
                    attempts=outcome.attempts,
                    hash=outcome.spec_hash[:12],
                    **extra,
                )
                # The worker's solver spans land *inside* the job_run
                # interval: the span was emitted to end now with the
                # measured elapsed, and every worker event happened
                # within that window, so rebasing the tail to end at the
                # same instant keeps temporal nesting valid.
                if snapshot:
                    rec.merge(snapshot, parent=sid, at=end)
            if on_outcome is not None:
                on_outcome(outcome)

        to_run: list[int] = []
        for index, spec in enumerate(specs):
            spec_hash = spec.content_hash()
            ctx = (trace or {}).get(spec_hash)
            if ctx:
                trace_by_index[index] = ctx
            cached = self.cache.get(spec_hash) if self.cache is not None else None
            if cached is not None:
                rec.count("jobs.cache_hits")
                # A cached result carries the deterministic telemetry of
                # the run that produced it; merging it keeps campaign
                # rollups identical between fresh and resumed runs.
                if rec.enabled and cached.telemetry:
                    rec.merge(cached.telemetry)
                settle(
                    index,
                    JobOutcome(
                        spec,
                        spec_hash,
                        "cached",
                        result=cached,
                        telemetry=cached.telemetry,
                    ),
                )
            else:
                rec.count("jobs.cache_misses")
                to_run.append(index)

        rec.count("jobs.submitted", len(to_run))
        round_index = 0
        while to_run and round_index <= self.retries:
            if round_index > 0:
                rec.count("jobs.retries", len(to_run))
                delay = self.backoff * (2 ** (round_index - 1))
                if delay > 0:
                    time.sleep(delay)
            failed_this_round: list[int] = []

            def emit(
                index: int, status: str, payload, elapsed: float, snapshot=None
            ) -> None:
                spec = specs[index]
                attempts[index] += 1
                # The worker's solver work is folded into the campaign
                # recorder inside settle() — after the job_run span
                # exists, so the worker tree re-parents under it —
                # whatever the outcome: failed and timed-out jobs burned
                # real Newton iterations too.
                if status == "ok":
                    result: JobResult = payload
                    if self.cache is not None:
                        self.cache.put(result)
                    rec.count("jobs.completed")
                    settle(
                        index,
                        JobOutcome(
                            spec,
                            result.spec_hash,
                            "done",
                            result=result,
                            attempts=attempts[index],
                            elapsed=elapsed,
                            telemetry=snapshot,
                        ),
                        snapshot=snapshot,
                    )
                    return
                outcome_status, counter = _FAILURE_STATUS[status]
                rec.count(counter)
                failed_this_round.append(index)
                settle(
                    index,
                    JobOutcome(
                        spec,
                        spec.content_hash(),
                        outcome_status,
                        error=str(payload),
                        attempts=attempts[index],
                        elapsed=elapsed,
                        telemetry=snapshot,
                    ),
                    snapshot=snapshot,
                )

            run_kwargs: dict = {"telemetry": rec.enabled}
            # The trace kwarg is only passed when there is something to
            # propagate, so third-party backends with the pre-trace run()
            # signature keep working for untraced schedules.
            run_trace = {
                index: trace_by_index[index]
                for index in to_run
                if index in trace_by_index
            }
            if run_trace:
                run_kwargs["trace"] = run_trace
            self.backend.run(
                [(index, specs[index]) for index in to_run],
                self.timeout,
                emit,
                **run_kwargs,
            )
            # Jobs the backend never reported (defensive): mark failed.
            for index in to_run:
                if attempts[index] == 0 and outcomes[index] is None:
                    rec.count("jobs.failed")
                    settle(
                        index,
                        JobOutcome(
                            specs[index],
                            specs[index].content_hash(),
                            "failed",
                            error="backend returned no outcome for this job",
                        ),
                    )
            to_run = failed_this_round
            round_index += 1
        return outcomes  # type: ignore[return-value]

    def close(self) -> None:
        self.backend.close()

    def __enter__(self) -> "JobScheduler":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
