"""Job specifications: what one batch simulation is, as pure data.

A :class:`JobSpec` pins down one simulation completely — which circuit,
which analysis, which options, which component-parameter overrides — as a
JSON-serializable record. Two properties make the batch service work:

* **Portable**: a spec travels to a worker process as a plain dict and is
  rebuilt there (:meth:`JobSpec.from_dict`), so the process-pool backend
  never pickles live circuit or engine objects.
* **Content-hashable**: :meth:`JobSpec.content_hash` digests the
  canonical JSON form (sorted keys, label excluded), giving the
  result cache its address: same physics in, same hash out, regardless
  of labels or the order fields were supplied in.

Circuits are *referenced*, not embedded as objects, via
:class:`CircuitRef`: a registry benchmark name, a verbatim SPICE deck, or
a seeded draw from the :mod:`repro.verify.generators` families. All three
rebuild deterministically anywhere.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
from dataclasses import dataclass, field

from repro.circuit.circuit import Circuit
from repro.circuit.components import (
    Bjt,
    Capacitor,
    Diode,
    Inductor,
    Mosfet,
    Resistor,
)
from repro.errors import SimulationError
from repro.utils.options import SimOptions

#: Analyses a job may run. Batch campaigns are transient workloads — the
#: scalar analyses (dc/ac) have no waveform payload worth caching yet.
JOB_ANALYSES = ("transient", "wavepipe")

#: Circuit reference kinds understood by :meth:`CircuitRef.build`.
CIRCUIT_KINDS = ("registry", "netlist", "verify")


@dataclass(frozen=True)
class BuiltCircuit:
    """A circuit materialised from a :class:`CircuitRef`, plus defaults."""

    circuit: Circuit
    tstop: float | None = None
    tstep: float | None = None
    options: SimOptions | None = None
    signals: tuple[str, ...] | None = None


@dataclass(frozen=True)
class CircuitRef:
    """Rebuildable reference to one circuit.

    Attributes:
        kind: ``registry`` (benchmark name), ``netlist`` (verbatim deck
            text), or ``verify`` (seeded generator-family draw).
        name: registry benchmark key (``kind="registry"``).
        netlist: SPICE deck text (``kind="netlist"``).
        seed: generator seed (``kind="verify"``).
        families: optional family restriction for verify draws.
    """

    kind: str
    name: str | None = None
    netlist: str | None = None
    seed: int | None = None
    families: tuple[str, ...] | None = None

    def __post_init__(self) -> None:
        if self.kind not in CIRCUIT_KINDS:
            raise SimulationError(
                f"unknown circuit ref kind {self.kind!r}; expected one of {CIRCUIT_KINDS}"
            )
        if self.kind == "registry" and not self.name:
            raise SimulationError("registry circuit ref requires name=")
        if self.kind == "netlist" and not self.netlist:
            raise SimulationError("netlist circuit ref requires netlist= deck text")
        if self.kind == "verify" and self.seed is None:
            raise SimulationError("verify circuit ref requires seed=")
        if self.families is not None and not isinstance(self.families, tuple):
            object.__setattr__(self, "families", tuple(self.families))

    @property
    def describe(self) -> str:
        if self.kind == "registry":
            return self.name
        if self.kind == "netlist":
            first = self.netlist.strip().splitlines()[0] if self.netlist.strip() else "deck"
            return f"deck:{first[:32]}"
        return f"verify[seed={self.seed}]"

    def build(self) -> BuiltCircuit:
        """Materialise the referenced circuit (with its native defaults)."""
        if self.kind == "registry":
            from repro.circuits.registry import get_benchmark

            try:
                bench = get_benchmark(self.name)
            except KeyError as exc:
                raise SimulationError(str(exc)) from None
            return BuiltCircuit(
                circuit=bench.build(),
                tstop=bench.tstop,
                tstep=bench.tstep,
                options=bench.options,
                signals=tuple(bench.signals),
            )
        if self.kind == "netlist":
            from repro.netlist.parser import TranCommand, parse_netlist

            netlist = parse_netlist(self.netlist)
            tran = next(
                (c for c in netlist.analyses if isinstance(c, TranCommand)), None
            )
            return BuiltCircuit(
                circuit=netlist.circuit,
                tstop=tran.tstop if tran else None,
                tstep=tran.tstep if tran else None,
                options=netlist.options,
            )
        from repro.verify.generators import draw_circuit

        families = sorted(self.families) if self.families else None
        generated = draw_circuit(self.seed, families=families)
        return BuiltCircuit(circuit=generated.circuit, tstop=generated.tstop)

    def to_dict(self) -> dict:
        out: dict = {"kind": self.kind}
        if self.name is not None:
            out["name"] = self.name
        if self.netlist is not None:
            out["netlist"] = self.netlist
        if self.seed is not None:
            out["seed"] = self.seed
        if self.families is not None:
            out["families"] = list(self.families)
        return out

    @classmethod
    def from_dict(cls, data: dict) -> "CircuitRef":
        families = data.get("families")
        return cls(
            kind=data["kind"],
            name=data.get("name"),
            netlist=data.get("netlist"),
            seed=data.get("seed"),
            families=tuple(families) if families is not None else None,
        )


#: Component types whose headline parameter Monte Carlo / corner
#: generators may perturb, mapped to the perturbed field name.
PARAM_FIELDS = {
    Resistor: "resistance",
    Capacitor: "capacitance",
    Inductor: "inductance",
    Diode: "area",
    Bjt: "area",
    Mosfet: "w",
}


def jitterable_params(circuit: Circuit) -> dict[str, float]:
    """Component name -> nominal value, for every perturbable component."""
    out: dict[str, float] = {}
    for comp in circuit.components:
        fieldname = PARAM_FIELDS.get(type(comp))
        if fieldname is not None:
            out[comp.name] = float(getattr(comp, fieldname))
    return out


def apply_params(circuit: Circuit, params: dict[str, float]) -> Circuit:
    """Copy of *circuit* with the named component values replaced.

    Unknown component names or non-perturbable component types raise
    :class:`SimulationError` — a campaign must never silently simulate
    the nominal circuit while believing it perturbed something.
    """
    if not params:
        return circuit
    remaining = dict(params)
    out = Circuit(title=circuit.title)
    for comp in circuit.components:
        if comp.name in remaining:
            fieldname = PARAM_FIELDS.get(type(comp))
            if fieldname is None:
                raise SimulationError(
                    f"component {comp.name!r} ({type(comp).__name__}) has no "
                    "perturbable value parameter"
                )
            comp = dataclasses.replace(
                comp, **{fieldname: float(remaining.pop(comp.name))}
            )
        out.add(comp)
    if remaining:
        raise SimulationError(
            f"param override(s) name unknown component(s): {sorted(remaining)}"
        )
    return out


@dataclass(frozen=True)
class JobSpec:
    """One batch simulation, fully specified as JSON-safe data.

    Attributes:
        circuit: the :class:`CircuitRef` to rebuild and simulate.
        analysis: ``transient`` or ``wavepipe``.
        label: human-facing job name — *excluded* from the content hash,
            so relabelling a campaign never invalidates its cache.
        tstop / tstep: transient window/step; None defers to the
            circuit ref's native defaults (registry window, ``.tran``
            card).
        scheme / threads: WavePipe scheme and worker count (wavepipe
            analysis only).
        options: :class:`SimOptions` field overrides applied on top of
            the ref's native options (plain JSON values).
        params: component name -> absolute value overrides (the Monte
            Carlo / corner jitter channel).
        signals: trace names to record in the result; None records the
            ref's signals-of-interest, falling back to all node voltages.
    """

    circuit: CircuitRef
    analysis: str = "transient"
    label: str = ""
    tstop: float | None = None
    tstep: float | None = None
    scheme: str | None = None
    threads: int = 1
    options: dict = field(default_factory=dict)
    params: dict = field(default_factory=dict)
    signals: tuple[str, ...] | None = None

    def __post_init__(self) -> None:
        if self.analysis not in JOB_ANALYSES:
            raise SimulationError(
                f"unknown job analysis {self.analysis!r}; expected one of {JOB_ANALYSES}"
            )
        if self.threads < 1:
            raise SimulationError("job threads must be >= 1")
        if self.tstop is not None and self.tstop <= 0:
            raise SimulationError("job tstop must be > 0")
        if self.signals is not None and not isinstance(self.signals, tuple):
            object.__setattr__(self, "signals", tuple(self.signals))
        # Validate option overrides eagerly: a bad knob should fail at
        # campaign build time, not inside a worker process.
        if self.options:
            try:
                SimOptions().replace(**self.options)
            except TypeError as exc:
                raise SimulationError(f"invalid job option override: {exc}") from None

    # -- serialization -----------------------------------------------------------

    def to_dict(self) -> dict:
        return {
            "circuit": self.circuit.to_dict(),
            "analysis": self.analysis,
            "label": self.label,
            "tstop": self.tstop,
            "tstep": self.tstep,
            "scheme": self.scheme,
            "threads": self.threads,
            "options": dict(self.options),
            "params": dict(self.params),
            "signals": list(self.signals) if self.signals is not None else None,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "JobSpec":
        signals = data.get("signals")
        return cls(
            circuit=CircuitRef.from_dict(data["circuit"]),
            analysis=data.get("analysis", "transient"),
            label=data.get("label", ""),
            tstop=data.get("tstop"),
            tstep=data.get("tstep"),
            scheme=data.get("scheme"),
            threads=data.get("threads", 1),
            options=dict(data.get("options") or {}),
            params=dict(data.get("params") or {}),
            signals=tuple(signals) if signals is not None else None,
        )

    def canonical_dict(self) -> dict:
        """The content-defining fields only (no label)."""
        out = self.to_dict()
        del out["label"]
        return out

    def canonical_json(self) -> str:
        """Deterministic JSON form the content hash digests."""
        return json.dumps(
            self.canonical_dict(), sort_keys=True, separators=(",", ":")
        )

    def content_hash(self) -> str:
        """sha256 hex digest of the canonical spec (the cache address)."""
        return hashlib.sha256(self.canonical_json().encode("utf-8")).hexdigest()

    def derive(self, **changes) -> "JobSpec":
        """Copy with *changes* applied (validated like a fresh spec)."""
        return dataclasses.replace(self, **changes)
