"""SPICE netlist parser.

Supports the deck subset a transient-simulation paper's benchmarks need:

* first line is the title (SPICE convention); ``*`` comment lines,
  ``$``/``;`` inline comments, ``+`` continuation lines;
* elements: R, C, L (with ``ic=``), V, I (DC / PULSE / SIN / PWL / EXP),
  E, G, F, H, D, M (``w=``/``l=``), Q, K (coupled inductors), X
  (subcircuit instances);
* cards: ``.model`` (d / nmos / pmos / npn / pnp), ``.subckt``/``.ends``,
  ``.param``, ``.tran``, ``.dc``, ``.op``, ``.options``, ``.end``;
* values: engineering suffixes (``1k``, ``2.5u``) and ``{...}``
  expressions over ``.param`` definitions.

Everything is case-insensitive except node and component names, which
keep their case (matching ngspice's practical behaviour for readability).
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field

from repro.circuit.circuit import Circuit, Subcircuit
from repro.circuit.components import BjtModel, DiodeModel, MosfetModel
from repro.circuit.sources import Dc, Exp, Pulse, Pwl, Sin, SourceWaveform
from repro.errors import NetlistError
from repro.netlist.expressions import evaluate
from repro.utils.options import SimOptions
from repro.utils.units import parse_value


@dataclass(frozen=True)
class TranCommand:
    """``.tran tstep tstop``"""

    tstep: float
    tstop: float


@dataclass(frozen=True)
class DcCommand:
    """``.dc source start stop step``"""

    source: str
    start: float
    stop: float
    step: float


@dataclass(frozen=True)
class OpCommand:
    """``.op``"""


@dataclass
class Netlist:
    """Parse result: circuit + requested analyses + options."""

    title: str
    circuit: Circuit
    analyses: list = field(default_factory=list)
    options: SimOptions = field(default_factory=SimOptions)
    models: dict[str, object] = field(default_factory=dict)
    subcircuits: dict[str, Subcircuit] = field(default_factory=dict)

    @property
    def tran(self) -> TranCommand | None:
        for a in self.analyses:
            if isinstance(a, TranCommand):
                return a
        return None


_INLINE_COMMENT_RE = re.compile(r"[$;].*$")


def _logical_lines(text: str) -> list[tuple[int, str]]:
    """Join continuations, strip comments; returns (line_number, card)."""
    raw = text.splitlines()
    lines: list[tuple[int, str]] = []
    for number, line in enumerate(raw, start=1):
        line = _INLINE_COMMENT_RE.sub("", line).rstrip()
        if not line.strip():
            continue
        stripped = line.lstrip()
        if stripped.startswith("*"):
            continue
        if stripped.startswith("+"):
            if not lines:
                raise NetlistError("continuation line with nothing to continue", number)
            prev_no, prev = lines[-1]
            lines[-1] = (prev_no, prev + " " + stripped[1:].strip())
        else:
            lines.append((number, stripped))
    return lines


_TOKEN_RE = re.compile(r"\{[^}]*\}|\(|\)|=|[^\s()=]+")


def _tokenize(card: str) -> list[str]:
    return _TOKEN_RE.findall(card)


class _ParamScope:
    """Case-insensitive parameter table with expression evaluation."""

    def __init__(self):
        self.values: dict[str, float] = {}

    def define(self, name: str, text: str, line: int) -> None:
        self.values[name.lower()] = self.number(text, line)

    def number(self, text: str, line: int) -> float:
        try:
            if text.startswith("{") and text.endswith("}"):
                return evaluate(text[1:-1], self.values)
            return parse_value(text)
        except NetlistError:
            raise
        except Exception as exc:
            raise NetlistError(f"bad value {text!r}: {exc}", line) from None


class NetlistParser:
    """Single-use parser; :func:`parse_netlist` is the public entry."""

    def __init__(self, text: str):
        self.lines = _logical_lines(text)
        if not self.lines:
            raise NetlistError("empty netlist")
        self.params = _ParamScope()
        self.models: dict[str, object] = {}
        self.subcircuits: dict[str, Subcircuit] = {}
        self.analyses: list = []
        self.option_values: dict[str, float | str] = {}

    def parse(self) -> Netlist:
        first_no, first = self.lines[0]
        body = self.lines[1:]
        if first.startswith("."):
            raise NetlistError(
                "first line must be the title (SPICE convention); found a dot card",
                first_no,
            )
        title = first
        circuit = Circuit(title=title)

        # Pass 1: collect .param and .model cards wherever they appear —
        # SPICE treats both as global and order-independent with respect
        # to the elements that use them (.param stays order-dependent
        # with respect to other .param definitions).
        for number, card in body:
            lowered = card.lower()
            if lowered.startswith(".param"):
                self._card_param(number, _tokenize(card))
            elif lowered.startswith(".model"):
                self._card_model(number, _tokenize(card))

        index = 0
        while index < len(body):
            number, card = body[index]
            lowered = card.lower()
            if lowered.startswith(".subckt"):
                index = self._parse_subcircuit(body, index)
                continue
            if lowered == ".end":
                break
            if lowered.startswith(".param") or lowered.startswith(".model"):
                index += 1  # handled in pass 1
                continue
            self._parse_card(circuit, number, card)
            index += 1

        options = self._build_options()
        return Netlist(
            title=title,
            circuit=circuit,
            analyses=self.analyses,
            options=options,
            models=self.models,
            subcircuits=self.subcircuits,
        )

    # -- cards -------------------------------------------------------------------

    def _parse_card(self, circuit: Circuit, number: int, card: str) -> None:
        if card.startswith("."):
            self._parse_dot_card(number, card)
            return
        tokens = _tokenize(card)
        name = tokens[0]
        kind = name[0].upper()
        handler = {
            "R": self._element_rcl,
            "C": self._element_rcl,
            "L": self._element_rcl,
            "V": self._element_source,
            "I": self._element_source,
            "E": self._element_vcxs,
            "G": self._element_vcxs,
            "F": self._element_ccxs,
            "H": self._element_ccxs,
            "D": self._element_diode,
            "M": self._element_mosfet,
            "Q": self._element_bjt,
            "K": self._element_mutual,
            "X": self._element_subckt,
        }.get(kind)
        if handler is None:
            raise NetlistError(f"unknown element type {name!r}", number)
        handler(circuit, number, tokens)

    def _keyword_args(self, tokens: list[str], number: int) -> tuple[list[str], dict[str, float]]:
        """Split tokens into positional part and key=value tail."""
        positional: list[str] = []
        kwargs: dict[str, float] = {}
        i = 0
        while i < len(tokens):
            if i + 2 < len(tokens) + 1 and i + 1 < len(tokens) and tokens[i + 1] == "=":
                if i + 2 >= len(tokens):
                    raise NetlistError(f"dangling '=' after {tokens[i]!r}", number)
                kwargs[tokens[i].lower()] = self.params.number(tokens[i + 2], number)
                i += 3
            else:
                positional.append(tokens[i])
                i += 1
        return positional, kwargs

    def _element_rcl(self, circuit: Circuit, number: int, tokens: list[str]) -> None:
        positional, kwargs = self._keyword_args(tokens, number)
        if len(positional) != 4:
            raise NetlistError(
                f"{positional[0]}: expected 'name n1 n2 value'", number
            )
        name, a, b, value_text = positional
        value = self.params.number(value_text, number)
        ic = kwargs.pop("ic", None)
        if kwargs:
            raise NetlistError(f"{name}: unknown parameter(s) {sorted(kwargs)}", number)
        kind = name[0].upper()
        if kind == "R":
            if ic is not None:
                raise NetlistError(f"{name}: resistors take no ic", number)
            circuit.add_resistor(name, a, b, value)
        elif kind == "C":
            circuit.add_capacitor(name, a, b, value, ic=ic)
        else:
            circuit.add_inductor(name, a, b, value, ic=ic)

    def _element_source(self, circuit: Circuit, number: int, tokens: list[str]) -> None:
        name, plus, minus = tokens[0], tokens[1], tokens[2]
        waveform = self._parse_waveform(tokens[3:], number, name)
        if name[0].upper() == "V":
            circuit.add_vsource(name, plus, minus, waveform)
        else:
            circuit.add_isource(name, plus, minus, waveform)

    def _parse_waveform(self, rest: list[str], number: int, name: str) -> SourceWaveform:
        if not rest:
            return Dc(0.0)
        head = rest[0].lower()
        if head == "dc":
            if len(rest) < 2:
                raise NetlistError(f"{name}: DC needs a value", number)
            return Dc(self.params.number(rest[1], number))
        shapes = {"pulse": Pulse, "sin": Sin, "pwl": Pwl, "exp": Exp}
        if head in shapes:
            args = self._paren_args(rest[1:], number, name)
            return self._build_shape(head, args, number, name)
        if len(rest) == 1:
            return Dc(self.params.number(rest[0], number))
        raise NetlistError(f"{name}: cannot parse source specification {rest!r}", number)

    def _paren_args(self, tokens: list[str], number: int, name: str) -> list[float]:
        if not tokens or tokens[0] != "(":
            raise NetlistError(f"{name}: expected '(' after waveform keyword", number)
        if ")" not in tokens:
            raise NetlistError(f"{name}: missing ')' in waveform", number)
        close = tokens.index(")")
        return [self.params.number(t, number) for t in tokens[1:close]]

    def _build_shape(self, head: str, args: list[float], number: int, name: str):
        try:
            if head == "pulse":
                defaults = [0.0, 0.0, 0.0, 1e-12, 1e-12, 1e-9, None]
                filled = args + defaults[len(args):]
                return Pulse(
                    v1=filled[0], v2=filled[1], delay=filled[2],
                    rise=filled[3] or 1e-12, fall=filled[4] or 1e-12,
                    width=filled[5], period=filled[6],
                )
            if head == "sin":
                defaults = [0.0, 0.0, 1e3, 0.0, 0.0]
                filled = args + defaults[len(args):]
                return Sin(
                    offset=filled[0], amplitude=filled[1], freq=filled[2],
                    delay=filled[3], theta=filled[4],
                )
            if head == "exp":
                defaults = [0.0, 0.0, 0.0, 1e-9, 1e-9, 1e-9]
                filled = args + defaults[len(args):]
                return Exp(*filled)
            # PWL: flat (t, v) list
            if len(args) % 2 != 0 or not args:
                raise NetlistError(f"{name}: PWL needs (t v) pairs", number)
            pairs = tuple(zip(args[0::2], args[1::2]))
            return Pwl(pairs)
        except NetlistError:
            raise
        except Exception as exc:
            raise NetlistError(f"{name}: bad {head.upper()} waveform: {exc}", number) from None

    def _element_vcxs(self, circuit: Circuit, number: int, tokens: list[str]) -> None:
        if len(tokens) != 6:
            raise NetlistError(f"{tokens[0]}: expected 'name p m cp cm gain'", number)
        name, p, m, cp, cm, gain = tokens
        value = self.params.number(gain, number)
        if name[0].upper() == "E":
            circuit.add_vcvs(name, p, m, cp, cm, value)
        else:
            circuit.add_vccs(name, p, m, cp, cm, value)

    def _element_ccxs(self, circuit: Circuit, number: int, tokens: list[str]) -> None:
        if len(tokens) != 5:
            raise NetlistError(f"{tokens[0]}: expected 'name p m vsource gain'", number)
        name, p, m, vname, gain = tokens
        value = self.params.number(gain, number)
        if name[0].upper() == "F":
            circuit.add_cccs(name, p, m, vname, value)
        else:
            circuit.add_ccvs(name, p, m, vname, value)

    def _element_diode(self, circuit: Circuit, number: int, tokens: list[str]) -> None:
        positional, kwargs = self._keyword_args(tokens, number)
        if len(positional) not in (4, 5):
            raise NetlistError(f"{positional[0]}: expected 'name a c model [area]'", number)
        name, anode, cathode, model_name = positional[:4]
        model = self._lookup_model(model_name, DiodeModel, number)
        area = (
            self.params.number(positional[4], number)
            if len(positional) == 5
            else kwargs.pop("area", 1.0)
        )
        circuit.add_diode(name, anode, cathode, model, area=float(area))

    def _element_mosfet(self, circuit: Circuit, number: int, tokens: list[str]) -> None:
        positional, kwargs = self._keyword_args(tokens, number)
        if len(positional) != 6:
            raise NetlistError(f"{positional[0]}: expected 'name d g s b model'", number)
        name, d, g, s, b, model_name = positional
        model = self._lookup_model(model_name, MosfetModel, number)
        w = kwargs.pop("w", 1e-6)
        length = kwargs.pop("l", 1e-6)
        if kwargs:
            raise NetlistError(f"{name}: unknown parameter(s) {sorted(kwargs)}", number)
        circuit.add_mosfet(name, d, g, s, b, model, w=w, l=length)

    def _element_bjt(self, circuit: Circuit, number: int, tokens: list[str]) -> None:
        positional, kwargs = self._keyword_args(tokens, number)
        if len(positional) not in (5, 6):
            raise NetlistError(f"{positional[0]}: expected 'name c b e model [area]'", number)
        name, c, b, e, model_name = positional[:5]
        model = self._lookup_model(model_name, BjtModel, number)
        area = (
            self.params.number(positional[5], number)
            if len(positional) == 6
            else kwargs.pop("area", 1.0)
        )
        circuit.add_bjt(name, c, b, e, model, area=float(area))

    def _element_mutual(self, circuit: Circuit, number: int, tokens: list[str]) -> None:
        if len(tokens) != 4:
            raise NetlistError(f"{tokens[0]}: expected 'Kname L1 L2 k'", number)
        name, l1, l2, k = tokens
        try:
            circuit.add_mutual(name, l1, l2, self.params.number(k, number))
        except NetlistError:
            raise
        except Exception as exc:
            raise NetlistError(f"{name}: {exc}", number) from None

    def _element_subckt(self, circuit: Circuit, number: int, tokens: list[str]) -> None:
        if len(tokens) < 3:
            raise NetlistError(f"{tokens[0]}: expected 'Xname nodes... subckt'", number)
        name, *middle, sub_name = tokens
        sub = self.subcircuits.get(sub_name.lower())
        if sub is None:
            raise NetlistError(f"{name}: unknown subcircuit {sub_name!r}", number)
        if len(middle) != len(sub.ports):
            raise NetlistError(
                f"{name}: subcircuit {sub_name!r} has {len(sub.ports)} port(s), "
                f"got {len(middle)} connection(s)",
                number,
            )
        circuit.add_subcircuit(name, sub, dict(zip(sub.ports, middle)))

    def _lookup_model(self, model_name: str, expected_type, number: int):
        model = self.models.get(model_name.lower())
        if model is None:
            raise NetlistError(f"unknown model {model_name!r}", number)
        if not isinstance(model, expected_type):
            raise NetlistError(
                f"model {model_name!r} is a {type(model).__name__}, "
                f"expected {expected_type.__name__}",
                number,
            )
        return model

    # -- dot cards ------------------------------------------------------------------

    def _parse_dot_card(self, number: int, card: str) -> None:
        tokens = _tokenize(card)
        keyword = tokens[0].lower()
        if keyword == ".model":
            self._card_model(number, tokens)
        elif keyword == ".param":
            self._card_param(number, tokens)
        elif keyword == ".tran":
            self._card_tran(number, tokens)
        elif keyword == ".dc":
            self._card_dc(number, tokens)
        elif keyword == ".op":
            self.analyses.append(OpCommand())
        elif keyword == ".options" or keyword == ".option":
            self._card_options(number, tokens)
        elif keyword == ".ends":
            raise NetlistError(".ends without matching .subckt", number)
        else:
            raise NetlistError(f"unknown card {tokens[0]!r}", number)

    _MODEL_BUILDERS = {
        "d": (DiodeModel, {"is": "is_", "n": "n", "rs": "rs", "cj0": "cj0", "cjo": "cj0", "vj": "vj", "m": "m", "tt": "tt"}),
        "nmos": (MosfetModel, {"vto": "vto", "kp": "kp", "lambda": "lambda_", "gamma": "gamma", "phi": "phi", "cox": "cox", "cgso": "cgso", "cgdo": "cgdo"}),
        "pmos": (MosfetModel, {"vto": "vto", "kp": "kp", "lambda": "lambda_", "gamma": "gamma", "phi": "phi", "cox": "cox", "cgso": "cgso", "cgdo": "cgdo"}),
        "npn": (BjtModel, {"is": "is_", "bf": "bf", "br": "br", "vaf": "vaf", "cje": "cje", "cjc": "cjc", "tf": "tf"}),
        "pnp": (BjtModel, {"is": "is_", "bf": "bf", "br": "br", "vaf": "vaf", "cje": "cje", "cjc": "cjc", "tf": "tf"}),
    }

    def _card_model(self, number: int, tokens: list[str]) -> None:
        if len(tokens) < 3:
            raise NetlistError(".model needs a name and a type", number)
        name, type_name = tokens[1], tokens[2].lower()
        builder = self._MODEL_BUILDERS.get(type_name)
        if builder is None:
            raise NetlistError(f"unknown model type {tokens[2]!r}", number)
        cls, aliases = builder
        rest = [t for t in tokens[3:] if t not in ("(", ")")]
        kwargs: dict[str, object] = {"name": name}
        if type_name in ("nmos", "pmos"):
            kwargs["polarity"] = type_name
        if type_name in ("npn", "pnp"):
            kwargs["polarity"] = type_name
        i = 0
        while i < len(rest):
            if i + 2 < len(rest) + 1 and i + 1 < len(rest) and rest[i + 1] == "=":
                key = rest[i].lower()
                if key not in aliases:
                    raise NetlistError(
                        f"model {name}: unknown parameter {rest[i]!r}", number
                    )
                kwargs[aliases[key]] = self.params.number(rest[i + 2], number)
                i += 3
            else:
                raise NetlistError(
                    f"model {name}: expected key=value, found {rest[i]!r}", number
                )
        try:
            self.models[name.lower()] = cls(**kwargs)
        except Exception as exc:
            raise NetlistError(f"model {name}: {exc}", number) from None

    def _card_param(self, number: int, tokens: list[str]) -> None:
        rest = tokens[1:]
        i = 0
        while i < len(rest):
            if i + 1 < len(rest) and rest[i + 1] == "=":
                if i + 2 >= len(rest):
                    raise NetlistError(f".param: dangling '=' after {rest[i]!r}", number)
                self.params.define(rest[i], rest[i + 2], number)
                i += 3
            else:
                raise NetlistError(f".param: expected name=value, found {rest[i]!r}", number)

    def _card_tran(self, number: int, tokens: list[str]) -> None:
        if len(tokens) < 3:
            raise NetlistError(".tran needs tstep and tstop", number)
        tstep = self.params.number(tokens[1], number)
        tstop = self.params.number(tokens[2], number)
        if tstop <= 0 or tstep <= 0:
            raise NetlistError(".tran times must be positive", number)
        self.analyses.append(TranCommand(tstep, tstop))

    def _card_dc(self, number: int, tokens: list[str]) -> None:
        if len(tokens) != 5:
            raise NetlistError(".dc needs 'source start stop step'", number)
        self.analyses.append(
            DcCommand(
                tokens[1],
                self.params.number(tokens[2], number),
                self.params.number(tokens[3], number),
                self.params.number(tokens[4], number),
            )
        )

    def _card_options(self, number: int, tokens: list[str]) -> None:
        rest = tokens[1:]
        i = 0
        while i < len(rest):
            if i + 1 < len(rest) and rest[i + 1] == "=":
                if i + 2 >= len(rest):
                    raise NetlistError(f".options: dangling '=' after {rest[i]!r}", number)
                key = rest[i].lower()
                value_text = rest[i + 2]
                if key == "method":
                    self.option_values[key] = value_text.lower()
                else:
                    self.option_values[key] = self.params.number(value_text, number)
                i += 3
            else:
                raise NetlistError(
                    f".options: expected key=value, found {rest[i]!r}", number
                )

    def _build_options(self) -> SimOptions:
        known = {
            "reltol", "abstol", "vntol", "chgtol", "gmin", "trtol", "method",
            "max_step",
        }
        kwargs = {}
        for key, value in self.option_values.items():
            if key not in known:
                raise NetlistError(f".options: unsupported option {key!r}")
            kwargs[key] = value
        try:
            return SimOptions(**kwargs)
        except Exception as exc:
            raise NetlistError(f".options: {exc}") from None

    # -- subcircuits ---------------------------------------------------------------

    def _parse_subcircuit(self, body, index: int) -> int:
        number, card = body[index]
        tokens = _tokenize(card)
        if len(tokens) < 3:
            raise NetlistError(".subckt needs a name and at least one port", number)
        sub_name, ports = tokens[1], tokens[2:]
        sub = Subcircuit(sub_name, ports)
        index += 1
        while index < len(body):
            inner_no, inner = body[index]
            lowered = inner.lower()
            if lowered.startswith(".subckt"):
                raise NetlistError("nested .subckt is not supported", inner_no)
            if lowered == ".ends" or lowered.startswith(".ends "):
                self.subcircuits[sub_name.lower()] = sub
                return index + 1
            if lowered == ".end":
                break  # deck ended inside the block: report missing .ends
            if lowered.startswith(".param") or lowered.startswith(".model"):
                index += 1  # handled in the global pre-pass
                continue
            self._parse_card(sub.circuit, inner_no, inner)
            index += 1
        raise NetlistError(f".subckt {sub_name} missing .ends", number)


def parse_netlist(text: str) -> Netlist:
    """Parse a SPICE deck into a :class:`Netlist`."""
    return NetlistParser(text).parse()


def parse_file(path) -> Netlist:
    """Parse a deck from disk."""
    with open(path, "r", encoding="utf-8") as handle:
        return parse_netlist(handle.read())
