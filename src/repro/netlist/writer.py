"""Netlist writer: emit a SPICE deck from a :class:`Circuit`.

The inverse of :mod:`repro.netlist.parser`, used to persist
programmatically built circuits (including the benchmark generators) as
decks the CLI — or any other SPICE — can consume. Model cards are
deduplicated by content; a round trip through
:func:`~repro.netlist.parser.parse_netlist` reproduces an equivalent
circuit (same components, nodes, values and waveforms).
"""

from __future__ import annotations

import dataclasses
import io
import math

from repro.circuit.circuit import Circuit
from repro.circuit.components import (
    Bjt,
    Capacitor,
    Cccs,
    Ccvs,
    CurrentSource,
    Diode,
    Inductor,
    Mosfet,
    MutualInductance,
    Resistor,
    Vccs,
    Vcvs,
    VoltageSource,
)
from repro.circuit.sources import Dc, Exp, Pulse, Pwl, Sin
from repro.errors import NetlistError

#: Model-card fields worth emitting, keyed by model class name:
#: (deck keyword, attribute, default-to-skip).
_MODEL_FIELDS = {
    "DiodeModel": [
        ("is", "is_", 1e-14), ("n", "n", 1.0), ("rs", "rs", 0.0),
        ("cj0", "cj0", 0.0), ("vj", "vj", 1.0), ("m", "m", 0.5), ("tt", "tt", 0.0),
    ],
    "MosfetModel": [
        ("vto", "vto", None), ("kp", "kp", None), ("lambda", "lambda_", 0.0),
        ("gamma", "gamma", 0.0), ("phi", "phi", 0.65), ("cox", "cox", 3.45e-3),
        ("cgso", "cgso", 0.0), ("cgdo", "cgdo", 0.0),
    ],
    "BjtModel": [
        ("is", "is_", None), ("bf", "bf", None), ("br", "br", 1.0),
        ("vaf", "vaf", math.inf), ("cje", "cje", 0.0), ("cjc", "cjc", 0.0),
        ("tf", "tf", 0.0),
    ],
}


def _num(value: float) -> str:
    """Compact exact-roundtrip number formatting."""
    return repr(float(value))


def _waveform_text(waveform) -> str:
    if isinstance(waveform, Dc):
        return _num(waveform.level)
    if isinstance(waveform, Pulse):
        parts = [waveform.v1, waveform.v2, waveform.delay, waveform.rise,
                 waveform.fall, waveform.width]
        if waveform.period is not None:
            parts.append(waveform.period)
        return "PULSE(" + " ".join(_num(p) for p in parts) + ")"
    if isinstance(waveform, Sin):
        parts = [waveform.offset, waveform.amplitude, waveform.freq,
                 waveform.delay, waveform.theta]
        return "SIN(" + " ".join(_num(p) for p in parts) + ")"
    if isinstance(waveform, Exp):
        parts = [waveform.v1, waveform.v2, waveform.td1, waveform.tau1,
                 waveform.td2, waveform.tau2]
        return "EXP(" + " ".join(_num(p) for p in parts) + ")"
    if isinstance(waveform, Pwl):
        flat = [x for point in waveform.points for x in point]
        return "PWL(" + " ".join(_num(p) for p in flat) + ")"
    raise NetlistError(
        f"waveform type {type(waveform).__name__} has no deck representation"
    )


class _ModelTable:
    """Deduplicates model cards by content; assigns deck names."""

    def __init__(self):
        self._by_content: dict[tuple, str] = {}
        self.cards: list[str] = []

    def name_for(self, model, deck_type: str) -> str:
        fields = _MODEL_FIELDS[type(model).__name__]
        content = (deck_type,) + tuple(
            getattr(model, attr) for _, attr, _ in fields
        )
        if content in self._by_content:
            return self._by_content[content]
        name = f"{deck_type}_{len(self._by_content)}"
        self._by_content[content] = name
        params = []
        for keyword, attr, default in fields:
            value = getattr(model, attr)
            if default is not None and value == default:
                continue
            if isinstance(value, float) and math.isinf(value):
                continue  # e.g. vaf=inf means "disabled": omit
            params.append(f"{keyword}={_num(value)}")
        self.cards.append(f".model {name} {deck_type} " + " ".join(params))
        return name


def write_netlist(
    circuit: Circuit,
    target=None,
    tran: tuple[float, float] | None = None,
) -> str:
    """Serialise *circuit* as a SPICE deck.

    Args:
        target: optional path or text file object to write to.
        tran: optional ``(tstep, tstop)`` pair emitted as a ``.tran`` card.

    Returns:
        The deck text (also when *target* is given).
    """
    models = _ModelTable()
    element_lines: list[str] = []

    for comp in circuit.components:
        name = comp.name.replace(" ", "_")
        if isinstance(comp, Resistor):
            element_lines.append(f"{name} {comp.a} {comp.b} {_num(comp.resistance)}")
        elif isinstance(comp, Capacitor):
            suffix = f" ic={_num(comp.ic)}" if comp.ic is not None else ""
            element_lines.append(
                f"{name} {comp.a} {comp.b} {_num(comp.capacitance)}{suffix}"
            )
        elif isinstance(comp, Inductor):
            suffix = f" ic={_num(comp.ic)}" if comp.ic is not None else ""
            element_lines.append(
                f"{name} {comp.a} {comp.b} {_num(comp.inductance)}{suffix}"
            )
        elif isinstance(comp, VoltageSource):
            element_lines.append(
                f"{name} {comp.plus} {comp.minus} {_waveform_text(comp.waveform)}"
            )
        elif isinstance(comp, CurrentSource):
            element_lines.append(
                f"{name} {comp.plus} {comp.minus} {_waveform_text(comp.waveform)}"
            )
        elif isinstance(comp, Vcvs):
            element_lines.append(
                f"{name} {comp.plus} {comp.minus} {comp.ctrl_plus} "
                f"{comp.ctrl_minus} {_num(comp.gain)}"
            )
        elif isinstance(comp, Vccs):
            element_lines.append(
                f"{name} {comp.plus} {comp.minus} {comp.ctrl_plus} "
                f"{comp.ctrl_minus} {_num(comp.transconductance)}"
            )
        elif isinstance(comp, Cccs):
            element_lines.append(
                f"{name} {comp.plus} {comp.minus} {comp.ctrl_source} {_num(comp.gain)}"
            )
        elif isinstance(comp, Ccvs):
            element_lines.append(
                f"{name} {comp.plus} {comp.minus} {comp.ctrl_source} "
                f"{_num(comp.transresistance)}"
            )
        elif isinstance(comp, Diode):
            model = models.name_for(comp.model, "d")
            element_lines.append(
                f"{name} {comp.anode} {comp.cathode} {model} {_num(comp.area)}"
            )
        elif isinstance(comp, Mosfet):
            model = models.name_for(comp.model, comp.model.polarity)
            element_lines.append(
                f"{name} {comp.drain} {comp.gate} {comp.source} {comp.bulk} "
                f"{model} w={_num(comp.w)} l={_num(comp.l)}"
            )
        elif isinstance(comp, MutualInductance):
            element_lines.append(
                f"{name} {comp.inductor1} {comp.inductor2} {_num(comp.coupling)}"
            )
        elif isinstance(comp, Bjt):
            model = models.name_for(comp.model, comp.model.polarity)
            element_lines.append(
                f"{name} {comp.collector} {comp.base} {comp.emitter} "
                f"{model} {_num(comp.area)}"
            )
        else:
            raise NetlistError(
                f"component type {type(comp).__name__} has no deck representation"
            )

    buffer = io.StringIO()
    buffer.write(f"{circuit.title}\n")
    for card in models.cards:
        buffer.write(card + "\n")
    for line in element_lines:
        buffer.write(line + "\n")
    if tran is not None:
        tstep, tstop = tran
        buffer.write(f".tran {_num(tstep)} {_num(tstop)}\n")
    buffer.write(".end\n")
    text = buffer.getvalue()

    if target is not None:
        if hasattr(target, "write"):
            target.write(text)
        else:
            with open(target, "w", encoding="utf-8") as handle:
                handle.write(text)
    return text


def roundtrip(circuit: Circuit) -> Circuit:
    """Serialise and re-parse *circuit* (testing/diagnostic helper)."""
    from repro.netlist.parser import parse_netlist

    return parse_netlist(write_netlist(circuit)).circuit


def _equivalent_component(a, b) -> bool:
    """Structural equality modulo model-card names."""
    if type(a) is not type(b) or a.nodes != b.nodes:
        return False
    for field in dataclasses.fields(a):
        va, vb = getattr(a, field.name), getattr(b, field.name)
        if dataclasses.is_dataclass(va):
            named_a = dataclasses.asdict(va)
            named_b = dataclasses.asdict(vb)
            named_a.pop("name", None), named_b.pop("name", None)
            if named_a != named_b:
                return False
        elif va != vb:
            return False
    return True
