"""SPICE deck front-end: parser, expression evaluator, writer."""
