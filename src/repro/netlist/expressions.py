"""Arithmetic expression evaluation for netlist parameters.

SPICE decks parameterise values with ``.param`` and ``{...}`` expressions:

    .param vdd=1.8 half={vdd/2}
    R1 a b {2*rload}

The evaluator is a small recursive-descent parser over ``+ - * / **``,
parentheses, numeric literals with engineering suffixes, parameter names,
and a few safe functions (min, max, abs, sqrt, exp, log, sin, cos). No
Python ``eval`` — deck content is untrusted input.
"""

from __future__ import annotations

import math
import re

from repro.errors import NetlistError
from repro.utils.units import parse_value

_TOKEN_RE = re.compile(
    r"\s*(?:"
    r"(?P<number>(?:\d+\.?\d*|\.\d+)(?:[eE][+-]?\d+)?[a-zA-Z]*)"
    r"|(?P<name>[A-Za-z_][A-Za-z_0-9]*)"
    r"|(?P<op>\*\*|[()+\-*/,])"
    r")"
)

FUNCTIONS = {
    "min": min,
    "max": max,
    "abs": abs,
    "sqrt": math.sqrt,
    "exp": math.exp,
    "log": math.log,
    "log10": math.log10,
    "sin": math.sin,
    "cos": math.cos,
    "tan": math.tan,
    "atan": math.atan,
    "pow": pow,
}

CONSTANTS = {"pi": math.pi, "e": math.e}


class _Tokens:
    def __init__(self, text: str):
        self.items: list[tuple[str, str]] = []
        pos = 0
        while pos < len(text):
            match = _TOKEN_RE.match(text, pos)
            if match is None or match.end() == pos:
                if text[pos:].strip():
                    raise NetlistError(f"bad expression near {text[pos:]!r}")
                break
            pos = match.end()
            for kind in ("number", "name", "op"):
                value = match.group(kind)
                if value is not None:
                    self.items.append((kind, value))
                    break
        self.index = 0

    def peek(self) -> tuple[str, str] | None:
        return self.items[self.index] if self.index < len(self.items) else None

    def pop(self) -> tuple[str, str]:
        item = self.peek()
        if item is None:
            raise NetlistError("unexpected end of expression")
        self.index += 1
        return item

    def accept(self, op: str) -> bool:
        item = self.peek()
        if item is not None and item == ("op", op):
            self.index += 1
            return True
        return False

    def expect(self, op: str) -> None:
        if not self.accept(op):
            found = self.peek()
            raise NetlistError(f"expected {op!r}, found {found[1] if found else 'end'!r}")


def evaluate(text: str, params: dict[str, float] | None = None) -> float:
    """Evaluate expression *text* with parameter substitutions."""
    params = params or {}
    tokens = _Tokens(text)
    value = _parse_sum(tokens, params)
    if tokens.peek() is not None:
        raise NetlistError(f"trailing junk in expression: {tokens.peek()[1]!r}")
    return value


def _parse_sum(tokens: _Tokens, params) -> float:
    value = _parse_product(tokens, params)
    while True:
        if tokens.accept("+"):
            value += _parse_product(tokens, params)
        elif tokens.accept("-"):
            value -= _parse_product(tokens, params)
        else:
            return value


def _parse_product(tokens: _Tokens, params) -> float:
    value = _parse_power(tokens, params)
    while True:
        if tokens.accept("*"):
            value *= _parse_power(tokens, params)
        elif tokens.accept("/"):
            divisor = _parse_power(tokens, params)
            if divisor == 0:
                raise NetlistError("division by zero in expression")
            value /= divisor
        else:
            return value


def _parse_power(tokens: _Tokens, params) -> float:
    base = _parse_unary(tokens, params)
    if tokens.accept("**"):
        return base ** _parse_power(tokens, params)  # right-associative
    return base


def _parse_unary(tokens: _Tokens, params) -> float:
    if tokens.accept("-"):
        return -_parse_unary(tokens, params)
    if tokens.accept("+"):
        return _parse_unary(tokens, params)
    return _parse_atom(tokens, params)


def _parse_atom(tokens: _Tokens, params) -> float:
    kind, text = tokens.pop()
    if kind == "number":
        return parse_value(text)
    if kind == "name":
        if tokens.accept("("):
            func = FUNCTIONS.get(text.lower())
            if func is None:
                raise NetlistError(f"unknown function {text!r}")
            args = [_parse_sum(tokens, params)]
            while tokens.accept(","):
                args.append(_parse_sum(tokens, params))
            tokens.expect(")")
            try:
                return float(func(*args))
            except (ValueError, TypeError) as exc:
                raise NetlistError(f"error in {text}(): {exc}") from None
        lowered = text.lower()
        if lowered in params:
            return params[lowered]
        if lowered in CONSTANTS:
            return CONSTANTS[lowered]
        raise NetlistError(f"unknown parameter {text!r}")
    if kind == "op" and text == "(":
        value = _parse_sum(tokens, params)
        tokens.expect(")")
        return value
    raise NetlistError(f"unexpected token {text!r} in expression")
