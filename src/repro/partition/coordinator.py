"""WTM coordinator: Gauss-Jacobi/Seidel outer iterations over partitions.

The Waveform Transmission Method (PAPERS.md, arXiv 0911.1166) is the
circuit-axis complement to WavePipe's time-axis pipelining: the circuit
is cut at weak couplings (see :mod:`repro.partition.partitioner`), each
partition is transient-simulated over the window with its neighbours'
boundary voltages frozen at the last iterate (see
:mod:`repro.partition.boundary`), and the exchange repeats until the
boundary waveforms reach a fixed point. Because every partition solve is
an ordinary engine run, each one can itself be pipelined with the
existing :func:`repro.core.wavepipe.run_wavepipe` schemes — the two
parallelism axes compose, which is the whole point of the subsystem.

Cost accounting runs on the shared :class:`~repro.parallel.clock.VirtualClock`
model: in ``jacobi`` mode the partition solves of one outer iteration are
concurrent, so the stage charges ``max`` of the per-partition virtual
costs (plus sync overhead); ``seidel`` mode consumes in-iteration updates
and is charged serially, trading parallelism for roughly half the outer
iterations. Windowing splits ``[0, tstop]`` into successive sub-windows
iterated to convergence one at a time — shorter windows tighten the
fixed-point contraction and bound how far a wrong boundary iterate can
propagate before being corrected.

Convergence is residual-based: the largest boundary-node waveform change
between consecutive iterates, normalised per node by its signal scale.
Non-convergence is never silent — ``strict`` (the default) raises
:class:`~repro.errors.ConvergenceError`, and ``strict=False`` returns a
result whose ``converged`` flag and residual history say exactly what
happened.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field

import numpy as np

from repro.circuit.circuit import Circuit
from repro.circuit.components import Inductor, MutualInductance
from repro.core.wavepipe import run_wavepipe
from repro.engine.transient import run_transient
from repro.errors import ConvergenceError, SimulationError
from repro.instrument.events import (
    WTM_OUTER_ITER,
    WTM_PARTITION,
    WTM_RUN,
    WTM_WINDOW,
)
from repro.instrument.recorder import resolve_recorder
from repro.parallel.clock import VirtualClock
from repro.parallel.executors import StageExecutor, make_executor
from repro.partition.boundary import (
    BoundarySource,
    BoundaryWaveform,
    build_partition_circuit,
)
from repro.partition.partitioner import PartitionManifest, partition_circuit
from repro.utils.options import SimOptions
from repro.waveform.waveform import WaveformSet

#: Default relative tolerance on the boundary-waveform residual. One
#: notch below the oracle's "loose" rung so a converged run's remaining
#: fixed-point error stays inside the 1e-3 classification budget.
WTM_TOL = 5e-4

#: Residual normalisation floor (V): a boundary node whose waveform is
#: essentially flat at 0 V is scaled by this instead of its swing.
_SCALE_FLOOR = 1e-9

_MODES = ("jacobi", "seidel")


@dataclass
class WtmStats:
    """Work accounting of one WTM run.

    Attributes:
        clock: virtual clock the outer iterations were charged on.
        dc_work_units: work of the full-circuit DC solve seeding the
            initial iterate (charged serially on both totals).
        outer_iterations: outer iterations summed over all windows.
        partition_solves: individual partition transients executed.
        windows: time windows the run was split into.
    """

    clock: VirtualClock
    dc_work_units: float = 0.0
    outer_iterations: int = 0
    partition_solves: int = 0
    windows: int = 1

    @property
    def virtual_total(self) -> float:
        """Virtual-clock cost with concurrent partition solves."""
        return self.clock.virtual_work + self.dc_work_units

    @property
    def serial_total(self) -> float:
        """Total engine work as if every solve ran on one core."""
        return self.clock.serial_work + self.dc_work_units

    @property
    def total_work(self) -> float:
        """Alias for :attr:`serial_total` (TransientStats compatibility)."""
        return self.serial_total

    def speedup_against(self, serial_reference: float) -> float:
        """Virtual speedup of this run against a serial reference cost."""
        return self.clock.speedup_against(
            serial_reference - self.dc_work_units
        ) if self.virtual_total > 0 else 0.0


@dataclass
class WtmResult:
    """Outcome of one WTM partitioned transient.

    Attributes:
        waveforms: converged (or last) iterate on the common grid.
        times: the common sample grid.
        stats: virtual/serial work accounting.
        converged: every window reached the residual tolerance.
        residuals: per-outer-iteration boundary residuals, all windows
            concatenated in execution order.
        window_iterations: outer iterations each window used.
        manifest: the decomposition the run executed.
        mode: ``"jacobi"`` or ``"seidel"``.
        windows: window count.
        relax: under-relaxation factor applied to boundary updates.
    """

    waveforms: WaveformSet
    times: np.ndarray
    stats: WtmStats
    converged: bool
    residuals: list[float] = field(default_factory=list)
    window_iterations: list[int] = field(default_factory=list)
    manifest: PartitionManifest | None = None
    mode: str = "seidel"
    windows: int = 1
    relax: float = 1.0
    metrics: object | None = None

    @property
    def final_time(self) -> float:
        return float(self.times[-1])

    @property
    def partitions(self) -> int:
        return len(self.manifest) if self.manifest is not None else 1

    @property
    def outer_iterations(self) -> int:
        return self.stats.outer_iterations


def _has_branch_state(circuit: Circuit) -> bool:
    """True when the circuit carries state ``node_ics`` cannot express."""
    return any(
        isinstance(comp, (Inductor, MutualInductance))
        for comp in circuit.components
    )


def _sample_grid(circuit: Circuit, tstop: float, grid_points: int) -> np.ndarray:
    """Uniform grid over ``[0, tstop]`` with source breakpoints spliced in.

    The iterate is piecewise linear between samples, so a waveform corner
    (a Pulse edge start/stop, a Pwl knot) falling between two uniform
    samples would be clipped by up to ``slope * dt / 2`` — an error the
    adaptive monolithic reference does not make because its step control
    lands on source breakpoints exactly. Splicing the breakpoints into
    the grid removes that corner error from every boundary exchange and
    from the returned waveforms.
    """
    grid = np.linspace(0.0, tstop, grid_points)
    extra: set[float] = set()
    for comp in circuit.components:
        waveform = getattr(comp, "waveform", None)
        if waveform is None:
            continue
        for t in waveform.breakpoints(tstop):
            if 0.0 < t < tstop:
                extra.add(float(t))
    if not extra:
        return grid
    merged = np.union1d(grid, np.array(sorted(extra)))
    # Drop near-duplicates: a breakpoint within dt/1e6 of a uniform
    # sample would make np.diff collapse toward zero.
    keep = np.concatenate(
        ([True], np.diff(merged) > tstop / (grid_points - 1) * 1e-6)
    )
    merged = merged[keep]
    merged[-1] = tstop  # a breakpoint grazing tstop must not shorten the run
    return merged


def _windowed_circuit(circuit: Circuit, abs_times: np.ndarray) -> Circuit:
    """*circuit* with every source re-expressed in window-local time.

    Window solves run from local ``t = 0``; a source waveform defined in
    absolute time must therefore be resampled onto the shifted grid. The
    grid splices every source breakpoint in, so the resampling itself is
    exact for piecewise-linear sources — and the sampled stand-in is a
    corner-aware :class:`BoundarySource`, so a window's block solver
    still lands on the original waveform's edges instead of rediscovering
    them through LTE rejections (or, worse, stepping over a corner the
    estimator underweights).
    """
    t0 = float(abs_times[0])
    if t0 == 0.0:
        return circuit
    local = abs_times - t0
    sub = Circuit(circuit.title)
    for comp in circuit.components:
        waveform = getattr(comp, "waveform", None)
        if waveform is not None:
            values = waveform.values(np.asarray(abs_times, dtype=float))
            comp = dataclasses.replace(
                comp, waveform=BoundarySource(local, values)
            )
        sub.add(comp)
    return sub


def run_wtm(
    circuit: Circuit,
    tstop: float,
    partitions: int = 2,
    *,
    manifest: PartitionManifest | None = None,
    mode: str = "seidel",
    scheme: str | None = None,
    threads: int = 2,
    tstep: float | None = None,
    options: SimOptions | None = None,
    executor: str | StageExecutor | None = None,
    max_outer: int = 25,
    wtm_tol: float = WTM_TOL,
    relax: float = 1.0,
    windows: int = 1,
    grid_points: int = 400,
    multirate: bool = False,
    strict: bool = True,
    instrument=None,
) -> WtmResult:
    """Partitioned transient simulation of *circuit* to *tstop*.

    Args:
        partitions: weak-coupling partition count (ignored when
            *manifest* is given).
        manifest: explicit decomposition; defaults to
            :func:`~repro.partition.partitioner.partition_circuit`.
        mode: ``"seidel"`` (in-iteration boundary updates, charged
            serially, fewer outer iterations — the default) or
            ``"jacobi"`` (concurrent partition solves, charged as one
            virtual-clock stage per iteration).
        scheme: optional WavePipe scheme (``backward``/``forward``/
            ``combined``) pipelining every partition solve; None runs
            the sequential engine per partition.
        threads: simulated thread count per pipelined partition solve.
        executor: stage executor running the partition tasks of one
            outer iteration — ``None`` (owned serial), ``"serial"``/
            ``"thread"`` (owned), or an open :class:`StageExecutor`
            instance such as a :class:`~repro.verify.chaos.ChaosExecutor`
            (left open for the caller).
        max_outer: outer-iteration cap **per window**.
        wtm_tol: relative boundary-residual convergence tolerance.
        relax: under-relaxation factor on boundary updates in (0, 1].
        windows: successive time windows iterated to convergence one at
            a time (>1 requires a circuit without inductive branch
            state, which ``node_ics`` cannot restart).
        grid_points: boundary-waveform samples across ``[0, tstop]``.
        multirate: let each partition's step controller run free instead
            of capping steps at the boundary-grid spacing. Quiet blocks
            then stride over their idle phases while only the active
            block pays dense cost — the circuit-axis multirate win the
            grid cap forfeits. Neighbour switching edges stay resolved
            because the injected :class:`BoundarySource` reports its
            corners as breakpoints.
        strict: raise :class:`~repro.errors.ConvergenceError` when any
            window fails to converge instead of returning the flagged
            result.
        instrument: optional recorder; receives the ``wtm.*`` counters
            and the ``wtm_run > wtm_window > wtm_outer_iter >
            wtm_partition`` span family.
    """
    if not isinstance(circuit, Circuit):
        raise SimulationError("run_wtm needs a raw Circuit (not a compiled one)")
    if mode not in _MODES:
        raise SimulationError(f"WTM mode must be one of {_MODES}, got {mode!r}")
    if not 0.0 < relax <= 1.0:
        raise SimulationError("relax must be in (0, 1]")
    if max_outer < 1:
        raise SimulationError("max_outer must be >= 1")
    if grid_points < 2:
        raise SimulationError("grid_points must be >= 2")
    if windows < 1:
        raise SimulationError("windows must be >= 1")
    if windows > grid_points - 1:
        raise SimulationError("more windows than grid intervals")
    if windows > 1 and _has_branch_state(circuit):
        raise SimulationError(
            "windowed WTM cannot restart inductive branch currents; "
            "use windows=1 for circuits with inductors"
        )
    tstop = float(tstop)
    if manifest is None:
        manifest = partition_circuit(circuit, partitions)
    n_parts = len(manifest)

    base = options or SimOptions()
    rec = resolve_recorder(
        instrument if instrument is not None else base.instrument
    )
    grid = _sample_grid(circuit, tstop, grid_points)
    if multirate:
        # Each block steps at its own LTE-controlled rate; the injected
        # BoundarySource pins neighbour edges through its corner
        # breakpoints, so no grid cap is needed and quiet blocks can
        # stride over their idle phases.
        block_options = base.replace(
            instrument=rec if rec.enabled else None,
        )
    else:
        # Conservative default: cap the block solver's step at twice the
        # boundary sample spacing so even sub-corner-threshold features
        # of a neighbour's iterate cannot be stepped over (same rule as
        # the relaxation baseline, and what the oracle ladder validates).
        block_options = base.replace(
            max_step=2.0 * tstop / (grid_points - 1),
            instrument=rec if rec.enabled else None,
        )

    owns_executor = executor is None or isinstance(executor, str)
    stage_exec = (
        make_executor(executor or "serial", max(n_parts, 1))
        if owns_executor
        else executor
    )

    clock = VirtualClock(sync_overhead=base.sync_overhead)
    stats = WtmStats(clock=clock, windows=windows)

    run_sid = 0
    if rec.enabled:
        run_sid = rec.begin_span(
            WTM_RUN,
            lane=0,
            t_sim=0.0,
            partitions=n_parts,
            mode=mode,
            windows=windows,
            scheme=scheme or "sequential",
        )

    try:
        iterate, dc_work = _initial_iterate(circuit, base, grid)
        stats.dc_work_units = dc_work

        boundary_nodes = manifest.boundary_nodes()
        residuals: list[float] = []
        window_iterations: list[int] = []
        converged = True

        edges = [
            round(w * (grid.size - 1) / windows) for w in range(windows + 1)
        ]
        for w in range(windows):
            i0, i1 = edges[w], edges[w + 1]
            abs_times = grid[i0 : i1 + 1]
            local_times = abs_times - abs_times[0]
            duration = float(local_times[-1])
            uic = i0 > 0
            state0 = (
                {node: float(vals[i0]) for node, vals in iterate.items()}
                if uic
                else None
            )
            windowed = _windowed_circuit(circuit, abs_times)

            win_sid = 0
            if rec.enabled:
                win_sid = rec.begin_span(
                    WTM_WINDOW, lane=0, t_sim=float(abs_times[0]), window=w
                )
            win_virtual0 = clock.virtual_work
            win_converged = False
            iters = 0

            for outer in range(1, max_outer + 1):
                iters = outer
                iter_sid = 0
                if rec.enabled:
                    iter_sid = rec.begin_span(
                        WTM_OUTER_ITER,
                        lane=0,
                        t_sim=float(abs_times[0]),
                        iteration=outer,
                        window=w,
                    )
                source = {
                    node: vals[i0 : i1 + 1].copy()
                    for node, vals in iterate.items()
                }
                view = dict(source)  # seidel overwrites as blocks finish
                residual = 0.0

                def make_task(p: int):
                    def task():
                        psid = 0
                        if rec.enabled:
                            psid = rec.begin_span(
                                WTM_PARTITION,
                                lane=0,
                                parent=iter_sid,
                                t_sim=float(abs_times[0]),
                                partition=p,
                            )
                        boundary = {
                            node: BoundaryWaveform(local_times, view[node])
                            for node in manifest.foreign_nodes(p)
                        }
                        sub = build_partition_circuit(
                            windowed, manifest, p, boundary
                        )
                        ics = (
                            {
                                n: state0[n]
                                for n in sub.nodes()
                                if n in state0
                            }
                            if uic
                            else None
                        )
                        if scheme:
                            res = run_wavepipe(
                                sub,
                                duration,
                                scheme=scheme,
                                threads=threads,
                                tstep=tstep,
                                options=block_options,
                                executor="serial",
                                uic=uic,
                                node_ics=ics,
                            )
                            v_cost = res.stats.virtual_total
                            s_cost = res.stats.serial_total
                        else:
                            res = run_transient(
                                sub,
                                duration,
                                tstep=tstep,
                                options=block_options,
                                uic=uic,
                                node_ics=ics,
                            )
                            v_cost = s_cost = res.stats.total_work
                        own = {
                            node: res.waveforms.voltage(node).at(local_times)
                            for node in manifest.partitions[p].nodes
                        }
                        if rec.enabled:
                            rec.end_span(
                                psid,
                                outcome="solved",
                                cost=v_cost,
                                partition=p,
                            )
                        return own, v_cost, s_cost
                    return task

                solves: list[tuple[dict, float, float]] = []
                if mode == "jacobi":
                    solves = stage_exec.run_stage(
                        [make_task(p) for p in range(n_parts)]
                    )
                    clock.advance_stage([v for _, v, _ in solves])
                    # advance_stage books sum(costs) as serial work using
                    # the *virtual* per-task costs; correct to engine work
                    clock.serial_work += sum(
                        s - v for _, v, s in solves
                    )
                else:
                    for p in range(n_parts):
                        (result,) = stage_exec.run_stage([make_task(p)])
                        own, v_cost, s_cost = result
                        view.update(own)
                        clock.advance_serial(v_cost)
                        clock.serial_work += s_cost - v_cost
                        solves.append(result)
                stats.partition_solves += n_parts
                stats.outer_iterations += 1

                updated = dict(source)
                for own, _, _ in solves:
                    updated.update(own)
                for node in boundary_nodes:
                    new, old = updated[node], source[node]
                    delta = float(np.abs(new - old).max())
                    scale = max(
                        float(new.max() - new.min()),
                        float(np.abs(new).max()),
                        _SCALE_FLOOR,
                    )
                    residual = max(residual, delta / scale)
                    if relax < 1.0:
                        updated[node] = relax * new + (1.0 - relax) * old
                for node, vals in updated.items():
                    iterate[node][i0 : i1 + 1] = vals

                residuals.append(residual)
                if rec.enabled:
                    rec.observe("wtm.residual", residual)
                    rec.end_span(
                        iter_sid,
                        outcome=(
                            "converged" if residual <= wtm_tol else "iterating"
                        ),
                        cost=clock.virtual_work - win_virtual0,
                        residual=residual,
                    )
                if residual <= wtm_tol:
                    win_converged = True
                    break

            window_iterations.append(iters)
            if rec.enabled:
                rec.end_span(
                    win_sid,
                    outcome="converged" if win_converged else "not_converged",
                    cost=clock.virtual_work - win_virtual0,
                    iterations=iters,
                )
            if not win_converged:
                converged = False
                break  # later windows would start from a wrong state

        data = {f"v({node})": vals for node, vals in iterate.items()}
        result = WtmResult(
            waveforms=WaveformSet(grid, data),
            times=grid,
            stats=stats,
            converged=converged,
            residuals=residuals,
            window_iterations=window_iterations,
            manifest=manifest,
            mode=mode,
            windows=windows,
            relax=relax,
        )
    finally:
        if owns_executor:
            stage_exec.close()

    if rec.enabled:
        rec.count("wtm.runs")
        rec.count("wtm.partitions", n_parts)
        rec.count("wtm.boundary_nodes", len(manifest.boundary))
        rec.count("wtm.windows", windows)
        rec.count("wtm.outer_iterations", stats.outer_iterations)
        rec.count("wtm.partition_solves", stats.partition_solves)
        rec.count("wtm.converged" if converged else "wtm.not_converged")
        rec.count("wtm.virtual_work", stats.virtual_total)
        rec.count("wtm.serial_work", stats.serial_total)
        rec.end_span(
            run_sid,
            outcome="converged" if converged else "not_converged",
            cost=stats.virtual_total,
            t_sim=tstop,
            outer_iterations=stats.outer_iterations,
        )

    if not converged and strict:
        failed = len(window_iterations) - 1
        raise ConvergenceError(
            f"WTM did not converge: window {failed} residual "
            f"{residuals[-1]:.3g} after {max_outer} outer iteration(s) "
            f"(tolerance {wtm_tol:g}); raise max_outer, lower relax, or "
            f"add windows — or pass strict=False to inspect the iterate"
        )
    return result


def _initial_iterate(
    circuit: Circuit, options: SimOptions, grid: np.ndarray
) -> tuple[dict[str, np.ndarray], float]:
    """DC operating point of the *full* circuit, held flat over the grid.

    Seeding every partition from the coupled DC solution (instead of
    zeros) removes the transient the fixed-point iteration would
    otherwise spend recovering bias points. Returns the iterate and the
    DC solve's work units (charged serially by the caller).
    """
    from repro.mna.compiler import compile_circuit
    from repro.mna.system import MnaSystem
    from repro.solver.dcop import solve_operating_point

    compiled = compile_circuit(circuit, options)
    system = MnaSystem(compiled)
    op = solve_operating_point(system, options)
    iterate = {}
    for node in circuit.nodes():
        idx = compiled.node_voltage_index(node)
        iterate[node] = np.full(grid.size, float(op.x[idx]))
    return iterate, float(op.work_units)
