"""Deterministic weak-coupling graph partitioner over :class:`Circuit`.

The Waveform Transmission Method converges geometrically with rate
proportional to the coupling strength across the cut, so the partitioner's
one job is to place cuts on the *weakest* couplings the circuit offers:
high-valued bridge resistors, small coupling capacitors, and boundaries
that ideal sources already pin (a current source imposes no voltage
coupling at all; a node held by a grounded voltage source costs nothing
to share). Device couplings — the node cliques of a MOSFET, BJT, diode or
controlled source — must never be cut: the exchanged boundary waveform
cannot represent a bidirectional nonlinear constraint.

The algorithm is single-linkage agglomeration over a maximum spanning
structure: every component contributes weighted edges to a node graph,
edges are merged strongest-first (ties broken by sorted node names, so
the result is a pure function of the circuit — no RNG, no seed), and
merging stops when exactly ``partitions`` clusters remain. The cut set is
then whatever edges straddle two clusters; if any of them is a device
coupling the partitioner refuses loudly rather than emit a partition the
coordinator cannot converge.

The result is a :class:`PartitionManifest` — a JSON-stable description of
per-partition node sets, internal components, cut components and the
boundary-node interface — which is both the coordinator's work order and
the determinism contract the property tests pin down byte for byte.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field

from repro.circuit.circuit import Circuit, canonical_node
from repro.circuit.components import (
    Capacitor,
    CurrentSource,
    Inductor,
    MutualInductance,
    Resistor,
    VoltageSource,
)
from repro.errors import SimulationError

#: Edge weight assigned to couplings that must never be cut (device node
#: cliques, controlled sources, voltage-source branches). Any finite
#: physical conductance is far below this.
DEVICE_WEIGHT = 1e12

#: Weight of an ideal current-source branch: the injected current is
#: independent of the node voltages, so cutting there is exact.
SOURCE_WEIGHT = 0.0

#: Reference timescale used to express a capacitance as a conductance
#: (``C / CAP_TIMESCALE``) so resistive and capacitive couplings rank on
#: one axis. One nanosecond sits in the middle of the RC products the
#: benchmark circuits use; the *relative* ordering of weak bridges is
#: insensitive to the exact choice.
CAP_TIMESCALE = 1e-9


@dataclass(frozen=True)
class CutEdge:
    """One coupling the partition boundary severs."""

    a: str
    b: str
    weight: float
    components: tuple[str, ...]

    def to_dict(self) -> dict:
        return {
            "a": self.a,
            "b": self.b,
            "weight": self.weight,
            "components": list(self.components),
        }


@dataclass(frozen=True)
class PartitionSpec:
    """One partition: its nodes and fully-internal components."""

    index: int
    nodes: tuple[str, ...]
    components: tuple[str, ...]

    def to_dict(self) -> dict:
        return {
            "index": self.index,
            "nodes": list(self.nodes),
            "components": list(self.components),
        }


@dataclass(frozen=True)
class BoundarySpec:
    """One boundary node: who owns its waveform, who consumes it."""

    node: str
    owner: int
    consumers: tuple[int, ...]

    def to_dict(self) -> dict:
        return {
            "node": self.node,
            "owner": self.owner,
            "consumers": list(self.consumers),
        }


@dataclass(frozen=True)
class PartitionManifest:
    """Deterministic description of one circuit decomposition.

    Attributes:
        title: the partitioned circuit's title.
        partitions: per-partition node/component specs, ordered by the
            first appearance of their nodes in the circuit.
        boundary: boundary-node interface records, sorted by node name.
        cuts: the severed couplings, sorted by (a, b).
        requested: the partition count the caller asked for.
    """

    title: str
    partitions: tuple[PartitionSpec, ...]
    boundary: tuple[BoundarySpec, ...]
    cuts: tuple[CutEdge, ...] = field(default_factory=tuple)
    requested: int = 0

    def __len__(self) -> int:
        return len(self.partitions)

    def owner_of(self, node: str) -> int:
        """Partition index owning *node* (KeyError for unknown nodes)."""
        return self._owners()[node]

    def _owners(self) -> dict[str, int]:
        owners: dict[str, int] = {}
        for spec in self.partitions:
            for node in spec.nodes:
                owners[node] = spec.index
        return owners

    def boundary_nodes(self) -> tuple[str, ...]:
        return tuple(spec.node for spec in self.boundary)

    def foreign_nodes(self, index: int) -> tuple[str, ...]:
        """Boundary nodes partition *index* consumes from its neighbours."""
        return tuple(
            spec.node for spec in self.boundary if index in spec.consumers
        )

    def to_dict(self) -> dict:
        return {
            "title": self.title,
            "requested": self.requested,
            "partitions": [spec.to_dict() for spec in self.partitions],
            "boundary": [spec.to_dict() for spec in self.boundary],
            "cuts": [edge.to_dict() for edge in self.cuts],
        }

    def to_json(self) -> str:
        """Canonical byte-stable JSON rendering (the determinism contract)."""
        return json.dumps(self.to_dict(), indent=2, sort_keys=True) + "\n"


def coupling_weight(comp) -> float:
    """Cut-resistance of one component's node coupling.

    Higher means "cut me last": conductance for resistors, capacitance
    over :data:`CAP_TIMESCALE` for capacitors, :data:`DEVICE_WEIGHT` for
    anything whose constitutive relation a sampled boundary waveform
    cannot carry, and :data:`SOURCE_WEIGHT` for ideal current sources.
    """
    if isinstance(comp, Resistor):
        return 1.0 / max(comp.resistance, 1e-12)
    if isinstance(comp, Capacitor):
        return comp.capacitance / CAP_TIMESCALE
    if isinstance(comp, CurrentSource):
        return SOURCE_WEIGHT
    if isinstance(comp, (Inductor, VoltageSource, MutualInductance)):
        # A branch current couples both KCL rows: severing it would drop
        # an MNA unknown, not just relax a waveform.
        return DEVICE_WEIGHT
    return DEVICE_WEIGHT


def coupling_edges(circuit: Circuit) -> dict[tuple[str, str], dict]:
    """Weighted node-pair couplings (ground excluded, parallel edges summed).

    Returns ``{(a, b): {"weight": w, "components": [names...]}}`` with
    ``a < b`` lexicographically and component lists in circuit order.
    """
    edges: dict[tuple[str, str], dict] = {}
    for comp in circuit.components:
        nodes = []
        for node in comp.nodes:
            node = canonical_node(node)
            if node != "0" and node not in nodes:
                nodes.append(node)
        if len(nodes) < 2:
            continue
        weight = coupling_weight(comp)
        for i in range(len(nodes)):
            for j in range(i + 1, len(nodes)):
                key = tuple(sorted((nodes[i], nodes[j])))
                entry = edges.setdefault(key, {"weight": 0.0, "components": []})
                entry["weight"] += weight
                entry["components"].append(comp.name)
    return edges


def partition_circuit(
    circuit: Circuit,
    partitions: int,
    allow_strong_cuts: bool = False,
) -> PartitionManifest:
    """Decompose *circuit* into *partitions* weakly-coupled blocks.

    Deterministic: the same circuit always yields the byte-identical
    manifest. Raises :class:`SimulationError` when the circuit has fewer
    nodes than partitions, when its connectivity cannot support the
    requested count, or when the only available cuts sever device
    couplings (unless *allow_strong_cuts*).
    """
    if partitions < 1:
        raise SimulationError("partition count must be >= 1")
    order = [canonical_node(n) for n in circuit.nodes()]
    if len(order) < partitions:
        raise SimulationError(
            f"cannot split {len(order)} node(s) into {partitions} partition(s)"
        )
    rank = {node: i for i, node in enumerate(order)}
    edges = coupling_edges(circuit)

    # Single-linkage agglomeration, strongest couplings first. Ties break
    # on the sorted node-name pair, so the merge order — and therefore the
    # manifest — is a pure function of the circuit.
    parent = {node: node for node in order}

    def find(node: str) -> str:
        root = node
        while parent[root] != root:
            root = parent[root]
        while parent[node] != root:
            parent[node], node = root, parent[node]
        return root

    clusters = len(order)
    ranked = sorted(edges.items(), key=lambda item: (-item[1]["weight"], item[0]))
    for (a, b), _ in ranked:
        if clusters <= partitions:
            break
        ra, rb = find(a), find(b)
        if ra == rb:
            continue
        # deterministic union: earliest-appearing node anchors the root
        if rank[ra] > rank[rb]:
            ra, rb = rb, ra
        parent[rb] = ra
        clusters -= 1
    if clusters > partitions:
        raise SimulationError(
            f"circuit connectivity supports at most {clusters} partition(s); "
            f"{partitions} requested"
        )

    # Partition indices follow the first appearance of each cluster root.
    roots: list[str] = []
    for node in order:
        root = find(node)
        if root not in roots:
            roots.append(root)
    index_of = {root: i for i, root in enumerate(roots)}
    members: dict[int, list[str]] = {i: [] for i in range(len(roots))}
    for node in order:
        members[index_of[find(node)]].append(node)
    owner = {
        node: idx for idx, nodes in members.items() for node in nodes
    }

    # Cut set: every edge straddling two clusters.
    cuts = []
    for (a, b), entry in sorted(edges.items()):
        if owner[a] != owner[b]:
            cuts.append(
                CutEdge(
                    a=a,
                    b=b,
                    weight=entry["weight"],
                    components=tuple(entry["components"]),
                )
            )
    if not allow_strong_cuts:
        for edge in cuts:
            if edge.weight >= DEVICE_WEIGHT:
                raise SimulationError(
                    f"partitioning would cut the device/branch coupling "
                    f"{edge.a}--{edge.b} (components {list(edge.components)}); "
                    f"request fewer partitions or pass allow_strong_cuts=True"
                )

    # Boundary interface: a node is boundary when a component from another
    # partition touches it; the touching partitions are its consumers.
    consumers: dict[str, set[int]] = {}
    internal: dict[int, list[str]] = {i: [] for i in range(len(roots))}
    cut_components: set[str] = set()
    for comp in circuit.components:
        nodes = sorted(
            {canonical_node(n) for n in comp.nodes} - {"0"},
            key=lambda n: rank[n],
        )
        if not nodes:
            continue
        touched = sorted({owner[n] for n in nodes})
        if len(touched) == 1:
            internal[touched[0]].append(comp.name)
            continue
        cut_components.add(comp.name)
        for node in nodes:
            for idx in touched:
                if idx != owner[node]:
                    consumers.setdefault(node, set()).add(idx)

    specs = tuple(
        PartitionSpec(
            index=i,
            nodes=tuple(members[i]),
            components=tuple(internal[i]),
        )
        for i in range(len(roots))
    )
    boundary = tuple(
        BoundarySpec(
            node=node,
            owner=owner[node],
            consumers=tuple(sorted(consumers[node])),
        )
        for node in sorted(consumers)
    )
    return PartitionManifest(
        title=circuit.title,
        partitions=specs,
        boundary=boundary,
        cuts=tuple(cuts),
        requested=partitions,
    )


def manifest_from_node_sets(
    circuit: Circuit, node_sets: list[set[str]]
) -> PartitionManifest:
    """Build a manifest from an explicit node partition.

    Bypasses the weak-coupling heuristic — used by tests and by callers
    holding a known-good decomposition (e.g. the one
    :func:`repro.baselines.relaxation.partition_nodes` would produce, for
    apples-to-apples baseline comparisons). The node sets must cover the
    circuit's non-ground nodes exactly once.
    """
    order = [canonical_node(n) for n in circuit.nodes()]
    rank = {node: i for i, node in enumerate(order)}
    owner: dict[str, int] = {}
    for idx, nodes in enumerate(node_sets):
        for node in nodes:
            node = canonical_node(node)
            if node in owner:
                raise SimulationError(f"node {node!r} assigned to two partitions")
            owner[node] = idx
    missing = set(order) - set(owner)
    if missing:
        raise SimulationError(f"partition misses node(s): {sorted(missing)}")

    edges = coupling_edges(circuit)
    cuts = tuple(
        CutEdge(a=a, b=b, weight=entry["weight"],
                components=tuple(entry["components"]))
        for (a, b), entry in sorted(edges.items())
        if owner[a] != owner[b]
    )
    consumers: dict[str, set[int]] = {}
    internal: dict[int, list[str]] = {i: [] for i in range(len(node_sets))}
    for comp in circuit.components:
        nodes = sorted(
            {canonical_node(n) for n in comp.nodes} - {"0"},
            key=lambda n: rank[n],
        )
        if not nodes:
            continue
        touched = sorted({owner[n] for n in nodes})
        if len(touched) == 1:
            internal[touched[0]].append(comp.name)
            continue
        for node in nodes:
            for idx in touched:
                if idx != owner[node]:
                    consumers.setdefault(node, set()).add(idx)
    specs = tuple(
        PartitionSpec(
            index=i,
            nodes=tuple(n for n in order if owner[n] == i),
            components=tuple(internal[i]),
        )
        for i in range(len(node_sets))
    )
    boundary = tuple(
        BoundarySpec(node=node, owner=owner[node],
                     consumers=tuple(sorted(consumers[node])))
        for node in sorted(consumers)
    )
    return PartitionManifest(
        title=circuit.title,
        partitions=specs,
        boundary=boundary,
        cuts=cuts,
        requested=len(node_sets),
    )
