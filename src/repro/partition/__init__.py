"""Waveform-transmission domain decomposition (the circuit parallel axis).

WavePipe pipelines a single shared-matrix transient along the *time*
axis; this package adds the *circuit* axis: a deterministic weak-coupling
partitioner (:mod:`~repro.partition.partitioner`), boundary waveform
exchange (:mod:`~repro.partition.boundary`), and a Gauss-Jacobi/Seidel
WTM coordinator (:mod:`~repro.partition.coordinator`) whose per-partition
solves can themselves be WavePipe-pipelined — both axes at once, costed
on the shared virtual clock. :mod:`~repro.partition.checks` classifies
converged runs against the monolithic reference on the oracle's
tolerance ladder.
"""

from repro.partition.boundary import (
    BOUNDARY_SOURCE_PREFIX,
    BoundarySource,
    BoundaryWaveform,
    build_partition_circuit,
)
from repro.partition.checks import WtmAgreement, wtm_vs_monolithic
from repro.partition.coordinator import WtmResult, WtmStats, run_wtm
from repro.partition.partitioner import (
    CutEdge,
    PartitionManifest,
    PartitionSpec,
    coupling_edges,
    manifest_from_node_sets,
    partition_circuit,
)

__all__ = [
    "BOUNDARY_SOURCE_PREFIX",
    "BoundarySource",
    "BoundaryWaveform",
    "CutEdge",
    "PartitionManifest",
    "PartitionSpec",
    "WtmAgreement",
    "WtmResult",
    "WtmStats",
    "build_partition_circuit",
    "coupling_edges",
    "manifest_from_node_sets",
    "partition_circuit",
    "run_wtm",
    "wtm_vs_monolithic",
]
