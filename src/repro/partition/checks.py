"""WTM-vs-monolithic agreement check on the oracle tolerance ladder.

The differential oracle in :mod:`repro.verify.oracle` compares engine
*configurations* of the same monolithic solve; this module applies the
same ladder to a genuinely different numerical method — the partitioned
WTM fixed point against the verification-grade monolithic sequential
reference. A converged WTM run on a well-cut circuit should classify at
``loose`` (1e-3) or tighter; a non-converged run is reported as such and
never silently classified.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.circuit.circuit import Circuit
from repro.engine.transient import run_transient
from repro.partition.coordinator import WtmResult, run_wtm
from repro.utils.options import SimOptions
from repro.verify.oracle import MIN_GRID_POINTS, VERIFY_RELTOL, classify_tier
from repro.waveform.waveform import Deviation, compare, worst_deviation


@dataclass(frozen=True)
class WtmAgreement:
    """One WTM-vs-monolithic comparison.

    Attributes:
        tier: tolerance-ladder rung of the worst deviation, or
            ``"not_converged"`` when the WTM run failed to converge
            (deviations are still reported for diagnosis, but the run
            must not be classified as agreeing).
        converged: the WTM run's convergence flag.
        worst: largest relative deviation across shared node voltages.
        deviations: per-signal deviation records.
        wtm: the WTM result (``strict=False`` — inspectable either way).
        reference_work: the monolithic reference's serial work units.
    """

    tier: str
    converged: bool
    worst: float
    deviations: tuple[Deviation, ...]
    wtm: WtmResult
    reference_work: float

    @property
    def ok(self) -> bool:
        """Converged and classified at ``loose`` (1e-3) or tighter."""
        return self.converged and self.worst <= 1e-3


def wtm_vs_monolithic(
    circuit: Circuit,
    tstop: float,
    partitions: int = 2,
    *,
    options: SimOptions | None = None,
    **wtm_kwargs,
) -> WtmAgreement:
    """Run WTM and the monolithic reference; classify their agreement.

    The reference is the sequential engine at verification-grade
    tolerances (reltol tightened to :data:`VERIFY_RELTOL`, step capped
    well below the oracle's ``tstop / MIN_GRID_POINTS`` — see the inline
    note on interpolation chord error). Extra keyword
    arguments pass through to :func:`~repro.partition.coordinator.run_wtm`
    (``strict`` is forced off: non-convergence is reported via ``tier``,
    not an exception).
    """
    base = options or SimOptions()
    if base.reltol > VERIFY_RELTOL:
        base = base.replace(reltol=VERIFY_RELTOL)
    # Both runs are LTE-accurate at their own accepted points; what the
    # comparison actually sees between points is piecewise-linear
    # interpolation, whose chord error at waveform corners scales as
    # dt^2 * v''. Loose-tier (1e-3) classification therefore needs a
    # denser reference step cap and exchange grid than the oracle's
    # config-vs-config comparisons (which accept the lte rung).
    max_step = tstop / (4 * MIN_GRID_POINTS)
    if base.max_step is None or base.max_step > max_step:
        base = base.replace(max_step=max_step)

    wtm_kwargs.setdefault("grid_points", 8 * MIN_GRID_POINTS)
    wtm = run_wtm(
        circuit,
        tstop,
        partitions,
        options=base,
        strict=False,
        **wtm_kwargs,
    )
    reference = run_transient(circuit, tstop, options=base)

    names = [f"v({node})" for node in circuit.nodes()]
    deviations = compare(reference.waveforms, wtm.waveforms, names=names)
    worst = worst_deviation(deviations)
    worst_rel = worst.max_relative if worst is not None else 0.0
    tier = classify_tier(worst_rel) if wtm.converged else "not_converged"
    return WtmAgreement(
        tier=tier,
        converged=wtm.converged,
        worst=worst_rel,
        deviations=tuple(deviations),
        wtm=wtm,
        reference_work=reference.stats.total_work,
    )
