"""Boundary waveform exchange: the data plane of the WTM coordinator.

Each outer iteration, every partition publishes its owned boundary-node
voltages as sampled waveforms on the coordinator's common time grid, and
every consumer injects its neighbours' last published iterate through
ideal voltage sources (``VWTM#<node>``) carrying a
:class:`~repro.circuit.sources.SampledWaveform`. The exchange is
voltage-mode: the owner's node waveform *is* the interface quantity, and
the consumer's drawn current is implicitly returned on the next sweep
through the owner's own solve (its copy of the cut component sees the
consumer-side waveform).

:class:`BoundaryWaveform` is the value object: immutable samples on a
strictly increasing grid with linear interpolation between knots —
exactly the interpolation the injected source applies, so what a
partition samples is what its neighbour replays. Resampling onto a
refinement of the grid and back is exact (piecewise-linear functions are
closed under knot insertion), which is the round-trip property the
hypothesis suite pins down.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.circuit.circuit import Circuit, canonical_node
from repro.circuit.sources import SampledWaveform
from repro.errors import SimulationError


@dataclass(frozen=True)
class BoundaryWaveform:
    """One boundary node's sampled voltage iterate."""

    times: np.ndarray
    values: np.ndarray

    def __post_init__(self) -> None:
        times = np.asarray(self.times, dtype=float)
        values = np.asarray(self.values, dtype=float)
        object.__setattr__(self, "times", times)
        object.__setattr__(self, "values", values)
        if times.ndim != 1 or times.size < 2:
            raise SimulationError("boundary waveform needs >= 2 samples")
        if times.shape != values.shape:
            raise SimulationError("boundary times/values length mismatch")
        if np.any(np.diff(times) <= 0):
            raise SimulationError("boundary sample times must strictly increase")

    def at(self, t) -> np.ndarray:
        """Linear interpolation, clamped to the end samples."""
        return np.interp(t, self.times, self.values)

    def resample(self, grid) -> "BoundaryWaveform":
        """This waveform re-expressed on *grid* (linear interpolation)."""
        grid = np.asarray(grid, dtype=float)
        return BoundaryWaveform(times=grid, values=self.at(grid))

    def shifted(self, t0: float) -> "BoundaryWaveform":
        """Time origin moved to *t0* (windowed partition solves start at 0)."""
        return BoundaryWaveform(times=self.times - t0, values=self.values)

    def relaxed_toward(
        self, target: "BoundaryWaveform", relax: float
    ) -> "BoundaryWaveform":
        """Under-relaxed update: ``relax*target + (1-relax)*self``."""
        if target.times.shape != self.times.shape or np.any(
            target.times != self.times
        ):
            target = target.resample(self.times)
        return BoundaryWaveform(
            times=self.times,
            values=relax * target.values + (1.0 - relax) * self.values,
        )

    def delta(self, other: "BoundaryWaveform") -> float:
        """Max absolute sample difference against *other* (same grid)."""
        if other.times.shape != self.times.shape or np.any(
            other.times != self.times
        ):
            other = other.resample(self.times)
        return float(np.abs(self.values - other.values).max())

    def swing(self) -> float:
        """Peak-to-peak sample range (residual normalisation)."""
        return float(self.values.max() - self.values.min())

    def as_source(self) -> SampledWaveform:
        """The injectable source replaying this iterate (corner-aware)."""
        return BoundarySource(self.times, self.values)


#: Fraction of the full-scale slope change (swing per mean sample
#: spacing) above which a sample knot counts as a corner the block
#: solver's step controller must land on.
CORNER_THRESHOLD = 0.05


class BoundarySource(SampledWaveform):
    """Sampled boundary iterate that reports its sharp corners.

    A plain :class:`SampledWaveform` deliberately reports no breakpoints
    — its knots are smooth simulation output. A *boundary* iterate is
    different: when the neighbour partition carries a switching edge, the
    replayed waveform has real corners, and a consumer whose step
    controller never lands on them re-discretises the edge differently
    on every outer iteration. That solve-to-solve placement jitter shows
    up as a floor in the WTM residual far above the true fixed-point
    contraction. Reporting knots where the piecewise-linear slope changes
    by more than :data:`CORNER_THRESHOLD` of full scale pins the edges —
    exactly the treatment the monolithic engine gives a ``Pulse`` — while
    smooth stretches still contribute no breakpoints.
    """

    def breakpoints(self, tstop: float) -> list[float]:
        times, values = self.times, self.sample_values
        if times.size < 3:
            return []
        slopes = np.diff(values) / np.diff(times)
        swing = float(values.max() - values.min())
        if swing <= 0.0:
            return []
        full_scale = swing / float(np.mean(np.diff(times)))
        corners = np.nonzero(np.abs(np.diff(slopes)) > CORNER_THRESHOLD * full_scale)[0]
        return [float(t) for t in times[corners + 1] if 0.0 < t < tstop]


#: Name prefix of the injected boundary voltage sources. Distinct from
#: the relaxation baseline's ``VWR#`` so traces and subcircuit listings
#: identify which subsystem built them.
BOUNDARY_SOURCE_PREFIX = "VWTM#"


def build_partition_circuit(
    circuit: Circuit,
    manifest,
    index: int,
    boundary: dict[str, BoundaryWaveform],
) -> Circuit:
    """Partition *index*'s subproblem with frozen neighbour waveforms.

    Keeps every component touching the partition's nodes (cut components
    are deliberately duplicated into each side so both see the coupling
    against the neighbour's iterate) and drives each foreign boundary
    node with a ``VWTM#`` source replaying *boundary*'s entry for it.
    """
    spec = manifest.partitions[index]
    owned = set(spec.nodes)
    sub = Circuit(f"{circuit.title}#wtm{index}")
    foreign: list[str] = []
    for comp in circuit.components:
        nodes = {canonical_node(n) for n in comp.nodes} - {"0"}
        if not nodes & owned:
            continue
        sub.add(comp)
        for node in sorted(nodes - owned):
            if node not in foreign:
                foreign.append(node)
    for node in sorted(foreign):
        try:
            wave = boundary[node]
        except KeyError:
            raise SimulationError(
                f"partition {index} needs a boundary waveform for {node!r}"
            ) from None
        sub.add_vsource(
            f"{BOUNDARY_SOURCE_PREFIX}{node}", node, "0", wave.as_source()
        )
    return sub
