"""Stdlib HTTP client for the simulation service.

:class:`ServiceClient` wraps ``http.client`` — one fresh connection per
call, so instances are trivially thread-safe and a dead server surfaces
as an ordinary ``ConnectionError`` instead of a wedged keep-alive socket.
The streaming endpoint is the exception: :meth:`stream` holds one
connection open and yields decoded heartbeat records as the server emits
chunks (``http.client`` de-chunks transparently).

A 429 from the quota layer raises :class:`Backpressure`, carrying the
``Retry-After`` hint and both queue-depth headers so callers (the load
generator, `repro submit --wait`) can implement honest backoff.
"""

from __future__ import annotations

import http.client
import json
import time
from urllib.parse import urlsplit

from repro.errors import ReproError
from repro.instrument.tracectx import TraceContext

#: Default per-request socket timeout, seconds.
DEFAULT_TIMEOUT = 30.0


class ServiceError(ReproError):
    """Non-2xx response from the service (other than backpressure)."""

    def __init__(self, status: int, payload):
        self.status = status
        self.payload = payload
        detail = payload.get("error") if isinstance(payload, dict) else payload
        super().__init__(f"service returned {status}: {detail}")


class Backpressure(ServiceError):
    """429: the tenant's quota is full; retry after ``retry_after``."""

    def __init__(self, payload, retry_after: float, queue_depth: int,
                 tenant_depth: int):
        super().__init__(429, payload)
        self.retry_after = retry_after
        self.queue_depth = queue_depth
        self.tenant_depth = tenant_depth


class ServiceClient:
    """Client for one service base URL (e.g. ``http://127.0.0.1:8765``)."""

    def __init__(self, base_url: str, tenant: str | None = None,
                 timeout: float = DEFAULT_TIMEOUT):
        parts = urlsplit(base_url if "//" in base_url else f"http://{base_url}")
        self.host = parts.hostname or "127.0.0.1"
        self.port = parts.port or 80
        self.tenant = tenant
        self.timeout = timeout

    # -- transport ---------------------------------------------------------------

    def _connect(self) -> http.client.HTTPConnection:
        return http.client.HTTPConnection(self.host, self.port, timeout=self.timeout)

    def _headers(self, tenant: str | None, trace=None) -> dict:
        headers = {"Content-Type": "application/json"}
        effective = tenant or self.tenant
        if effective:
            headers["X-Tenant"] = effective
        if trace is not None:
            headers.update(trace.to_headers())
        return headers

    def _request(self, method: str, path: str, body: dict | None = None,
                 tenant: str | None = None, trace=None):
        conn = self._connect()
        try:
            payload = json.dumps(body).encode("utf-8") if body is not None else None
            conn.request(
                method, path, body=payload,
                headers=self._headers(tenant, trace=trace),
            )
            response = conn.getresponse()
            raw = response.read()
            try:
                decoded = json.loads(raw) if raw else {}
            except json.JSONDecodeError:
                decoded = raw.decode("utf-8", "replace")
            if response.status == 429:
                raise Backpressure(
                    decoded,
                    retry_after=float(response.getheader("Retry-After") or 1.0),
                    queue_depth=int(response.getheader("X-Queue-Depth") or 0),
                    tenant_depth=int(response.getheader("X-Tenant-Queue-Depth") or 0),
                )
            if response.status >= 400:
                raise ServiceError(response.status, decoded)
            return decoded
        finally:
            conn.close()

    # -- submission --------------------------------------------------------------

    def _trace_for(self, tenant: str | None, trace) -> TraceContext:
        """The context a submission travels under: the caller's, or a
        fresh client-origin mint. Every submission is traced — that is
        the point of the front end — so the ids on the receipt always
        match a ``/trace/<campaign>`` root."""
        if trace is not None:
            return trace
        return TraceContext.mint(
            tenant=tenant or self.tenant or "default", origin="client"
        )

    def submit_job(self, spec, tenant: str | None = None,
                   priority: int = 0, trace: TraceContext | None = None) -> dict:
        """Submit one job; *spec* is a JobSpec or its dict form.

        The submission carries a W3C ``traceparent`` header (from
        *trace*, or minted here with origin ``client``); the receipt's
        ``trace_id`` is the id the request will appear under in the
        campaign trace.
        """
        payload = spec.to_dict() if hasattr(spec, "to_dict") else dict(spec)
        return self._request(
            "POST", "/jobs",
            {"spec": payload, "priority": priority}, tenant=tenant,
            trace=self._trace_for(tenant, trace),
        )

    def submit_campaign(self, spec, generator: dict, name: str | None = None,
                        tenant: str | None = None, priority: int = 0,
                        trace: TraceContext | None = None) -> dict:
        payload = spec.to_dict() if hasattr(spec, "to_dict") else dict(spec)
        body = {"spec": payload, "generator": generator, "priority": priority}
        if name:
            body["name"] = name
        return self._request(
            "POST", "/campaigns", body, tenant=tenant,
            trace=self._trace_for(tenant, trace),
        )

    # -- reads -------------------------------------------------------------------

    def job(self, spec_hash: str) -> dict:
        return self._request("GET", f"/jobs/{spec_hash}")

    def result(self, spec_hash: str) -> dict:
        return self._request("GET", f"/jobs/{spec_hash}/result")

    def waveform(self, spec_hash: str) -> dict:
        return self._request("GET", f"/jobs/{spec_hash}/waveform")

    def campaign(self, cid: str) -> dict:
        return self._request("GET", f"/campaigns/{cid}")

    def healthz(self) -> dict:
        return self._request("GET", "/healthz")

    def stats(self) -> dict:
        return self._request("GET", "/stats")

    def metrics_text(self) -> str:
        conn = self._connect()
        try:
            conn.request("GET", "/metrics")
            response = conn.getresponse()
            body = response.read().decode("utf-8")
            if response.status >= 400:
                raise ServiceError(response.status, body)
            return body
        finally:
            conn.close()

    def trace(self, cid: str) -> str:
        """The campaign's stitched cross-node trace, as raw JSONL text.

        The body is the ``repro-trace-v1`` format — write it to a file
        and feed it to ``repro explain`` (or ``--html``).
        """
        conn = self._connect()
        try:
            conn.request("GET", f"/trace/{cid}", headers=self._headers(None))
            response = conn.getresponse()
            body = response.read().decode("utf-8")
            if response.status >= 400:
                try:
                    decoded = json.loads(body) if body else {}
                except json.JSONDecodeError:
                    decoded = body
                raise ServiceError(response.status, decoded)
            return body
        finally:
            conn.close()

    # -- streaming / waiting -----------------------------------------------------

    def stream(self, cid: str, interval: float | None = None):
        """Yield heartbeat records for a campaign until its final tick."""
        path = f"/campaigns/{cid}/stream"
        if interval is not None:
            path += f"?interval={interval:g}"
        conn = self._connect()
        try:
            conn.request("GET", path, headers=self._headers(None))
            response = conn.getresponse()
            if response.status >= 400:
                raw = response.read()
                try:
                    decoded = json.loads(raw) if raw else {}
                except json.JSONDecodeError:
                    decoded = raw.decode("utf-8", "replace")
                raise ServiceError(response.status, decoded)
            while True:
                line = response.readline()
                if not line:
                    break
                line = line.strip()
                if not line:
                    continue
                record = json.loads(line)
                yield record
                if record.get("final"):
                    break
        finally:
            conn.close()

    def wait_job(self, spec_hash: str, timeout: float = 60.0,
                 poll: float = 0.05) -> dict:
        """Poll a job until it settles (done/failed); returns the status."""
        deadline = time.monotonic() + timeout
        while True:
            status = self.job(spec_hash)
            if status["status"] in ("done", "failed"):
                return status
            if time.monotonic() >= deadline:
                raise TimeoutError(
                    f"job {spec_hash} still {status['status']} after {timeout:g}s"
                )
            time.sleep(poll)

    def wait_campaign(self, cid: str, timeout: float = 120.0,
                      poll: float = 0.1) -> dict:
        """Poll a campaign rollup until every member settled."""
        deadline = time.monotonic() + timeout
        while True:
            rollup = self.campaign(cid)
            if rollup["done"]:
                return rollup
            if time.monotonic() >= deadline:
                raise TimeoutError(
                    f"campaign {cid} unfinished after {timeout:g}s: "
                    f"{rollup['counts']}"
                )
            time.sleep(poll)
