"""Cross-node trace records and the campaign trace stitcher.

Two halves:

* :class:`TraceStore` — one JSON record per settled job under
  ``<root>/traces/``, written by the farm node that settled it. A record
  carries the wall-clock milestones of the job's life (enqueue, claim,
  settle), the paying submission's trace context, and the worker
  recorder's portable snapshot (counters, histograms, the span-event
  tail). The store is *observability* data: it lives beside — never
  inside — ``<root>/results/``, whose bytes must stay identical no
  matter who asked or which node answered.
* :func:`build_campaign_trace` — the stitcher. It reads the queue
  manifest plus the per-job records and synthesizes one span tree per
  campaign: a ``service_request`` root per originating trace id, a
  ``service_job`` per queue entry, and ``queue_wait`` / ``service_solve``
  / ``result_upload`` children whose costs are wall-clock **seconds**
  (the one tier where wall time *is* the quantity being explained: the
  question "where did my request's latency go?" has no virtual-clock
  answer). Worker span snapshots are re-parented under the job's
  ``service_solve`` span, so a single ``repro explain`` walks from the
  request, through the queue, into the Newton iterations of whichever
  node solved it. Dedup-served duplicate submissions appear as zero-cost
  ``service_dedup`` children of the job that paid for the miss.

The synthesized geometry is guaranteed to nest: every parent interval is
computed to envelop its children (with a small explicit margin, since
the span validator's float slack is tight), and a worker tail is only
merged after the enclosing solve span has been widened to contain the
tail's extent. A malformed stitched trace would fail
``repro explain --check`` — the CI gate — so containment is constructed,
not hoped for.
"""

from __future__ import annotations

import json
import os
import threading
from pathlib import Path

from repro.instrument.events import (
    QUEUE_WAIT,
    RESULT_UPLOAD,
    SERVICE_DEDUP,
    SERVICE_JOB,
    SERVICE_REQUEST,
    SERVICE_SOLVE,
)
from repro.instrument.recorder import Recorder

#: Subdirectory of the queue root holding per-job trace records.
TRACES_DIR = "traces"

#: Margin (seconds) parents extend past their children's envelope. Far
#: above float slack, far below anything visible at request latency
#: scale.
_PAD = 1e-6

#: Key used to group jobs whose submission carried no trace context.
UNTRACED = "untraced"


class TraceStore:
    """Per-job trace records under ``<root>/traces/`` (atomic writes).

    Records are keyed by spec hash — the same key as the queue entry and
    the result cache — and the latest settle wins: when a re-leased job
    settles on a second node, its record (same trace id, higher attempt
    count) replaces the never-written record of the SIGKILLed first
    claimant.
    """

    def __init__(self, root):
        self.root = Path(root) / TRACES_DIR
        self.root.mkdir(parents=True, exist_ok=True)

    def path(self, spec_hash: str) -> Path:
        return self.root / f"{spec_hash}.json"

    def put(self, spec_hash: str, record: dict) -> None:
        """Write one record atomically (temp file + ``os.replace``)."""
        payload = json.dumps(record, sort_keys=True, indent=2) + "\n"
        tmp = self.path(spec_hash).with_suffix(
            f".tmp.{os.getpid()}.{threading.get_ident()}"
        )
        tmp.write_text(payload, encoding="utf-8")
        os.replace(tmp, self.path(spec_hash))

    def get(self, spec_hash: str) -> dict | None:
        """The record for *spec_hash*, or None (missing/torn → None)."""
        try:
            with open(self.path(spec_hash), encoding="utf-8") as handle:
                return json.load(handle)
        except (FileNotFoundError, json.JSONDecodeError):
            return None


def _tail_extent(telemetry: dict | None) -> float:
    """Wall-seconds the snapshot's event tail spans (0 when eventless)."""
    rows = (telemetry or {}).get("events_tail") or ()
    if not rows:
        return 0.0
    start = min(row["ts"] for row in rows)
    end = max(row["ts"] + (row.get("dur") or 0.0) for row in rows)
    return max(end - start, 0.0)


def _job_geometry(entry: dict, record: dict | None, t0: float) -> dict | None:
    """Relative span intervals for one queue entry, or None when the job
    has no usable timestamps at all (legacy manifest rows)."""
    enqueued = entry.get("enqueued")
    claimed = (record or {}).get("claimed", entry.get("claimed"))
    settled = (record or {}).get("settled", entry.get("settled"))
    if enqueued is None:
        enqueued = claimed if claimed is not None else settled
    if enqueued is None:
        return None
    enq = enqueued - t0
    if claimed is None:  # still pending / never claimed: a waiting stub
        return {"enq": enq, "claim": None, "settle": None}
    claim = max(claimed - t0, enq)
    settle = max((settled - t0) if settled is not None else claim, claim)
    elapsed = min(max(float((record or {}).get("elapsed") or 0.0), 0.0),
                  settle - claim)
    solve_end = claim + elapsed
    solve_start = claim
    extent = _tail_extent((record or {}).get("telemetry"))
    if extent > elapsed:
        # The worker measured more traced wall time than the lease
        # bookkeeping credits (clock skew between hosts, a settle clamped
        # by a racing reap). Widen the solve span so the re-parented tail
        # still nests; the report ranks by cost, which stays `elapsed`.
        solve_start = solve_end - extent - _PAD
    return {
        "enq": enq,
        "claim": claim,
        "settle": settle,
        "solve_start": solve_start,
        "solve_end": solve_end,
        "elapsed": elapsed,
    }


def build_campaign_trace(queue, store: TraceStore, cid: str) -> Recorder | None:
    """Stitch one campaign's cross-node trace into a fresh Recorder.

    Returns None when the campaign id is unknown. The recorder's event
    log holds the synthesized service-tier tree with worker snapshots
    re-parented beneath it; export it with
    :func:`repro.instrument.exporters.write_jsonl` and feed the dump to
    ``repro explain``.
    """
    campaign = queue.campaign(cid)
    if campaign is None:
        return None
    hashes = list(dict.fromkeys(campaign["jobs"]))
    entries = queue.entries(hashes)
    records = {h: store.get(h) for h in entries}

    # Epoch: the earliest timestamp any member knows about, so every
    # synthesized span lands at a small positive offset.
    anchors = []
    for spec_hash, entry in entries.items():
        record = records[spec_hash] or {}
        for key in ("enqueued", "claimed", "settled"):
            value = entry.get(key, record.get(key))
            if value is not None:
                anchors.append(value)
    t0 = min(anchors) if anchors else 0.0

    rec = Recorder(max_events=max(4096, 128 * max(len(hashes), 1)))

    # Pass 1: geometry per job, grouped by paying trace id.
    geo: dict[str, dict] = {}
    groups: dict[str, list[str]] = {}
    for spec_hash in hashes:
        entry = entries.get(spec_hash)
        if entry is None:
            continue
        g = _job_geometry(entry, records[spec_hash], t0)
        if g is None:
            continue
        geo[spec_hash] = g
        trace = entry.get("trace") or {}
        groups.setdefault(trace.get("trace_id") or UNTRACED, []).append(spec_hash)

    # Pass 2: one request root per trace id, then its jobs beneath it.
    for trace_id in sorted(groups):
        members = groups[trace_id]
        starts, ends, total_cost = [], [], 0.0
        for spec_hash in members:
            g = geo[spec_hash]
            end = g["settle"] if g["settle"] is not None else g["enq"]
            starts.append(min(g["enq"], g.get("solve_start", g["enq"])))
            ends.append(end)
            total_cost += max(end - g["enq"], 0.0)
        req_ts = min(starts) - _PAD
        req_end = max(ends) + _PAD
        first = entries[members[0]].get("trace") or {}
        root = rec.emit_span(
            SERVICE_REQUEST,
            ts=req_ts,
            dur=req_end - req_ts,
            cost=total_cost,
            trace_id=trace_id,
            tenant=first.get("tenant", "default"),
            origin=first.get("origin", "unknown"),
            jobs=len(members),
        )
        for spec_hash in members:
            entry = entries[spec_hash]
            record = records[spec_hash] or {}
            g = geo[spec_hash]
            trace = entry.get("trace") or {}
            if g["claim"] is None:
                rec.emit_span(
                    SERVICE_JOB,
                    ts=g["enq"],
                    dur=0.0,
                    parent=root,
                    cost=0.0,
                    outcome=entry["status"],
                    status=entry["status"],
                    label=entry.get("label", ""),
                    hash=spec_hash[:12],
                    tenant=trace.get("tenant", "default"),
                    trace_id=trace.get("trace_id"),
                )
                continue
            job_ts = min(g["enq"], g["solve_start"]) - _PAD / 2
            job_end = g["settle"] + _PAD / 2
            job = rec.emit_span(
                SERVICE_JOB,
                ts=job_ts,
                dur=job_end - job_ts,
                parent=root,
                cost=max(g["settle"] - g["enq"], 0.0),
                outcome=entry["status"],
                status=entry["status"],
                label=entry.get("label", ""),
                hash=spec_hash[:12],
                tenant=trace.get("tenant", "default"),
                trace_id=trace.get("trace_id"),
                node=record.get("node", entry.get("node")),
                attempts=entry.get("attempts", 0),
                cached=bool(record.get("cached", False)),
            )
            rec.emit_span(
                QUEUE_WAIT,
                ts=g["enq"],
                dur=g["claim"] - g["enq"],
                parent=job,
                cost=g["claim"] - g["enq"],
            )
            solve = rec.emit_span(
                SERVICE_SOLVE,
                ts=g["solve_start"],
                dur=g["solve_end"] - g["solve_start"],
                parent=job,
                cost=g["elapsed"],
                node=record.get("node", entry.get("node")),
                cached=bool(record.get("cached", False)),
            )
            telemetry = record.get("telemetry")
            if telemetry and telemetry.get("events_tail"):
                rec.merge(telemetry, parent=solve, at=g["solve_end"])
            rec.emit_span(
                RESULT_UPLOAD,
                ts=g["solve_end"],
                dur=g["settle"] - g["solve_end"],
                parent=job,
                cost=g["settle"] - g["solve_end"],
            )
            for link in entry.get("trace_links") or ():
                rec.emit_span(
                    SERVICE_DEDUP,
                    ts=g["settle"],
                    dur=0.0,
                    parent=job,
                    cost=0.0,
                    trace_id=(link or {}).get("trace_id"),
                    tenant=(link or {}).get("tenant", "default"),
                    origin=(link or {}).get("origin", "unknown"),
                )
    return rec


__all__ = ["TRACES_DIR", "TraceStore", "UNTRACED", "build_campaign_trace"]
