"""Simulation-as-a-service: persistent queue, farm nodes, HTTP front end.

The package turns the batch layer (:mod:`repro.jobs`) into a long-lived
multi-tenant service:

* :mod:`repro.service.queue` — the persistent, atomically-rewritten,
  content-hash-keyed priority queue with lease/expiry claims and
  per-tenant quotas;
* :mod:`repro.service.node` — farm nodes that claim queue work and run
  it through a :class:`~repro.jobs.scheduler.JobScheduler`, sharing one
  result cache as the dedup store;
* :mod:`repro.service.server` — the stdlib HTTP/JSON front end
  (``repro serve``), including chunked campaign heartbeat streaming;
* :mod:`repro.service.client` — the matching ``http.client`` wrapper;
* :mod:`repro.service.trace` — per-job trace records written by nodes
  plus the stitcher that merges them into one cross-node campaign trace
  (served at ``GET /trace/<campaign>`` for ``repro explain``);
* :mod:`repro.service.loadgen` — the deterministic mixed-traffic load
  generator behind the Table R12 benchmark and the CI smoke job.
"""

from repro.service.client import Backpressure, ServiceClient, ServiceError
from repro.service.loadgen import LoadReport, run_load
from repro.service.node import FarmNode, run_node
from repro.service.queue import (
    ClaimedJob,
    JobQueue,
    QuotaExceeded,
    SubmitReceipt,
    campaign_id,
)
from repro.service.server import CampaignHeartbeat, ServiceServer, serve
from repro.service.trace import TraceStore, build_campaign_trace

__all__ = [
    "Backpressure",
    "CampaignHeartbeat",
    "ClaimedJob",
    "FarmNode",
    "JobQueue",
    "LoadReport",
    "QuotaExceeded",
    "ServiceClient",
    "ServiceError",
    "ServiceServer",
    "SubmitReceipt",
    "TraceStore",
    "build_campaign_trace",
    "campaign_id",
    "run_load",
    "run_node",
    "serve",
]
