"""Deterministic load generator for the simulation service.

Drives a mixed request stream — unique Monte-Carlo submissions, exact
duplicate resubmits (the dedup path), status polls, periodic campaign
submissions — against one :class:`~repro.service.client.ServiceClient`.
Everything is derived from one ``random.Random(seed)``: the op sequence,
the spec pool, the campaign seeds. Same seed, same traffic, same service
counters — which is what lets the Table R12 benchmark gate the service
stack with ``repro perf diff`` and the CI smoke job assert exact
reconciliation.

Backpressure (429) is counted, never fatal: with a quota configured the
generator records every rejection and moves on, so a burst of uniques
past the cap yields a deterministic nonzero ``rejected`` tally.
"""

from __future__ import annotations

import random
import time
from dataclasses import asdict, dataclass, field

from repro.errors import SimulationError
from repro.jobs.campaign import monte_carlo
from repro.jobs.spec import CircuitRef, JobSpec
from repro.service.client import Backpressure, ServiceClient, ServiceError

#: Op mix: fraction of loop ops that are submissions (the rest are
#: status polls). Campaign submits are scheduled by stride instead
#: (every ``campaign_every`` requests) so their count is exact, not
#: merely seeded.
_P_DUPLICATE = 0.70


@dataclass
class LoadReport:
    """What one load-generation run observed."""

    requests: int = 0          # HTTP calls in the main op loop
    submitted: int = 0         # accepted submissions (202), incl. campaign members
    deduped: int = 0           # accepted submissions absorbed by dedup
    rejected: int = 0          # 429 backpressure responses
    campaigns: int = 0         # accepted campaign submissions
    campaign_jobs: int = 0     # jobs across those campaigns
    polls: int = 0             # status polls
    results_fetched: int = 0   # result bodies fetched after the drain
    errors: int = 0            # non-429 request failures
    unique_jobs: int = 0       # distinct content hashes touched
    drained: bool = False      # queue reached zero active jobs in time
    elapsed: float = 0.0
    counts: dict = field(default_factory=dict)  # final queue status counts

    def to_dict(self) -> dict:
        return asdict(self)

    def summary(self) -> str:
        return (
            f"loadgen: {self.requests} requests — {self.submitted} submitted "
            f"({self.deduped} deduped), {self.campaigns} campaigns "
            f"({self.campaign_jobs} jobs), {self.polls} polls, "
            f"{self.rejected} rejected (429), {self.errors} errors; "
            f"{self.unique_jobs} unique jobs, "
            f"{self.results_fetched} results fetched, "
            f"drained={self.drained} in {self.elapsed:.1f}s"
        )


def run_load(
    client: ServiceClient | str,
    requests: int = 200,
    seed: int = 0,
    circuit: str = "rcladder20",
    tenants: tuple[str, ...] = ("acme", "bulk", "free"),
    unique: int = 8,
    jitter: float = 0.02,
    campaign_every: int = 25,
    campaign_jobs: int = 4,
    tstop: float | None = None,
    wait: bool = True,
    wait_timeout: float = 300.0,
    fetch_results: bool = True,
    think: float = 0.0,
) -> LoadReport:
    """Drive *requests* mixed operations; returns the observed tallies.

    Args:
        client: a :class:`ServiceClient` or a base URL string.
        requests: length of the main op loop (drain-phase result fetches
            are extra).
        seed: master seed for the op sequence and every spec.
        circuit: registry benchmark every job simulates.
        tenants: rotated deterministically across submissions.
        unique: size of the distinct-spec pool the submit ops draw from.
        jitter: Monte-Carlo sigma for pool/campaign variants.
        campaign_every: one campaign submission per this many requests.
        campaign_jobs: members per submitted campaign.
        tstop: optional transient-window override (shorter = cheaper).
        wait: after the loop, poll ``/healthz`` until no active jobs
            remain (or *wait_timeout* passes).
        fetch_results: after a successful drain, fetch every unique
            job's result exactly once.
        think: fixed sleep between ops (0 = as fast as the socket goes).
    """
    if requests < 1:
        raise SimulationError("loadgen needs requests >= 1")
    if unique < 1:
        raise SimulationError("loadgen needs unique >= 1")
    if isinstance(client, str):
        client = ServiceClient(client)
    rng = random.Random(seed)
    base = JobSpec(
        circuit=CircuitRef(kind="registry", name=circuit),
        label=f"loadgen-{circuit}",
        tstop=tstop,
    )
    pool = monte_carlo(base, n=unique, seed=seed, jitter=jitter).jobs
    report = LoadReport()
    known: list[str] = []
    seen: set[str] = set()
    started = time.monotonic()

    def note(spec_hash: str) -> None:
        if spec_hash not in seen:
            seen.add(spec_hash)
            known.append(spec_hash)

    def tenant_for(index: int) -> str:
        return tenants[index % len(tenants)] if tenants else "default"

    for index in range(requests):
        if think > 0:
            time.sleep(think)
        report.requests += 1
        tenant = tenant_for(index)
        try:
            if campaign_every > 0 and index % campaign_every == campaign_every - 1:
                receipt = client.submit_campaign(
                    base,
                    {
                        "kind": "monte_carlo",
                        "n": campaign_jobs,
                        "seed": seed + 1000 + index // campaign_every,
                        "jitter": jitter,
                    },
                    tenant=tenant,
                )
                report.campaigns += 1
                report.campaign_jobs += len(receipt["jobs"])
                # campaign members count as submissions, mirroring the
                # server's service.submitted/.deduped convention — so
                # submitted - deduped == jobs actually enqueued holds
                # across both submit paths
                report.submitted += len(receipt["jobs"])
                report.deduped += receipt["deduped"]
                for spec_hash in receipt["jobs"]:
                    note(spec_hash)
                continue
            draw = rng.random()
            pick = rng.randrange(unique)
            if draw < _P_DUPLICATE or not known:
                # Submissions draw from a fixed pool: a pool member's
                # first submit is unique work, every later one is an
                # exact duplicate the service must dedup against the
                # live queue entry (or the finished one) instead of
                # recomputing — so cached/uncached traffic mixes without
                # any response-dependent branching.
                receipt = client.submit_job(pool[pick], tenant=tenant)
                report.submitted += 1
                report.deduped += int(receipt["deduped"])
                note(receipt["id"])
            else:
                spec_hash = known[rng.randrange(len(known))]
                client.job(spec_hash)
                report.polls += 1
        except Backpressure:
            report.rejected += 1
        except (ServiceError, ConnectionError, TimeoutError, OSError):
            report.errors += 1

    report.unique_jobs = len(known)

    if wait:
        deadline = time.monotonic() + wait_timeout
        while time.monotonic() < deadline:
            try:
                health = client.healthz()
            except (ServiceError, ConnectionError, OSError):
                time.sleep(0.2)
                continue
            queue_counts = health.get("queue", {})
            report.counts = queue_counts
            active = queue_counts.get("pending", 0) + queue_counts.get("leased", 0)
            if active == 0:
                report.drained = True
                break
            time.sleep(0.1)

    if fetch_results and report.drained:
        for spec_hash in known:
            try:
                client.result(spec_hash)
                report.results_fetched += 1
            except (ServiceError, ConnectionError, OSError):
                report.errors += 1

    report.elapsed = time.monotonic() - started
    return report
