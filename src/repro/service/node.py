"""Farm node: claim work from a :class:`~repro.service.queue.JobQueue`,
run it through a :class:`~repro.jobs.scheduler.JobScheduler`, settle it.

A node is one OS process (or thread) in a horizontally sharded farm. Any
number of nodes point at the same queue directory; the flock-guarded
queue transactions partition the pending work between them, and the
shared :class:`~repro.jobs.cache.ResultCache` under ``<root>/results``
dedups the physics — a node claiming a spec another tenant already paid
for serves the cached bytes without touching the engine.

Crash safety is entirely lease-based: a node never marks anything on the
queue before it finishes. SIGKILL a node mid-job and the only trace is a
lease that stops being renewed; the next claimant's transaction reaps it
and reruns the job, producing byte-identical results (specs are
deterministic and results content-addressed).
"""

from __future__ import annotations

import os
import signal
import threading
import time
from pathlib import Path

from repro.instrument.recorder import resolve_recorder
from repro.instrument.telemetry import tenant_counter
from repro.jobs.cache import ResultCache
from repro.jobs.scheduler import JobScheduler
from repro.service.queue import ClaimedJob, JobQueue
from repro.service.trace import TraceStore

#: Subdirectory of the queue root holding the shared result cache.
RESULTS_DIR = "results"

#: Default idle sleep between empty claim attempts.
DEFAULT_POLL = 0.05

#: Default lease duration; must comfortably exceed one job's wall time
#: (the node renews outstanding leases whenever a batch member settles,
#: but a single job longer than the lease can still be reclaimed).
DEFAULT_LEASE = 30.0


class FarmNode:
    """One worker node of a sharded simulation farm.

    Args:
        root: queue directory shared by every node and front end.
        node_id: stable identity used in lease records; defaults to
            ``node-<pid>``.
        backend: scheduler backend name or instance (``serial``,
            ``process``, an :class:`~repro.jobs.ensemble.EnsembleBackend`
            for lockstep variant batching, ...).
        workers: worker count when *backend* is a name.
        batch: jobs claimed per queue transaction. Claiming > 1 lets the
            ensemble backend see same-topology specs together.
        lease_seconds: lease granted per claim; renewed as batch members
            settle.
        poll_interval: idle sleep when a claim returns nothing.
        timeout: per-job wall-clock limit passed to the scheduler.
        retries: scheduler-internal retries per claim. Defaults to 0 —
            the queue's own ``max_attempts`` accounting is the retry
            policy of record, and burning attempts in two places makes
            failures harder to read.
        instrument: optional Recorder for ``service.node.*`` counters
            (plus the scheduler's ``jobs.*`` family).
        quota / max_attempts: forwarded to the node's queue handle.
    """

    def __init__(
        self,
        root,
        node_id: str | None = None,
        backend="serial",
        workers: int = 1,
        batch: int = 1,
        lease_seconds: float = DEFAULT_LEASE,
        poll_interval: float = DEFAULT_POLL,
        timeout: float | None = None,
        retries: int = 0,
        instrument=None,
        quota: int | None = None,
        max_attempts: int = 3,
    ):
        self.root = Path(root)
        self.node_id = node_id or f"node-{os.getpid()}"
        self.batch = max(1, int(batch))
        self.lease_seconds = lease_seconds
        self.poll_interval = poll_interval
        self.instrument = instrument
        self.queue = JobQueue(self.root, quota=quota, max_attempts=max_attempts)
        self.cache = ResultCache(self.root / RESULTS_DIR)
        self.traces = TraceStore(self.root)
        self.scheduler = JobScheduler(
            backend=backend,
            workers=workers,
            cache=self.cache,
            timeout=timeout,
            retries=retries,
            instrument=instrument,
        )

    # -- one claim-run-settle cycle ----------------------------------------------

    def step(self) -> int:
        """Claim up to ``batch`` jobs, run them, settle them.

        Returns the number of jobs claimed (0 means the queue had no
        pending work at claim time). Settlement is eager: each job is
        completed/failed on the queue the moment its outcome lands, and
        the leases of still-running batch members are renewed so a slow
        tail job is not reaped mid-batch.
        """
        rec = resolve_recorder(self.instrument)
        claimed = self.queue.claim(
            self.node_id, lease_seconds=self.lease_seconds, limit=self.batch
        )
        if not claimed:
            # Starvation signal: the node asked and the queue had nothing.
            # A dashboard where claims_empty dominates node.claims means
            # the farm is over-provisioned; the inverse means saturation.
            rec.count("service.claims_empty")
            return 0
        rec.count("service.node.claims", len(claimed))
        claim_wall = time.time()
        by_hash = {job.spec_hash: job for job in claimed}
        for job in claimed:
            # Queue age at the moment of claim — the staleness knob that
            # backpressure 429s should be tuned against, not raw depth.
            rec.observe("service.queue_age", job.queue_age)
            for tenant in job.tenants:
                rec.observe(tenant_counter(tenant, "queue_age"), job.queue_age)
        outstanding = {job.spec_hash for job in claimed}

        def settle(outcome) -> None:
            spec_hash = outcome.spec_hash
            if outcome.ok:
                # complete() after an eagerly-settled failure still wins:
                # the scheduler may retry a spec it already reported.
                if self.queue.complete(spec_hash, self.node_id):
                    rec.count("service.node.completed")
                    if outcome.status == "cached":
                        rec.count("service.node.dedup_served")
            else:
                self.queue.fail(
                    spec_hash, self.node_id, outcome.error or outcome.status
                )
                rec.count("service.node.failed")
            job = by_hash.get(spec_hash)
            if job is not None:
                settled = time.time()
                claimed_at = (
                    job.enqueued + job.queue_age
                    if job.enqueued is not None
                    else claim_wall
                )
                lease_latency = max(settled - claimed_at, 0.0)
                rec.observe("service.lease_latency", lease_latency)
                for tenant in job.tenants:
                    rec.observe(
                        tenant_counter(tenant, "lease_latency"), lease_latency
                    )
                self.traces.put(
                    spec_hash,
                    {
                        "hash": spec_hash,
                        "node": self.node_id,
                        "attempts": job.attempts,
                        "status": outcome.status,
                        "ok": outcome.ok,
                        "cached": outcome.status == "cached",
                        "trace": job.trace,
                        "enqueued": job.enqueued,
                        "claimed": claimed_at,
                        "settled": settled,
                        "elapsed": float(outcome.elapsed or 0.0),
                        "queue_age": job.queue_age,
                        "lease_latency": lease_latency,
                        "telemetry": outcome.telemetry,
                    },
                )
            outstanding.discard(spec_hash)
            for other in outstanding:
                self.queue.renew(other, self.node_id, self.lease_seconds)

        trace_map = {
            job.spec_hash: job.trace for job in claimed if job.trace
        }
        self.scheduler.run(
            [job.spec for job in claimed],
            on_outcome=settle,
            trace=trace_map or None,
        )
        return len(claimed)

    # -- the node loop -----------------------------------------------------------

    def run(self, stop: threading.Event | None = None, drain: bool = False) -> int:
        """Claim-run-settle until stopped; returns total jobs claimed.

        With ``drain=True`` the loop exits once the queue holds no active
        (pending or leased) work — leases held by *other* nodes keep a
        draining node alive, so a survivor waits out a crashed peer's
        lease and absorbs its work before exiting.
        """
        rec = resolve_recorder(self.instrument)
        total = 0
        while stop is None or not stop.is_set():
            claimed = self.step()
            total += claimed
            if claimed:
                continue
            if drain and self.queue.depth() == 0:
                break
            # Idle-backoff histogram: how much of the node's life is
            # spent sleeping on an empty queue (complement of the
            # saturation story claims_empty tells in counts).
            rec.observe("service.idle_backoff", self.poll_interval)
            time.sleep(self.poll_interval)
        return total

    def close(self) -> None:
        self.scheduler.close()

    def __enter__(self) -> "FarmNode":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def run_node(
    root,
    node_id: str | None = None,
    backend="serial",
    workers: int = 1,
    batch: int = 1,
    lease_seconds: float = DEFAULT_LEASE,
    poll_interval: float = DEFAULT_POLL,
    timeout: float | None = None,
    drain: bool = False,
    instrument=None,
    install_signals: bool = True,
) -> int:
    """Process entry point for ``repro node``: run one farm node loop.

    SIGTERM/SIGINT request a graceful stop (finish the in-flight batch,
    settle it, exit); SIGKILL is the fault-injection path — the lease
    reaper cleans up after it. Returns total jobs claimed.
    """
    stop = threading.Event()
    if install_signals:
        def _request_stop(signum, frame):
            stop.set()

        for signum in (signal.SIGTERM, signal.SIGINT):
            try:
                signal.signal(signum, _request_stop)
            except (ValueError, OSError):  # non-main thread
                break
    with FarmNode(
        root,
        node_id=node_id,
        backend=backend,
        workers=workers,
        batch=batch,
        lease_seconds=lease_seconds,
        poll_interval=poll_interval,
        timeout=timeout,
        instrument=instrument,
    ) as node:
        return node.run(stop=stop, drain=drain)


__all__ = ["FarmNode", "run_node", "ClaimedJob", "RESULTS_DIR"]
