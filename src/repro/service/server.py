"""Simulation-as-a-service: the stdlib HTTP/JSON front end of the farm.

:class:`ServiceServer` exposes one :class:`~repro.service.queue.JobQueue`
over HTTP, turning the one-shot batch CLI into a long-lived multi-tenant
service:

========================  =====================================================
``POST /jobs``            submit one :class:`~repro.jobs.spec.JobSpec`; 202
                          with the content-hash id (429 + queue-depth headers
                          when the tenant's quota is full)
``POST /campaigns``       submit a generated campaign (``monte_carlo`` /
                          ``pvt_corners`` / ``param_sweep`` / ``single`` /
                          ``ensemble``), atomically quota-checked
``GET /jobs/{id}``        queue status of one job
``GET /jobs/{id}/result`` the cached deterministic result payload
``GET /jobs/{id}/waveform``  just the times/signals arrays
``GET /campaigns/{id}``   campaign rollup (counts per status, done flag)
``GET /campaigns/{id}/stream``  chunked ``application/x-ndjson`` heartbeat
                          stream (one Heartbeat record per tick) until done
``GET /metrics``          Prometheus exposition + live queue-depth gauges
``GET /healthz``          JSON liveness: actual bound host/port, queue counts
``GET /stats``            queue depths, per-tenant rollups, raw counters
========================  =====================================================

The server itself never runs a simulation: it only writes queue entries
and reads the shared result cache. Any number of
:class:`~repro.service.node.FarmNode` processes (or the in-process worker
threads started with ``workers > 0``) drain the queue — that separation
is what lets a node be SIGKILLed, restarted, or added mid-campaign
without the front end noticing beyond a lease hand-off.
"""

from __future__ import annotations

import io
import json
import logging
import re
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from pathlib import Path

from repro.errors import ReproError, SimulationError
from repro.instrument.exporters import write_jsonl
from repro.instrument.prometheus import CONTENT_TYPE, metric_name, to_prometheus
from repro.instrument.recorder import Recorder, resolve_recorder
from repro.instrument.telemetry import (
    _TENANT_SAFE,
    Heartbeat,
    tenant_counter,
    tenant_rollups,
)
from repro.instrument.tracectx import TraceContext
from repro.jobs.cache import ResultCache
from repro.jobs.campaign import monte_carlo, param_sweep, pvt_corners, single
from repro.jobs.spec import JobSpec
from repro.service.node import RESULTS_DIR, FarmNode
from repro.service.queue import JobQueue, QuotaExceeded
from repro.service.trace import TraceStore, build_campaign_trace

logger = logging.getLogger("repro.service")

#: Campaign generator kinds accepted by ``POST /campaigns``. ``ensemble``
#: is Monte Carlo traffic flagged for lockstep batching: the specs are
#: identical to ``monte_carlo`` output (same topology, jittered params),
#: which is exactly what an ensemble-backend node batches into one
#: vectorised solve after claiming them together.
GENERATOR_KINDS = ("monte_carlo", "pvt_corners", "param_sweep", "single", "ensemble")

#: Default tick of the campaign heartbeat stream, seconds.
STREAM_INTERVAL = 0.5

# tenant_counter / _TENANT_SAFE used to live here; they moved to
# repro.instrument.telemetry (the farm nodes meter per-tenant channels
# too, and instrument must not import the service layer). Re-exported
# above for existing importers.


def spec_from_payload(data: dict) -> JobSpec:
    """A JobSpec from a request payload.

    Accepts the full :meth:`JobSpec.to_dict` shape; as a convenience,
    ``circuit`` may be a bare string (a registry benchmark name).
    """
    if not isinstance(data, dict):
        raise SimulationError("job spec must be a JSON object")
    payload = dict(data)
    circuit = payload.get("circuit")
    if isinstance(circuit, str):
        payload["circuit"] = {"kind": "registry", "name": circuit}
    try:
        return JobSpec.from_dict(payload)
    except (KeyError, TypeError) as exc:
        raise SimulationError(f"malformed job spec: {exc!r}") from None


def build_campaign(base: JobSpec, generator: dict):
    """Materialise a campaign from a request's generator payload."""
    if not isinstance(generator, dict):
        raise SimulationError("campaign generator must be a JSON object")
    kind = generator.get("kind")
    if kind not in GENERATOR_KINDS:
        raise SimulationError(
            f"unknown generator kind {kind!r}; expected one of {GENERATOR_KINDS}"
        )
    if kind in ("monte_carlo", "ensemble"):
        campaign = monte_carlo(
            base,
            n=int(generator.get("n", 8)),
            seed=int(generator.get("seed", 0)),
            jitter=float(generator.get("jitter", 0.05)),
            components=generator.get("components"),
        )
        if kind == "ensemble":
            campaign.generator = dict(campaign.generator, kind="ensemble")
        return campaign
    if kind == "pvt_corners":
        return pvt_corners(base, corners=generator.get("corners"))
    if kind == "param_sweep":
        return param_sweep(
            base, generator["component"], generator.get("values") or []
        )
    return single(base)


class CampaignHeartbeat(Heartbeat):
    """Heartbeat whose job-progress bucket tracks one queue campaign.

    The stock :class:`Heartbeat` derives progress from scheduler counters
    — the right view for a single in-process campaign, the wrong one for
    a shared farm where many campaigns interleave on the same recorder.
    This subclass reads the queue's campaign rollup instead, so each
    stream reports only its own campaign's jobs, and annotates every
    record with the full per-status count map.
    """

    def __init__(self, recorder, queue: JobQueue, campaign: str, interval: float):
        super().__init__(recorder, interval=interval)
        self.queue = queue
        self.campaign = campaign
        self._rollup: dict | None = None

    def sample(self, final: bool = False) -> dict:
        self._rollup = self.queue.campaign_status(self.campaign)
        final = final or self.done  # settled campaign => this tick is the last
        record = super().sample(final=final)
        if self._rollup is not None:
            record["campaign"] = {
                key: self._rollup[key]
                for key in ("id", "name", "jobs", "counts", "done")
            }
        return record

    def _job_progress(self, counters: dict) -> dict:
        rollup = self._rollup
        if rollup is None:
            return super()._job_progress(counters)
        counts = rollup["counts"]
        self.total_jobs = rollup["jobs"]  # lets the base ETA derivation run
        return {
            "total": rollup["jobs"],
            "done": counts.get("done", 0),
            "failed": counts.get("failed", 0),
            "cached": 0,
        }

    @property
    def done(self) -> bool:
        return bool(self._rollup and self._rollup["done"])


class ServiceServer:
    """The farm's HTTP front end (queue writer + cache reader).

    Args:
        root: queue directory shared with the farm nodes.
        recorder: Recorder for ``service.*`` counters; a fresh
            event-free one by default.
        host / port: bind address; ``port=0`` takes an ephemeral port
            (read ``server.port`` after :meth:`start`; also reported by
            ``/healthz`` and the startup log line).
        quota: per-tenant active-job cap (None disables 429s).
        max_attempts: claim attempts before a job is failed.
        workers: in-process :class:`FarmNode` threads to start alongside
            the front end (0 = accept-only; run ``repro node``
            separately).
        backend / node_workers / batch / lease_seconds: configuration of
            those in-process nodes.
        request_log: path of a structured JSONL request log (one object
            per metered request: timestamp, method, route, tenant,
            status, duration, trace id), or None to disable.
    """

    def __init__(
        self,
        root,
        recorder=None,
        host: str = "127.0.0.1",
        port: int = 0,
        quota: int | None = None,
        max_attempts: int = 3,
        workers: int = 0,
        backend="serial",
        node_workers: int = 1,
        batch: int = 1,
        lease_seconds: float = 30.0,
        poll_interval: float = 0.05,
        request_log=None,
    ):
        self.root = Path(root)
        self.recorder = (
            recorder if recorder is not None else Recorder(capture_events=False)
        )
        self.host = host
        self._requested_port = port
        self.queue = JobQueue(self.root, quota=quota, max_attempts=max_attempts)
        self.cache = ResultCache(self.root / RESULTS_DIR)
        self.traces = TraceStore(self.root)
        self.request_log_path = Path(request_log) if request_log else None
        self._request_log_handle = None
        self._request_log_lock = threading.Lock()
        self.workers = workers
        self._node_config = {
            "backend": backend,
            "workers": node_workers,
            "batch": batch,
            "lease_seconds": lease_seconds,
            "poll_interval": poll_interval,
        }
        self._httpd: ThreadingHTTPServer | None = None
        self._thread: threading.Thread | None = None
        self._node_threads: list[threading.Thread] = []
        self._nodes: list[FarmNode] = []
        self._stop_nodes = threading.Event()

    # -- lifecycle ---------------------------------------------------------------

    @property
    def port(self) -> int:
        if self._httpd is None:
            return self._requested_port
        return self._httpd.server_address[1]

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    def start(self) -> "ServiceServer":
        if self._httpd is not None:
            return self
        handler = _make_handler(self)
        self._httpd = ThreadingHTTPServer(
            (self.host, self._requested_port), handler
        )
        self._httpd.daemon_threads = True
        self._thread = threading.Thread(
            target=self._httpd.serve_forever, name="repro-service", daemon=True
        )
        self._thread.start()
        self._stop_nodes.clear()
        for index in range(self.workers):
            node = FarmNode(
                self.root,
                node_id=f"serve-{self.port}-w{index}",
                instrument=self.recorder,
                **self._node_config,
            )
            thread = threading.Thread(
                target=node.run,
                kwargs={"stop": self._stop_nodes},
                name=f"repro-farm-{index}",
                daemon=True,
            )
            thread.start()
            self._nodes.append(node)
            self._node_threads.append(thread)
        logger.info(
            "service listening on http://%s:%d (queue %s, %d worker node(s))",
            self.host,
            self.port,
            self.root,
            self.workers,
        )
        return self

    def stop(self) -> None:
        self._stop_nodes.set()
        for thread in self._node_threads:
            thread.join()
        for node in self._nodes:
            node.close()
        self._node_threads.clear()
        self._nodes.clear()
        httpd, self._httpd = self._httpd, None
        thread, self._thread = self._thread, None
        if httpd is not None:
            httpd.shutdown()
            httpd.server_close()
        if thread is not None:
            thread.join()
        with self._request_log_lock:
            handle, self._request_log_handle = self._request_log_handle, None
            if handle is not None:
                handle.close()

    def log_request(self, record: dict) -> None:
        """Append one JSONL record to the request log (no-op when off)."""
        if self.request_log_path is None:
            return
        line = json.dumps(record, sort_keys=True) + "\n"
        with self._request_log_lock:
            if self._request_log_handle is None:
                self._request_log_handle = open(
                    self.request_log_path, "a", encoding="utf-8"
                )
            self._request_log_handle.write(line)
            self._request_log_handle.flush()

    def __enter__(self) -> "ServiceServer":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()

    # -- request-side helpers (called from handler threads) ----------------------

    def submit_job(self, payload: dict, tenant: str, trace=None) -> dict:
        spec = spec_from_payload(payload.get("spec") or {})
        priority = int(payload.get("priority", 0))
        receipt = self.queue.submit(
            spec, tenant=tenant, priority=priority, trace=trace
        )
        rec = resolve_recorder(self.recorder)
        rec.count("service.submitted")
        rec.count(tenant_counter(tenant, "submitted"))
        if receipt.deduped:
            rec.count("service.deduped")
            rec.count(tenant_counter(tenant, "deduped"))
        out = {
            "id": receipt.spec_hash,
            "status": receipt.status,
            "created": receipt.created,
            "deduped": receipt.deduped,
            "queue_depth": self.queue.depth(),
            "tenant_depth": self.queue.depth(tenant),
        }
        if trace is not None:
            out["trace_id"] = trace.trace_id
        return out

    def submit_campaign(self, payload: dict, tenant: str, trace=None) -> dict:
        base = spec_from_payload(payload.get("spec") or {})
        campaign = build_campaign(base, payload.get("generator") or {})
        if payload.get("name"):
            campaign.name = str(payload["name"])
        priority = int(payload.get("priority", 0))
        cid, receipts = self.queue.submit_campaign(
            campaign.name,
            campaign.jobs,
            generator=campaign.generator,
            tenant=tenant,
            priority=priority,
            trace=trace,
        )
        rec = resolve_recorder(self.recorder)
        rec.count("service.campaigns")
        rec.count(tenant_counter(tenant, "campaigns"))
        created = sum(1 for r in receipts if r.created)
        deduped = len(receipts) - created
        # Same metering as /jobs: every accepted member counts as
        # submitted, dedups separately — so farm-wide,
        # service.submitted - service.deduped == jobs actually enqueued.
        rec.count("service.submitted", len(receipts))
        rec.count(tenant_counter(tenant, "submitted"), len(receipts))
        if deduped:
            rec.count("service.deduped", deduped)
            rec.count(tenant_counter(tenant, "deduped"), deduped)
        out = {
            "id": cid,
            "name": campaign.name,
            "generator": campaign.generator,
            "jobs": [r.spec_hash for r in receipts],
            "submitted": created,
            "deduped": deduped,
            "queue_depth": self.queue.depth(),
            "tenant_depth": self.queue.depth(tenant),
        }
        if trace is not None:
            out["trace_id"] = trace.trace_id
        return out

    def reject(self, exc: QuotaExceeded) -> None:
        rec = resolve_recorder(self.recorder)
        rec.count("service.rejected.quota")
        rec.count(tenant_counter(exc.tenant, "rejected"))

    def metrics_text(self) -> str:
        """Prometheus exposition: recorder state + live queue gauges."""
        text = to_prometheus(self.recorder)
        lines = [text.rstrip("\n")]
        depth_metric = metric_name("service.queue_depth")
        lines.append(f"# HELP {depth_metric} active (pending+leased) jobs")
        lines.append(f"# TYPE {depth_metric} gauge")
        lines.append(f"{depth_metric} {self.queue.depth()}")
        for tenant, depth in sorted(self.queue.depths_by_tenant().items()):
            safe = _TENANT_SAFE.sub("_", tenant)
            lines.append(f'{depth_metric}{{tenant="{safe}"}} {depth}')
        return "\n".join(lines) + "\n"

    def healthz(self) -> dict:
        return {
            "status": "ok",
            "host": self.host,
            "port": self.port,
            "queue": self.queue.counts(),
            "workers": self.workers,
        }

    def stats(self) -> dict:
        snap = self.recorder.snapshot()
        return {
            "queue": self.queue.counts(),
            "depth": self.queue.depth(),
            "depths_by_tenant": self.queue.depths_by_tenant(),
            "tenants": tenant_rollups(snap["counters"]),
            "counters": snap["counters"],
        }


#: route key -> compiled path pattern (GET routes with one capture group).
_GET_ROUTES = [
    ("job_result", re.compile(r"^/jobs/([0-9a-f]{64})/result$")),
    ("job_waveform", re.compile(r"^/jobs/([0-9a-f]{64})/waveform$")),
    ("job_status", re.compile(r"^/jobs/([0-9a-f]{64})$")),
    ("campaign_stream", re.compile(r"^/campaigns/([0-9a-f]+)/stream$")),
    ("campaign_status", re.compile(r"^/campaigns/([0-9a-f]+)$")),
    ("trace", re.compile(r"^/trace/([0-9a-f]+)$")),
]

#: Routes excluded from the request-duration histogram: a campaign
#: stream stays open for the campaign's whole life, so folding it into
#: ``service.request_duration`` would swamp the API-latency signal.
_UNMETERED_DURATION = frozenset({"campaign_stream"})


def _make_handler(server: ServiceServer):
    rec = resolve_recorder(server.recorder)

    class Handler(BaseHTTPRequestHandler):
        # HTTP/1.1 enables chunked transfer coding for /stream responses
        # (every other response carries an explicit Content-Length).
        protocol_version = "HTTP/1.1"

        # -- plumbing --------------------------------------------------------

        def _count(self, route: str) -> None:
            rec.count("service.requests")
            rec.count(f"service.requests.{route}")

        def _observe(
            self, route: str, tenant: str, t0: float, ctx=None
        ) -> None:
            """Per-tenant RED telemetry + request log for one request.

            Rate rides on ``service.requests`` / the per-tenant request
            counter, Errors on any >= 400 response, Duration on the
            log2 histogram pair (global + per-tenant) — except for the
            wall-clock-long stream route, which is counted but not
            duration-observed.
            """
            duration = time.perf_counter() - t0
            status = getattr(self, "_last_code", 0)
            rec.count(tenant_counter(tenant, "requests"))
            if status >= 400:
                rec.count("service.errors")
                rec.count(tenant_counter(tenant, "errors"))
            if route not in _UNMETERED_DURATION:
                rec.observe("service.request_duration", duration)
                rec.observe(
                    tenant_counter(tenant, "request_duration"), duration
                )
            server.log_request(
                {
                    "ts": round(time.time(), 6),
                    "method": self.command,
                    "path": self.path,
                    "route": route,
                    "tenant": tenant,
                    "status": status,
                    "duration_ms": round(duration * 1000.0, 3),
                    "trace_id": ctx.trace_id if ctx is not None else None,
                }
            )

        def _send_json(self, code: int, payload: dict, headers=None) -> None:
            self._last_code = code
            body = (json.dumps(payload, sort_keys=True) + "\n").encode("utf-8")
            self.send_response(code)
            self.send_header("Content-Type", "application/json")
            self.send_header("Content-Length", str(len(body)))
            for name, value in (headers or {}).items():
                self.send_header(name, value)
            self.end_headers()
            self.wfile.write(body)

        def _tenant(self, payload: dict) -> str:
            header = self.headers.get("X-Tenant")
            tenant = payload.get("tenant") or header or "default"
            return str(tenant)

        def _read_body(self) -> dict:
            length = int(self.headers.get("Content-Length") or 0)
            raw = self.rfile.read(length) if length else b""
            if not raw:
                return {}
            payload = json.loads(raw)
            if not isinstance(payload, dict):
                raise ValueError("request body must be a JSON object")
            return payload

        def _query(self) -> tuple[str, dict]:
            path, _, query = self.path.partition("?")
            out: dict[str, str] = {}
            for part in query.split("&"):
                if "=" in part:
                    key, _, value = part.partition("=")
                    out[key] = value
            return path, out

        # -- verbs -----------------------------------------------------------

        def do_POST(self):  # noqa: N802 (http.server API)
            t0 = time.perf_counter()
            path, _ = self._query()
            tenant = str(self.headers.get("X-Tenant") or "default")
            ctx = None
            if path == "/jobs":
                submit, route = server.submit_job, "jobs_post"
            elif path == "/campaigns":
                submit, route = server.submit_campaign, "campaigns_post"
            else:
                self._count("unknown")
                self._send_json(404, {"error": f"no such endpoint {path}"})
                self._observe("unknown", tenant, t0)
                return
            self._count(route)
            try:
                try:
                    payload = self._read_body()
                except ValueError as exc:
                    self._send_json(400, {"error": f"bad request body: {exc}"})
                    return
                tenant = self._tenant(payload)
                # Ingress minting: honour a propagated W3C traceparent
                # (the tenant header wins over whatever the context
                # claims), mint a fresh server-origin context otherwise.
                ctx = TraceContext.from_headers(self.headers, tenant=tenant)
                ctx = (
                    ctx.bound(tenant=tenant)
                    if ctx is not None
                    else TraceContext.mint(tenant=tenant, origin="server")
                )
                try:
                    self._send_json(202, submit(payload, tenant, trace=ctx))
                except QuotaExceeded as exc:
                    server.reject(exc)
                    self._send_json(
                        429,
                        {
                            "error": str(exc),
                            "tenant": exc.tenant,
                            "depth": exc.depth,
                            "quota": exc.quota,
                        },
                        headers={
                            "Retry-After": "1",
                            "X-Queue-Depth": str(server.queue.depth()),
                            "X-Tenant-Queue-Depth": str(exc.depth),
                        },
                    )
                except ReproError as exc:
                    self._send_json(400, {"error": str(exc)})
            finally:
                self._observe(route, tenant, t0, ctx)

        def do_GET(self):  # noqa: N802 (http.server API)
            path, query = self._query()
            # Monitoring probes (/metrics, /healthz, /stats) are served
            # but not metered: scrape and drain-poll cadence is wall
            # clock, and letting it leak into service.requests.* would
            # make otherwise-identical workloads count differently.
            if path == "/metrics":
                body = server.metrics_text().encode("utf-8")
                self.send_response(200)
                self.send_header("Content-Type", CONTENT_TYPE)
                self.send_header("Content-Length", str(len(body)))
                self.end_headers()
                self.wfile.write(body)
                return
            if path == "/healthz":
                self._send_json(200, server.healthz())
                return
            if path == "/stats":
                self._send_json(200, server.stats())
                return
            t0 = time.perf_counter()
            tenant = str(self.headers.get("X-Tenant") or "default")
            for route, pattern in _GET_ROUTES:
                match = pattern.match(path)
                if match:
                    self._count(route)
                    try:
                        getattr(self, f"_get_{route}")(match.group(1), query)
                    finally:
                        self._observe(route, tenant, t0)
                    return
            self._count("unknown")
            self._send_json(404, {"error": f"no such endpoint {path}"})
            self._observe("unknown", tenant, t0)

        # -- GET routes -------------------------------------------------------

        def _get_job_status(self, spec_hash: str, query: dict) -> None:
            status = server.queue.status(spec_hash)
            if status is None:
                self._send_json(404, {"error": f"unknown job {spec_hash}"})
                return
            self._send_json(200, status)

        def _result_or_error(self, spec_hash: str):
            status = server.queue.status(spec_hash)
            if status is None:
                self._send_json(404, {"error": f"unknown job {spec_hash}"})
                return None
            if status["status"] != "done":
                self._send_json(
                    409,
                    {
                        "error": f"result not ready (job is {status['status']})",
                        "status": status["status"],
                        "attempts": status["attempts"],
                        "job_error": status["error"],
                    },
                )
                return None
            result = server.cache.get(spec_hash)
            if result is None:
                self._send_json(
                    404, {"error": f"result bytes for {spec_hash} were evicted"}
                )
                return None
            return result

        def _get_job_result(self, spec_hash: str, query: dict) -> None:
            result = self._result_or_error(spec_hash)
            if result is None:
                return
            rec.count("service.results_served")
            self._send_json(200, result.to_dict())

        def _get_job_waveform(self, spec_hash: str, query: dict) -> None:
            result = self._result_or_error(spec_hash)
            if result is None:
                return
            rec.count("service.results_served")
            self._send_json(
                200,
                {
                    "id": spec_hash,
                    "label": result.label,
                    "final_time": result.final_time,
                    "times": result.times,
                    "signals": result.signals,
                },
            )

        def _get_campaign_status(self, cid: str, query: dict) -> None:
            rollup = server.queue.campaign_status(cid)
            if rollup is None:
                self._send_json(404, {"error": f"unknown campaign {cid}"})
                return
            self._send_json(200, rollup)

        def _get_trace(self, cid: str, query: dict) -> None:
            """Stream the stitched cross-node campaign trace as JSONL.

            The body is a standard ``repro-trace-v1`` dump (header,
            event rows, summary footer) — exactly what ``repro explain``
            and ``repro explain --html`` consume.
            """
            trace_rec = build_campaign_trace(server.queue, server.traces, cid)
            if trace_rec is None:
                self._send_json(404, {"error": f"unknown campaign {cid}"})
                return
            rec.count("service.traces_served")
            buffer = io.StringIO()
            write_jsonl(trace_rec, buffer)
            body = buffer.getvalue().encode("utf-8")
            self._last_code = 200
            self.send_response(200)
            self.send_header("Content-Type", "application/x-ndjson")
            self.send_header("Content-Length", str(len(body)))
            self.end_headers()
            self.wfile.write(body)

        def _get_campaign_stream(self, cid: str, query: dict) -> None:
            if server.queue.campaign_status(cid) is None:
                self._send_json(404, {"error": f"unknown campaign {cid}"})
                return
            try:
                interval = float(query.get("interval", STREAM_INTERVAL))
            except ValueError:
                interval = STREAM_INTERVAL
            interval = min(max(interval, 0.02), 30.0)
            heartbeat = CampaignHeartbeat(
                server.recorder, server.queue, cid, interval
            ).prime()
            self._last_code = 200
            self.send_response(200)
            self.send_header("Content-Type", "application/x-ndjson")
            self.send_header("Transfer-Encoding", "chunked")
            self.end_headers()

            def chunk(data: bytes) -> None:
                self.wfile.write(f"{len(data):X}\r\n".encode("ascii"))
                self.wfile.write(data + b"\r\n")

            try:
                while True:
                    record = heartbeat.sample()
                    chunk(json.dumps(record, sort_keys=True).encode("utf-8") + b"\n")
                    self.wfile.flush()
                    if record["final"]:
                        break
                    time.sleep(interval)
                self.wfile.write(b"0\r\n\r\n")
            except (BrokenPipeError, ConnectionResetError):
                pass  # client went away mid-stream; nothing to clean up

        def log_message(self, *args):  # route logging via `logging`, not stderr
            logger.debug("%s - %s", self.address_string(), args)

    return Handler


def serve(root, **kwargs) -> ServiceServer:
    """Start (and return) a :class:`ServiceServer` over *root*."""
    return ServiceServer(root, **kwargs).start()
