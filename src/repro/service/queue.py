"""Persistent multi-tenant priority queue with lease/expiry claims.

The :class:`JobQueue` is the shared ground truth of a simulation farm:
one directory, one ``queue.json`` manifest, any number of submitting
front ends and claiming farm nodes. Three properties carry the service:

* **Persistent and atomic** — every mutation rewrites the manifest with
  the temp-file + ``os.replace`` idiom of
  :class:`~repro.jobs.store.CampaignStore`, under an ``flock``-held
  ``queue.lock``, so a SIGKILLed node never leaves a torn manifest and a
  restarted farm resumes from exactly the state the last transaction
  committed.
* **Content-hash keyed** — a job's id *is* its spec's
  :meth:`~repro.jobs.spec.JobSpec.content_hash`. Identical specs from
  different tenants collapse into one queue entry (each tenant is
  subscribed to the shared job) and one
  :class:`~repro.jobs.cache.ResultCache` entry: the physics is computed
  once, served to everyone.
* **Lease semantics** — a claim marks the entry ``leased`` with a
  wall-clock expiry. Nodes that die mid-job simply stop renewing; the
  next transaction's reap pass returns the entry to ``pending`` (or
  ``failed`` once ``max_attempts`` claims have burned), and another node
  picks it up. Completion is idempotent: a node that lost its lease but
  finished anyway publishes the same deterministic bytes the reclaiming
  node would, so a late ``complete`` is harmless.

Per-tenant quotas bound the number of *active* (pending + leased) jobs a
tenant may hold; a submit beyond the quota raises :class:`QuotaExceeded`,
which the HTTP layer translates into a 429 with queue-depth headers.
"""

from __future__ import annotations

import contextlib
import hashlib
import json
import os
import threading
import time
from dataclasses import dataclass
from pathlib import Path

from repro.errors import ReproError, SimulationError
from repro.jobs.spec import JobSpec

try:  # pragma: no cover - always present on the supported platforms
    import fcntl
except ImportError:  # pragma: no cover
    fcntl = None

#: Queue manifest schema version (bump on incompatible layout changes).
QUEUE_VERSION = 1

#: States a queue entry may be in.
ENTRY_STATUSES = ("pending", "leased", "done", "failed")

#: States that count against a tenant's quota (work not yet settled).
ACTIVE_STATUSES = ("pending", "leased")

#: Dedup-served trace contexts retained per entry. The first submission
#: "pays" for the solve and owns ``entry["trace"]``; later duplicate
#: submissions are linked (capped, oldest first) so the trace stitcher
#: can attribute cache hits back to each requester without letting a
#: pathological duplicate storm grow the manifest without bound.
TRACE_LINK_LIMIT = 16


def _trace_dict(trace) -> dict | None:
    """Normalise a trace context (TraceContext or dict) for the manifest."""
    if trace is None:
        return None
    if hasattr(trace, "to_dict"):
        return trace.to_dict()
    return dict(trace)


class QuotaExceeded(ReproError):
    """A tenant's active-job quota is full (HTTP layer: 429).

    Attributes:
        tenant: the tenant whose quota is exhausted.
        depth: the tenant's current active-job count.
        quota: the configured per-tenant cap.
    """

    def __init__(self, tenant: str, depth: int, quota: int):
        self.tenant = tenant
        self.depth = depth
        self.quota = quota
        super().__init__(
            f"tenant {tenant!r} has {depth} active job(s), quota is {quota}"
        )


@dataclass(frozen=True)
class SubmitReceipt:
    """What one submission did to the queue."""

    spec_hash: str
    status: str
    created: bool  # a new entry was inserted
    deduped: bool  # an existing entry (any status) absorbed the submit


@dataclass(frozen=True)
class ClaimedJob:
    """One leased unit of work handed to a farm node.

    Carries the observability context along with the work: the paying
    submission's trace context, the subscribed tenants, and how long the
    entry sat pending (``queue_age``, seconds) so the node can record
    staleness at the moment of claim.
    """

    spec: JobSpec
    spec_hash: str
    attempts: int
    lease_expires: float
    trace: dict | None = None
    tenants: tuple = ()
    enqueued: float | None = None
    queue_age: float = 0.0


def campaign_id(name: str, job_hashes: list[str]) -> str:
    """Deterministic campaign id: digest of the name + member hashes."""
    payload = json.dumps(
        {"name": name, "jobs": list(job_hashes)}, sort_keys=True,
        separators=(",", ":"),
    )
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:24]


class JobQueue:
    """One farm's persistent queue (manifest + lock file under *root*).

    Args:
        root: directory holding ``queue.json`` / ``queue.lock`` (created
            if missing). Farm nodes and front ends sharing a queue pass
            the same directory.
        quota: max active (pending + leased) jobs per tenant; None
            disables quota enforcement.
        max_attempts: claims an entry may burn (initial + reclaims after
            lease expiry) before it is marked ``failed``.
        clock: wall-clock source; injectable for deterministic tests.
    """

    def __init__(
        self,
        root,
        quota: int | None = None,
        max_attempts: int = 3,
        clock=time.time,
    ):
        if quota is not None and quota < 1:
            raise SimulationError("queue quota must be >= 1 (or None)")
        if max_attempts < 1:
            raise SimulationError("queue max_attempts must be >= 1")
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.quota = quota
        self.max_attempts = max_attempts
        self.clock = clock

    @property
    def path(self) -> Path:
        return self.root / "queue.json"

    @property
    def lock_path(self) -> Path:
        return self.root / "queue.lock"

    # -- state persistence -------------------------------------------------------

    @staticmethod
    def _fresh_state() -> dict:
        return {"version": QUEUE_VERSION, "seq": 0, "jobs": {}, "campaigns": {}}

    def _load(self) -> dict:
        try:
            with open(self.path, encoding="utf-8") as handle:
                state = json.load(handle)
        except FileNotFoundError:
            return self._fresh_state()
        if state.get("version") != QUEUE_VERSION:
            raise SimulationError(
                f"queue manifest version {state.get('version')!r} unsupported "
                f"(expected {QUEUE_VERSION})"
            )
        return state

    def _save(self, state: dict) -> None:
        text = json.dumps(state, sort_keys=True, indent=2) + "\n"
        tmp = self.path.with_suffix(
            f".tmp.{os.getpid()}.{threading.get_ident()}"
        )
        tmp.write_text(text, encoding="utf-8")
        os.replace(tmp, self.path)

    @contextlib.contextmanager
    def _transaction(self, write: bool = True):
        """Load-mutate-save under the cross-process queue lock.

        ``flock`` on a dedicated lock file serialises transactions across
        processes *and* threads (each transaction opens its own file
        description). The manifest itself is only ever replaced
        atomically, so lock-free readers (:meth:`status`, :meth:`depth`)
        still observe a consistent snapshot.
        """
        handle = open(self.lock_path, "a+")
        try:
            if fcntl is not None:
                fcntl.flock(handle.fileno(), fcntl.LOCK_EX)
            state = self._load()
            self._reaped_in_txn = self._reap_locked(state)
            yield state
            if write:
                self._save(state)
        finally:
            if fcntl is not None:
                fcntl.flock(handle.fileno(), fcntl.LOCK_UN)
            handle.close()

    # -- lease reaping -----------------------------------------------------------

    def _reap_locked(self, state: dict) -> list[str]:
        """Expire dead leases in *state*; returns the touched hashes.

        Runs at the head of every transaction, so no dedicated reaper
        process is required: any queue activity (a submit, a claim, a
        status poll through :meth:`reap_expired`) collects the leases of
        crashed nodes. Entries that burned ``max_attempts`` claims go to
        ``failed`` instead of looping forever.
        """
        now = self.clock()
        touched = []
        for spec_hash, entry in state["jobs"].items():
            lease = entry.get("lease")
            if entry["status"] != "leased" or not lease:
                continue
            if lease["expires"] > now:
                continue
            entry["lease"] = None
            if entry["attempts"] >= self.max_attempts:
                entry["status"] = "failed"
                entry["error"] = (
                    f"lease expired after {entry['attempts']} claim attempt(s) "
                    f"(last node {lease['node']!r})"
                )
            else:
                entry["status"] = "pending"
            touched.append(spec_hash)
        return touched

    def reap_expired(self) -> list[str]:
        """Explicitly run one reap pass; returns the touched hashes."""
        with self._transaction():
            return list(self._reaped_in_txn)

    # -- submission --------------------------------------------------------------

    def _active_depth(self, state: dict, tenant: str | None = None) -> int:
        return sum(
            1
            for entry in state["jobs"].values()
            if entry["status"] in ACTIVE_STATUSES
            and (tenant is None or tenant in entry["tenants"])
        )

    def _check_quota(self, state: dict, tenant: str, new_active: int) -> None:
        if self.quota is None:
            return
        depth = self._active_depth(state, tenant)
        if depth + new_active > self.quota:
            raise QuotaExceeded(tenant, depth, self.quota)

    def _submit_locked(
        self, state: dict, spec: JobSpec, tenant: str, priority: int,
        enforce_quota: bool = True, trace: dict | None = None,
    ) -> SubmitReceipt:
        spec_hash = spec.content_hash()
        entry = state["jobs"].get(spec_hash)
        if entry is not None:
            deduped = True
            if tenant not in entry["tenants"]:
                if entry["status"] in ACTIVE_STATUSES and enforce_quota:
                    self._check_quota(state, tenant, 1)
                entry["tenants"] = sorted([*entry["tenants"], tenant])
            entry["priority"] = max(entry["priority"], int(priority))
            if trace is not None:
                if not entry.get("trace"):
                    entry["trace"] = trace
                else:
                    links = entry.setdefault("trace_links", [])
                    if len(links) < TRACE_LINK_LIMIT:
                        links.append(trace)
            if entry["status"] == "failed":
                # Resubmission grants a failed job a fresh set of attempts
                # (and restarts its queue-age clock: the wait being measured
                # is the wait of the submission that revived the entry).
                entry["status"] = "pending"
                entry["attempts"] = 0
                entry["error"] = None
                entry["lease"] = None
                entry["enqueued"] = self.clock()
            return SubmitReceipt(spec_hash, entry["status"], False, deduped)
        if enforce_quota:
            self._check_quota(state, tenant, 1)
        state["seq"] += 1
        state["jobs"][spec_hash] = {
            "hash": spec_hash,
            "label": spec.label,
            "spec": spec.canonical_dict(),
            "tenants": [tenant],
            "priority": int(priority),
            "status": "pending",
            "attempts": 0,
            "submitted": state["seq"],
            "enqueued": self.clock(),
            "lease": None,
            "error": None,
            "trace": trace,
            "trace_links": [],
        }
        return SubmitReceipt(spec_hash, "pending", True, False)

    def submit(
        self,
        spec: JobSpec,
        tenant: str = "default",
        priority: int = 0,
        trace=None,
    ) -> SubmitReceipt:
        """Enqueue one spec for *tenant*; dedups by content hash.

        *trace* (a :class:`~repro.instrument.tracectx.TraceContext` or
        its dict form) is persisted with the entry: the first submission
        becomes the entry's paying trace, later duplicates are linked for
        dedup attribution.

        Raises :class:`QuotaExceeded` when the tenant's active-job quota
        is full (the queue is left untouched).
        """
        with self._transaction() as state:
            return self._submit_locked(
                state, spec, tenant, priority, trace=_trace_dict(trace)
            )

    def submit_campaign(
        self,
        name: str,
        jobs: list[JobSpec],
        generator: dict | None = None,
        tenant: str = "default",
        priority: int = 0,
        trace=None,
    ) -> tuple[str, list[SubmitReceipt]]:
        """Enqueue a whole campaign atomically (all jobs or a 429).

        The quota check is all-or-nothing: either every member fits under
        the tenant's cap or nothing is enqueued. Returns the
        deterministic campaign id and one receipt per member.
        """
        if not jobs:
            raise SimulationError("a campaign needs at least one job")
        hashes = [spec.content_hash() for spec in jobs]
        cid = campaign_id(name, hashes)
        with self._transaction() as state:
            if self.quota is not None:
                new_active = 0
                for spec_hash in dict.fromkeys(hashes):
                    entry = state["jobs"].get(spec_hash)
                    if entry is None:
                        new_active += 1
                    elif (
                        entry["status"] in ACTIVE_STATUSES
                        and tenant not in entry["tenants"]
                    ):
                        new_active += 1
                self._check_quota(state, tenant, new_active)
            ctx = _trace_dict(trace)
            receipts = [
                self._submit_locked(state, spec, tenant, priority,
                                    enforce_quota=False, trace=ctx)
                for spec in jobs
            ]
            campaign = state["campaigns"].get(cid)
            if campaign is None:
                state["campaigns"][cid] = {
                    "id": cid,
                    "name": name,
                    "generator": dict(generator or {}),
                    "jobs": hashes,
                    "tenants": [tenant],
                }
            elif tenant not in campaign["tenants"]:
                campaign["tenants"] = sorted([*campaign["tenants"], tenant])
        return cid, receipts

    # -- claiming / settlement ---------------------------------------------------

    def claim(
        self, node: str, lease_seconds: float = 30.0, limit: int = 1
    ) -> list[ClaimedJob]:
        """Lease up to *limit* pending jobs to *node*.

        Selection order is priority (higher first), then submission
        order — a strict total order, so concurrent nodes racing the
        same queue partition the work deterministically given their
        claim interleaving. Expired leases are reaped first, which is
        how work abandoned by a SIGKILLed node migrates to the claimant.
        """
        if limit < 1:
            raise SimulationError("claim limit must be >= 1")
        if lease_seconds <= 0:
            raise SimulationError("lease_seconds must be positive")
        claimed: list[ClaimedJob] = []
        with self._transaction() as state:
            pending = sorted(
                (e for e in state["jobs"].values() if e["status"] == "pending"),
                key=lambda e: (-e["priority"], e["submitted"]),
            )
            now = self.clock()
            for entry in pending[:limit]:
                entry["status"] = "leased"
                entry["attempts"] += 1
                expires = now + lease_seconds
                entry["lease"] = {"node": node, "expires": expires}
                entry["claimed"] = now
                spec = JobSpec.from_dict(
                    dict(entry["spec"], label=entry.get("label", ""))
                )
                enqueued = entry.get("enqueued")
                claimed.append(
                    ClaimedJob(
                        spec,
                        entry["hash"],
                        entry["attempts"],
                        expires,
                        trace=entry.get("trace"),
                        tenants=tuple(entry["tenants"]),
                        enqueued=enqueued,
                        queue_age=(
                            max(now - enqueued, 0.0)
                            if enqueued is not None
                            else 0.0
                        ),
                    )
                )
        return claimed

    def renew(self, spec_hash: str, node: str, lease_seconds: float = 30.0) -> bool:
        """Extend *node*'s lease on an entry; False when the lease is lost."""
        with self._transaction() as state:
            entry = state["jobs"].get(spec_hash)
            if (
                entry is None
                or entry["status"] != "leased"
                or not entry["lease"]
                or entry["lease"]["node"] != node
            ):
                return False
            entry["lease"]["expires"] = self.clock() + lease_seconds
            return True

    def complete(self, spec_hash: str, node: str) -> bool:
        """Mark an entry done (idempotent). Returns False on a duplicate.

        Completion is accepted even from a node whose lease expired —
        results are content-addressed and deterministic, so a late
        publisher wrote the same bytes the reclaiming node would.
        """
        with self._transaction() as state:
            entry = state["jobs"].get(spec_hash)
            if entry is None:
                raise SimulationError(f"unknown job {spec_hash!r}")
            if entry["status"] == "done":
                return False
            entry["status"] = "done"
            entry["lease"] = None
            entry["error"] = None
            entry["settled"] = self.clock()
            entry["node"] = node
            return True

    def fail(self, spec_hash: str, node: str, error: str) -> str:
        """Record a failed attempt; returns the entry's new status.

        The entry goes back to ``pending`` while claim attempts remain,
        ``failed`` once they are burned. A concurrent completion wins:
        failing a ``done`` entry is a no-op.
        """
        with self._transaction() as state:
            entry = state["jobs"].get(spec_hash)
            if entry is None:
                raise SimulationError(f"unknown job {spec_hash!r}")
            if entry["status"] == "done":
                return "done"
            entry["lease"] = None
            entry["settled"] = self.clock()
            entry["node"] = node
            if entry["attempts"] >= self.max_attempts:
                entry["status"] = "failed"
                entry["error"] = error
            else:
                entry["status"] = "pending"
                entry["error"] = error
            return entry["status"]

    # -- inspection (lock-free reads of the atomic manifest) ---------------------

    def status(self, spec_hash: str) -> dict | None:
        """JSON-safe status payload for one job, or None when unknown."""
        entry = self._load()["jobs"].get(spec_hash)
        if entry is None:
            return None
        return {
            "id": entry["hash"],
            "label": entry.get("label", ""),
            "status": entry["status"],
            "tenants": list(entry["tenants"]),
            "priority": entry["priority"],
            "attempts": entry["attempts"],
            "lease": dict(entry["lease"]) if entry["lease"] else None,
            "error": entry["error"],
        }

    def campaign_status(self, cid: str) -> dict | None:
        """Rollup payload for one campaign, or None when unknown."""
        state = self._load()
        campaign = state["campaigns"].get(cid)
        if campaign is None:
            return None
        counts: dict[str, int] = {}
        statuses: dict[str, str] = {}
        for spec_hash in campaign["jobs"]:
            entry = state["jobs"].get(spec_hash)
            status = entry["status"] if entry is not None else "pending"
            statuses[spec_hash] = status
            counts[status] = counts.get(status, 0) + 1
        settled = counts.get("done", 0) + counts.get("failed", 0)
        return {
            "id": cid,
            "name": campaign["name"],
            "generator": dict(campaign["generator"]),
            "tenants": list(campaign["tenants"]),
            "jobs": len(campaign["jobs"]),
            "counts": counts,
            "statuses": statuses,
            "done": settled == len(campaign["jobs"]),
        }

    def entries(self, hashes=None) -> dict[str, dict]:
        """Raw manifest entries (shallow copies), keyed by hash.

        With *hashes* the result is restricted to (and ordered like) the
        known members of that list. This is the trace stitcher's read
        path: it needs the enqueue/claim/settle timestamps and persisted
        trace contexts that the shaped :meth:`status` payload omits.
        """
        jobs = self._load()["jobs"]
        if hashes is None:
            return {h: dict(e) for h, e in jobs.items()}
        return {h: dict(jobs[h]) for h in hashes if h in jobs}

    def campaign(self, cid: str) -> dict | None:
        """Raw campaign record (shallow copy), or None when unknown."""
        campaign = self._load()["campaigns"].get(cid)
        return dict(campaign) if campaign is not None else None

    def depth(self, tenant: str | None = None) -> int:
        """Active (pending + leased) job count, optionally per tenant."""
        return self._active_depth(self._load(), tenant)

    def depths_by_tenant(self) -> dict[str, int]:
        """Active job count per tenant (shared jobs count for each)."""
        out: dict[str, int] = {}
        for entry in self._load()["jobs"].values():
            if entry["status"] not in ACTIVE_STATUSES:
                continue
            for tenant in entry["tenants"]:
                out[tenant] = out.get(tenant, 0) + 1
        return out

    def counts(self) -> dict[str, int]:
        """Entry count per status across the whole queue."""
        out: dict[str, int] = {}
        for entry in self._load()["jobs"].values():
            out[entry["status"]] = out.get(entry["status"], 0) + 1
        return out

    def job_hashes(self) -> list[str]:
        """Every known job hash, in submission order."""
        state = self._load()
        return [
            e["hash"]
            for e in sorted(state["jobs"].values(), key=lambda e: e["submitted"])
        ]
