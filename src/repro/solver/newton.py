"""Damped Newton–Raphson for the discretised circuit equations.

One call of :func:`newton_solve` finds x with

    F(x) = f(x) + s(t) + gshunt*x + alpha0*q(x) + beta = 0

where ``alpha0``/``beta`` encode the integration scheme (``alpha0 = 0``,
``beta = 0`` gives the DC equations). Convergence follows SPICE: the
iteration stops when every component of the update satisfies
``|dx_i| <= reltol*max(|x_i|, |x_prev_i|) + tol_i`` (vntol for voltages,
abstol for currents) *and* no device limiter fired on the accepted iterate.

The solver is stateless and re-entrant: all scratch state lives in the
caller-provided :class:`~repro.devices.base.EvalOutputs` buffers, so
concurrent WavePipe tasks can run Newton solves on the same system.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.devices.base import EvalOutputs
from repro.errors import SingularMatrixError
from repro.instrument.events import (
    NEWTON_SOLVE,
    OUTCOME_NEWTON_FAIL,
    PHASE_ASSEMBLY,
    PHASE_BACKSOLVE,
    PHASE_DEVICE_EVAL,
    PHASE_FACTOR,
)
from repro.instrument.recorder import get_recorder
from repro.linalg.solve import LinearSolver
from repro.mna.system import MnaSystem
from repro.utils.options import SimOptions

@dataclass
class NewtonResult:
    """Outcome of one Newton solve.

    Attributes:
        x: final iterate (meaningful even when unconverged — speculative
            WavePipe phases resume from it).
        converged: True if the SPICE delta-x criterion was met.
        iterations: Newton iterations performed.
        residual_norm: infinity norm of F at the final iterate.
        work_units: cost-model charge for this solve.
        q / qdot: charge vector at the solution and its derivative
            ``alpha0*q + beta`` (filled by the caller's integration layer
            when needed).
        failure: short reason string when not converged.
        lu_factors / lu_refactors / lu_solves / lu_reuse_hits: linear
            solver cost breakdown for this solve (fresh factorisations,
            symbolic-reuse numeric refactorisations, back-solves, and
            back-solves against reused factors).
        bypass_fallbacks: times the Jacobian bypass was abandoned
            mid-solve (residual stall or singular stale factors).
    """

    x: np.ndarray
    converged: bool
    iterations: int
    residual_norm: float
    work_units: float
    q: np.ndarray | None = None
    qdot: np.ndarray | None = None
    failure: str = ""
    lu_factors: int = 0
    lu_refactors: int = 0
    lu_solves: int = 0
    lu_reuse_hits: int = 0
    bypass_fallbacks: int = 0


def iteration_work(system: MnaSystem, bypassed: bool = False) -> float:
    """Cost-model work units for one Newton iteration on *system*.

    Device evaluation dominates in a SPICE engine; factorisation scales
    with the pattern's nonzero count. The constants only matter up to an
    overall scale since speedups are cost ratios on the same system.
    A *bypassed* iteration skips assembly and factorisation and pays only
    the back-solve, modelled at a fifth of the factorisation weight.
    """
    lu = 0.01 if bypassed else 0.05
    return system.work_units_per_eval + lu * system.pattern.nnz


def newton_solve(
    system: MnaSystem,
    t: float,
    alpha0: float,
    beta: np.ndarray | float,
    x0: np.ndarray,
    options: SimOptions | None = None,
    out: EvalOutputs | None = None,
    solver: LinearSolver | None = None,
    iter_cap: int | None = None,
) -> NewtonResult:
    """Solve the discretised equations at time *t* starting from *x0*.

    Args:
        alpha0: leading integration coefficient (0 for DC).
        beta: history vector of the integration scheme (0 for DC).
        iter_cap: optional hard iteration bound; when hit, returns the
            current iterate with ``converged=False`` and no error — used
            by WavePipe's speculative forward phase.
    """
    opts = options or system.options
    rec = opts.instrument if opts.instrument is not None else get_recorder()
    if not rec.enabled:
        return _newton_iterate(system, t, alpha0, beta, x0, opts, out, solver, iter_cap)
    sid = rec.begin_span(NEWTON_SOLVE, t_sim=t)
    t_start = rec.clock()  # after begin_span so phase children nest inside
    result = _newton_iterate(system, t, alpha0, beta, x0, opts, out, solver, iter_cap)
    rec.count("newton.solves")
    rec.count("newton.iterations", result.iterations)
    if not result.converged:
        rec.count("newton.failures")
    if result.lu_factors:
        rec.count("lu.factor", result.lu_factors)
    if result.lu_refactors:
        rec.count("lu.refactor", result.lu_refactors)
    if result.lu_solves:
        rec.count("lu.solve", result.lu_solves)
    if result.lu_reuse_hits:
        rec.count("lu.reuse_hit", result.lu_reuse_hits)
    if result.bypass_fallbacks:
        rec.count("newton.bypass_fallback", result.bypass_fallbacks)
    rec.observe("newton.iterations_per_solve", result.iterations)
    _emit_phase_spans(rec, sid, t_start, system, result)
    rec.end_span(
        sid,
        outcome="converged" if result.converged else OUTCOME_NEWTON_FAIL,
        cost=result.work_units,
        iterations=result.iterations,
        converged=result.converged,
        work_units=result.work_units,
        failure=result.failure,
    )
    return result


def _emit_phase_spans(rec, parent: int, t_start: float, system, result) -> None:
    """Child spans splitting one solve's cost into its four phases.

    The split is synthesized from the virtual-clock work model rather
    than timed (the hot loop stays instrumentation-free): each phase's
    ``cost`` attr is deterministic work units, while its wall interval
    is the parent's window divided proportionally — a drawing aid for
    Perfetto, not a measurement. ``device_eval`` additionally carries
    the per-device-class attribution from the compiled circuit's banks.
    """
    nnz = system.pattern.nnz
    factorisations = result.lu_factors + result.lu_refactors
    eval_cost = result.iterations * system.work_units_per_eval
    assembly_cost = 0.02 * nnz * factorisations
    factor_cost = 0.02 * nnz * factorisations
    backsolve_cost = 0.01 * nnz * result.lu_solves
    phases = [
        (PHASE_DEVICE_EVAL, eval_cost),
        (PHASE_ASSEMBLY, assembly_cost),
        (PHASE_FACTOR, factor_cost),
        (PHASE_BACKSOLVE, backsolve_cost),
    ]
    total = sum(cost for _, cost in phases)
    if total <= 0.0:
        return
    window = max(rec.clock() - t_start, 0.0)
    compiled = getattr(system, "compiled", None)
    cursor = t_start
    for name, cost in phases:
        if cost <= 0.0:
            continue
        dur = window * (cost / total)
        extra = {}
        if name == PHASE_DEVICE_EVAL and compiled is not None:
            extra["classes"] = {
                cls: result.iterations * units
                for cls, units in compiled.eval_cost_by_class().items()
            }
        rec.emit_span(
            name, ts=cursor, dur=dur, parent=parent, cost=cost, **extra
        )
        cursor += dur


def _newton_iterate(
    system: MnaSystem,
    t: float,
    alpha0: float,
    beta,
    x0: np.ndarray,
    opts: SimOptions,
    out: EvalOutputs | None,
    solver: LinearSolver | None,
    iter_cap: int | None,
) -> NewtonResult:
    """The damped-Newton loop itself (instrumentation-free hot path)."""
    out = out if out is not None else system.make_buffers(fast_path=opts.jacobian_reuse)
    solver = solver or LinearSolver(system.unknown_names)
    max_iters = iter_cap if iter_cap is not None else opts.max_newton_iters
    per_iter = iteration_work(system)
    per_iter_bypassed = iteration_work(system, bypassed=True)

    reuse = opts.jacobian_reuse
    # Factors are only reusable against the same linearised operator:
    # same pattern (by identity), same alpha0, same gshunt (gmin stepping
    # mutates it). Reuse-off keeps key=None so matches() never fires.
    key = (system.pattern, alpha0, system.gshunt) if reuse else None
    f0 = solver.factor_count
    rf0 = solver.refactor_count
    s0 = solver.solve_count
    rh0 = solver.reuse_hits
    fallbacks = 0
    work = 0.0
    prev_norm = np.inf
    # A stall means the stale factors are a bad model of the current
    # operating point; later iterations of the same solve would stall
    # again, so bypass stays off until the next solve.
    allow_bypass = True

    def finish(converged: bool, iterations: int, norm: float, failure: str = ""):
        return NewtonResult(
            x, converged, iterations, norm, work,
            failure=failure,
            lu_factors=solver.factor_count - f0,
            lu_refactors=solver.refactor_count - rf0,
            lu_solves=solver.solve_count - s0,
            lu_reuse_hits=solver.reuse_hits - rh0,
            bypass_fallbacks=fallbacks,
        )

    abs_tol = system.convergence_tolerances(opts)
    x = np.asarray(x0, dtype=float).copy()
    residual_norm = np.inf

    for iteration in range(1, max_iters + 1):
        system.eval(x, t, out)
        residual = system.resistive_residual(out, x)
        if alpha0 != 0.0 or np.ndim(beta) > 0:
            residual = residual + alpha0 * out.q[: system.n] + beta
        residual_norm = float(np.abs(residual).max()) if residual.size else 0.0
        # Large-but-finite residuals are recoverable (overflow-safe device
        # models plus limiting pull the iterate back); only non-finite
        # values are hopeless.
        if not np.isfinite(residual_norm):
            work += per_iter
            return finish(False, iteration, residual_norm,
                          failure="residual diverged (non-finite)")

        # Jacobian bypass: back-solve against the previous factors while
        # they match this operator and the residual keeps contracting.
        bypass = reuse and allow_bypass and solver.matches(key)
        if bypass and opts.refactor_every > 0 and solver.bypass_streak >= opts.refactor_every:
            bypass = False
        if bypass and residual_norm > opts.reuse_stall_ratio * prev_norm:
            # Stale factors stopped paying for themselves: refactor now.
            bypass = False
            allow_bypass = False
            fallbacks += 1
        prev_norm = residual_norm

        work += per_iter_bypassed if bypass else per_iter
        try:
            if bypass:
                try:
                    delta = solver.solve_reused(-residual)
                    solver.bypass_streak += 1
                except SingularMatrixError:
                    fallbacks += 1
                    work += per_iter - per_iter_bypassed
                    bypass = False
                    allow_bypass = False
            if not bypass:
                jac = system.jacobian(out, alpha0)
                solver.factor(jac, key=key)
                delta = solver.resolve(-residual)
        except SingularMatrixError as exc:
            return finish(False, iteration, residual_norm,
                          failure=f"singular Jacobian: {exc}")

        # Global damping: cap the largest voltage move per iteration.
        # Purely linear systems converge in one exact step — damping them
        # only turns one iteration into several.
        if system.has_nonlinear:
            if opts.voltage_limit > 0:
                vmax = (
                    np.abs(delta[system.voltage_mask]).max()
                    if system.voltage_mask.any()
                    else 0.0
                )
                if vmax > opts.voltage_limit:
                    delta = delta * (opts.voltage_limit / vmax)
            if opts.damping < 1.0:
                delta = delta * opts.damping

        x_new = x + delta

        # Per-device junction limiting on the padded iterate.
        x_new_full = system.pad(x_new)
        limited = system.limit(x_new_full, system.pad(x))
        if limited:
            x_new = x_new_full[: system.n]

        scale = np.maximum(np.abs(x_new), np.abs(x))
        tol = opts.reltol * scale + abs_tol
        small = np.all(np.abs(x_new - x) <= tol)
        x = x_new
        if small and not limited and iteration >= 1:
            return finish(True, iteration, residual_norm)

    failure = "" if iter_cap is not None else "iteration limit reached"
    return finish(False, max_iters, residual_norm, failure=failure)
