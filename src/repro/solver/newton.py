"""Damped Newton–Raphson for the discretised circuit equations.

One call of :func:`newton_solve` finds x with

    F(x) = f(x) + s(t) + gshunt*x + alpha0*q(x) + beta = 0

where ``alpha0``/``beta`` encode the integration scheme (``alpha0 = 0``,
``beta = 0`` gives the DC equations). Convergence follows SPICE: the
iteration stops when every component of the update satisfies
``|dx_i| <= reltol*max(|x_i|, |x_prev_i|) + tol_i`` (vntol for voltages,
abstol for currents) *and* no device limiter fired on the accepted iterate.

The solver is stateless and re-entrant: all scratch state lives in the
caller-provided :class:`~repro.devices.base.EvalOutputs` buffers, so
concurrent WavePipe tasks can run Newton solves on the same system.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.devices.base import EvalOutputs
from repro.errors import SingularMatrixError
from repro.instrument.events import NEWTON_SOLVE
from repro.instrument.recorder import get_recorder
from repro.linalg.solve import LinearSolver
from repro.mna.system import MnaSystem
from repro.utils.options import SimOptions

@dataclass
class NewtonResult:
    """Outcome of one Newton solve.

    Attributes:
        x: final iterate (meaningful even when unconverged — speculative
            WavePipe phases resume from it).
        converged: True if the SPICE delta-x criterion was met.
        iterations: Newton iterations performed.
        residual_norm: infinity norm of F at the final iterate.
        work_units: cost-model charge for this solve.
        q / qdot: charge vector at the solution and its derivative
            ``alpha0*q + beta`` (filled by the caller's integration layer
            when needed).
        failure: short reason string when not converged.
    """

    x: np.ndarray
    converged: bool
    iterations: int
    residual_norm: float
    work_units: float
    q: np.ndarray | None = None
    qdot: np.ndarray | None = None
    failure: str = ""


def iteration_work(system: MnaSystem) -> float:
    """Cost-model work units for one Newton iteration on *system*.

    Device evaluation dominates in a SPICE engine; factorisation scales
    with the pattern's nonzero count. The constants only matter up to an
    overall scale since speedups are cost ratios on the same system.
    """
    return system.work_units_per_eval + 0.05 * system.pattern.nnz


def newton_solve(
    system: MnaSystem,
    t: float,
    alpha0: float,
    beta: np.ndarray | float,
    x0: np.ndarray,
    options: SimOptions | None = None,
    out: EvalOutputs | None = None,
    solver: LinearSolver | None = None,
    iter_cap: int | None = None,
) -> NewtonResult:
    """Solve the discretised equations at time *t* starting from *x0*.

    Args:
        alpha0: leading integration coefficient (0 for DC).
        beta: history vector of the integration scheme (0 for DC).
        iter_cap: optional hard iteration bound; when hit, returns the
            current iterate with ``converged=False`` and no error — used
            by WavePipe's speculative forward phase.
    """
    opts = options or system.options
    rec = opts.instrument if opts.instrument is not None else get_recorder()
    if not rec.enabled:
        return _newton_iterate(system, t, alpha0, beta, x0, opts, out, solver, iter_cap)
    t_start = rec.clock()
    result = _newton_iterate(system, t, alpha0, beta, x0, opts, out, solver, iter_cap)
    rec.count("newton.solves")
    rec.count("newton.iterations", result.iterations)
    if not result.converged:
        rec.count("newton.failures")
    rec.observe("newton.iterations_per_solve", result.iterations)
    rec.event(
        NEWTON_SOLVE,
        ts=t_start,
        dur=rec.clock() - t_start,
        t_sim=t,
        iterations=result.iterations,
        converged=result.converged,
        work_units=result.work_units,
        failure=result.failure,
    )
    return result


def _newton_iterate(
    system: MnaSystem,
    t: float,
    alpha0: float,
    beta,
    x0: np.ndarray,
    opts: SimOptions,
    out: EvalOutputs | None,
    solver: LinearSolver | None,
    iter_cap: int | None,
) -> NewtonResult:
    """The damped-Newton loop itself (instrumentation-free hot path)."""
    out = out if out is not None else system.make_buffers()
    solver = solver or LinearSolver(system.unknown_names)
    max_iters = iter_cap if iter_cap is not None else opts.max_newton_iters
    per_iter = iteration_work(system)

    abs_tol = system.convergence_tolerances(opts)
    x = np.asarray(x0, dtype=float).copy()
    residual_norm = np.inf

    for iteration in range(1, max_iters + 1):
        system.eval(x, t, out)
        residual = system.resistive_residual(out, x)
        if alpha0 != 0.0 or np.ndim(beta) > 0:
            residual = residual + alpha0 * out.q[: system.n] + beta
        residual_norm = float(np.abs(residual).max()) if residual.size else 0.0
        # Large-but-finite residuals are recoverable (overflow-safe device
        # models plus limiting pull the iterate back); only non-finite
        # values are hopeless.
        if not np.isfinite(residual_norm):
            return NewtonResult(
                x, False, iteration, residual_norm, iteration * per_iter,
                failure="residual diverged (non-finite)",
            )

        jac = system.jacobian(out, alpha0)
        try:
            delta = solver.solve(jac, -residual)
        except SingularMatrixError as exc:
            return NewtonResult(
                x, False, iteration, residual_norm, iteration * per_iter,
                failure=f"singular Jacobian: {exc}",
            )

        # Global damping: cap the largest voltage move per iteration.
        # Purely linear systems converge in one exact step — damping them
        # only turns one iteration into several.
        if system.has_nonlinear:
            if opts.voltage_limit > 0:
                vmax = (
                    np.abs(delta[system.voltage_mask]).max()
                    if system.voltage_mask.any()
                    else 0.0
                )
                if vmax > opts.voltage_limit:
                    delta = delta * (opts.voltage_limit / vmax)
            if opts.damping < 1.0:
                delta = delta * opts.damping

        x_new = x + delta

        # Per-device junction limiting on the padded iterate.
        x_new_full = system.pad(x_new)
        limited = system.limit(x_new_full, system.pad(x))
        if limited:
            x_new = x_new_full[: system.n]

        scale = np.maximum(np.abs(x_new), np.abs(x))
        tol = opts.reltol * scale + abs_tol
        small = np.all(np.abs(x_new - x) <= tol)
        x = x_new
        if small and not limited and iteration >= 1:
            return NewtonResult(
                x, True, iteration, residual_norm, iteration * per_iter
            )

    failure = "" if iter_cap is not None else "iteration limit reached"
    return NewtonResult(
        x, False, max_iters, residual_norm, max_iters * per_iter, failure=failure
    )
