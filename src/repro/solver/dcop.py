"""DC operating point with homotopy fallbacks.

Strategy (mirrors ngspice):

1. Plain Newton from a zero (or caller-supplied) initial guess.
2. **gmin stepping** — solve a sequence of problems with a large diagonal
   conductance that is reduced geometrically to the target gmin; each
   solution seeds the next.
3. **Source stepping** — ramp all independent sources from 0 to full value
   in ``options.source_steps`` increments, continuing from each solution.

The operating point also initialises transient simulation: at DC the
charge derivative is exactly zero, so the integration history can start
with ``qdot = 0`` without approximation.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConvergenceError
from repro.linalg.solve import LinearSolver
from repro.mna.system import MnaSystem
from repro.solver.newton import NewtonResult, newton_solve
from repro.utils.options import SimOptions


@dataclass
class OperatingPoint:
    """Converged DC solution plus bookkeeping for the cost model."""

    x: np.ndarray
    q: np.ndarray
    iterations: int
    work_units: float
    strategy: str
    lu_factors: int = 0
    lu_refactors: int = 0
    lu_solves: int = 0
    lu_reuse_hits: int = 0


def _charge_at(system: MnaSystem, x: np.ndarray) -> np.ndarray:
    out = system.make_buffers()
    system.eval(x, 0.0, out)
    return system.charge(out)


def solve_operating_point(
    system: MnaSystem,
    options: SimOptions | None = None,
    x0: np.ndarray | None = None,
) -> OperatingPoint:
    """Find the DC operating point, trying homotopies before giving up.

    Raises:
        ConvergenceError: when direct Newton, gmin stepping and source
            stepping all fail.
    """
    opts = options or system.options
    guess = np.zeros(system.n) if x0 is None else np.asarray(x0, dtype=float).copy()
    solver = LinearSolver(system.unknown_names)
    total_work = 0.0
    total_iters = 0

    def finish(x: np.ndarray, strategy: str) -> OperatingPoint:
        # The solver is local to this call, so its lifetime counters are
        # exactly this operating point's linear-solve cost.
        return OperatingPoint(
            x,
            _charge_at(system, x),
            total_iters,
            total_work,
            strategy,
            lu_factors=solver.factor_count,
            lu_refactors=solver.refactor_count,
            lu_solves=solver.solve_count,
            lu_reuse_hits=solver.reuse_hits,
        )

    result = newton_solve(system, 0.0, 0.0, 0.0, guess, opts, solver=solver)
    total_work += result.work_units
    total_iters += result.iterations
    if result.converged:
        return finish(result.x, "newton")

    gmin_result = _gmin_stepping(system, opts, guess, solver)
    if gmin_result is not None:
        res, work, iters = gmin_result
        total_work += work
        total_iters += iters
        return finish(res.x, "gmin-stepping")

    src_result = _source_stepping(system, opts, guess, solver)
    if src_result is not None:
        res, work, iters = src_result
        total_work += work
        total_iters += iters
        return finish(res.x, "source-stepping")

    raise ConvergenceError(
        "DC operating point failed (newton, gmin stepping and source stepping)",
        iterations=total_iters,
        residual_norm=result.residual_norm,
    )


def _gmin_stepping(system, opts, guess, solver):
    """Geometric gmin ramp from 1e-2 S down to the target gmin."""
    x = guess.copy()
    work = 0.0
    iters = 0
    original = system.gshunt
    try:
        schedule = np.geomspace(1e-2, original, max(opts.gmin_steps, 2))
        result: NewtonResult | None = None
        for g in schedule:
            system.gshunt = float(g)
            result = newton_solve(system, 0.0, 0.0, 0.0, x, opts, solver=solver)
            work += result.work_units
            iters += result.iterations
            if not result.converged:
                return None
            x = result.x
        return result, work, iters
    finally:
        system.gshunt = original


def _source_stepping(system, opts, guess, solver):
    """Ramp independent sources 0 -> 1; requires source banks to exist."""
    banks = [
        b
        for b in (system.compiled.vsource_bank, system.compiled.isource_bank)
        if b is not None
    ]
    if not banks:
        return None
    x = guess.copy()
    work = 0.0
    iters = 0
    try:
        result: NewtonResult | None = None
        for scale in np.linspace(0.1, 1.0, max(opts.source_steps, 2)):
            for bank in banks:
                bank.scale = float(scale)
            result = newton_solve(system, 0.0, 0.0, 0.0, x, opts, solver=solver)
            work += result.work_units
            iters += result.iterations
            if not result.converged:
                return None
            x = result.x
        return result, work, iters
    finally:
        for bank in banks:
            bank.scale = 1.0
