"""Lockstep damped Newton for an ensemble of K parameter variants.

One call of :func:`ensemble_newton_solve` drives all K variants of an
:class:`~repro.mna.ensemble.EnsembleSystem` through the same Newton loop:
device evaluation and Jacobian assembly are batched (one vectorised pass
over ``(n, K)`` state), while factorisation, back-solve, damping,
limiting, bypass policy and convergence are tracked *per variant* so each
column follows exactly the trajectory the scalar solver would give it.
Converged variants freeze — their column stops moving and their solver
stops factoring — until every variant has converged or the iteration cap
is hit.

Failure semantics: any variant diverging (non-finite residual) or hitting
a singular Jacobian fails the whole solve, exactly as one job would fail
its own timestep; the transient engine then shrinks the shared step for
the ensemble. K=1 reproduces the scalar solver bit for bit (same
residuals, same factors, same update, same convergence test — and the
same work units, since the ensemble eval margin vanishes at K=1).

Cost model: K variants share one vectorised device evaluation, so an
ensemble iteration charges ``work_units_per_eval * (1 + (K-1) *
ENSEMBLE_EVAL_MARGIN)`` instead of K full evaluations; each *active*
variant then pays its own factorisation (or back-solve-only bypass)
charge, identical per variant to the scalar model.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.devices.base import EvalOutputs
from repro.errors import SingularMatrixError
from repro.instrument.events import (
    NEWTON_SOLVE,
    OUTCOME_NEWTON_FAIL,
    PHASE_ASSEMBLY,
    PHASE_BACKSOLVE,
    PHASE_DEVICE_EVAL,
    PHASE_FACTOR,
)
from repro.instrument.recorder import get_recorder
from repro.linalg.solve import BlockSolver
from repro.mna.ensemble import EnsembleSystem
from repro.utils.options import SimOptions

#: Marginal cost of evaluating one extra ensemble variant, as a fraction
#: of a full device evaluation. Vectorised banks amortise the Python
#: dispatch and index gathers across variants; only the raw numpy
#: arithmetic scales with K.
ENSEMBLE_EVAL_MARGIN = 0.25


@dataclass
class EnsembleNewtonResult:
    """Outcome of one lockstep ensemble Newton solve.

    Mirrors :class:`~repro.solver.newton.NewtonResult` with per-variant
    detail: *x* is ``(n, K)``, *converged* means every variant met the
    SPICE delta-x criterion, and the ``lu_*`` counters sum over variants.
    """

    x: np.ndarray
    converged: bool
    iterations: int
    residual_norm: float
    work_units: float
    converged_mask: np.ndarray = field(default_factory=lambda: np.zeros(0, dtype=bool))
    residual_norms: np.ndarray = field(default_factory=lambda: np.zeros(0))
    q: np.ndarray | None = None
    qdot: np.ndarray | None = None
    failure: str = ""
    lu_factors: int = 0
    lu_refactors: int = 0
    lu_solves: int = 0
    lu_reuse_hits: int = 0
    bypass_fallbacks: int = 0


def ensemble_iteration_work(
    system: EnsembleSystem, factored: int, bypassed: int
) -> float:
    """Work units for one lockstep iteration.

    One shared device evaluation covers all K variants at the marginal
    rate; *factored* variants pay the full per-variant LU charge and
    *bypassed* ones the back-solve-only charge (frozen variants pay
    nothing), matching :func:`repro.solver.newton.iteration_work` per
    variant.
    """
    eval_factor = 1.0 + ENSEMBLE_EVAL_MARGIN * (system.sims - 1)
    nnz = system.pattern.nnz
    return (
        system.work_units_per_eval * eval_factor
        + 0.05 * nnz * factored
        + 0.01 * nnz * bypassed
    )


def ensemble_newton_solve(
    system: EnsembleSystem,
    t: float,
    alpha0: float,
    beta,
    x0: np.ndarray,
    options: SimOptions | None = None,
    out: EvalOutputs | None = None,
    solver: BlockSolver | None = None,
    iter_cap: int | None = None,
) -> EnsembleNewtonResult:
    """Solve the discretised equations for all K variants at time *t*.

    Arguments mirror :func:`repro.solver.newton.newton_solve`; *x0* and
    *beta* carry the trailing variant axis (``beta`` may also be the
    scalar 0.0 for DC-style solves).
    """
    opts = options or system.options
    rec = opts.instrument if opts.instrument is not None else get_recorder()
    if not rec.enabled:
        return _ensemble_iterate(system, t, alpha0, beta, x0, opts, out, solver, iter_cap)
    sid = rec.begin_span(NEWTON_SOLVE, t_sim=t, sims=system.sims)
    t_start = rec.clock()
    result = _ensemble_iterate(system, t, alpha0, beta, x0, opts, out, solver, iter_cap)
    rec.count("newton.solves")
    rec.count("newton.iterations", result.iterations)
    rec.count("ensemble.solves")
    rec.count("ensemble.variants_per_solve", system.sims)
    if not result.converged:
        rec.count("newton.failures")
    if result.lu_factors:
        rec.count("lu.factor", result.lu_factors)
    if result.lu_refactors:
        rec.count("lu.refactor", result.lu_refactors)
    if result.lu_solves:
        rec.count("lu.solve", result.lu_solves)
    if result.lu_reuse_hits:
        rec.count("lu.reuse_hit", result.lu_reuse_hits)
    if result.bypass_fallbacks:
        rec.count("newton.bypass_fallback", result.bypass_fallbacks)
    rec.observe("newton.iterations_per_solve", result.iterations)
    _emit_ensemble_phase_spans(rec, sid, t_start, system, result)
    rec.end_span(
        sid,
        outcome="converged" if result.converged else OUTCOME_NEWTON_FAIL,
        cost=result.work_units,
        iterations=result.iterations,
        converged=result.converged,
        work_units=result.work_units,
        failure=result.failure,
    )
    return result


def _emit_ensemble_phase_spans(rec, parent: int, t_start: float, system, result) -> None:
    """Phase split of one ensemble solve (device_eval/assembly/factor/backsolve).

    Same synthesized-from-work-units convention as the scalar solver's
    phase lane; ``device_eval`` cost reflects the shared vectorised pass
    (marginal rate per extra variant) and carries the per-class split.
    """
    nnz = system.pattern.nnz
    factorisations = result.lu_factors + result.lu_refactors
    eval_factor = 1.0 + ENSEMBLE_EVAL_MARGIN * (system.sims - 1)
    eval_cost = result.iterations * system.work_units_per_eval * eval_factor
    assembly_cost = 0.02 * nnz * factorisations
    factor_cost = 0.02 * nnz * factorisations
    backsolve_cost = 0.01 * nnz * result.lu_solves
    phases = [
        (PHASE_DEVICE_EVAL, eval_cost),
        (PHASE_ASSEMBLY, assembly_cost),
        (PHASE_FACTOR, factor_cost),
        (PHASE_BACKSOLVE, backsolve_cost),
    ]
    total = sum(cost for _, cost in phases)
    if total <= 0.0:
        return
    window = max(rec.clock() - t_start, 0.0)
    compiled = getattr(system, "compiled", None)
    cursor = t_start
    for name, cost in phases:
        if cost <= 0.0:
            continue
        dur = window * (cost / total)
        extra = {}
        if name == PHASE_DEVICE_EVAL and compiled is not None:
            extra["classes"] = {
                cls: result.iterations * units * eval_factor
                for cls, units in compiled.eval_cost_by_class().items()
            }
        rec.emit_span(name, ts=cursor, dur=dur, parent=parent, cost=cost, **extra)
        cursor += dur


def _ensemble_iterate(
    system: EnsembleSystem,
    t: float,
    alpha0: float,
    beta,
    x0: np.ndarray,
    opts: SimOptions,
    out: EvalOutputs | None,
    solver: BlockSolver | None,
    iter_cap: int | None,
) -> EnsembleNewtonResult:
    """The lockstep damped-Newton loop (instrumentation-free hot path)."""
    sims = system.sims
    n = system.n
    out = out if out is not None else system.make_buffers(fast_path=opts.jacobian_reuse)
    solver = solver or BlockSolver(sims, system.unknown_names)
    max_iters = iter_cap if iter_cap is not None else opts.max_newton_iters

    reuse = opts.jacobian_reuse
    key = (system.pattern, alpha0, system.gshunt) if reuse else None
    f0 = solver.factor_count
    rf0 = solver.refactor_count
    s0 = solver.solve_count
    rh0 = solver.reuse_hits
    fallbacks = 0
    work = 0.0
    prev_norm = np.full(sims, np.inf)
    allow_bypass = np.ones(sims, dtype=bool)
    converged_mask = np.zeros(sims, dtype=bool)

    def finish(converged: bool, iterations: int, norms: np.ndarray, failure: str = ""):
        norm = float(norms.max()) if norms.size else 0.0
        return EnsembleNewtonResult(
            x, converged, iterations, norm, work,
            converged_mask=converged_mask.copy(),
            residual_norms=np.asarray(norms, dtype=float).copy(),
            failure=failure,
            lu_factors=solver.factor_count - f0,
            lu_refactors=solver.refactor_count - rf0,
            lu_solves=solver.solve_count - s0,
            lu_reuse_hits=solver.reuse_hits - rh0,
            bypass_fallbacks=fallbacks,
        )

    abs_tol = system.convergence_tolerances(opts)[:, None]
    x = np.asarray(x0, dtype=float).copy()
    if x.shape != (n, sims):
        raise ValueError(f"ensemble x0 must be shaped ({n}, {sims}), got {x.shape}")
    residual_norms = np.full(sims, np.inf)

    for iteration in range(1, max_iters + 1):
        active = ~converged_mask
        system.eval(x, t, out)
        residual = system.resistive_residual(out, x)
        if alpha0 != 0.0 or np.ndim(beta) > 0:
            residual = residual + alpha0 * out.q[:n] + beta
        residual_norms = (
            np.abs(residual).max(axis=0) if residual.size else np.zeros(sims)
        )
        if not np.all(np.isfinite(residual_norms[active])):
            work += ensemble_iteration_work(system, factored=int(active.sum()), bypassed=0)
            return finish(False, iteration, residual_norms,
                          failure="residual diverged (non-finite)")

        # Per-variant Jacobian bypass, mirroring the scalar policy.
        bypass = np.zeros(sims, dtype=bool)
        for k in np.nonzero(active)[0]:
            sk = solver.solvers[k]
            bk = reuse and allow_bypass[k] and sk.matches(key)
            if bk and opts.refactor_every > 0 and sk.bypass_streak >= opts.refactor_every:
                bk = False
            if bk and residual_norms[k] > opts.reuse_stall_ratio * prev_norm[k]:
                bk = False
                allow_bypass[k] = False
                fallbacks += 1
            bypass[k] = bk
        prev_norm[active] = residual_norms[active]

        delta = np.zeros((n, sims))
        need_factor = active & ~bypass
        # Bypassed variants first: a stale-singular fallback joins the
        # factor set for this same iteration, as in the scalar solver.
        for k in np.nonzero(active & bypass)[0]:
            sk = solver.solvers[k]
            try:
                delta[:, k] = sk.solve_reused(-residual[:, k])
                sk.bypass_streak += 1
            except SingularMatrixError:
                fallbacks += 1
                allow_bypass[k] = False
                bypass[k] = False
                need_factor[k] = True
        try:
            if need_factor.any():
                matrices = system.jacobian(out, alpha0)
                solver.factor_all(matrices, key=key, active=need_factor)
                for k in np.nonzero(need_factor)[0]:
                    delta[:, k] = solver.solvers[k].resolve(-residual[:, k])
        except SingularMatrixError as exc:
            work += ensemble_iteration_work(
                system, factored=int(need_factor.sum()), bypassed=int(bypass.sum())
            )
            return finish(False, iteration, residual_norms,
                          failure=f"singular Jacobian: {exc}")
        work += ensemble_iteration_work(
            system, factored=int(need_factor.sum()), bypassed=int((active & bypass).sum())
        )

        # Global damping, per variant column (scalar semantics per column).
        if system.has_nonlinear:
            if opts.voltage_limit > 0:
                if system.voltage_mask.any():
                    vmax = np.abs(delta[system.voltage_mask]).max(axis=0)
                else:
                    vmax = np.zeros(sims)
                hot = vmax > opts.voltage_limit
                if hot.any():
                    scale_cols = np.where(hot, opts.voltage_limit / np.maximum(vmax, 1e-300), 1.0)
                    delta = delta * scale_cols
            if opts.damping < 1.0:
                delta = delta * opts.damping

        x_new = x + delta
        x_new[:, converged_mask] = x[:, converged_mask]

        # Per-device junction limiting on the padded iterate, tracking
        # which variant columns were touched.
        changed_cols = np.zeros(sims, dtype=bool)
        x_new_full = system.pad(x_new)
        limited = system.limit(x_new_full, system.pad(x), changed_cols)
        if limited:
            x_new = x_new_full[:n]

        scale = np.maximum(np.abs(x_new), np.abs(x))
        tol = opts.reltol * scale + abs_tol
        small = np.all(np.abs(x_new - x) <= tol, axis=0)
        x = x_new
        newly = active & small & ~changed_cols
        converged_mask |= newly
        if converged_mask.all():
            return finish(True, iteration, residual_norms)

    failure = "" if iter_cap is not None else "iteration limit reached"
    return finish(False, max_iters, residual_norms, failure=failure)
