"""Nonlinear solving: Newton-Raphson and DC operating point."""
