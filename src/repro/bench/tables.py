"""ASCII table and line-plot rendering for the bench harness.

The evaluation regenerates the paper's tables and figure *series* as
text: tables in aligned monospace (same rows a paper table reports), and
figures as ASCII plots plus their raw series so EXPERIMENTS.md can quote
exact numbers.
"""

from __future__ import annotations

import numpy as np


def render_table(
    headers: list[str],
    rows: list[list[object]],
    title: str = "",
    float_format: str = "{:.3g}",
) -> str:
    """Monospace table with per-column alignment."""

    def fmt(cell: object) -> str:
        if isinstance(cell, float):
            return float_format.format(cell)
        return str(cell)

    text_rows = [[fmt(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in text_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def line(cells: list[str]) -> str:
        return " | ".join(c.ljust(w) for c, w in zip(cells, widths))

    parts = []
    if title:
        parts.append(title)
    parts.append(line(headers))
    parts.append("-+-".join("-" * w for w in widths))
    parts.extend(line(r) for r in text_rows)
    return "\n".join(parts)


def render_series(
    x: np.ndarray,
    series: dict[str, np.ndarray],
    title: str = "",
    width: int = 64,
    height: int = 16,
    logx: bool = False,
) -> str:
    """ASCII line plot of one or more named series over a shared x axis."""
    x = np.asarray(x, dtype=float)
    if logx:
        x = np.log10(np.maximum(x, 1e-300))
    all_y = np.concatenate([np.asarray(v, dtype=float) for v in series.values()])
    y_min, y_max = float(all_y.min()), float(all_y.max())
    if y_max == y_min:
        y_max = y_min + 1.0
    x_min, x_max = float(x.min()), float(x.max())
    if x_max == x_min:
        x_max = x_min + 1.0

    canvas = [[" "] * width for _ in range(height)]
    markers = "ox+*#@%&"
    for idx, (name, values) in enumerate(series.items()):
        marker = markers[idx % len(markers)]
        values = np.asarray(values, dtype=float)
        for xv, yv in zip(x, values):
            col = int(round((xv - x_min) / (x_max - x_min) * (width - 1)))
            row = int(round((yv - y_min) / (y_max - y_min) * (height - 1)))
            canvas[height - 1 - row][col] = marker

    lines = []
    if title:
        lines.append(title)
    lines.append(f"y: [{y_min:.3g}, {y_max:.3g}]")
    lines.extend("|" + "".join(row) for row in canvas)
    lines.append("+" + "-" * width)
    lines.append(f"x: [{x_min:.3g}, {x_max:.3g}]" + (" (log10)" if logx else ""))
    legend = "  ".join(
        f"{markers[i % len(markers)]}={name}" for i, name in enumerate(series)
    )
    lines.append(legend)
    return "\n".join(lines)
