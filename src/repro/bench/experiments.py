"""Experiment registry: one entry per reconstructed table / figure.

Each experiment function runs its workloads, returns an
:class:`ExperimentResult` carrying both the rendered text (what the bench
harness prints) and the raw data (what EXPERIMENTS.md records). The
mapping to the paper's evaluation is documented in DESIGN.md's
"Reconstructed evaluation index".
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.baselines.finegrained import fine_grained_curve
from repro.baselines.relaxation import WaveformRelaxation
from repro.bench.tables import render_series, render_table
from repro.circuits.registry import BENCHMARKS, Benchmark, get_benchmark
from repro.core.wavepipe import compare_with_sequential, run_wavepipe
from repro.engine.transient import run_transient
from repro.mna.compiler import compile_circuit
from repro.mna.system import MnaSystem
from repro.waveform.waveform import compare, worst_deviation

#: Default circuit subset for the speedup tables (full registry).
SPEEDUP_CIRCUITS = [
    "ring5",
    "ring9",
    "invchain8",
    "nandchain6",
    "powergrid6x6",
    "rlcline8",
    "mixer",
    "lcosc",
    "rectifier",
]


@dataclass
class ExperimentResult:
    """Rendered text + raw data of one experiment."""

    exp_id: str
    title: str
    text: str
    data: dict = field(default_factory=dict)

    def __str__(self) -> str:  # pragma: no cover - convenience
        return self.text


def _speedup_row(bench: Benchmark, scheme: str, threads: list[int]) -> tuple[list, dict]:
    compiled = compile_circuit(bench.build(), bench.options)
    seq = run_transient(compiled, bench.tstop, tstep=bench.tstep, options=bench.options)
    row: list[object] = [bench.name, seq.stats.accepted_points]
    cells = {}
    for t in threads:
        report = compare_with_sequential(
            compiled, bench.tstop, scheme=scheme, threads=t,
            tstep=bench.tstep, options=bench.options,
        )
        row.append(report.speedup)
        cells[t] = report.speedup
    return row, cells


def _speedup_table(exp_id: str, title: str, scheme: str, threads: list[int], names) -> ExperimentResult:
    headers = ["circuit", "seq points"] + [f"{t} thr" for t in threads]
    rows = []
    data = {}
    for name in names:
        row, cells = _speedup_row(get_benchmark(name), scheme, threads)
        rows.append(row)
        data[name] = cells
    geo = {
        t: float(np.exp(np.mean([np.log(max(data[n][t], 1e-9)) for n in names])))
        for t in threads
    }
    rows.append(["geomean", ""] + [geo[t] for t in threads])
    data["geomean"] = geo
    text = render_table(headers, rows, title=title)
    return ExperimentResult(exp_id, title, text, data)


# -- tables ----------------------------------------------------------------------


def table_r1(names=None) -> ExperimentResult:
    """Benchmark circuit statistics."""
    names = names or list(BENCHMARKS)
    headers = ["circuit", "kind", "unknowns", "devices", "tstop", "description"]
    rows = []
    data = {}
    for name in names:
        bench = get_benchmark(name)
        compiled = compile_circuit(bench.build(), bench.options)
        devices = sum(b.count for b in compiled.banks)
        rows.append(
            [name, bench.kind, compiled.n, devices, f"{bench.tstop:.3g}s", bench.description]
        )
        data[name] = {"unknowns": compiled.n, "devices": devices, "kind": bench.kind}
    return ExperimentResult(
        "table_r1", "Table R1: benchmark circuits", render_table(headers, rows, "Table R1"), data
    )


def table_r2(threads=(2, 3, 4), names=None) -> ExperimentResult:
    """Backward pipelining speedups."""
    return _speedup_table(
        "table_r2",
        "Table R2: backward pipelining speedup vs sequential",
        "backward",
        list(threads),
        names or SPEEDUP_CIRCUITS,
    )


def table_r3(threads=(2, 3), names=None) -> ExperimentResult:
    """Forward pipelining speedups."""
    return _speedup_table(
        "table_r3",
        "Table R3: forward pipelining speedup vs sequential",
        "forward",
        list(threads),
        names or SPEEDUP_CIRCUITS,
    )


def table_r4(threads=(3, 4), names=None, exp_id="table_r4") -> ExperimentResult:
    """Combined scheme speedups."""
    return _speedup_table(
        exp_id,
        "Table R4: combined backward+forward speedup vs sequential",
        "combined",
        list(threads),
        names or SPEEDUP_CIRCUITS,
    )


def table_r4_smoke() -> ExperimentResult:
    """Two-circuit combined-scheme subset for CI smoke runs.

    This is the perf-gate's window onto the speculation-benefit channels
    (``speculate.successes``, ``pipeline.stages``): a pipelined run that
    stops speculating or stops forming stages moves those counters down,
    which ``repro perf diff`` treats as the regression direction.
    """
    return table_r4(threads=(3,), names=["ring5", "rectifier"],
                    exp_id="table_r4_smoke")


def table_r5(names=None, scheme="combined", threads=4) -> ExperimentResult:
    """Accuracy: WavePipe vs sequential waveforms (paper: no accuracy loss)."""
    names = names or ["ring5", "invchain8", "powergrid6x6", "mixer", "rectifier"]
    headers = ["circuit", "signal", "max |dv| (V)", "rel. to swing", "rms (V)"]
    rows = []
    data = {}
    for name in names:
        bench = get_benchmark(name)
        compiled = compile_circuit(bench.build(), bench.options)
        report = compare_with_sequential(
            compiled, bench.tstop, scheme=scheme, threads=threads,
            tstep=bench.tstep, options=bench.options, signals=list(bench.signals),
        )
        for dev in report.deviations:
            rows.append([name, dev.name, dev.max_abs, dev.max_relative, dev.rms])
        worst = report.worst_deviation
        data[name] = {
            "worst_signal": worst.name if worst else None,
            "worst_rel": worst.max_relative if worst else 0.0,
        }
    title = f"Table R5: waveform deviation, {scheme} x{threads} vs sequential"
    return ExperimentResult("table_r5", title, render_table(headers, rows, title), data)


def table_r6(name="invchain8", threads=4) -> ExperimentResult:
    """Ablation: scheduler knobs of the backward scheme."""
    bench = get_benchmark(name)
    compiled = compile_circuit(bench.build(), bench.options)
    variants = {
        "default": {},
        "no guard": {"backward_guard_fraction": 0.0},
        "guard 0.25": {"backward_guard_fraction": 0.25},
        "ratio 1.5": {"step_ratio_max": 1.5},
        "ratio 3.0": {"step_ratio_max": 3.0},
        "margin 0.7": {"lte_cap_margin": 0.7},
        "predictor guess": {"newton_guess": "predictor"},
    }
    headers = ["variant", "speedup", "wasted solves", "accepted"]
    rows = []
    data = {}
    for label, changes in variants.items():
        options = bench.options.replace(**changes)
        report = compare_with_sequential(
            bench.build(), bench.tstop, scheme="backward", threads=threads,
            tstep=bench.tstep, options=options,
        )
        stats = report.pipelined.stats
        rows.append([label, report.speedup, stats.wasted_solves, stats.accepted_points])
        data[label] = {"speedup": report.speedup, "wasted": stats.wasted_solves}
    title = f"Table R6: backward-scheme ablation on {name} ({threads} threads)"
    return ExperimentResult("table_r6", title, render_table(headers, rows, title), data)


# -- figures ------------------------------------------------------------------------


def fig_r1(names=("invchain8", "powergrid6x6"), threads=(1, 2, 3, 4, 6)) -> ExperimentResult:
    """Speedup vs thread count per scheme."""
    threads = list(threads)
    series = {}
    data = {}
    for name in names:
        bench = get_benchmark(name)
        compiled = compile_circuit(bench.build(), bench.options)
        for scheme in ("backward", "combined"):
            speedups = []
            for t in threads:
                report = compare_with_sequential(
                    compiled, bench.tstop, scheme=scheme, threads=t,
                    tstep=bench.tstep, options=bench.options,
                )
                speedups.append(report.speedup)
            series[f"{name}/{scheme}"] = np.array(speedups)
            data[f"{name}/{scheme}"] = dict(zip(threads, speedups))
    text = render_series(
        np.array(threads, dtype=float), series,
        title="Fig R1: speedup vs threads",
    )
    table = render_table(
        ["series"] + [f"{t} thr" for t in threads],
        [[k] + [float(v) for v in vals] for k, vals in series.items()],
    )
    return ExperimentResult("fig_r1", "Fig R1: speedup vs threads", text + "\n\n" + table, data)


def fig_r2(name="powergrid6x6", threads=4) -> ExperimentResult:
    """Accepted step size vs time: sequential vs backward pipelining."""
    bench = get_benchmark(name)
    compiled = compile_circuit(bench.build(), bench.options)
    seq = run_transient(compiled, bench.tstop, tstep=bench.tstep, options=bench.options)
    pipe = run_wavepipe(
        compiled, bench.tstop, scheme="backward", threads=threads,
        tstep=bench.tstep, options=bench.options,
    )
    data = {
        "sequential": {"t": seq.times[1:].tolist(), "h": seq.step_sizes.tolist()},
        "backward": {"t": pipe.times[1:].tolist(), "h": pipe.step_sizes.tolist()},
        "seq_points": seq.stats.accepted_points,
        "pipe_points": pipe.stats.accepted_points,
        "pipe_stages": pipe.stats.clock.stages,
    }
    # Resample the step profile on a common grid for the ASCII plot.
    grid = np.linspace(0, bench.tstop, 120)
    seq_h = np.interp(grid, seq.times[1:], seq.step_sizes)
    pipe_h = np.interp(grid, pipe.times[1:], pipe.step_sizes)
    text = render_series(
        grid,
        {"seq log10(h)": np.log10(seq_h), "wavepipe log10(h)": np.log10(pipe_h)},
        title=f"Fig R2: step size vs time on {name} (backward x{threads})",
    )
    summary = (
        f"sequential: {seq.stats.accepted_points} points; backward x{threads}: "
        f"{pipe.stats.accepted_points} points in {pipe.stats.clock.stages} stages "
        f"(mean stage width {pipe.stats.clock.mean_width:.2f})"
    )
    return ExperimentResult("fig_r2", "Fig R2: step sizes", text + "\n" + summary, data)


def fig_r3(name="lcosc", scheme="combined", threads=4) -> ExperimentResult:
    """Waveform overlay: WavePipe vs sequential (visual accuracy claim)."""
    bench = get_benchmark(name)
    compiled = compile_circuit(bench.build(), bench.options)
    seq = run_transient(compiled, bench.tstop, tstep=bench.tstep, options=bench.options)
    pipe = run_wavepipe(
        compiled, bench.tstop, scheme=scheme, threads=threads,
        tstep=bench.tstep, options=bench.options,
    )
    signal = bench.signals[0]
    grid = np.linspace(0, bench.tstop, 160)
    seq_v = seq.waveforms[signal].at(grid)
    pipe_v = pipe.waveforms[signal].at(grid)
    deviations = compare(seq.waveforms, pipe.waveforms, names=list(bench.signals))
    worst = worst_deviation(deviations)
    text = render_series(
        grid,
        {f"seq {signal}": seq_v, f"{scheme} {signal}": pipe_v},
        title=f"Fig R3: {signal} on {name}, sequential vs {scheme} x{threads}",
    )
    text += f"\nworst deviation: {worst.max_abs:.3e} V ({worst.max_relative:.2e} of swing) on {worst.name}"
    data = {
        "signal": signal,
        "worst_rel": worst.max_relative,
        "worst_abs": worst.max_abs,
        "seq_frequency": seq.waveforms[signal].frequency(),
        "pipe_frequency": pipe.waveforms[signal].frequency(),
    }
    return ExperimentResult("fig_r3", "Fig R3: waveform overlay", text, data)


def fig_r4(threads=(2, 4, 8, 16)) -> ExperimentResult:
    """WavePipe vs baselines: fine-grained parallelism and WR."""
    threads = list(threads)
    # Fine-grained projection + WavePipe on the inverter chain.
    bench = get_benchmark("invchain8")
    compiled = compile_circuit(bench.build(), bench.options)
    seq = run_transient(compiled, bench.tstop, tstep=bench.tstep, options=bench.options)
    system = MnaSystem(compiled)
    fine = fine_grained_curve(system, seq, threads)
    wave = []
    for t in threads:
        report = compare_with_sequential(
            compiled, bench.tstop, scheme="combined", threads=t,
            tstep=bench.tstep, options=bench.options,
        )
        wave.append(report.speedup)
    rows = [
        ["fine-grained (model)"] + [e.speedup for e in fine],
        ["wavepipe combined"] + list(wave),
    ]
    table = render_table(
        ["method"] + [f"{t} thr" for t in threads],
        rows,
        title="Fig R4a: speedup vs threads, WavePipe vs fine-grained baseline (invchain8)",
    )

    # Waveform relaxation behaviour: friendly vs feedback circuit.
    wr_rows = []
    wr_data = {}
    from repro.circuits.digital import inverter_chain, ring_oscillator

    chain = inverter_chain(stages=4, period=10e-9)
    wr_chain = WaveformRelaxation(
        chain, tstop=12e-9,
        partition=[{"vdd", "n0", "n1", "n2"}, {"n3", "n4"}],
    ).run(max_sweeps=12, wr_vtol=2e-2)
    wr_rows.append(["invchain4 (cut at gate)", wr_chain.sweeps, wr_chain.converged,
                    f"{wr_chain.sweep_deltas[-1]:.2e}"])
    wr_data["invchain4"] = {"sweeps": wr_chain.sweeps, "converged": wr_chain.converged}

    ring = ring_oscillator(5)
    wr_ring = WaveformRelaxation(ring, tstop=10e-9, blocks=2).run(
        max_sweeps=12, wr_vtol=2e-2
    )
    wr_rows.append(["ring5 (feedback loop)", wr_ring.sweeps, wr_ring.converged,
                    f"{wr_ring.sweep_deltas[-1]:.2e}"])
    wr_data["ring5"] = {"sweeps": wr_ring.sweeps, "converged": wr_ring.converged}

    wr_table = render_table(
        ["circuit", "sweeps", "converged", "final delta (V)"],
        wr_rows,
        title="Fig R4b: waveform relaxation convergence (the method WavePipe avoids)",
    )
    data = {
        "fine_grained": {t: e.speedup for t, e in zip(threads, fine)},
        "wavepipe": dict(zip(threads, wave)),
        "wr": wr_data,
    }
    return ExperimentResult(
        "fig_r4", "Fig R4: baselines", table + "\n\n" + wr_table, data
    )


def table_r7(name="ring5", threads=3) -> ExperimentResult:
    """Extension: speedup vs integration tolerance.

    Looser tolerances mean bigger steps, worse predictor starts and more
    Newton iterations per solve — more work for pipelining to hide; tight
    tolerances approach the regime where solves are too cheap to
    parallelise coarsely. Not a paper table (the abstract is silent on
    tolerance), but it quantifies the sensitivity any adopter will hit.
    """
    bench = get_benchmark(name)
    headers = ["reltol", "seq points", "iters/solve", "backward", "forward", "combined"]
    rows = []
    data = {}
    for reltol in (1e-2, 3e-3, 1e-3, 3e-4):
        options = bench.options.replace(reltol=reltol)
        compiled = compile_circuit(bench.build(), options)
        seq = run_transient(compiled, bench.tstop, tstep=bench.tstep, options=options)
        solves = seq.stats.accepted_points + seq.stats.rejected_points
        iters_per = seq.stats.newton_iterations / max(solves, 1)
        row = [f"{reltol:g}", seq.stats.accepted_points, iters_per]
        cells = {"iters_per_solve": iters_per}
        for scheme in ("backward", "forward", "combined"):
            report = compare_with_sequential(
                compiled, bench.tstop, scheme=scheme, threads=threads,
                tstep=bench.tstep, options=options,
            )
            row.append(report.speedup)
            cells[scheme] = report.speedup
        rows.append(row)
        data[reltol] = cells
    title = f"Table R7 (extension): speedup vs reltol on {name} ({threads} threads)"
    return ExperimentResult("table_r7", title, render_table(headers, rows, title), data)


def fig_r5(name="invchain8", threads=3) -> ExperimentResult:
    """Extension: sensitivity to per-stage synchronisation overhead.

    The abstract argues coarse-grained parallelism needs "low parallel
    programming effort"; the quantitative counterpart is that WavePipe
    synchronises once per *time point*, not once per device evaluation,
    so its speedup should survive sync costs that would erase any
    fine-grained scheme's gains. The sweep charges each pipeline stage an
    extra cost expressed as a fraction of one Newton iteration and
    compares against the fine-grained baseline under the same overhead.
    """
    bench = get_benchmark(name)
    compiled = compile_circuit(bench.build(), bench.options)
    seq = run_transient(compiled, bench.tstop, tstep=bench.tstep, options=bench.options)
    system = MnaSystem(compiled)
    from repro.solver.newton import iteration_work

    iter_cost = iteration_work(system)
    fractions = (0.0, 0.1, 0.5, 1.0, 2.0)
    headers = ["sync cost (iterations)", "wavepipe combined", "fine-grained (model)"]
    rows = []
    data = {}
    from repro.baselines.finegrained import FORK_JOIN_OVERHEAD, fine_grained_estimate
    import repro.baselines.finegrained as fg

    for frac in fractions:
        options = bench.options.replace(sync_overhead=frac * iter_cost)
        report = compare_with_sequential(
            compiled, bench.tstop, scheme="combined", threads=threads,
            tstep=bench.tstep, options=options,
        )
        # fine-grained pays the same cost *every iteration*, not per stage
        original = fg.FORK_JOIN_OVERHEAD
        try:
            fg.FORK_JOIN_OVERHEAD = frac / max(threads - 1, 1)
            fine = fine_grained_estimate(system, seq, threads)
        finally:
            fg.FORK_JOIN_OVERHEAD = original
        rows.append([f"{frac:g}", report.speedup, fine.speedup])
        data[frac] = {"wavepipe": report.speedup, "fine_grained": fine.speedup}
    title = f"Fig R5 (extension): speedup vs sync overhead on {name} ({threads} threads)"
    return ExperimentResult("fig_r5", title, render_table(headers, rows, title), data)


def table_r8(threads=3) -> ExperimentResult:
    """Extension: speedup vs circuit size.

    WavePipe parallelises the *time axis*, so — unlike fine-grained
    device/matrix parallelism, whose efficiency depends on how much work
    each iteration offers the threads — its gains should be roughly
    independent of circuit size. Swept on the two scalable generators.
    """
    from repro.circuits.digital import inverter_chain
    from repro.circuits.interconnect import rc_grid

    cases = [
        ("invchain4", lambda: inverter_chain(stages=4), 50e-9),
        ("invchain8", lambda: inverter_chain(stages=8), 50e-9),
        ("invchain16", lambda: inverter_chain(stages=16), 50e-9),
        ("grid4x4", lambda: rc_grid(4, 4), 40e-9),
        ("grid6x6", lambda: rc_grid(6, 6), 40e-9),
        ("grid8x8", lambda: rc_grid(8, 8), 40e-9),
    ]
    headers = ["circuit", "unknowns", "backward", "combined"]
    rows = []
    data = {}
    for name, factory, tstop in cases:
        compiled = compile_circuit(factory())
        row = [name, compiled.n]
        cells = {"unknowns": compiled.n}
        for scheme in ("backward", "combined"):
            report = compare_with_sequential(
                compiled, tstop, scheme=scheme, threads=threads
            )
            row.append(report.speedup)
            cells[scheme] = report.speedup
        rows.append(row)
        data[name] = cells
    title = f"Table R8 (extension): speedup vs circuit size ({threads} threads)"
    return ExperimentResult("table_r8", title, render_table(headers, rows, title), data)


def table_r9(names=None, repeats=2, exp_id="table_r9") -> ExperimentResult:
    """Extension: solve-cost ablation of the factorisation-reuse fast path.

    Runs each circuit sequentially with ``jacobian_reuse`` off (the
    bit-exact full-Newton reference) and on (static stamps + in-place
    assembly + Jacobian bypass), comparing transient wall time,
    factorisation counts, reuse hit rate and waveform deviation. Wall
    times are best-of-*repeats* to suppress scheduler noise.
    """
    names = names or list(BENCHMARKS)
    headers = [
        "circuit",
        "off (ms)",
        "on (ms)",
        "reduction",
        "factors off>on",
        "hit rate",
        "fallbacks",
        "worst rel dev",
    ]
    rows = []
    data = {}
    for name in names:
        bench = get_benchmark(name)
        compiled = compile_circuit(bench.build(), bench.options)

        def best_run(options):
            best = None
            for _ in range(max(repeats, 1)):
                res = run_transient(
                    compiled, bench.tstop, tstep=bench.tstep, options=options
                )
                if best is None or res.stats.tran_seconds < best.stats.tran_seconds:
                    best = res
            return best

        off = best_run(bench.options.replace(jacobian_reuse=False))
        on = best_run(bench.options.replace(jacobian_reuse=True))
        t_off = off.stats.tran_seconds
        t_on = on.stats.tran_seconds
        reduction = 1.0 - t_on / t_off if t_off > 0 else 0.0
        hit_rate = (
            on.stats.lu_reuse_hits / on.stats.lu_solves if on.stats.lu_solves else 0.0
        )
        worst = worst_deviation(
            compare(off.waveforms, on.waveforms, names=list(bench.signals))
        )
        worst_rel = worst.max_relative if worst else 0.0
        rows.append(
            [
                name,
                f"{t_off * 1e3:.1f}",
                f"{t_on * 1e3:.1f}",
                f"{reduction:.1%}",
                f"{off.stats.lu_factors}>{on.stats.lu_factors}",
                f"{hit_rate:.1%}",
                on.stats.bypass_fallbacks,
                f"{worst_rel:.2e}",
            ]
        )
        data[name] = {
            "off_tran_seconds": t_off,
            "on_tran_seconds": t_on,
            "reduction": reduction,
            "factors_off": off.stats.lu_factors,
            "factors_on": on.stats.lu_factors,
            "refactors_on": on.stats.lu_refactors,
            "reuse_hits": on.stats.lu_reuse_hits,
            "reuse_hit_rate": hit_rate,
            "bypass_fallbacks": on.stats.bypass_fallbacks,
            "worst_rel_dev": worst_rel,
        }
    title = "Table R9 (extension): factorisation-reuse solve-cost ablation"
    return ExperimentResult(exp_id, title, render_table(headers, rows, title), data)


def table_r9_smoke() -> ExperimentResult:
    """One-row-per-kind Table R9 subset for CI smoke runs."""
    return table_r9(
        names=["rcladder20", "rectifier"], repeats=1, exp_id="table_r9_smoke"
    )


def table_r10(
    name="rectifier",
    jobs=16,
    seed=7,
    workers=(1, 2, 4),
    exp_id="table_r10",
) -> ExperimentResult:
    """Extension: batch-campaign throughput, serial vs process pool.

    Runs one seeded Monte Carlo campaign (*jobs* jittered variants of a
    nonlinear registry circuit) through every backend configuration —
    the job-level parallelism axis orthogonal to WavePipe's intra-run
    pipelining (processes sidestep the GIL entirely) — plus a final
    cache-served re-run against a shared result cache. Each
    configuration gets a fresh store so no timing row benefits from
    another's cache.
    """
    import shutil
    import tempfile
    import time

    from repro.jobs import CircuitRef, JobSpec, monte_carlo, run_campaign

    base = JobSpec(circuit=CircuitRef(kind="registry", name=name))
    campaign = monte_carlo(base, n=jobs, seed=seed)
    headers = ["backend", "jobs", "wall (s)", "jobs/s", "speedup", "outcome"]
    rows = []
    data = {}

    def run_config(key, label, store, **kwargs):
        t0 = time.perf_counter()
        result = run_campaign(campaign, store=store, **kwargs)
        wall = time.perf_counter() - t0
        baseline = data.get("serial", {}).get("wall_seconds", wall)
        speedup = baseline / wall if wall > 0 else 0.0
        counts = ", ".join(
            f"{count} {status}" for status, count in sorted(result.counts.items())
        )
        rows.append(
            [label, len(result.outcomes), f"{wall:.2f}",
             f"{len(result.outcomes) / wall:.2f}", f"{speedup:.2f}x", counts]
        )
        data[key] = {
            "backend": label,
            "jobs": len(result.outcomes),
            "wall_seconds": wall,
            "throughput": len(result.outcomes) / wall,
            "speedup": speedup,
            "passed": result.passed,
            "cache_hits": result.cache_hits,
            "counts": result.counts,
        }
        return result

    tmp = tempfile.mkdtemp(prefix="table_r10_")
    try:
        run_config("serial", "serial", f"{tmp}/serial")
        for n in workers:
            run_config(
                f"process{n}", f"process x{n}", f"{tmp}/process{n}",
                backend="process", workers=n,
            )
        # Cache row: replay against the serial store — every job is a hit.
        run_config("cached", "cached re-run", f"{tmp}/serial")
    finally:
        shutil.rmtree(tmp, ignore_errors=True)

    title = (
        f"Table R10 (extension): campaign throughput, {jobs}-job Monte Carlo "
        f"on {name} (seed {seed})"
    )
    return ExperimentResult(exp_id, title, render_table(headers, rows, title), data)


def table_r10_smoke() -> ExperimentResult:
    """Tiny Table R10 subset for CI smoke runs."""
    return table_r10(jobs=4, workers=(2,), exp_id="table_r10_smoke")


#: Verify-generator seeds for Table R11 — each draws a different family
#: (diode-clipper, mosfet-chain, bjt-follower, rlc-ladder, rc-ladder,
#: resistive-sin, diode-mesh), so the ensemble engine is exercised on
#: every device bank. The multi-block WTM families are covered by Table
#: R13 instead.
R11_SEEDS = (38, 16, 42, 7, 5, 3, 101)


def table_r11(
    seeds=R11_SEEDS,
    jobs=16,
    mc_seed=5,
    jitter=0.02,
    workers=16,
    exp_id="table_r11",
) -> ExperimentResult:
    """Extension: ensemble lockstep solve vs per-job process pool.

    A Monte Carlo campaign's jobs differ only in component values, so K
    of them can share one transient solve: batched device evaluation and
    assembly over ``(n, K)`` state, per-variant numeric factorisations
    off one cached symbolic ordering, and a shared adaptive grid accepted
    by max-reduction over per-variant LTE. The table runs the same
    *jobs*-variant campaign both ways — one :class:`EnsembleRequest`
    against a *workers*-process pool — and reports wall time and the
    virtual-clock cost (``work_units``).

    Accuracy is oracle-checked, not assumed: every ensemble variant is
    compared against its own standalone sequential run (the exact
    simulation a per-job backend performs) and classified on the verify
    tolerance ladder. Options are verification-grade (``reltol=3e-6``,
    ``max_step=tstop/256``) so legal tolerance-scaled drift between the
    shared grid and each variant's native grid stays below the ``loose``
    (1e-3) rung.
    """
    import time

    from repro.api import EnsembleRequest, run_ensemble_request
    from repro.engine.transient import TransientResult  # noqa: F401 (doc link)
    from repro.jobs import CircuitRef, JobSpec, apply_params, monte_carlo, run_campaign
    from repro.utils.options import SimOptions
    from repro.verify.generators import draw_circuit
    from repro.verify.oracle import classify_tier

    headers = [
        "circuit",
        "K",
        "ens wall (s)",
        "pool wall (s)",
        "wall x",
        "ens work",
        "pool work",
        "work x",
        "worst rel dev",
        "tier",
    ]
    rows = []
    data = {}
    for seed in seeds:
        gen = draw_circuit(seed)
        options = SimOptions(
            reltol=3e-6, max_step=gen.tstop / 256, jacobian_reuse=True
        )

        request = EnsembleRequest(
            circuit=gen.circuit,
            tstop=gen.tstop,
            options=options,
            ensemble=jobs,
            jitter=jitter,
            seed=mc_seed,
        )
        t0 = time.perf_counter()
        ens = run_ensemble_request(request)
        ens_wall = time.perf_counter() - t0
        ens_work = ens.stats.work_units

        # The pool arm runs the identical variant set: monte_carlo and
        # EnsembleRequest share the seeded draw protocol (sorted
        # component order, lognormal factors).
        base = JobSpec(
            circuit=CircuitRef(kind="verify", seed=seed),
            analysis="transient",
            tstop=gen.tstop,
            options={
                "reltol": 3e-6,
                "max_step": gen.tstop / 256,
                "jacobian_reuse": True,
            },
        )
        campaign = monte_carlo(base, n=jobs, seed=mc_seed, jitter=jitter)
        t0 = time.perf_counter()
        pool = run_campaign(campaign, backend="process", workers=workers)
        pool_wall = time.perf_counter() - t0
        pool_work = pool.metrics.work_units

        # Oracle: each variant against its own sequential run.
        worst_rel = 0.0
        tiers = []
        for k, overrides in enumerate(ens.params):
            ref = run_transient(
                apply_params(gen.circuit, overrides), gen.tstop, options=options
            )
            worst = worst_deviation(
                compare(ref.waveforms, ens.variants[k].waveforms)
            )
            rel = worst.max_relative if worst else 0.0
            tiers.append(classify_tier(rel))
            worst_rel = max(worst_rel, rel)

        name = f"{gen.family}[{seed}]"
        wall_x = pool_wall / ens_wall if ens_wall > 0 else 0.0
        work_x = pool_work / ens_work if ens_work > 0 else 0.0
        rows.append(
            [
                name,
                jobs,
                f"{ens_wall:.2f}",
                f"{pool_wall:.2f}",
                f"{wall_x:.2f}x",
                f"{ens_work:.0f}",
                f"{pool_work:.0f}",
                f"{work_x:.2f}x",
                f"{worst_rel:.2e}",
                classify_tier(worst_rel),
            ]
        )
        data[name] = {
            "family": gen.family,
            "seed": seed,
            "variants": jobs,
            "ens_wall_seconds": ens_wall,
            "pool_wall_seconds": pool_wall,
            "wall_speedup": wall_x,
            "ens_work_units": ens_work,
            "pool_work_units": pool_work,
            "work_ratio": work_x,
            "pool_passed": pool.passed,
            "worst_rel_dev": worst_rel,
            "tier": classify_tier(worst_rel),
            "variant_tiers": tiers,
        }
    title = (
        f"Table R11 (extension): {jobs}-variant ensemble Monte Carlo vs "
        f"{workers}-worker process pool (mc seed {mc_seed}, jitter {jitter:g})"
    )
    return ExperimentResult(exp_id, title, render_table(headers, rows, title), data)


def table_r11_smoke() -> ExperimentResult:
    """Two-circuit, six-variant Table R11 subset for CI smoke runs.

    This is the perf-gate's window onto the ensemble benefit channel
    (``ensemble.variants_per_solve``): a backend that stops batching
    variants into shared solves moves that counter down, which
    ``repro perf diff`` treats as the regression direction.
    """
    # Seeds pick one linear and one nonlinear single-block family
    # (rc-ladder, bjt-follower). Multi-block families are out: shared-grid
    # ensemble comparison on switching composites measures edge-timing
    # jitter, not solver agreement (their oracle is wtm_vs_monolithic).
    return table_r11(
        seeds=(5, 42), jobs=6, workers=2, exp_id="table_r11_smoke"
    )


def table_r12(
    requests=200,
    unique=12,
    workers=2,
    campaign_every=25,
    campaign_jobs=4,
    seed=0,
    exp_id="table_r12",
) -> ExperimentResult:
    """Extension: simulation service under deterministic mixed load.

    Boots a :class:`repro.service.ServiceServer` (persistent queue +
    *workers* in-process farm nodes sharing one result cache) on a
    throwaway directory and drives it with the seeded load generator:
    a fixed pool of *unique* Monte Carlo variants submitted repeatedly
    across rotating tenants, campaign bursts every *campaign_every*
    requests, status polls in between, then a drain and one result
    fetch per distinct hash.

    Every counter the run leaves behind is deterministic — the op
    sequence is seeded and response-independent, monitoring probes are
    unmetered, and each unique spec simulates exactly once no matter
    which node claims it — so the dump doubles as the perf gate's view
    of the service stack: queue dedup rate, per-node completion split,
    and the solver work behind the farm are all trended by
    ``repro perf diff``.
    """
    import tempfile
    import time
    from pathlib import Path

    from repro.instrument import get_recorder
    from repro.service import ServiceServer, run_load

    with tempfile.TemporaryDirectory() as tmp:
        server = ServiceServer(
            Path(tmp) / "queue", recorder=get_recorder(), workers=workers
        )
        with server:
            t0 = time.perf_counter()
            report = run_load(
                server.url,
                requests=requests,
                seed=seed,
                unique=unique,
                campaign_every=campaign_every,
                campaign_jobs=campaign_jobs,
                wait_timeout=600.0,
            )
            wall = time.perf_counter() - t0

    executed = report.submitted - report.deduped
    headers = [
        "requests",
        "accepted",
        "deduped",
        "campaigns",
        "polls",
        "unique jobs",
        "executed",
        "fetched",
        "drained",
        "req/s",
    ]
    rows = [
        [
            report.requests,
            report.submitted,
            report.deduped,
            report.campaigns,
            report.polls,
            report.unique_jobs,
            executed,
            report.results_fetched,
            "yes" if report.drained else "NO",
            f"{report.requests / wall:.0f}" if wall > 0 else "-",
        ]
    ]
    title = (
        f"Table R12 (extension): {workers}-node service farm under "
        f"{requests}-request mixed load (seed {seed}, {unique} unique specs)"
    )
    data = {
        "load": report.to_dict(),
        "executed": executed,
        "wall_seconds": wall,
        "workers": workers,
    }
    return ExperimentResult(exp_id, title, render_table(headers, rows, title), data)


def table_r12_smoke() -> ExperimentResult:
    """Sixty-request Table R12 subset for CI smoke runs.

    The perf gate trends its ``service.*`` counters: a falling
    ``service.deduped`` means the content-hash dedup stopped absorbing
    repeat submissions, and any growth in solver work for the same fixed
    op sequence means jobs are being resimulated instead of served from
    the shared cache.
    """
    return table_r12(
        requests=60, unique=6, campaign_every=20, exp_id="table_r12_smoke"
    )


#: Table R13 workloads: (registry name, partition count, WTM config).
#: ``mixedrate6`` is the multirate showcase — one fast block forces the
#: monolithic solver dense everywhere while partitioned slow blocks
#: stride — and the row where WTM beats the monolithic virtual clock.
#: ``rcblocks6``'s deep chain shows the mode trade-off: Gauss-Jacobi
#: information crosses one bridge per sweep (outer count grows with
#: chain depth) while Gauss-Seidel converges at the topology minimum,
#: beating the relaxation baseline's default-mode sweep count.
R13_WORKLOADS = (
    ("mixedrate6", 6, {"multirate": True, "modes": ("jacobi", "seidel")}),
    ("rcblocks6", 6, {"modes": ("jacobi", "seidel")}),
    ("rcblocks3", 3, {"modes": ("jacobi", "seidel")}),
)


def table_r13(
    workloads=R13_WORKLOADS,
    scheme="combined",
    threads=2,
    check_tiers=True,
    exp_id="table_r13",
) -> ExperimentResult:
    """Extension: WTM domain decomposition vs monolithic and WR baseline.

    Four arms per workload, all costed on the same virtual clock:
    the monolithic sequential engine, the monolithic WavePipe run
    (*scheme* x *threads*), the naive :class:`WaveformRelaxation`
    baseline at its default Gauss-Jacobi mode on the same cut, and the
    WTM coordinator (both outer modes) with every partition solve
    WavePipe-pipelined. ``multirate`` workloads additionally let each
    partition's step controller run free — the circuit-axis win a
    monolithic global step control cannot reach.

    With *check_tiers* the headline WTM config of every workload is also
    classified against the verification-grade monolithic reference via
    :func:`~repro.partition.checks.wtm_vs_monolithic`; speed without
    agreement is a bug, not a result.
    """
    from repro.partition import partition_circuit, run_wtm, wtm_vs_monolithic
    from repro.utils.options import SimOptions

    headers = [
        "circuit",
        "arm",
        "P",
        "outer",
        "conv",
        "virtual work",
        "serial work",
        "vs mono seq",
    ]
    rows = []
    data = {}
    for name, parts, cfg in workloads:
        bench = get_benchmark(name)
        circuit = bench.build()
        tstop = bench.tstop
        manifest = partition_circuit(circuit, parts)
        multirate = cfg.get("multirate", False)

        mono = run_transient(circuit, tstop, options=bench.options)
        mono_work = mono.stats.total_work
        pipe = run_wavepipe(
            circuit, tstop, scheme=scheme, threads=threads, options=bench.options
        )
        wr = WaveformRelaxation(
            circuit,
            tstop,
            partition=[set(spec.nodes) for spec in manifest.partitions],
            options=bench.options,
        ).run()

        def row(arm, outer, conv, virtual, serial, parts=parts):
            rows.append(
                [
                    name,
                    arm,
                    parts,
                    outer if outer is not None else "-",
                    "yes" if conv else "NO",
                    f"{virtual:.0f}",
                    f"{serial:.0f}",
                    f"{mono_work / virtual:.2f}x" if virtual > 0 else "-",
                ]
            )

        row("mono sequential", None, True, mono_work, mono_work, parts=1)
        row(
            f"mono wavepipe/{scheme}",
            None,
            True,
            pipe.stats.virtual_total,
            pipe.stats.serial_total,
            parts=1,
        )
        row("wr baseline/jacobi", wr.sweeps, wr.converged, wr.parallel_work, wr.serial_work)

        wtm_data = {}
        for mode in cfg.get("modes", ("jacobi", "seidel")):
            res = run_wtm(
                circuit,
                tstop,
                manifest=manifest,
                mode=mode,
                scheme=scheme,
                threads=threads,
                multirate=multirate,
                options=bench.options,
                strict=False,
            )
            suffix = "/multirate" if multirate else ""
            row(
                f"wtm {mode}+{scheme}{suffix}",
                res.outer_iterations,
                res.converged,
                res.stats.virtual_total,
                res.stats.serial_total,
            )
            wtm_data[mode] = {
                "outer_iterations": res.outer_iterations,
                "converged": res.converged,
                "virtual_work": res.stats.virtual_total,
                "serial_work": res.stats.serial_total,
            }

        entry = {
            "partitions": parts,
            "multirate": multirate,
            "mono_seq_work": mono_work,
            "mono_wavepipe_virtual": pipe.stats.virtual_total,
            "mono_best_virtual": min(mono_work, pipe.stats.virtual_total),
            "wr_sweeps": wr.sweeps,
            "wr_converged": wr.converged,
            "wr_parallel_work": wr.parallel_work,
            "wtm": wtm_data,
        }
        if check_tiers:
            # The headline config per workload. The multirate showcase
            # needs a denser exchange grid and tighter block tolerances:
            # with free-running steps the comparison resolves the fast
            # block's edges only through the sampled exchange, so the
            # grid chord error is the classification floor.
            agreement = wtm_vs_monolithic(
                circuit,
                tstop,
                manifest=manifest,
                mode="jacobi" if multirate else "seidel",
                scheme=scheme,
                threads=threads,
                multirate=multirate,
                options=SimOptions(reltol=1e-5),
                **({"grid_points": 4096} if multirate else {}),
            )
            entry["tier"] = agreement.tier
            entry["worst_rel_dev"] = agreement.worst
            entry["agreement_ok"] = agreement.ok
        data[name] = entry

    title = (
        f"Table R13 (extension): WTM partitioned transients "
        f"(pipelined per-partition, {scheme} x{threads}) vs monolithic "
        f"and waveform-relaxation baseline"
    )
    return ExperimentResult(exp_id, title, render_table(headers, rows, title), data)


def table_r13_smoke() -> ExperimentResult:
    """Two-workload Table R13 subset for CI smoke runs.

    Keeps both headline wins under the perf gate: the multirate jacobi
    row that beats the monolithic virtual clock, and the deep-chain
    seidel row that beats the relaxation baseline's sweep count. The
    gate trends ``wtm.outer_iterations`` in its default direction —
    more outer iterations for the same workloads is a convergence
    regression.
    """
    return table_r13(
        workloads=(
            ("mixedrate6", 6, {"multirate": True, "modes": ("jacobi",)}),
            ("rcblocks6", 6, {"modes": ("seidel",)}),
        ),
        check_tiers=False,
        exp_id="table_r13_smoke",
    )


#: Experiment id -> callable returning an ExperimentResult.
EXPERIMENTS = {
    "table_r1": table_r1,
    "table_r2": table_r2,
    "table_r3": table_r3,
    "table_r4": table_r4,
    "table_r4_smoke": table_r4_smoke,
    "table_r5": table_r5,
    "table_r6": table_r6,
    "table_r7": table_r7,
    "table_r8": table_r8,
    "table_r9": table_r9,
    "table_r9_smoke": table_r9_smoke,
    "table_r10": table_r10,
    "table_r10_smoke": table_r10_smoke,
    "table_r11": table_r11,
    "table_r11_smoke": table_r11_smoke,
    "table_r12": table_r12,
    "table_r12_smoke": table_r12_smoke,
    "table_r13": table_r13,
    "table_r13_smoke": table_r13_smoke,
    "fig_r1": fig_r1,
    "fig_r2": fig_r2,
    "fig_r3": fig_r3,
    "fig_r4": fig_r4,
    "fig_r5": fig_r5,
}


def run_experiment(exp_id: str) -> ExperimentResult:
    """Run one registered experiment by id."""
    try:
        func = EXPERIMENTS[exp_id]
    except KeyError:
        raise KeyError(
            f"unknown experiment {exp_id!r}; available: {', '.join(EXPERIMENTS)}"
        ) from None
    return func()
