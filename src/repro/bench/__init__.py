"""Evaluation harness: experiment registry, tables, EXPERIMENTS.md."""
