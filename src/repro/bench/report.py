"""EXPERIMENTS.md generator.

Runs every registered experiment and renders the paper-vs-measured record
the reproduction ships with. Regenerate after algorithm changes with::

    python -m repro.bench.report [output-path]

The "paper claim" column states what is derivable from the source text
available to this reproduction (the abstract — see DESIGN.md) plus the
generic expectations stated in DESIGN.md's reconstructed-evaluation index.
"""

from __future__ import annotations

import sys
import time

from repro.bench.experiments import EXPERIMENTS, run_experiment

#: Claim text per experiment (what the abstract / DESIGN.md predicts).
CLAIMS = {
    "table_r1": "Evaluation covers 'general analog and digital ICs' (abstract): digital, analog and interconnect circuit classes.",
    "table_r2": "Backward pipelining speeds up transient simulation using 2+ threads without changing accuracy; gains are workload-dependent (coarse-grained parallelism, modest efficiency).",
    "table_r3": "Forward (predictive) pipelining yields additional speedup where Newton solves are expensive; degrades gracefully (to ~1.0x) where solves are cheap.",
    "table_r4": "The combined scheme adapts per-regime and matches or beats the better single scheme on aggregate.",
    "table_r4_smoke": "CI smoke subset of Table R4 (two circuits, 3 threads); same aggregate expectation, and its metrics dump feeds the perf gate's speculation-benefit channels.",
    "table_r5": "WavePipe does not jeopardise accuracy: accepted waveforms match sequential within integration tolerance (oscillator phase aside).",
    "table_r7": "Extension (no paper counterpart): the two schemes respond oppositely to tolerance — backward gains track rejection/ramp pressure (strongest at loose-to-mid reltol), forward gains track prediction quality (grow as reltol tightens); combined stays between them. No configuration regresses below ~1.0.",
    "table_r8": "Extension (no paper counterpart): WavePipe parallelises the time axis, so speedup is roughly independent of circuit size — the property that lets coarse-grained gains compose with (rather than compete against) fine-grained parallelism.",
    "table_r6": "Scheduler design choices (rejection guard, ratio bound, LTE cap margin, Newton guess) each contribute; defaults are near the per-knob optimum.",
    "table_r9": "Extension (no paper counterpart): caching LU factorisations across Newton iterations and timepoints (plus static stamps and in-place assembly) cuts sequential transient wall time on every registry circuit — >=25% on the linear interconnect circuits with bit-identical waveforms, and positive even on stiff nonlinear circuits where the stall guard caps stale-factor damage; deviations stay within solver tolerance.",
    "table_r9_smoke": "CI smoke subset of Table R9 (one linear, one stiff nonlinear circuit); same expectations at reduced coverage.",
    "table_r10": "Extension (no paper counterpart): job-level parallelism through the repro.jobs process pool scales Monte Carlo campaign throughput with worker count on multi-core hosts (processes sidestep the GIL — the axis orthogonal to WavePipe's intra-run pipelining), and the content-addressed result cache serves a campaign re-run without executing a single job.",
    "table_r10_smoke": "CI smoke subset of Table R10 (4-job campaign, 2-worker pool); same correctness/caching expectations without the scaling claim.",
    "table_r11": "Extension (no paper counterpart): Monte Carlo variants of one topology share a single vectorized transient solve — one adaptive grid, one Newton history, one cached symbolic ordering across K parameter-jittered instances — beating the same campaign run as independent process-pool jobs in both virtual-clock work and wall time, with every variant within the loose (1e-3) rung against its own sequential run.",
    "table_r11_smoke": "CI smoke subset of Table R11 (two families, 6 variants, 2 workers); same both-clocks win and per-variant accuracy expectations, and its metrics dump feeds the perf gate's ensemble.variants_per_solve benefit channel.",
    "table_r12": "Extension (no paper counterpart): the simulation service — persistent content-hash queue, farm nodes sharing one result cache, stdlib HTTP front end — absorbs a seeded 200-request mixed workload (duplicate submissions, campaign bursts, status polls, rotating tenants) with zero errors, drains completely, and executes each distinct spec exactly once; the counter dump is deterministic and trends the queue dedup rate and per-node completion split in the perf gate.",
    "table_r12_smoke": "CI smoke subset of Table R12 (60 requests, 6 unique specs, 2 in-process nodes); same zero-error drain and exactly-once execution expectations, with service.* counters gated by repro perf diff.",
    "table_r13": "Extension (no paper counterpart): waveform-transmission domain decomposition composes with per-partition WavePipe pipelining — on a rate-disparate multi-block workload the multirate Gauss-Jacobi run beats the best monolithic virtual-clock cost outright (global step control must run dense everywhere; partitioned quiet blocks stride), the Gauss-Seidel coordinator needs fewer outer sweeps than the naive waveform-relaxation baseline on the same cut, and every headline configuration classifies loose (1e-3) or tighter against the verification-grade monolithic reference.",
    "table_r13_smoke": "CI smoke subset of Table R13 (multirate jacobi on mixedrate6, seidel on rcblocks6); same beat-the-monolith and beat-the-baseline expectations, with wtm.* counters — wtm.outer_iterations foremost — gated by repro perf diff.",
    "fig_r1": "Speedup grows from exactly 1.0 at one thread and saturates quickly — coarse-grained application-level parallelism, not linear scaling.",
    "fig_r2": "Pipelining covers the same simulated window in fewer stages than the sequential run has points (the speedup mechanism made visible).",
    "fig_r3": "Pipelined waveforms overlay the sequential ones; oscillation frequency matches within a fraction of a percent.",
    "fig_r5": "Extension (no paper counterpart): with zero overhead an ideal fine-grained scheme beats WavePipe, but it degrades much faster as synchronisation costs grow; WavePipe (one sync per time point) stays ahead once sync costs approach a Newton iteration — the quantitative form of the abstract's coarse-grained argument.",
    "fig_r4": "Fine-grained intra-iteration parallelism saturates (Amdahl); waveform relaxation fails to converge on feedback circuits — WavePipe avoids both limits.",
}

HEADER = """# EXPERIMENTS — paper vs. measured

Reproduction record for WavePipe (Dong, Li & Ye, DAC 2008). Only the
paper's **abstract** was available to this reproduction (see DESIGN.md,
"Source-text caveat"), so the "paper claim" column records what the
abstract states or what DESIGN.md's reconstruction predicts, and the
measured section shows what this implementation produces. Speedups are
virtual-clock measurements (deterministic ideal-machine schedule replay;
see DESIGN.md, "Substitutions") against the sequential baseline on the
same engine. Absolute numbers depend on circuit mix and tolerances; the
claims under test are the *shapes*.

Regenerate with: `python -m repro.bench.report`

"""


def generate(path: str = "EXPERIMENTS.md") -> str:
    """Run every experiment and write the paper-vs-measured record."""
    sections = [HEADER]
    for exp_id in EXPERIMENTS:
        if exp_id.endswith("_smoke"):
            continue  # CI subsets of a full experiment already in the record
        started = time.perf_counter()
        result = run_experiment(exp_id)
        elapsed = time.perf_counter() - started
        sections.append(f"## {result.title}\n")
        sections.append(f"**Paper claim / expectation:** {CLAIMS[exp_id]}\n")
        sections.append("**Measured:**\n")
        sections.append("```")
        sections.append(result.text)
        sections.append("```")
        sections.append(f"\n_(regenerated in {elapsed:.1f}s by `{exp_id}`)_\n")
    content = "\n".join(sections)
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(content)
    return content


if __name__ == "__main__":  # pragma: no cover
    target = sys.argv[1] if len(sys.argv) > 1 else "EXPERIMENTS.md"
    generate(target)
    print(f"wrote {target}")
